#!/usr/bin/env python
"""Static xp-discipline check for the routed kernel modules.

The device-residency contract says the hot kernels obtain their array
operations from the ``repro.utils.xp`` backend shim (or the paired FFT
backend) — never from :mod:`numpy` directly, because a bare ``np.<compute>``
call silently pins that operation to the host and, on a real device
backend, forces a host round-trip the transfer counters would only catch at
runtime.  This script catches it statically.

Mechanics
---------
Each routed kernel module is parsed (``ast``; nothing is imported) and every
function/method body is scanned for attribute calls on the module's numpy
aliases (``import numpy as np`` etc.).  An attribute from the **deny list**
— arithmetic ufuncs, reductions, linalg/fft namespaces, gather/scatter —
is an error unless the enclosing function is in the module's ``HOST_SIDE``
set: the documented host-side constructors, diagnostics and staging helpers
that legitimately operate on host arrays (setup constants, observation
prep, plotting-style summaries).  New functions are therefore checked by
default; declaring one host-side is a reviewed decision, not an accident.

Layout/bookkeeping calls (``np.asarray``, ``np.ascontiguousarray``,
``np.array``, ``np.concatenate`` at the pickle/staging boundary, index
arithmetic) are not denied: they describe host staging, which is exactly
what the explicit ``to_device``/``to_host`` boundary is for.

Run from the repo root (``scripts/smoke.sh`` wires it in)::

    python scripts/check_xp_discipline.py

Exit status 0 when clean; 1 with ``file:line`` diagnostics otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# numpy attributes that are *compute* (device-eligible work).  A bare call
# to one of these inside a kernel function is a discipline violation.
DENY = {
    # elementwise / ufuncs
    "add", "subtract", "multiply", "divide", "true_divide", "negative",
    "maximum", "minimum", "sqrt", "exp", "log", "abs", "absolute", "square",
    "power", "clip", "tanh", "sinh", "cosh", "where",
    # linear algebra / contractions
    "matmul", "dot", "einsum", "outer", "tensordot", "linalg",
    # reductions
    "sum", "mean", "std", "var", "max", "min", "amax", "amin", "prod",
    "cumsum", "median", "average", "nanmean", "nansum",
    # gather/scatter
    "take", "put", "bincount",
    # transforms
    "fft",
    # randomness (kernels must use the backend RNG hook)
    "random",
}

# module path -> function/method qualified names that are *documented*
# host-side code (constructors hoisting device constants, diagnostics,
# observation staging).  Everything NOT listed here is treated as kernel
# code and held to the deny list.
HOST_SIDE: dict[str, set[str]] = {
    "src/repro/models/sqg.py": {
        # constructor hoists host constants once, then uploads via to_device
        "SQGModel.__init__",
        # host diagnostics (operate on downloaded states by contract)
        "SQGModel.random_initial_condition",
        "SQGModel.total_kinetic_energy",
        "SQGModel.cfl_number",
    },
    # LETKF's shard solvers are fully xp-routed; host staging there uses
    # only layout ops, so no exemptions are needed today.
    "src/repro/da/letkf.py": set(),
    "src/repro/core/score.py": {
        # catalogue-weight diagnostic over host arrays
        "MonteCarloScoreEstimator.weights",
    },
    "src/repro/core/sde.py": set(),
    "src/repro/utils/random.py": {
        # The RNG module is the host side of the noise contract: stream
        # construction and seed derivation legitimately live on np.random.
        # Everything else — the NoisePool serving path, MemberStreams
        # fills — stays deny-checked so host compute cannot creep into the
        # pooled hot path.
        "make_generator",
        "split_rng",
        "SeedSequenceFactory.seed_for",
        "NoisePool.__init__",
    },
    "src/repro/core/ensf.py": {
        # observation-noise scaling constant, computed once on the host
        "_ScaledOperator.__init__",
    },
}


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the module binds to numpy (``import numpy as np`` → {"np"})."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


class _Checker(ast.NodeVisitor):
    def __init__(self, rel_path: str, aliases: set[str], host_side: set[str]):
        self.rel_path = rel_path
        self.aliases = aliases
        self.host_side = host_side
        self.scope: list[str] = []
        self.violations: list[tuple[int, str, str]] = []

    def _qualname(self) -> str:
        return ".".join(self.scope)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def _visit_func(self, node) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Call(self, node: ast.Call) -> None:
        # Only *call sites* count: ``rng: np.random.Generator`` annotations
        # and other bare attribute references are not compute.  The dotted
        # chain is flattened so np.linalg.eigh(...) flags via "linalg" and
        # np.random.default_rng(...) via "random".
        chain: list[str] = []
        func = node.func
        while isinstance(func, ast.Attribute):
            chain.append(func.attr)
            func = func.value
        if isinstance(func, ast.Name) and func.id in self.aliases and chain:
            denied = [attr for attr in chain if attr in DENY]
            if denied:
                qual = self._qualname()
                if qual and qual not in self.host_side:
                    dotted = f"{func.id}." + ".".join(reversed(chain))
                    self.violations.append((node.lineno, qual, dotted))
        self.generic_visit(node)


def check_module(rel_path: str) -> list[str]:
    source = (REPO / rel_path).read_text(encoding="utf-8")
    tree = ast.parse(source, filename=rel_path)
    checker = _Checker(rel_path, _numpy_aliases(tree), HOST_SIDE.get(rel_path, set()))
    checker.visit(tree)
    return [
        f"{rel_path}:{lineno}: {call} inside kernel function {qual!r} "
        "(route through the xp backend, or declare the function host-side "
        "in scripts/check_xp_discipline.py)"
        for lineno, qual, call in sorted(checker.violations)
    ]


def main() -> int:
    problems: list[str] = []
    for rel_path in HOST_SIDE:
        problems.extend(check_module(rel_path))
    if problems:
        print("\n".join(problems))
        print(f"\nxp discipline FAILED: {len(problems)} bare numpy compute call(s)")
        return 1
    print(f"xp discipline OK ({len(HOST_SIDE)} kernel modules scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
