#!/bin/sh
# Tier-1 smoke check (see pytest.ini):
#   1. The test suite must *collect* with scipy blocked — the FFT shim and
#      everything importing it must defer scipy imports so numpy-only
#      installs keep working.
#   2. The parallel-analysis worker-invariance contract must hold through a
#      real n_workers=2 process pool (EnSF member-seeded executor and the
#      column-sharded LETKF), so CI always exercises the pool path.
#   3. The tier-1 suite itself must pass; --durations=10 surfaces creeping
#      slow tests.
# Usage: scripts/smoke.sh [extra pytest args for step 3]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== smoke 1/3: collection with scipy blocked (numpy-only install) =="
python - <<'EOF'
import sys

class _BlockSciPy:
    """Meta-path hook simulating an environment without scipy."""
    def find_module(self, name, path=None):  # py<3.12 protocol
        return self if name == "scipy" or name.startswith("scipy.") else None
    def find_spec(self, name, path=None, target=None):
        if name == "scipy" or name.startswith("scipy."):
            raise ImportError(f"{name} blocked by scripts/smoke.sh (numpy-only check)")
        return None
    def load_module(self, name):
        raise ImportError(f"{name} blocked by scripts/smoke.sh (numpy-only check)")

sys.meta_path.insert(0, _BlockSciPy())
for mod in list(sys.modules):
    if mod == "scipy" or mod.startswith("scipy."):
        del sys.modules[mod]

import pytest

# Collection imports every test module (and through them the package); any
# unconditional `import scipy` fails loudly here.
rc = pytest.main(["--collect-only", "-q", "--no-header", "-p", "no:cacheprovider"])
if rc != 0:
    raise SystemExit(f"collection failed with scipy blocked (exit {rc})")
print("collection OK without scipy")
EOF

echo "== smoke 2/3: parallel-analysis worker invariance (n_workers=2 pool) =="
python -m pytest -x -q tests/unit/test_hpc.py::TestParallelAnalysis

echo "== smoke 3/3: tier-1 suite with --durations=10 =="
exec python -m pytest -x -q --durations=10 "$@"
