#!/bin/sh
# Tier-1 smoke check (see pytest.ini):
#   1. The test suite must *collect* with scipy blocked — the FFT shim and
#      everything importing it must defer scipy imports so numpy-only
#      installs keep working.
#   2. The parallel-analysis worker-invariance contract must hold through a
#      real n_workers=2 process pool (EnSF member-seeded executor and the
#      column-sharded LETKF), so CI always exercises the pool path.
#   3. The backend-parametrized kernel-equivalence suite must pass with the
#      array backend forced to ``mock-device`` via the environment variable
#      (proving both the env-var precedence path and the transfer-metered
#      dispatch layer without hardware).
#   4. The routed kernel modules (sqg, letkf, ensf, score, sde) must pass
#      the static xp-discipline check: no bare numpy compute calls outside
#      the documented host-side functions, so device residency cannot rot
#      silently (scripts/check_xp_discipline.py).
#   5. The BENCH_*.json perf baselines must keep their documented schema
#      (required keys present, speedup notes non-empty) so they cannot
#      silently rot between benchmark refreshes.
#   6. The streaming cycle engine must run a degraded observation scenario
#      (dropout + rotating partial coverage) end to end, and a
#      checkpoint/kill/resume round-trip must land on a bit-identical final
#      analysis mean (the restartable-300-cycle-run contract).
#   7. The fault-tolerant runtime must replay a recorded fault sequence
#      (worker crash + truncated checkpoint + corrupted obs batch) injected
#      via REPRO_FAULT_PLAN against unmodified drivers, recover every fault
#      (visible in the FaultLog), and produce exact-zero RMSE deltas versus
#      the clean run — including a resume="auto" that walks past the torn
#      checkpoint.
#   8. The experiment service must survive a chaos soak: a multi-job
#      priority sweep hard-killed mid-campaign (service-kill injected via
#      REPRO_FAULT_PLAN, exit 137), then restarted from the journal, must
#      finish every job with RMSE bit-identical to an undisturbed sweep.
#      The orchestrator polls the HTTP status frontend (GET /jobs)
#      throughout the kill/restart; every response that lands must parse
#      as strict JSON, and at least one poll must succeed.
#   9. The tier-1 suite itself must pass; --durations=10 surfaces creeping
#      slow tests.
# Usage: scripts/smoke.sh [extra pytest args for step 9]
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== smoke 1/9: collection with scipy blocked (numpy-only install) =="
python - <<'EOF'
import sys

class _BlockSciPy:
    """Meta-path hook simulating an environment without scipy."""
    def find_module(self, name, path=None):  # py<3.12 protocol
        return self if name == "scipy" or name.startswith("scipy.") else None
    def find_spec(self, name, path=None, target=None):
        if name == "scipy" or name.startswith("scipy."):
            raise ImportError(f"{name} blocked by scripts/smoke.sh (numpy-only check)")
        return None
    def load_module(self, name):
        raise ImportError(f"{name} blocked by scripts/smoke.sh (numpy-only check)")

sys.meta_path.insert(0, _BlockSciPy())
for mod in list(sys.modules):
    if mod == "scipy" or mod.startswith("scipy."):
        del sys.modules[mod]

import pytest

# Collection imports every test module (and through them the package); any
# unconditional `import scipy` fails loudly here.
rc = pytest.main(["--collect-only", "-q", "--no-header", "-p", "no:cacheprovider"])
if rc != 0:
    raise SystemExit(f"collection failed with scipy blocked (exit {rc})")
print("collection OK without scipy")
EOF

echo "== smoke 2/9: parallel-analysis worker invariance (n_workers=2 pool) =="
python -m pytest -x -q tests/unit/test_hpc.py::TestParallelAnalysis

echo "== smoke 3/9: backend suite under REPRO_ARRAY_BACKEND=mock-device =="
# Prove the env-var resolution path itself in a fresh process (the
# backend-parametrized fixture clears the env var to control its own
# selection, so this assertion is the part the suite below cannot cover).
REPRO_ARRAY_BACKEND=mock-device python -c "
from repro.utils.xp import default_backend_name, resolve_backend
assert default_backend_name() == 'mock-device', default_backend_name()
assert resolve_backend(None).name == 'mock-device'
assert resolve_backend('auto').name == 'mock-device'
print('REPRO_ARRAY_BACKEND resolution OK')"
# Run the kernel-equivalence files WITHOUT a marker filter: the
# backend-parametrized tests cover every backend explicitly, while the
# unparametrized tests construct their kernels with backend=None and
# therefore really run on the env-selected mock-device default.
REPRO_ARRAY_BACKEND=mock-device python -m pytest -x -q \
    tests/unit/test_xp_backend.py tests/unit/test_kernels.py \
    tests/unit/test_forecast_kernels.py

echo "== smoke 4/9: static xp discipline in routed kernel modules =="
python scripts/check_xp_discipline.py

echo "== smoke 5/9: BENCH_*.json schema sanity =="
python - <<'EOF'
import json

SPECS = {
    "BENCH_kernels.json": dict(
        required=["benchmark", "created_unix", "sections",
                  "letkf", "letkf_sharded", "shard_payloads",
                  "noise_pool", "eigh_blocked",
                  "ensf", "ensf_cases"],
        notes=[("letkf_sharded", "speedup_note"), ("shard_payloads", "note"),
               ("noise_pool", "note"), ("eigh_blocked", "note")],
    ),
    "BENCH_forecast.json": dict(
        required=["benchmark", "created_unix", "sections", "fft_backend",
                  "forecast_step", "forecast_step_cases", "engine_overhead",
                  "retry_overhead", "osse_128", "residency", "speedup_note"],
        notes=[("speedup_note",), ("engine_overhead", "note"),
               ("retry_overhead", "note"), ("residency", "note")],
    ),
}
for path, spec in SPECS.items():
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    missing = [key for key in spec["required"] if key not in payload]
    if missing:
        raise SystemExit(f"{path}: missing required keys {missing}")
    for keypath in spec["notes"]:
        node = payload
        for key in keypath:
            node = node[key]
        if not (isinstance(node, str) and node.strip()):
            raise SystemExit(f"{path}: speedup note at {'/'.join(keypath)} is empty")
    if "array_backend" in payload and not str(payload["array_backend"]).strip():
        raise SystemExit(f"{path}: array_backend recorded but empty")
print("BENCH schema OK")
EOF

echo "== smoke 6/9: streaming scenario end-to-end + checkpoint/kill/resume =="
python - <<'EOF'
import os
import tempfile

import numpy as np

from repro.core.observations import IdentityObservation, ObservationScenario, coverage_windows
from repro.da.cycling import OSSEConfig, run_osse
from repro.core.ensf import EnSF, EnSFConfig
from repro.models.lorenz96 import Lorenz96
from repro.workflow.engine import EngineCheckpoint

DIM = 40
model = Lorenz96(dim=DIM)
truth0 = model.spinup(300, rng=0)
operator = IdentityObservation(DIM, obs_error_var=0.5)
config = OSSEConfig(n_cycles=10, steps_per_cycle=4, ensemble_size=10, seed=17)
# Degraded streaming network: rotating half-domain coverage windows, each
# scheduled measurement lost with 30% probability.
scenario = ObservationScenario(
    name="dropout+partial",
    dropout=0.3,
    operators=coverage_windows(DIM, 2, obs_error_var=0.5),
)

def run(**kwargs):
    return run_osse(
        model, model, EnSF(EnSFConfig(n_sde_steps=10), rng=1), operator,
        truth0, config, scenario=scenario, **kwargs,
    )

with tempfile.TemporaryDirectory() as tmp:
    path = os.path.join(tmp, "engine.ckpt")
    # checkpoint_every=7 over 10 cycles => exactly one rolling write, at
    # cycle 7, mid-stream.
    full = run(checkpoint_every=7, checkpoint_path=path)
    assert np.isfinite(full.analysis_rmse).all()
    ckpt = EngineCheckpoint.load(path)
    assert ckpt.next_cycle == 7, ckpt.next_cycle
    # "Kill" at cycle 7: fresh driver + filter objects resume from disk.
    resumed = run(resume=path)
assert np.array_equal(resumed.analysis_mean_final, full.analysis_mean_final)
assert np.array_equal(resumed.analysis_rmse, full.analysis_rmse)
print("scenario run OK; checkpoint/kill/resume bit-identical")
EOF

echo "== smoke 7/9: recorded fault-sequence replay (REPRO_FAULT_PLAN) =="
python - <<'EOF'
import os
import tempfile

import numpy as np

from repro.core.observations import IdentityObservation, ObservationQC
from repro.da.cycling import OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.hpc.ensemble_parallel import EnsembleExecutor
from repro.models.lorenz96 import Lorenz96
from repro.utils.faults import ENV_FAULT_PLAN
from repro.utils.grid import Grid2D

DIM = 40
model = Lorenz96(dim=DIM)
truth0 = model.spinup(300, rng=0)
operator = IdentityObservation(DIM, obs_error_var=0.5)
config = OSSEConfig(n_cycles=8, steps_per_cycle=4, ensemble_size=10, seed=17)

# The recorded failure sequence: a worker crash at the 4th shard gather, a
# NaN-corrupted retransmission of the 3rd observation batch, and a torn
# final checkpoint — injected purely through the environment variable, so
# the drivers below run completely unmodified.
FAULT_SEQUENCE = (
    "worker-crash@executor:3;"
    "obs-corrupt@observations:2;"
    "checkpoint-truncate@checkpoint:3"
)

def letkf():
    return LETKF(
        Grid2D(10, 2, nlev=2),
        LETKFConfig(localization=LocalizationConfig(cutoff=4.0e6), shard_columns=8),
    )

def run(executor, **kwargs):
    return run_osse(
        model, model, letkf(), operator, truth0, config,
        executor=executor, qc=ObservationQC(), **kwargs,
    )

with tempfile.TemporaryDirectory() as tmp:
    base = os.path.join(tmp, "engine.ckpt")
    os.environ.pop(ENV_FAULT_PLAN, None)
    with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex:
        clean = run(ex)
    assert len(clean.fault_log) == 0, clean.fault_log.summary()

    os.environ[ENV_FAULT_PLAN] = FAULT_SEQUENCE
    with EnsembleExecutor(
        n_workers=2, min_members_per_worker=1, retry_backoff_s=0.0
    ) as ex:
        faulted = run(ex, checkpoint_every=2, checkpoint_path=base, keep_last=3)
        shard_log = ex.fault_log.summary()
    run_log = faulted.fault_log.summary()
    os.environ.pop(ENV_FAULT_PLAN, None)

    # Every injected fault was hit and healed...
    assert shard_log.get("retry", 0) >= 1, shard_log
    assert shard_log.get("pool-rebuild", 0) >= 1, shard_log
    assert run_log.get("obs-corrupt") == 1, run_log
    assert run_log.get("qc-reject") == 1, run_log
    assert run_log.get("checkpoint-truncate") == 1, run_log
    # ...with exact-zero deltas versus the clean run.
    assert np.array_equal(faulted.analysis_rmse, clean.analysis_rmse)
    assert np.array_equal(faulted.forecast_rmse, clean.forecast_rmse)
    assert np.array_equal(faulted.analysis_mean_final, clean.analysis_mean_final)

    # resume="auto" must walk past the torn newest ring member and land on
    # the same trajectory, bit for bit.
    resumed = run(
        None, resume="auto", checkpoint_every=2, checkpoint_path=base, keep_last=3
    )
    assert resumed.fault_log.summary().get("checkpoint-fallback") == 1
    assert np.array_equal(resumed.analysis_rmse, clean.analysis_rmse)
print("fault replay OK: all recoveries logged, RMSE deltas exactly zero")
EOF

echo "== smoke 8/9: experiment-service chaos soak (kill + restart + bit-identity + status polling) =="
python scripts/chaos_soak.py

echo "== smoke 9/9: tier-1 suite with --durations=10 =="
exec python -m pytest -x -q --durations=10 "$@"
