"""Chaos soak for the experiment service (scripts/smoke.sh step 7).

Orchestrates three child processes over one shared campaign journal:

1. **kill** — submits a 6-job priority sweep and supervises it with
   ``REPRO_FAULT_PLAN=service-kill@scheduler:<N>``: the N-th journal write
   hard-kills the process (``os._exit(137)``) mid-campaign, exactly like a
   node failure or OOM kill.
2. **finish** — a fresh process, no fault plan, same journal: recovery
   requeues every non-terminal job with ``resume=True`` and runs the
   campaign to completion from the engine checkpoints.
3. **clean** — the identical sweep against a separate journal with no
   faults at all.

Each child also serves the HTTP status frontend and publishes its port to
a sidecar file next to the journal; the orchestrator polls ``GET /jobs``
throughout the soak.  Connection errors are expected (the service spends
time dead between its lives) but every response that does land must be
**strict JSON** — a ``NaN``/``Infinity`` token anywhere in a status body
fails the soak.

The soak passes iff the killed-and-restarted campaign ends with every job
``done`` and RMSE histories **bit-identical** to the clean sweep — the
service's whole durability contract in one assertion.

Usage: python scripts/chaos_soak.py            (orchestrator)
       python scripts/chaos_soak.py run <journal> [--expect-kill]   (child)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

N_JOBS = 6
RUNNER = "repro.workflow.scheduler:lorenz96_ensf_job"
PARAMS = {"dim": 12, "n_cycles": 12, "ensemble_size": 8, "n_sde_steps": 6}
# Scheduler-site occurrences count journal writes.  The 6 submissions are
# writes 0-5; write 9 lands mid-campaign with jobs both finished, running
# and still queued — the interesting kill point.
KILL_SPEC = "service-kill@scheduler:9,code=137"


def _child_run(journal: Path, expect_kill: bool) -> None:
    from repro.workflow import ExperimentService, ServiceConfig

    config = ServiceConfig(max_running=2, retry_backoff_s=0.05, poll_s=0.02)
    journal.parent.mkdir(parents=True, exist_ok=True)
    with ExperimentService(journal, config=config) as svc:
        server = svc.serve_status()
        (journal.parent / "status.port").write_text(str(server.port))
        for i in range(N_JOBS):
            name = f"soak-{i:02d}"
            if name not in svc.status():
                svc.submit(name, RUNNER, params=dict(PARAMS, seed=i), priority=i % 3)
        states = svc.run_until_complete(timeout=600.0)
        if expect_kill:
            raise SystemExit(
                f"service-kill never fired; campaign finished cleanly: {states}"
            )
        payload = {
            "states": states,
            "rmse": {name: svc.result(name)["analysis_rmse"] for name in states},
        }
    print(json.dumps(payload))


def _reject_nonstrict(token):
    raise SystemExit(f"status frontend emitted non-strict JSON token {token!r}")


def _poll_status(port_file: Path, polls: list) -> None:
    """One ``GET /jobs`` against the child's status frontend, if reachable.

    Connection failures are part of the soak (the port file may be stale
    from a killed life, or the service not up yet); a response that *does*
    arrive must parse as strict JSON, with non-strict tokens fatal.
    """
    try:
        port = int(port_file.read_text())
    except (OSError, ValueError):
        return
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/jobs", timeout=2) as resp:
            body = resp.read()
    except (urllib.error.URLError, OSError):
        return
    payload = json.loads(body.decode("utf-8"), parse_constant=_reject_nonstrict)
    polls.append(payload["counts"])


def _spawn(
    journal: Path, *, fault_plan: str | None, polls: list
) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop("REPRO_FAULT_PLAN", None)
    args = [sys.executable, os.path.abspath(__file__), "run", str(journal)]
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
        args.append("--expect-kill")
    proc = subprocess.Popen(
        args, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    port_file = journal.parent / "status.port"
    while proc.poll() is None:
        _poll_status(port_file, polls)
        time.sleep(0.05)
    stdout, stderr = proc.communicate()
    return subprocess.CompletedProcess(args, proc.returncode, stdout, stderr)


def main() -> None:
    if len(sys.argv) > 1 and sys.argv[1] == "run":
        _child_run(Path(sys.argv[2]), expect_kill="--expect-kill" in sys.argv[3:])
        return

    with tempfile.TemporaryDirectory() as tmp:
        chaos_journal = Path(tmp) / "chaos" / "journal.json"
        clean_journal = Path(tmp) / "clean" / "journal.json"

        polls: list = []
        killed = _spawn(chaos_journal, fault_plan=KILL_SPEC, polls=polls)
        if killed.returncode != 137:
            sys.stderr.write(killed.stdout + killed.stderr)
            raise SystemExit(
                f"expected the fault plan to kill the campaign with exit 137, "
                f"got {killed.returncode}"
            )
        print(f"campaign killed mid-flight (exit {killed.returncode}) -- restarting")

        finished = _spawn(chaos_journal, fault_plan=None, polls=polls)
        if finished.returncode != 0:
            sys.stderr.write(finished.stdout + finished.stderr)
            raise SystemExit(f"restarted campaign failed (exit {finished.returncode})")
        chaos = json.loads(finished.stdout.strip().splitlines()[-1])

        clean_run = _spawn(clean_journal, fault_plan=None, polls=polls)
        if clean_run.returncode != 0:
            sys.stderr.write(clean_run.stdout + clean_run.stderr)
            raise SystemExit(f"clean sweep failed (exit {clean_run.returncode})")
        clean = json.loads(clean_run.stdout.strip().splitlines()[-1])

    expected = {f"soak-{i:02d}": "done" for i in range(N_JOBS)}
    if chaos["states"] != expected:
        raise SystemExit(f"restarted campaign did not finish every job: {chaos['states']}")
    if chaos["rmse"] != clean["rmse"]:
        diverged = sorted(
            name for name in clean["rmse"] if chaos["rmse"].get(name) != clean["rmse"][name]
        )
        raise SystemExit(f"RMSE diverged from the clean sweep for: {diverged}")
    if not polls:
        raise SystemExit(
            "status frontend was never successfully polled during the soak"
        )
    print(
        f"chaos soak OK: {N_JOBS} jobs killed+restarted, all done, "
        f"RMSE bit-identical to the clean sweep; {len(polls)} strict-JSON "
        f"status polls landed across the kill/restart"
    )


if __name__ == "__main__":
    main()
