"""Fig. 9 — scaling of ViT training to 1024 GPUs for DDP / DeepSpeed / FSDP."""

from repro.hpc.ddp import DataParallel
from repro.hpc.fsdp import FSDPParallel
from repro.hpc.scaling import strong_scaling_study
from repro.hpc.zero import ZeROParallel
from repro.surrogate.presets import TABLE_II_PRESETS

MB = 2.0**20
GPU_COUNTS = [8, 64, 256, 1024]


def test_fig9_strong_scaling(benchmark, report):
    strategies = {
        "DDP": DataParallel(bucket_bytes=200 * MB),
        "DS-ZeRO1 (200MB bucket)": ZeROParallel(1, bucket_bytes=200 * MB),
        "DS-ZeRO1 (500MB bucket)": ZeROParallel(1, bucket_bytes=500 * MB),
        "DS-ZeRO2": ZeROParallel(2, bucket_bytes=200 * MB),
        "FSDP full_shard": FSDPParallel("full_shard"),
        "FSDP shard_grad_op": FSDPParallel("shard_grad_op"),
    }

    def compute():
        results = {}
        for size, cfg in TABLE_II_PRESETS.items():
            results[size] = strong_scaling_study(cfg, strategies, GPU_COUNTS)
        return results

    results = benchmark(compute)

    rows = []
    eff_at_1024 = {}
    for size, points in results.items():
        for p in points:
            if p.n_gpus == 1024:
                eff_at_1024[(size, p.strategy)] = p.efficiency
                rows.append(
                    {"input": f"{size}^2", "strategy": p.strategy, "eff_1024": round(p.efficiency, 3)}
                )
    report("Fig. 9: scaling efficiency at 1024 GPUs", rows)

    tuned = "DS-ZeRO1 (500MB bucket)"
    # The 128² / 1.2B configuration scales best (paper: ~86%).
    assert eff_at_1024[(128, tuned)] > eff_at_1024[(64, tuned)]
    assert eff_at_1024[(128, tuned)] > eff_at_1024[(256, tuned)]
    assert 0.80 <= eff_at_1024[(128, tuned)] <= 0.95
    # Tuning the DeepSpeed bucket size from 200 MB to ~500 MB improves the 256²
    # model (paper: back to ~85%).
    assert eff_at_1024[(256, tuned)] > eff_at_1024[(256, "DS-ZeRO1 (200MB bucket)")]
    assert eff_at_1024[(256, tuned)] >= 0.75
    # Tuned DeepSpeed ZeRO outperforms FSDP for the large model, and
    # full_shard pays for its extra parameter all-gathers.
    assert eff_at_1024[(256, tuned)] > eff_at_1024[(256, "FSDP full_shard")]
    assert eff_at_1024[(256, "FSDP shard_grad_op")] > eff_at_1024[(256, "FSDP full_shard")]
