"""Table I — FSDP ↔ ZeRO memory-partitioning taxonomy and per-GPU footprints."""

from repro.hpc.memory import STRATEGY_TABLE, ShardingStrategy, TrainingMemoryModel
from repro.surrogate.flops import vit_parameter_count
from repro.surrogate.presets import TABLE_II_PRESETS


def test_table1_strategy_memory(benchmark, report):
    model = TrainingMemoryModel()
    params = vit_parameter_count(TABLE_II_PRESETS[256])

    def compute():
        rows = []
        for strategy in ShardingStrategy:
            info = STRATEGY_TABLE[strategy]
            rows.append(
                {
                    "strategy": strategy.value,
                    "shards": sorted(info["shards"]),
                    "zero_equivalent": getattr(info["zero_equivalent"], "value", None),
                    "per_gpu_gb_at_64": round(model.per_gpu_bytes(params, strategy, 64) / 2**30, 2),
                }
            )
        return rows

    rows = benchmark(compute)
    report("Table I: memory partitioning strategies (2.5B-parameter ViT, 64 GPUs)", rows)
    by_name = {r["strategy"]: r for r in rows}
    # Table I correspondences and the expected memory ordering.
    assert by_name["fsdp_shard_grad_op"]["zero_equivalent"] == "zero_stage2"
    assert by_name["fsdp_full_shard"]["zero_equivalent"] == "zero_stage3"
    assert (
        by_name["ddp"]["per_gpu_gb_at_64"]
        > by_name["zero_stage1"]["per_gpu_gb_at_64"]
        > by_name["zero_stage3"]["per_gpu_gb_at_64"]
    )
