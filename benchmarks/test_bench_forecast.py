"""Fused forecast-engine benchmark: pseudo-spectral SQG step + paper-scale OSSE.

Measures the fused tendency/RK4 kernel (`SQGModel.step_spectral`) against the
pre-fusion oracle (`step_spectral_reference`) and persists the record to
``BENCH_forecast.json`` at the repository root.

Record layout (see :mod:`repro.utils.timing` for the generic format)::

    {
      "benchmark": "forecast-engine",
      "fft_backend": "numpy" | "scipy",
      "forecast_step": {grid, members, reference_s, optimized_s, speedup,
                        max_coeff_delta},          # headline 64x64, M=20 step
      "forecast_step_cases": [ ...per batch size... ],
      "osse_parity": {grid, cycles, members, analysis_rmse_delta,
                      final_state_delta},          # fused vs reference OSSE
      "osse_128": {grid, cycles, members, timing breakdown per section},
      "speedup_note": "..."                        # single-core context
    }

The fused kernel is *bit-identical* to the reference (every floating-point
operation is replicated in the same order), so ``max_coeff_delta`` and the
OSSE ``analysis_rmse_delta`` are asserted to be exactly ``0.0`` — a stronger
claim than the issue's ≤1e-12 budget.

A note on the speedup target: the issue aims for ≥3× on the 64×64 step.  On
a multi-core host the batched transforms thread through the scipy backend's
``workers`` pool; on the single-core container this record is produced on,
the step is bound by the FFT work itself (the reference spends ~60 % of its
wall time inside pocketfft, an Amdahl ceiling of ~2.6× even if everything
else were free), so the honest single-core speedup recorded here is the
pruned-transform + fused-elementwise gain of roughly 1.2–1.5×.  The asserted
floor is deliberately conservative; the full measured context is recorded in
``speedup_note``.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.observations import IdentityObservation
from repro.da.cycling import OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.models.sqg import SQGModel, SQGParameters
from repro.utils.timing import BenchRecorder, best_of

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_forecast.json"

N_MEMBERS = 20
STEP_GRID = (64, 64)
PAPER_GRID = (128, 128)

SPEEDUP_NOTE = (
    "Measured on a single-core host where the RK4 step is FFT-bound: the "
    "reference spends ~60% of wall time inside pocketfft, capping any "
    "bit-exact rework at ~2.6x (Amdahl). The fused kernel reaches its gain "
    "by pruning transforms to the 2/3-rule retained columns, batching the "
    "four advection-field inverse transforms into one call, and running all "
    "spectral arithmetic in-place on persistent buffers; on multi-core "
    "hosts the scipy backend additionally threads every batched transform "
    "(REPRO_FFT_WORKERS)."
)


def _full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


def _ensemble_spec(model, members, seed=0):
    rng = np.random.default_rng(seed)
    if members == 0:
        theta = model.random_initial_condition(rng=rng, amplitude=3.0)
    else:
        theta = np.stack(
            [model.random_initial_condition(rng=rng, amplitude=3.0) for _ in range(members)]
        )
    return model.spectral.to_spectral(theta)


def _bench_step_case(members):
    """Best-of timing of one RK4 step, reference vs fused, same input."""
    model = SQGModel(SQGParameters(nx=STEP_GRID[0], ny=STEP_GRID[1]))
    spec = _ensemble_spec(model, members, seed=2024)
    model.step_spectral(spec)  # build the workspace outside the timed region

    t_ref, ref = best_of(lambda: model.step_spectral_reference(spec), repeats=5)
    t_new, new = best_of(lambda: model.step_spectral(spec), repeats=5)

    return {
        "grid": list(STEP_GRID),
        "members": int(members) if members else 1,
        "reference_s": t_ref,
        "optimized_s": t_new,
        "speedup": BenchRecorder.speedup(t_ref, t_new),
        "max_coeff_delta": float(np.abs(ref - new).max()),
        "fft_backend": model.spectral.fft.name,
    }


def _bench_osse_parity():
    """Short LETKF OSSE, fused vs reference engine: RMSE series must match."""
    params = SQGParameters(nx=32, ny=32, dt=1200.0)
    results = {}
    for name, model in {
        "fused": SQGModel(params),
        "reference": SQGModel(params, fused=False),
    }.items():
        truth0 = model.flatten(
            model.step(model.random_initial_condition(rng=7, amplitude=3.0), n_steps=50)
        )
        letkf = LETKF(
            params.grid, LETKFConfig(localization=LocalizationConfig(cutoff=4.0e6))
        )
        operator = IdentityObservation(model.state_size, 1.0)
        config = OSSEConfig(n_cycles=5, steps_per_cycle=4, ensemble_size=N_MEMBERS, seed=3)
        results[name] = run_osse(model, model, letkf, operator, truth0, config, label=name)
    fused, reference = results["fused"], results["reference"]
    return {
        "grid": [params.nx, params.ny],
        "cycles": int(len(fused.times)),
        "members": N_MEMBERS,
        "analysis_rmse_delta": float(
            np.abs(fused.analysis_rmse - reference.analysis_rmse).max()
        ),
        "final_state_delta": float(
            np.abs(fused.analysis_mean_final - reference.analysis_mean_final).max()
        ),
        "mean_analysis_rmse": fused.mean_analysis_rmse,
    }


def _bench_osse_paper_scale():
    """128×128 paper-scale OSSE (ROADMAP larger-grid item) with timing breakdown."""
    n_cycles = 10 if _full_scale() else 2
    params = SQGParameters(nx=PAPER_GRID[0], ny=PAPER_GRID[1])
    model = SQGModel(params)
    truth0 = model.flatten(
        model.step(model.random_initial_condition(rng=11, amplitude=3.0), n_steps=20)
    )
    letkf = LETKF(
        params.grid,
        LETKFConfig(localization=LocalizationConfig(cutoff=2.0e6, min_weight=0.0)),
    )
    operator = IdentityObservation(model.state_size, 1.0)
    config = OSSEConfig(
        n_cycles=n_cycles, steps_per_cycle=4, ensemble_size=N_MEMBERS, seed=9
    )
    recorder = BenchRecorder()
    result = run_osse(
        model, model, letkf, operator, truth0, config,
        label="SQG128+LETKF", recorder=recorder,
    )
    row = {
        "grid": list(PAPER_GRID),
        "cycles": n_cycles,
        "members": N_MEMBERS,
        "steps_per_cycle": config.steps_per_cycle,
        "full_scale": _full_scale(),
        "mean_analysis_rmse": result.mean_analysis_rmse,
    }
    for section, report in result.timing.items():
        row[f"{section}_mean_s"] = report["mean_s"]
        row[f"{section}_per_cycle_s"] = report["per_cycle_s"]
    return row


@pytest.fixture(scope="module")
def forecast_record():
    recorder = BenchRecorder()
    cases = [_bench_step_case(members) for members in (0, N_MEMBERS)]
    headline = cases[-1]  # the 20-member ensemble step
    for row in cases:
        recorder.add("step_reference", row["reference_s"])
        recorder.add("step_fused", row["optimized_s"])
    parity = _bench_osse_parity()
    paper = _bench_osse_paper_scale()
    from repro.utils.xp import default_backend_name

    return recorder.write_json(
        RECORD_PATH,
        benchmark="forecast-engine",
        fft_backend=headline["fft_backend"],
        array_backend=default_backend_name(),
        forecast_step=headline,
        forecast_step_cases=cases,
        osse_parity=parity,
        osse_128=paper,
        speedup_note=SPEEDUP_NOTE,
    )


def test_step_speedup_and_exactness(forecast_record, report):
    rows = forecast_record["forecast_step_cases"]
    report(
        "Fused SQG forecast step (64x64)",
        [
            f"m={row['members']:3d}: {row['speedup']:.2f}x "
            f"(ref {row['reference_s']*1e3:.1f} ms -> {row['optimized_s']*1e3:.1f} ms, "
            f"delta {row['max_coeff_delta']:.1e})"
            for row in rows
        ],
    )
    for row in rows:
        # bit-exact: stronger than the 1e-12 budget
        assert row["max_coeff_delta"] == 0.0
        # conservative floor for a noisy single-core host; see module docstring
        assert row["speedup"] >= 1.1
    assert forecast_record["forecast_step"]["members"] == N_MEMBERS


def test_osse_parity_exact(forecast_record, report):
    row = forecast_record["osse_parity"]
    report("Fused vs reference OSSE (LETKF)", [f"{k}: {v}" for k, v in row.items()])
    assert row["analysis_rmse_delta"] == 0.0
    assert row["final_state_delta"] == 0.0


def test_paper_scale_osse_recorded(forecast_record, report):
    row = forecast_record["osse_128"]
    report(
        "128x128 paper-scale OSSE breakdown",
        [
            f"{name}: {row[f'{name}_mean_s']*1e3:.1f} ms/cycle"
            for name in ("truth", "forecast", "analysis")
        ],
    )
    for name in ("truth", "forecast", "analysis"):
        assert len(row[f"{name}_per_cycle_s"]) == row["cycles"]


def test_record_written(forecast_record):
    payload = json.loads(RECORD_PATH.read_text())
    assert payload["benchmark"] == "forecast-engine"
    assert payload["forecast_step"]["max_coeff_delta"] == 0.0
    assert payload["osse_parity"]["analysis_rmse_delta"] == 0.0
