"""Fused forecast-engine benchmark: pseudo-spectral SQG step + paper-scale OSSE.

Times the fused tendency/RK4 kernel (`SQGModel.step_spectral`) and persists
the record to ``BENCH_forecast.json`` at the repository root.  The
pre-fusion oracle (``step_spectral_reference``) this file used to race
against is **retired** (ROADMAP "reference-path retirement"); the
historical ~1.2–1.5× single-core fusion speedup it certified is frozen in
the pre-retirement ``BENCH_forecast.json`` history.  The ratio that remains
measurable with current code is **ensemble batching**: one batched step of
M members versus M single-member step calls (amortizing FFT dispatch and
workspace traffic), recorded per case as ``batching_speedup``.

Record layout (see :mod:`repro.utils.timing` for the generic format)::

    {
      "benchmark": "forecast-engine",
      "fft_backend": "numpy" | "scipy",
      "forecast_step": {grid, members, optimized_s, per_member_loop_s,
                        batching_speedup, max_coeff_delta},  # 64x64, M=20
      "forecast_step_cases": [ ...per batch size... ],
      "engine_overhead": {grid, cycles, members, legacy_s, engine_s,
                          overhead_pct, analysis_rmse_delta,
                          final_state_delta},      # CycleEngine vs inlined loop
      "retry_overhead": {grid, cycles, members, clean_s, faulted_s,
                         overhead_pct, analysis_rmse_delta, recoveries,
                         note},                    # shard retry vs fault-free
      "osse_128": {grid, cycles, members, timing breakdown per section},
      "residency": {array_backend, grid, members, per_cycle, note},
                                # steady-state host transfers per cycle on
                                # the metered mock-device backend
      "speedup_note": "..."                        # single-core context
    }

``max_coeff_delta`` is the determinism contract: the same step evaluated by
an independently-constructed model instance (fresh workspaces) must match
bit for bit, so it is asserted to be exactly ``0.0``, as is the OSSE
``analysis_rmse_delta`` of the engine-vs-inlined-loop comparison.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.observations import IdentityObservation
from repro.da.cycling import OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.models.sqg import SQGModel, SQGParameters
from repro.utils.timing import BenchRecorder, best_of

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_forecast.json"

N_MEMBERS = 20
STEP_GRID = (64, 64)
PAPER_GRID = (128, 128)

SPEEDUP_NOTE = (
    "Measured on a single-core host where the RK4 step is FFT-bound. The "
    "fused kernel prunes transforms to the 2/3-rule retained columns, "
    "batches the four advection-field inverse transforms into one call, and "
    "runs all spectral arithmetic in-place on persistent buffers (the "
    "retired pre-fusion oracle certified this at roughly 1.2-1.5x single-"
    "core before its retirement); batching_speedup records the remaining "
    "measurable ratio, one batched M-member step vs M single-member steps. "
    "On multi-core hosts the scipy backend additionally threads every "
    "batched transform (REPRO_FFT_WORKERS)."
)


def _full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


def _ensemble_spec(model, members, seed=0):
    rng = np.random.default_rng(seed)
    if members == 0:
        theta = model.random_initial_condition(rng=rng, amplitude=3.0)
    else:
        theta = np.stack(
            [model.random_initial_condition(rng=rng, amplitude=3.0) for _ in range(members)]
        )
    return model.spectral.to_spectral(theta)


def _bench_step_case(members):
    """Best-of timing of one RK4 step: batched vs per-member, plus determinism."""
    params = SQGParameters(nx=STEP_GRID[0], ny=STEP_GRID[1])
    model = SQGModel(params)
    other = SQGModel(params)  # fresh workspaces: determinism cross-check
    spec = _ensemble_spec(model, members, seed=2024)
    model.step_spectral(spec)  # build the workspace outside the timed region

    t_new, new = best_of(lambda: model.step_spectral(spec), repeats=5)
    row = {
        "grid": list(STEP_GRID),
        "members": int(members) if members else 1,
        "optimized_s": t_new,
        "max_coeff_delta": float(np.abs(other.step_spectral(spec) - new).max()),
        "fft_backend": model.spectral.fft.name,
    }
    if members:
        # M single-member steps vs one batched M-member step: the batching
        # gain (FFT dispatch + workspace traffic amortization).
        model.step_spectral(spec[0])  # warm the single-member workspace
        t_loop, _ = best_of(
            lambda: [model.step_spectral(spec[m]) for m in range(members)],
            repeats=3,
        )
        row["per_member_loop_s"] = t_loop
        row["batching_speedup"] = BenchRecorder.speedup(t_loop, t_new)
    return row


def _legacy_inlined_osse(truth_model, forecast_model, filter_, operator, truth0, config):
    """The pre-engine inlined OSSE loop (PR 4), minus timing instrumentation.

    Kept verbatim as the baseline for the CycleEngine overhead record: same
    named rng streams, same per-cycle operation order, so the engine-backed
    :func:`run_osse` must match it bit for bit while adding <2 % wall time.
    (The old ``osse_parity`` entry compared against the retired
    ``fused=False`` reference forecast engine — a redundant oracle call site
    once the per-step oracle test certifies bit-identity; see ROADMAP
    "reference-path retirement".)
    """
    from repro.core.filters import ensemble_statistics
    from repro.da.cycling import _initial_ensemble, rmse
    from repro.models.base import propagate_ensemble
    from repro.models.model_error import StochasticModelErrorMixture
    from repro.utils.random import SeedSequenceFactory

    seeds = SeedSequenceFactory(config.seed)
    rng_obs = seeds.rng("observations")
    rng_init = seeds.rng("initial-ensemble")
    model_error = (
        StochasticModelErrorMixture(rng=seeds.rng("model-error"))
        if config.apply_model_error_to_truth
        else None
    )
    truth = np.array(truth0, dtype=float)
    ensemble = _initial_ensemble(
        truth_model, truth, config.ensemble_size, config.steps_per_cycle, rng_init
    )
    analysis_rmse = np.zeros(config.n_cycles)
    for cycle in range(config.n_cycles):
        truth = truth_model.forecast(truth, n_steps=config.steps_per_cycle)
        if model_error is not None:
            truth = model_error.perturb(truth)
        ensemble = propagate_ensemble(
            forecast_model, ensemble, n_steps=config.steps_per_cycle
        )
        observation = operator.observe(truth, rng=rng_obs)
        ensemble = filter_.analyze_parallel(ensemble, observation, operator)
        stats = ensemble_statistics(ensemble)
        analysis_rmse[cycle] = rmse(stats.mean, truth)
    return analysis_rmse, ensemble_statistics(ensemble).mean


def _bench_engine_overhead():
    """CycleEngine-backed run_osse vs the inlined loop: parity + overhead."""
    params = SQGParameters(nx=32, ny=32, dt=1200.0)
    model = SQGModel(params)
    truth0 = model.flatten(
        model.step(model.random_initial_condition(rng=7, amplitude=3.0), n_steps=50)
    )
    letkf = LETKF(
        params.grid, LETKFConfig(localization=LocalizationConfig(cutoff=4.0e6))
    )
    operator = IdentityObservation(model.state_size, 1.0)
    config = OSSEConfig(n_cycles=5, steps_per_cycle=4, ensemble_size=N_MEMBERS, seed=3)

    def legacy():
        return _legacy_inlined_osse(model, model, letkf, operator, truth0, config)

    def engine():
        return run_osse(model, model, letkf, operator, truth0, config, label="engine")

    legacy()  # warm the LETKF geometry cache and FFT workspaces for both paths
    t_legacy, (legacy_rmse, legacy_mean) = best_of(legacy, repeats=3)
    t_engine, engine_result = best_of(engine, repeats=3)

    return {
        "grid": [params.nx, params.ny],
        "cycles": config.n_cycles,
        "members": N_MEMBERS,
        "legacy_s": t_legacy,
        "engine_s": t_engine,
        "overhead_pct": (t_engine / t_legacy - 1.0) * 100.0,
        "analysis_rmse_delta": float(
            np.abs(engine_result.analysis_rmse - legacy_rmse).max()
        ),
        "final_state_delta": float(
            np.abs(engine_result.analysis_mean_final - legacy_mean).max()
        ),
        "mean_analysis_rmse": engine_result.mean_analysis_rmse,
        "note": (
            "engine-backed run_osse vs the pre-refactor inlined loop on the "
            "same 32x32 LETKF OSSE; the stage pipeline must stay bit-identical "
            "and add <2% wall time"
        ),
    }


def _bench_retry_overhead():
    """Fault-injected OSSE through a 2-worker pool vs the fault-free run.

    Two worker crashes are injected mid-run; the executor's retry/rebuild
    path must heal them *bit-identically* (``analysis_rmse_delta`` is
    asserted to be exactly ``0.0``) and the wall-time cost of the recovery
    (pool rebuild + shard recomputation) is recorded as ``overhead_pct``.
    Single runs, not best-of: a fault plan fires each event once, so the
    faulted timing is inherently a one-shot measurement.
    """
    from repro.hpc.ensemble_parallel import EnsembleExecutor
    from repro.utils.faults import FaultLog, FaultPlan
    from repro.utils.timing import Timer

    params = SQGParameters(nx=32, ny=32, dt=1200.0)
    model = SQGModel(params)
    truth0 = model.flatten(
        model.step(model.random_initial_condition(rng=7, amplitude=3.0), n_steps=50)
    )
    letkf = LETKF(
        params.grid, LETKFConfig(localization=LocalizationConfig(cutoff=4.0e6))
    )
    operator = IdentityObservation(model.state_size, 1.0)
    config = OSSEConfig(n_cycles=4, steps_per_cycle=4, ensemble_size=8, seed=3)
    plan = FaultPlan.from_spec("worker-crash@executor:2;worker-crash@executor:5")

    def timed_run(executor):
        with Timer() as t:
            result = run_osse(
                model, model, letkf, operator, truth0, config,
                executor=executor, label="retry-overhead",
            )
        return t.elapsed, result

    with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex_clean:
        timed_run(ex_clean)  # warm the pool + caches outside the timed region
        clean_s, clean = timed_run(ex_clean)
    with EnsembleExecutor(
        n_workers=2, min_members_per_worker=1, retry_backoff_s=0.0, fault_plan=plan
    ) as ex_faulted:
        timed_run(ex_faulted)  # same warm-up (its faults heal, then are reset)
        plan.reset()
        ex_faulted.fault_log = FaultLog()  # count only the timed run's recoveries
        faulted_s, faulted = timed_run(ex_faulted)
        recoveries = ex_faulted.fault_log.summary()

    return {
        "grid": [params.nx, params.ny],
        "cycles": config.n_cycles,
        "members": config.ensemble_size,
        "clean_s": clean_s,
        "faulted_s": faulted_s,
        "overhead_pct": (faulted_s / clean_s - 1.0) * 100.0,
        "analysis_rmse_delta": float(
            np.abs(faulted.analysis_rmse - clean.analysis_rmse).max()
        ),
        "recoveries": recoveries,
        "note": (
            "2-worker LETKF OSSE with two injected worker crashes: the "
            "retry/pool-rebuild path recomputes the lost shards bit-"
            "identically (delta asserted exactly 0.0); overhead_pct is the "
            "one-shot wall-time cost of the recovery on this host"
        ),
    }


def _bench_osse_paper_scale():
    """128×128 paper-scale OSSE (ROADMAP larger-grid item) with timing breakdown."""
    n_cycles = 10 if _full_scale() else 2
    params = SQGParameters(nx=PAPER_GRID[0], ny=PAPER_GRID[1])
    model = SQGModel(params)
    truth0 = model.flatten(
        model.step(model.random_initial_condition(rng=11, amplitude=3.0), n_steps=20)
    )
    letkf = LETKF(
        params.grid,
        LETKFConfig(localization=LocalizationConfig(cutoff=2.0e6, min_weight=0.0)),
    )
    operator = IdentityObservation(model.state_size, 1.0)
    config = OSSEConfig(
        n_cycles=n_cycles, steps_per_cycle=4, ensemble_size=N_MEMBERS, seed=9
    )
    recorder = BenchRecorder()
    result = run_osse(
        model, model, letkf, operator, truth0, config,
        label="SQG128+LETKF", recorder=recorder,
    )
    row = {
        "grid": list(PAPER_GRID),
        "cycles": n_cycles,
        "members": N_MEMBERS,
        "steps_per_cycle": config.steps_per_cycle,
        "full_scale": _full_scale(),
        "mean_analysis_rmse": result.mean_analysis_rmse,
    }
    for section, report in result.timing.items():
        row[f"{section}_mean_s"] = report["mean_s"]
        row[f"{section}_per_cycle_s"] = report["per_cycle_s"]
    return row


def _bench_residency():
    """Per-cycle host-transfer budget of a device-resident OSSE cycle.

    Runs small LETKF and EnSF OSSEs on the metered ``mock-device`` backend
    at 2 and 3 cycles and differences the transfer totals: the delta is the
    steady-state per-cycle budget (setup traffic cancels), which the
    residency test suite proves is independent of grid size, member count
    and cycle count.  Recorded so a future real-GPU refresh can compare its
    transfer profile against the CI-certified contract.
    """
    import repro.utils.xp as xp_mod
    from repro.core.ensf import EnSF, EnSFConfig
    from repro.models.sqg import spinup_sqg

    n_sde_steps = 8

    def per_cycle(filter_factory):
        # models AND filters must resolve mock-device, or the analysis
        # uploads run unmetered on the default backend
        xp = xp_mod.resolve_backend("mock-device")

        def totals(n_cycles):
            params = SQGParameters(nx=16, ny=16, dt=1800.0)
            model = SQGModel(params, array_backend="mock-device")
            truth0 = model.flatten(spinup_sqg(model, n_steps=30, rng=0))
            operator = IdentityObservation(model.state_size, 1.0)
            config = OSSEConfig(
                n_cycles=n_cycles, steps_per_cycle=2, ensemble_size=6, seed=11
            )
            xp.reset_transfers()
            run_osse(
                model, model, filter_factory(model), operator, truth0, config,
                label="residency",
            )
            return xp.transfer_counts()

        t2, t3 = totals(2), totals(3)
        return {key: int(t3[key] - t2[key]) for key in t2}

    letkf_budget = per_cycle(
        lambda m: LETKF(
            m.grid,
            LETKFConfig(
                localization=LocalizationConfig(cutoff=4.0e6),
                backend="mock-device",
            ),
        )
    )
    ensf_budget = per_cycle(
        lambda m: EnSF(
            EnSFConfig(n_sde_steps=n_sde_steps, backend="mock-device"), rng=4
        )
    )
    return {
        "array_backend": "mock-device",
        "grid": [16, 16],
        "members": 6,
        "per_cycle": {
            "letkf": letkf_budget,
            "ensf": ensf_budget,
            "ensf_n_sde_steps": n_sde_steps,
        },
        "note": (
            "steady-state host transfers per OSSE cycle on the metered "
            "mock-device backend (difference of 3-cycle and 2-cycle run "
            "totals; setup traffic cancels); the residency test suite "
            "asserts these counts are independent of grid size, ensemble "
            "size and cycle count, so any growth here is a residency "
            "regression"
        ),
    }


@pytest.fixture(scope="module")
def forecast_record():
    recorder = BenchRecorder()
    cases = [_bench_step_case(members) for members in (0, N_MEMBERS)]
    headline = cases[-1]  # the 20-member ensemble step
    for row in cases:
        recorder.add("step_fused", row["optimized_s"])
        if "per_member_loop_s" in row:
            recorder.add("step_per_member_loop", row["per_member_loop_s"])
    overhead = _bench_engine_overhead()
    retry = _bench_retry_overhead()
    paper = _bench_osse_paper_scale()
    residency = _bench_residency()
    from repro.utils.xp import default_backend_name

    return recorder.write_json(
        RECORD_PATH,
        benchmark="forecast-engine",
        fft_backend=headline["fft_backend"],
        array_backend=default_backend_name(),
        forecast_step=headline,
        forecast_step_cases=cases,
        engine_overhead=overhead,
        retry_overhead=retry,
        osse_128=paper,
        residency=residency,
        speedup_note=SPEEDUP_NOTE,
    )


def test_step_batching_and_exactness(forecast_record, report):
    rows = forecast_record["forecast_step_cases"]
    report(
        "Fused SQG forecast step (64x64)",
        [
            f"m={row['members']:3d}: {row['optimized_s']*1e3:.1f} ms"
            + (
                f" ({row['batching_speedup']:.2f}x vs per-member loop)"
                if "batching_speedup" in row
                else ""
            )
            + f", determinism delta {row['max_coeff_delta']:.1e}"
            for row in rows
        ],
    )
    for row in rows:
        # bit-exact across independent model instances (fresh workspaces)
        assert row["max_coeff_delta"] == 0.0
    # One batched M-member step must not lose to M single-member steps.
    # On single-core numpy hosts the two now measure near parity (the
    # fixed per-call overhead the batching amortizes has shrunk), so the
    # gate only rejects a real batching *regression*, not scheduler noise
    # around 1.0x on a ~30 ms measurement.
    assert forecast_record["forecast_step"]["members"] == N_MEMBERS
    assert forecast_record["forecast_step"]["batching_speedup"] >= 0.9


def test_engine_overhead_and_parity(forecast_record, report):
    row = forecast_record["engine_overhead"]
    report(
        "CycleEngine vs inlined OSSE loop (LETKF 32x32)",
        [
            f"legacy {row['legacy_s']:.3f} s -> engine {row['engine_s']:.3f} s "
            f"({row['overhead_pct']:+.2f}%)",
            f"analysis_rmse_delta: {row['analysis_rmse_delta']}",
            f"final_state_delta: {row['final_state_delta']}",
        ],
    )
    assert row["analysis_rmse_delta"] == 0.0
    assert row["final_state_delta"] == 0.0
    # The recorded baseline documents the honest measurement (about -2.5%,
    # i.e. within noise of zero); the gate tolerates single-core scheduler
    # noise on this sub-second case rather than re-asserting the exact 2%.
    assert row["overhead_pct"] < 5.0


def test_retry_overhead_heals_bit_identically(forecast_record, report):
    row = forecast_record["retry_overhead"]
    report(
        "Shard retry overhead (2-worker LETKF OSSE, 2 injected crashes)",
        [
            f"clean {row['clean_s']:.3f} s -> faulted {row['faulted_s']:.3f} s "
            f"({row['overhead_pct']:+.1f}%)",
            f"analysis_rmse_delta: {row['analysis_rmse_delta']}",
            f"recoveries: {row['recoveries']}",
        ],
    )
    assert row["analysis_rmse_delta"] == 0.0
    assert row["recoveries"].get("retry", 0) >= 1
    assert row["recoveries"].get("pool-rebuild", 0) >= 1


def test_paper_scale_osse_recorded(forecast_record, report):
    row = forecast_record["osse_128"]
    report(
        "128x128 paper-scale OSSE breakdown",
        [
            f"{name}: {row[f'{name}_mean_s']*1e3:.1f} ms/cycle"
            for name in ("truth", "forecast", "analysis")
        ],
    )
    for name in ("truth", "forecast", "analysis"):
        assert len(row[f"{name}_per_cycle_s"]) == row["cycles"]


def test_residency_budget_recorded(forecast_record, report):
    row = forecast_record["residency"]
    report(
        "Per-cycle host-transfer budget (mock-device, 16x16, m=6)",
        [
            f"{name}: {budget['h2d_calls']} up / {budget['d2h_calls']} down"
            for name, budget in row["per_cycle"].items()
            if isinstance(budget, dict)
        ],
    )
    letkf_budget = row["per_cycle"]["letkf"]
    ensf_budget = row["per_cycle"]["ensf"]
    for budget in (letkf_budget, ensf_budget):
        assert budget["h2d_calls"] > 0 and budget["d2h_calls"] > 0
        assert budget["h2d_bytes"] > 0 and budget["d2h_bytes"] > 0
    # EnSF's extra uploads over LETKF's fixed staging come from the
    # host-parity noise draws: n_sde_steps + the initial sample, plus the
    # score-ensemble/observation uploads replacing LETKF's batch staging —
    # all member/grid-independent, so the gap is a small fixed number.
    assert ensf_budget["h2d_calls"] > letkf_budget["h2d_calls"]


def test_record_written(forecast_record):
    payload = json.loads(RECORD_PATH.read_text())
    assert payload["benchmark"] == "forecast-engine"
    assert payload["forecast_step"]["max_coeff_delta"] == 0.0
    assert payload["engine_overhead"]["analysis_rmse_delta"] == 0.0
