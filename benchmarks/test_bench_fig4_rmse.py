"""Fig. 4 — RMSE time series of SQG-only / ViT-only / SQG+LETKF / ViT+EnSF.

The default configuration is a reduced 32×32 / 20-cycle run (about half a
minute); set ``REPRO_FULL_SCALE=1`` for the paper's 64×64 / 300-cycle setup.
The assertions encode the paper's qualitative conclusions: free runs diverge,
LETKF is degraded by the unknown model error, and the proposed ViT+EnSF stays
accurate and stable throughout.
"""

import numpy as np

from benchmarks.conftest import full_scale
from repro.workflow.config import ExperimentConfig
from repro.workflow.experiments import run_four_experiments


def _config() -> ExperimentConfig:
    if full_scale():
        return ExperimentConfig.paper_scale()
    return ExperimentConfig()


def test_fig4_four_way_rmse(benchmark, report):
    comparison = benchmark.pedantic(
        lambda: run_four_experiments(_config()), rounds=1, iterations=1
    )
    rows = comparison.summary_rows()
    report("Fig. 4: analysis RMSE of the four experiments", rows)

    rmse = comparison.mean_rmse()
    final = comparison.final_rmse()
    # 1. Data assimilation is necessary: both DA systems beat both free runs.
    assert rmse["ViT+EnSF"] < min(rmse["SQG only"], rmse["ViT only"])
    assert rmse["SQG+LETKF"] < min(rmse["SQG only"], rmse["ViT only"])
    # 2. The proposed ViT+EnSF outperforms the SOTA SQG+LETKF baseline.
    assert rmse["ViT+EnSF"] < rmse["SQG+LETKF"]
    # 3. LETKF degrades as model error accumulates while EnSF stays stable:
    #    by the end of the experiment the gap has widened.
    assert final["ViT+EnSF"] < final["SQG+LETKF"]
    # 4. Free-run errors grow with time (chaotic error growth).
    sqg_only = comparison.results["SQG only"].analysis_rmse
    assert sqg_only[-1] > 1.5 * np.mean(sqg_only[: max(2, len(sqg_only) // 4)])
