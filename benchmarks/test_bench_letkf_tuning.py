"""Ablation — LETKF inflation/localization tuning and EnSF design choices.

The paper tunes LETKF's RTPS factor (0.3) and localization cut-off (2000 km)
in an error-free twin experiment and stresses that EnSF needs no such tuning.
This bench sweeps the LETKF parameters on a small twin experiment and also
ablates the EnSF damping function and pseudo-time resolution (the design
choices called out in DESIGN.md).
"""

import numpy as np

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.likelihood import ConstantDamping, CosineDamping, LinearDamping
from repro.core.observations import IdentityObservation
from repro.da.cycling import OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.models.sqg import SQGModel, SQGParameters, spinup_sqg


def _testbed():
    model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))
    truth0 = model.flatten(spinup_sqg(model, n_steps=400, rng=0))
    operator = IdentityObservation(model.state_size, obs_error_var=1.0)
    osse = OSSEConfig(n_cycles=5, steps_per_cycle=12, ensemble_size=10, seed=1,
                      apply_model_error_to_truth=False)
    return model, truth0, operator, osse


def test_letkf_tuning_sweep(benchmark, report):
    model, truth0, operator, osse = _testbed()

    def compute():
        rows = []
        for rtps in (0.0, 0.3, 0.9):
            for cutoff in (1.0e6, 2.0e6, 4.0e6):
                letkf = LETKF(
                    model.grid,
                    LETKFConfig(localization=LocalizationConfig(cutoff=cutoff), rtps_factor=rtps),
                )
                result = run_osse(model, model, letkf, operator, truth0, osse)
                rows.append({"rtps": rtps, "cutoff_km": cutoff / 1e3,
                             "mean_rmse": round(result.mean_analysis_rmse, 3)})
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("LETKF tuning sweep (twin experiment)", rows)
    rmses = [r["mean_rmse"] for r in rows]
    assert all(np.isfinite(rmses))
    # Tuning matters: the spread between the best and worst configuration is real.
    assert max(rmses) > 1.05 * min(rmses)


def test_ensf_design_ablation(benchmark, report):
    model, truth0, operator, osse = _testbed()

    def compute():
        rows = []
        for label, cfg in {
            "paper (linear damping, 100 steps)": EnSFConfig(n_sde_steps=100, damping=LinearDamping()),
            "cosine damping": EnSFConfig(n_sde_steps=100, damping=CosineDamping()),
            "constant damping": EnSFConfig(n_sde_steps=100, damping=ConstantDamping(1.0)),
            "coarse SDE (25 steps)": EnSFConfig(n_sde_steps=25),
            "minibatch J=5": EnSFConfig(n_sde_steps=100, minibatch=5),
        }.items():
            result = run_osse(model, model, EnSF(cfg, rng=2), operator, truth0, osse)
            rows.append({"variant": label, "mean_rmse": round(result.mean_analysis_rmse, 3)})
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("EnSF design-choice ablation", rows)
    # Every variant must remain stable (no divergence), echoing the paper's
    # "stable performance without any special tuning" claim.
    assert all(np.isfinite(r["mean_rmse"]) and r["mean_rmse"] < 20.0 for r in rows)
