"""Fig. 7 — runtime breakdown (compute / communication / IO) at 1024 GPUs."""

from repro.hpc.trainer_sim import DistributedTrainingSimulator, TrainingRunConfig
from repro.hpc.zero import ZeROParallel
from repro.surrogate.presets import TABLE_II_PRESETS


def test_fig7_runtime_breakdown(benchmark, report):
    simulator = DistributedTrainingSimulator()

    def compute():
        rows = []
        for size, cfg in TABLE_II_PRESETS.items():
            run = TrainingRunConfig(vit=cfg, n_gpus=1024)
            breakdown = simulator.step_breakdown(run, ZeROParallel(1))
            fractions = breakdown.fractions()
            rows.append(
                {
                    "input": f"{size}^2",
                    "compute_pct": round(100 * fractions["compute"], 1),
                    "communication_pct": round(100 * fractions["communication"], 1),
                    "io_pct": round(100 * fractions["io"], 1),
                    "step_seconds": round(breakdown.total, 3),
                }
            )
        return rows

    rows = benchmark(compute)
    report("Fig. 7: runtime percentage at 1024 GPUs (DeepSpeed ZeRO-1)", rows)

    by_size = {r["input"]: r for r in rows}
    # Training is dominated by computation + communication with negligible IO.
    for row in rows:
        assert row["io_pct"] < 15.0
        assert row["compute_pct"] + row["communication_pct"] > 80.0
    # 64² has a larger communication share than 128² despite the smaller model
    # (§IV-B(a)), and 256²'s doubled message volume raises its share again.
    assert by_size["64^2"]["communication_pct"] > by_size["128^2"]["communication_pct"]
    assert by_size["256^2"]["communication_pct"] > by_size["128^2"]["communication_pct"]
