"""Fig. 8 — RCCL collective bus bandwidth vs. message size and GPU count."""

import numpy as np

from repro.hpc.collectives import CollectiveKind, CollectiveModel

MB = 2.0**20
MESSAGE_SIZES = np.array([4, 16, 64, 128, 256, 512, 1024]) * MB
GPU_COUNTS = [8, 64, 512, 1024]


def test_fig8_collective_bandwidth(benchmark, report):
    model = CollectiveModel()

    def compute():
        series = {}
        for n in GPU_COUNTS:
            for kind in (CollectiveKind.ALL_REDUCE, CollectiveKind.ALL_GATHER, CollectiveKind.REDUCE_SCATTER):
                series[(n, kind.value)] = model.sweep(kind, MESSAGE_SIZES, n)
        return series

    series = benchmark(compute)
    rows = []
    for (n, kind), values in series.items():
        rows.append({"gpus": n, "collective": kind, "busbw_gbs": [round(v, 1) for v in values]})
    report("Fig. 8: collective bus bandwidth (message sizes 4MB..1GB)", rows)

    ar_1024 = series[(1024, "all_reduce")]
    ag_1024 = series[(1024, "all_gather")]
    rs_1024 = series[(1024, "reduce_scatter")]
    idx64 = list(MESSAGE_SIZES / MB).index(64)
    idx256 = list(MESSAGE_SIZES / MB).index(256)
    idx1024 = list(MESSAGE_SIZES / MB).index(1024)

    # AllReduce significantly outperforms the other two at 64 MB at scale.
    assert ar_1024[idx64] > 1.2 * ag_1024[idx64]
    # AllGather and ReduceScatter behave almost identically everywhere.
    assert np.allclose(ag_1024, rs_1024, rtol=1e-6)
    # Bandwidth improves with message size for the gather-style collectives.
    assert ag_1024[idx1024] > ag_1024[0]
    # The AllReduce dip around 256 MB.
    assert ar_1024[idx256] < ar_1024[idx64]
    assert ar_1024[idx256] < ar_1024[idx1024]
    # For large messages all three collectives perform similarly (within ~25%).
    assert abs(ar_1024[idx1024] - ag_1024[idx1024]) / ag_1024[idx1024] < 0.25
