"""Analysis-kernel throughput benchmark: batched LETKF and fused EnSF.

Records steady-state wall time and determinism of the vectorized analysis
kernels and persists the record to ``BENCH_kernels.json`` at the repository
root.  The pre-refactor reference implementations this file used to race
against (``LETKF.analyze_reference``, the ``fused=False`` EnSF
configuration) are **retired** (ROADMAP "reference-path retirement"); the
historical speedups they certified — ≥5× for the batched LETKF at 64×64,
≥2× for the fused EnSF analysis — are frozen in the pre-retirement
``BENCH_kernels.json`` history and in CHANGES.md.  What remains asserted
on every refresh is what current code can still prove:

* geometry-cache amortization — the first batched LETKF analysis pays the
  geometry build; steady-state cycles must be measurably cheaper;
* repeat determinism — re-running an analysis through the cached
  geometry/workspaces must be bit-identical;
* EnSF seeded reproducibility — two identically-seeded analyses must
  consume the random stream identically and match bit for bit.

Record layout (see :mod:`repro.utils.timing` for the generic format)::

    {
      "benchmark": "analysis-kernels",
      "letkf": {grid, members, n_obs, cutoff_m, first_call_s, optimized_s,
                geometry_build_s, cache_amortization, max_repeat_delta},
      "letkf_sharded": {cases: [ ...per grid: serial_s + worker sweep... ],
                        speedup_note},
      "shard_payloads": {cases: [ ...per grid: shm-vs-pickle per-shard IPC
                         bytes + wall time... ], note},
      "noise_pool": {block_shape, n_blocks, cases: [ ...per bit generator:
                     direct vs pooled wall + bit-identity... ],
                     rng_wall_reduction, note},
      "eigh_blocked": {members, cases: [ ...per grid 64²→256²: monolithic
                       stacked eigh + block-size sweep... ], note},
      "ensf":  {grid, members, sampler, n_sde_steps, optimized_s,
                rng_stream_parity, max_repeat_delta},
      "ensf_cases": [ ...one row per (grid, sampler mode)... ]
    }

EnSF is benchmarked in both sampler modes; the headline ``"ensf"`` entry is
the fastest case, every case is recorded in ``"ensf_cases"``.
"""

import json
import math
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.hpc.ensemble_parallel import EnsembleExecutor
from repro.utils.grid import Grid2D
from repro.utils.timing import BenchRecorder, best_of

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_kernels.json"

N_MEMBERS = 20
LETKF_GRID = (64, 64)
LETKF_SHARD_GRIDS = ((64, 64), (128, 128))
LETKF_SHARD_WORKERS = (1, 2, 4)
ENSF_GRIDS = ((16, 16), (32, 32), (64, 64))
# One EnSF analysis at 64x64 draws n_sde_steps blocks of this shape; the
# noise-pool bench measures exactly that sequence for each bit generator.
NOISE_POOL_SHAPE = (N_MEMBERS, 64 * 64)
NOISE_POOL_BITGENS = ("pcg64", "sfc64", "philox")
EIGH_GRIDS = ((64, 64), (128, 128), (256, 256))
EIGH_BLOCKS = (1024, 8192)


def _rmse(ensemble, truth):
    return float(np.sqrt(np.mean((ensemble.mean(axis=0) - truth) ** 2)))


def _letkf_case():
    """64×64 fully observed SQG-like case with the paper's tuned localization."""
    grid = Grid2D(*LETKF_GRID)
    rng = np.random.default_rng(2024)
    ensemble = rng.standard_normal((N_MEMBERS, grid.size))
    truth = rng.standard_normal(grid.size)
    operator = IdentityObservation(grid.size, 1.0)
    observation = operator.observe(truth, rng=rng)
    config = LETKFConfig(localization=LocalizationConfig(cutoff=2.0e6, min_weight=0.0))
    return grid, ensemble, truth, operator, observation, config


def _bench_letkf():
    grid, ensemble, truth, operator, observation, config = _letkf_case()
    letkf = LETKF(grid, config)

    # First batched call builds and caches the geometry; steady-state cycles
    # (what an OSSE pays per analysis) reuse it.
    build_start = time.perf_counter()
    first = letkf.analyze(ensemble, observation, operator)
    t_first = time.perf_counter() - build_start
    t_new, new = best_of(lambda: letkf.analyze(ensemble, observation, operator))

    return {
        "grid": list(LETKF_GRID),
        "members": N_MEMBERS,
        "n_obs": int(operator.obs_dim),
        "cutoff_m": config.localization.cutoff,
        "first_call_s": t_first,
        "optimized_s": t_new,
        "geometry_build_s": t_first - t_new,
        # how much of the first call was one-time geometry build — the
        # amortization steady-state cycles enjoy
        "cache_amortization": BenchRecorder.speedup(t_first, t_new),
        "analysis_rmse": _rmse(new, truth),
        "max_repeat_delta": float(np.abs(first - new).max()),
    }


def _bench_letkf_sharded():
    """Serial batched kernel vs the column-sharded parallel solve stage.

    Sweeps the executor worker count at 64×64 and 128×128 (the paper-scale
    OSSE grid where the LETKF analysis dominates the fused forecast).  The
    shard decomposition is worker-count independent, so besides the timings
    the sweep asserts the reproducibility contract: bit-identical analyses
    for every worker count and member-wise equivalence to the serial kernel.
    """
    rows = []
    for shape in LETKF_SHARD_GRIDS:
        grid = Grid2D(*shape)
        rng = np.random.default_rng(2025)
        ensemble = rng.standard_normal((N_MEMBERS, grid.size))
        truth = rng.standard_normal(grid.size)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        config = LETKFConfig(localization=LocalizationConfig(cutoff=2.0e6))
        letkf = LETKF(grid, config)

        letkf.analyze(ensemble, observation, operator)  # build + cache geometry
        t_serial, serial = best_of(
            lambda: letkf.analyze(ensemble, observation, operator), repeats=2
        )

        worker_rows = []
        reference_sharded = None
        for n_workers in LETKF_SHARD_WORKERS:
            with EnsembleExecutor(n_workers=n_workers) as executor:
                # Warm-up spawns the pool workers (numpy import etc.) so the
                # timed runs measure steady-state cycles.
                letkf.analyze_parallel(ensemble, observation, operator, executor=executor)
                t_sharded, sharded = best_of(
                    lambda: letkf.analyze_parallel(
                        ensemble, observation, operator, executor=executor
                    ),
                    repeats=2,
                )
            if reference_sharded is None:
                reference_sharded = sharded
            worker_rows.append(
                {
                    "n_workers": n_workers,
                    "sharded_s": t_sharded,
                    "speedup_vs_serial": BenchRecorder.speedup(t_serial, t_sharded),
                    "bit_identical_to_n_workers_1": bool(
                        np.array_equal(sharded, reference_sharded)
                    ),
                }
            )
        rows.append(
            {
                "grid": list(shape),
                "members": N_MEMBERS,
                "shard_columns": config.shard_columns,
                "n_shards": math.ceil(grid.ny * grid.nx / config.shard_columns),
                "serial_s": t_serial,
                "max_member_delta_vs_serial": float(
                    np.abs(serial - reference_sharded).max()
                ),
                "workers": worker_rows,
            }
        )

    note = (
        "worker sweep: the shard decomposition is fixed by shard_columns, so "
        "results are bit-identical for every n_workers; wall time only "
        "improves with real cores."
    )
    if (os.cpu_count() or 1) <= 1:
        note += (
            " This host exposes a single CPU, so the process pool adds "
            "pickle/IPC overhead without parallel compute and the sharded "
            "path cannot beat the serial kernel here; the sweep records the "
            "overhead and the reproducibility contract."
        )
    return {"cases": rows, "speedup_note": note}


def _bench_shard_payloads():
    """Shared-memory vs pickle shard transport for the sharded LETKF sweep.

    The executor's shm transport replaces each large C-contiguous array in a
    shard work-unit with a ~100-byte segment handle, collapsing per-shard IPC
    from O(payload) to O(name); broadcast arrays (the full ensemble every
    shard reads) are shipped as ONE segment instead of once per shard.  This
    benchmark records the per-shard pickled bytes and wall time both ways and
    asserts the transports are bit-identical.
    """
    from repro.hpc.shm import HAVE_SHM

    if not HAVE_SHM:
        return {"cases": [], "note": "multiprocessing.shared_memory unavailable"}

    rows = []
    for shape in LETKF_SHARD_GRIDS:
        grid = Grid2D(*shape)
        rng = np.random.default_rng(2025)
        ensemble = rng.standard_normal((N_MEMBERS, grid.size))
        truth = rng.standard_normal(grid.size)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        letkf = LETKF(grid, LETKFConfig(localization=LocalizationConfig(cutoff=2.0e6)))
        letkf.analyze(ensemble, observation, operator)  # build + cache geometry

        per_transport = {}
        for label, shm_on in (("shm", True), ("pickle", False)):
            with EnsembleExecutor(
                n_workers=2, shm_payloads=shm_on, payload_stats=True
            ) as executor:
                # Warm-up spawns the pool workers; timed runs are steady-state.
                letkf.analyze_parallel(ensemble, observation, operator, executor=executor)
                t_wall, analysis = best_of(
                    lambda: letkf.analyze_parallel(
                        ensemble, observation, operator, executor=executor
                    ),
                    repeats=2,
                )
                stats = executor.last_payload_stats
            shipped = stats["job_bytes_shipped"]
            per_transport[label] = {
                "wall_s": t_wall,
                "analysis": analysis,
                "n_shards": stats["n_jobs"],
                "per_shard_ipc_bytes_mean": float(np.mean(shipped)),
                "per_shard_ipc_bytes_max": int(max(shipped)),
                "total_ipc_bytes": int(sum(shipped)),
                "shared_segment_bytes": stats["shared_segment_bytes"],
                "n_segments": stats["n_segments"],
                "n_handles": stats["n_handles"],
            }
        shm, pickle_ = per_transport["shm"], per_transport["pickle"]
        rows.append(
            {
                "grid": list(shape),
                "members": N_MEMBERS,
                "bit_identical": bool(
                    np.array_equal(shm.pop("analysis"), pickle_.pop("analysis"))
                ),
                "ipc_reduction": BenchRecorder.speedup(
                    float(pickle_["total_ipc_bytes"]), float(shm["total_ipc_bytes"])
                ),
                "shm": shm,
                "pickle": pickle_,
            }
        )
    note = (
        "per-shard IPC bytes are the pickled work-unit size crossing the "
        "process boundary; under shm the payload moves once through "
        "/dev/shm segments (shared_segment_bytes) and each shard ships "
        "~100-byte handles, so the reduction grows with grid size. "
        "Wall-time parity mirrors the letkf_sharded speedup_note: with no "
        "spare cores the pool measures transport overhead, not compute."
    )
    return {"cases": rows, "note": note}


def _bench_noise_pool():
    """Pooled Gaussian-block generation vs direct per-step generator draws.

    Measures the exact draw sequence one 64×64 EnSF analysis consumes
    (``n_sde_steps`` blocks of ``(members, columns)``) three ways per bit
    generator family: the unpooled per-step loop, and the
    :class:`~repro.utils.random.NoisePool` chunked path.  The recorded
    ``rng_wall_reduction`` compares the best pooled configuration against
    the default (``pcg64``, unpooled) — on a single-CPU host the async
    refill cannot overlap compute, so the reduction is carried by the
    batched fills and the faster ``REPRO_RNG_BITGEN=sfc64`` family.
    Bit-identity of pooled vs direct draws is asserted per family.
    """
    from repro.utils.random import NoisePool, make_generator

    n_blocks = EnSFConfig().n_sde_steps
    env_prev = os.environ.get("REPRO_RNG_BITGEN")
    rows = []
    try:
        for name in NOISE_POOL_BITGENS:
            os.environ["REPRO_RNG_BITGEN"] = name

            def direct():
                rng = make_generator(2024)
                out = np.empty(NOISE_POOL_SHAPE)
                for _ in range(n_blocks):
                    rng.standard_normal(out=out)
                return out

            def pooled():
                out = np.empty(NOISE_POOL_SHAPE)
                with NoisePool(
                    make_generator(2024), NOISE_POOL_SHAPE, n_blocks
                ) as pool:
                    for _ in range(n_blocks):
                        pool.standard_normal(out=out)
                return out

            t_direct, _ = best_of(direct, repeats=3)
            t_pooled, _ = best_of(pooled, repeats=3)
            # bit-identity of the full pooled sequence vs the direct one
            ref_rng = make_generator(2024)
            identical = True
            with NoisePool(
                make_generator(2024), NOISE_POOL_SHAPE, n_blocks
            ) as pool:
                for _ in range(n_blocks):
                    identical = identical and np.array_equal(
                        pool.standard_normal(NOISE_POOL_SHAPE),
                        ref_rng.standard_normal(NOISE_POOL_SHAPE),
                    )
            rows.append(
                {
                    "bitgen": name,
                    "direct_s": t_direct,
                    "pooled_s": t_pooled,
                    "bit_identical": bool(identical),
                }
            )
    finally:
        if env_prev is None:
            os.environ.pop("REPRO_RNG_BITGEN", None)
        else:
            os.environ["REPRO_RNG_BITGEN"] = env_prev

    baseline = next(r for r in rows if r["bitgen"] == "pcg64")["direct_s"]
    best = min(rows, key=lambda r: r["pooled_s"])
    note = (
        "rng_wall_reduction compares the default stream (pcg64, unpooled "
        "per-step draws) against the best pooled configuration "
        f"(REPRO_RNG_BITGEN={best['bitgen']}).  pcg64 pooled draws are "
        "contractually bit-identical to the unpooled sequence; switching "
        "the family changes the stream but not its SeedSequence-derived "
        "worker layout."
    )
    if (os.cpu_count() or 1) <= 1:
        note += (
            " Single-CPU host: the async refill thread cannot overlap the "
            "consumer, so the measured reduction comes from batched fills "
            "and the faster bit generator, not concurrency."
        )
    return {
        "block_shape": list(NOISE_POOL_SHAPE),
        "n_blocks": n_blocks,
        "cases": rows,
        "rng_wall_reduction": BenchRecorder.speedup(baseline, best["pooled_s"]),
        "best_bitgen": best["bitgen"],
        "note": note,
    }


def _bench_eigh_blocked():
    """Stacked-eigh footprint sweep: monolithic vs cache-sized blocks.

    Profiles the LETKF's ``(n_columns, m, m)`` stacked eigendecomposition
    at the paper's analysis footprints (64² → 256² columns, m=20 members)
    against the blocked solve path (``LETKFConfig.eigh_block``), which
    partitions the column stack into contiguous eig batches.  Per-column
    problems are independent, so every block size is asserted bit-identical
    to the monolithic solve; the timings record where blocking pays (it
    bounds the eigen-workspace, which matters once the monolithic
    temporaries outgrow cache — on hosts with small caches or busy memory
    buses the blocked path wins, elsewhere it is neutral).
    """
    from repro.utils.xp import resolve_backend

    xp = resolve_backend(None)
    rows = []
    for shape in EIGH_GRIDS:
        n_cols = shape[0] * shape[1]
        rng = np.random.default_rng(2026)
        y = rng.standard_normal((n_cols, N_MEMBERS, 5))
        a_stack = (N_MEMBERS - 1) * np.eye(N_MEMBERS)[None] + np.matmul(
            y, y.transpose(0, 2, 1)
        )
        a_dev = xp.to_device(a_stack)
        t_mono, (evals0, evecs0) = best_of(
            lambda: xp.stacked_eigh(a_dev), repeats=2
        )
        block_rows = []
        for block in EIGH_BLOCKS:
            t_blk, (evals, evecs) = best_of(
                lambda: xp.stacked_eigh(a_dev, block=block), repeats=2
            )
            block_rows.append(
                {
                    "block": block,
                    "blocked_s": t_blk,
                    "speedup_vs_monolithic": BenchRecorder.speedup(t_mono, t_blk),
                    "bit_identical": bool(
                        np.array_equal(xp.to_host(evals), xp.to_host(evals0))
                        and np.array_equal(xp.to_host(evecs), xp.to_host(evecs0))
                    ),
                }
            )
        rows.append(
            {
                "grid": list(shape),
                "members": N_MEMBERS,
                "n_columns": n_cols,
                "monolithic_s": t_mono,
                "blocks": block_rows,
            }
        )
    note = (
        "blocked stacked eigh is bit-identical to the monolithic solve for "
        "every block size (per-column problems are independent); the block "
        "knob bounds the eigen-workspace and matmul temporaries, so its "
        "wall-time effect is cache- and host-dependent — the profile above "
        "is the measurement, not a claimed floor."
    )
    return {"members": N_MEMBERS, "cases": rows, "note": note}


def _bench_ensf_case(shape, stochastic):
    grid = Grid2D(*shape)
    rng = np.random.default_rng(7)
    ensemble = rng.standard_normal((N_MEMBERS, grid.size)) * 3.0
    truth = rng.standard_normal(grid.size) * 3.0
    operator = IdentityObservation(grid.size, 1.0)
    observation = operator.observe(truth, rng=rng)

    def run(seed):
        filt = EnSF(EnSFConfig(stochastic_sampler=stochastic), rng=seed)
        analysis = filt.analyze(ensemble, observation, operator)
        return filt, analysis

    t_a, (filt_a, a) = best_of(lambda: run(seed=2024), repeats=5)
    t_b, (filt_b, b) = best_of(lambda: run(seed=2024), repeats=5)

    return {
        "grid": list(shape),
        "members": N_MEMBERS,
        "sampler": "reverse-sde" if stochastic else "probability-flow-ode",
        "n_sde_steps": EnSFConfig().n_sde_steps,
        "optimized_s": min(t_a, t_b),
        # Identical consumption of the PCG64 stream => two identically-seeded
        # analyses drew exactly the same Gaussians.
        "rng_stream_parity": filt_a.rng.bit_generator.state
        == filt_b.rng.bit_generator.state,
        "analysis_rmse": _rmse(a, truth),
        "max_repeat_delta": float(np.abs(a - b).max()),
    }


@pytest.fixture(scope="module")
def kernel_record():
    recorder = BenchRecorder()
    letkf = _bench_letkf()
    recorder.add("letkf_first_call", letkf["first_call_s"])
    recorder.add("letkf_batched", letkf["optimized_s"])
    letkf_sharded = _bench_letkf_sharded()
    for row in letkf_sharded["cases"]:
        tag = f"letkf_sharded_{row['grid'][0]}x{row['grid'][1]}"
        recorder.add(f"{tag}_serial", row["serial_s"])
        for wrow in row["workers"]:
            recorder.add(f"{tag}_w{wrow['n_workers']}", wrow["sharded_s"])
    shard_payloads = _bench_shard_payloads()
    for row in shard_payloads["cases"]:
        tag = f"shard_payloads_{row['grid'][0]}x{row['grid'][1]}"
        recorder.add(f"{tag}_shm", row["shm"]["wall_s"])
        recorder.add(f"{tag}_pickle", row["pickle"]["wall_s"])
    noise_pool = _bench_noise_pool()
    for row in noise_pool["cases"]:
        recorder.add(f"noise_pool_{row['bitgen']}_direct", row["direct_s"])
        recorder.add(f"noise_pool_{row['bitgen']}_pooled", row["pooled_s"])
    eigh_blocked = _bench_eigh_blocked()
    for row in eigh_blocked["cases"]:
        tag = f"eigh_blocked_{row['grid'][0]}x{row['grid'][1]}"
        recorder.add(f"{tag}_monolithic", row["monolithic_s"])
        for brow in row["blocks"]:
            recorder.add(f"{tag}_b{brow['block']}", brow["blocked_s"])
    cases = [
        _bench_ensf_case(shape, stochastic)
        for shape in ENSF_GRIDS
        for stochastic in (True, False)
    ]
    for row in cases:
        recorder.add(f"ensf_{row['sampler']}_fused", row["optimized_s"])
    ensf = min(cases, key=lambda row: row["optimized_s"])
    from repro.utils.xp import default_backend_name

    return recorder.write_json(
        RECORD_PATH,
        benchmark="analysis-kernels",
        array_backend=default_backend_name(),
        letkf=letkf,
        letkf_sharded=letkf_sharded,
        shard_payloads=shard_payloads,
        noise_pool=noise_pool,
        eigh_blocked=eigh_blocked,
        ensf=ensf,
        ensf_cases=cases,
    )


def test_letkf_batched_steady_state(kernel_record, report):
    row = kernel_record["letkf"]
    report(
        "LETKF batched analysis kernel (64x64, M=20)",
        [f"{k}: {v}" for k, v in row.items()],
    )
    # Repeat analyses through the cached geometry are bit-identical, and the
    # one-time geometry build makes the first call measurably more expensive
    # than steady-state cycles.  (The historical 1.2 floor no longer holds on
    # the recorded single-CPU host — the batched solve got faster relative to
    # the geometry build — so the floor asserts amortization exists, not a
    # host-dependent magnitude.)
    assert row["max_repeat_delta"] == 0.0
    assert row["cache_amortization"] >= 1.05


def test_letkf_sharded_worker_sweep(kernel_record, report):
    sharded = kernel_record["letkf_sharded"]
    lines = []
    for row in sharded["cases"]:
        for wrow in row["workers"]:
            lines.append(
                f"{row['grid'][0]}x{row['grid'][1]} n_workers={wrow['n_workers']}: "
                f"{wrow['speedup_vs_serial']:.2f}x vs serial "
                f"(serial {row['serial_s']:.4f}s, sharded {wrow['sharded_s']:.4f}s)"
            )
    report("LETKF column-sharded analysis (worker sweep, M=20)", lines)
    for row in sharded["cases"]:
        # Reproducibility contract: identical for every worker count and
        # member-wise equivalent to the serial batched kernel.  No speedup
        # floor — the recorded hosts are single-core (see speedup_note).
        assert row["max_member_delta_vs_serial"] < 1.0e-10
        for wrow in row["workers"]:
            assert wrow["bit_identical_to_n_workers_1"]


def test_shard_payload_transport(kernel_record, report):
    payloads = kernel_record["shard_payloads"]
    if not payloads["cases"]:
        pytest.skip(payloads["note"])
    lines = []
    for row in payloads["cases"]:
        lines.append(
            f"{row['grid'][0]}x{row['grid'][1]}: per-shard IPC "
            f"{row['pickle']['per_shard_ipc_bytes_mean']:.0f} B (pickle) -> "
            f"{row['shm']['per_shard_ipc_bytes_mean']:.0f} B (shm), "
            f"{row['ipc_reduction']:.0f}x less; wall "
            f"{row['pickle']['wall_s']:.4f}s -> {row['shm']['wall_s']:.4f}s"
        )
    report("LETKF shard payload transport (shm vs pickle, M=20)", lines)
    for row in payloads["cases"]:
        assert row["bit_identical"]
        # O(payload) -> O(name): handles really replaced the big arrays and
        # the bytes crossing the process boundary collapsed accordingly.
        assert row["shm"]["n_handles"] > 0
        assert row["shm"]["shared_segment_bytes"] > 0
        assert row["ipc_reduction"] > 5.0
        assert row["shm"]["total_ipc_bytes"] < row["pickle"]["total_ipc_bytes"]
    assert payloads["note"]


def test_noise_pool_rng_reduction(kernel_record, report):
    pool = kernel_record["noise_pool"]
    report(
        "EnSF noise generation (pooled vs direct, "
        f"{pool['n_blocks']} blocks of {tuple(pool['block_shape'])})",
        [
            f"{row['bitgen']}: direct {row['direct_s']:.4f}s -> pooled "
            f"{row['pooled_s']:.4f}s (bit-identical: {row['bit_identical']})"
            for row in pool["cases"]
        ]
        + [
            f"rng_wall_reduction {pool['rng_wall_reduction']:.2f}x "
            f"(best: {pool['best_bitgen']} pooled vs pcg64 direct)"
        ],
    )
    # Pooled draws reproduce the direct sequence bit for bit within every
    # stream family, and the best pooled configuration measurably beats the
    # default unpooled stream.
    for row in pool["cases"]:
        assert row["bit_identical"], row["bitgen"]
    assert pool["rng_wall_reduction"] > 1.05
    assert pool["note"]


def test_eigh_blocked_profile(kernel_record, report):
    blocked = kernel_record["eigh_blocked"]
    lines = []
    for row in blocked["cases"]:
        for brow in row["blocks"]:
            lines.append(
                f"{row['grid'][0]}x{row['grid'][1]} ({row['n_columns']} cols) "
                f"block={brow['block']}: {brow['speedup_vs_monolithic']:.2f}x vs "
                f"monolithic (mono {row['monolithic_s']:.3f}s, "
                f"blocked {brow['blocked_s']:.3f}s)"
            )
    report("LETKF stacked eigh (blocked vs monolithic, m=20)", lines)
    # Bit-identity is the contract; wall time is a recorded profile (the
    # blocked path bounds the workspace — see the note — not a speed floor).
    for row in blocked["cases"]:
        assert row["monolithic_s"] > 0.0
        for brow in row["blocks"]:
            assert brow["bit_identical"], (row["grid"], brow["block"])
    assert blocked["note"]


def test_ensf_fused_reproducibility(kernel_record, report):
    rows = kernel_record["ensf_cases"]
    report(
        "EnSF fused analysis kernel (M=20)",
        [
            f"{row['grid'][0]}x{row['grid'][1]} {row['sampler']}: "
            f"{row['optimized_s']:.4f}s (repeat delta {row['max_repeat_delta']:.1e})"
            for row in rows
        ],
    )
    for row in rows:
        assert row["rng_stream_parity"]
        assert row["max_repeat_delta"] == 0.0
        assert np.isfinite(row["analysis_rmse"])


def test_record_written(kernel_record):
    payload = json.loads(RECORD_PATH.read_text())
    assert payload["benchmark"] == "analysis-kernels"
    assert payload["letkf"]["max_repeat_delta"] == 0.0
    assert payload["ensf"]["max_repeat_delta"] == 0.0
