"""Fig. 5 — final-time analysis-mean snapshots and error fields.

Reproduces the Fig. 5 comparison quantitatively: the pattern correlation of
the final analysis mean with the ground truth and the spatial error magnitude
for each of the four experiments (the paper shows these as maps; the ordering
of pattern correlations captures "EnSF+ViT closest to the ground truth").
"""

import numpy as np

from benchmarks.conftest import full_scale
from repro.workflow.config import ExperimentConfig
from repro.workflow.experiments import run_four_experiments
from repro.workflow.metrics import error_field, pattern_correlation


def _config() -> ExperimentConfig:
    if full_scale():
        return ExperimentConfig.paper_scale()
    return ExperimentConfig()


def test_fig5_final_snapshots(benchmark, report):
    comparison = benchmark.pedantic(
        lambda: run_four_experiments(_config(), store_history=True), rounds=1, iterations=1
    )
    truth = comparison.truth_final
    rows = []
    correlations = {}
    for name, result in comparison.results.items():
        err = error_field(result.analysis_mean_final, truth, comparison.grid_shape)
        corr = pattern_correlation(result.analysis_mean_final, truth)
        correlations[name] = corr
        rows.append(
            {
                "experiment": name,
                "pattern_correlation": round(corr, 3),
                "max_abs_error": round(float(np.abs(err).max()), 2),
                "rms_error": round(float(np.sqrt((err**2).mean())), 2),
            }
        )
    report("Fig. 5: final-time analysis-mean verification against the ground truth", rows)

    # EnSF+ViT is the closest to the ground truth; the free runs have lost the
    # instantaneous eddy pattern (low correlation).
    assert correlations["ViT+EnSF"] == max(correlations.values())
    assert correlations["ViT+EnSF"] > 0.8
    assert correlations["SQG+LETKF"] > correlations["SQG only"]
