"""Benchmark entry point: refresh the ``BENCH_*.json`` perf baselines.

Tier-1 CI (`pytest -x -q`) deselects every test under benchmarks/ via the
``bench`` marker (see pytest.ini); this script opts back in.

Usage::

    python benchmarks/run_all.py            # kernel + forecast speedup benchmarks
    python benchmarks/run_all.py --all      # full reproduction benchmark suite
    python benchmarks/run_all.py <pytest args...>

The default run refreshes ``BENCH_kernels.json`` (vectorized analysis
kernels, plus the ``letkf_sharded`` serial-vs-sharded worker sweep at 64×64
and 128×128) and ``BENCH_forecast.json`` (fused pseudo-spectral forecast
engine plus the 128×128 paper-scale OSSE breakdown) at the repository root
(see :mod:`repro.utils.timing` for the file format).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

# Benchmarks import helpers as `benchmarks.conftest`, which resolves from the
# repository root (python -m pytest adds it automatically; running this file
# directly puts benchmarks/ first on sys.path instead).
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Surface the backend selection: the BENCH_*.json records embed the
    # resolved array backend (and the forecast record the FFT backend), so a
    # GPU host produces a directly comparable entry by exporting
    # REPRO_ARRAY_BACKEND=cupy (plus a device-aware FFT backend) before
    # running this script.
    from repro.utils.fft import default_backend_name as fft_backend
    from repro.utils.xp import default_backend_name as array_backend

    print(f"[run_all] array backend: {array_backend()}  fft backend: {fft_backend()}")
    if "--all" in argv:
        argv.remove("--all")
        targets = [str(BENCH_DIR)]
    elif any(not a.startswith("-") for a in argv):
        targets = []  # explicit test paths supplied by the caller
    else:
        targets = [
            str(BENCH_DIR / "test_bench_kernels.py"),
            str(BENCH_DIR / "test_bench_forecast.py"),
        ]
    rc = pytest.main(["-m", "bench", "-q", "-s", *targets, *argv])
    if rc == 0:
        _print_residency_summary()
    return rc


def _print_residency_summary() -> None:
    """Echo the recorded per-cycle transfer budget after a refresh.

    The ``residency`` entry of ``BENCH_forecast.json`` is the device-
    residency contract in numbers: steady-state host transfers per OSSE
    cycle on the metered mock-device backend, certified configuration-
    independent by ``tests/unit/test_device_residency.py``.
    """
    import json

    path = REPO_ROOT / "BENCH_forecast.json"
    try:
        residency = json.loads(path.read_text(encoding="utf-8")).get("residency")
    except (OSError, ValueError):
        return
    if not residency:
        return
    print("[run_all] per-cycle host-transfer budget "
          f"({residency.get('array_backend', '?')}):")
    for name, budget in residency.get("per_cycle", {}).items():
        if isinstance(budget, dict):
            print(f"[run_all]   {name}: {budget.get('h2d_calls')} up / "
                  f"{budget.get('d2h_calls')} down")


if __name__ == "__main__":
    raise SystemExit(main())
