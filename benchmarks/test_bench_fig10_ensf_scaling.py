"""Fig. 10 — weak scaling of the EnSF up to 1024 GPUs for three state dimensions.

The per-rank EnSF cost is *measured* on this machine (a real EnSF analysis at
a laptop-feasible dimension) and extended to 1024 ranks with the
ensemble-parallel cost model; weak scaling must stay essentially flat because
the update is embarrassingly parallel over ensemble members (§III-A3).
"""

from benchmarks.conftest import full_scale
from repro.hpc.scaling import weak_scaling_ensf

GPU_COUNTS = [1, 8, 64, 256, 1024]


def test_fig10_ensf_weak_scaling(benchmark, report):
    dimensions = [1.0e6, 1.0e7, 1.0e8] if full_scale() else [1.0e5, 1.0e6, 1.0e7]
    measured_dim = 200_000 if full_scale() else 50_000

    points = benchmark.pedantic(
        lambda: weak_scaling_ensf(
            dimensions=dimensions,
            gpu_counts=GPU_COUNTS,
            ensemble_size=20,
            n_sde_steps=20,
            measured_dimension=measured_dim,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        {
            "dim_per_rank": f"{p.dimension_per_rank:.0e}",
            "gpus": p.n_gpus,
            "time_per_step_s": round(p.time_per_step, 3),
        }
        for p in points
    ]
    report("Fig. 10: EnSF weak scaling (time per analysis step)", rows)

    for dim in dimensions:
        times = {p.n_gpus: p.time_per_step for p in points if p.dimension_per_rank == dim}
        # Flat weak scaling: going from 1 to 1024 ranks costs < 20 % extra.
        assert times[1024] <= 1.2 * times[1]
    # Cost grows roughly linearly with the per-rank dimension (×10 per decade).
    t_small = [p.time_per_step for p in points if p.dimension_per_rank == dimensions[0]][0]
    t_large = [p.time_per_step for p in points if p.dimension_per_rank == dimensions[-1]][0]
    assert t_large / t_small > 20.0
