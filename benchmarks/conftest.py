"""Shared fixtures/helpers for the benchmark harness.

Every benchmark prints the rows/series of the paper table or figure it
regenerates (captured with ``pytest -s`` or in the benchmark output), and uses
``pytest-benchmark`` to time the underlying computation.  Set
``REPRO_FULL_SCALE=1`` to run the accuracy benchmarks at the paper's full
64×64 / 300-cycle configuration (slow); the default is a reduced configuration
whose qualitative conclusions match.
"""

import os
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ with the ``bench`` marker.

    Tier-1 CI (`pytest -x -q`) deselects these via the ``-m "not bench"``
    default in pytest.ini; run them explicitly with ``pytest -m bench`` or
    ``python benchmarks/run_all.py``.  (The hook receives the full session
    item list, so filter by location.)
    """
    for item in items:
        try:
            in_bench_dir = Path(str(item.fspath)).resolve().is_relative_to(_BENCH_DIR)
        except (OSError, ValueError):
            in_bench_dir = False
        if in_bench_dir:
            item.add_marker(pytest.mark.bench)


def full_scale() -> bool:
    """Whether to run paper-scale (slow) configurations."""
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


@pytest.fixture
def report():
    """Print a small table of reproduced rows (visible with ``-s`` / in CI logs)."""

    def _print(title: str, rows):
        print(f"\n=== {title} ===")
        for row in rows:
            print("   ", row)

    return _print
