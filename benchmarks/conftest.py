"""Shared fixtures/helpers for the benchmark harness.

Every benchmark prints the rows/series of the paper table or figure it
regenerates (captured with ``pytest -s`` or in the benchmark output), and uses
``pytest-benchmark`` to time the underlying computation.  Set
``REPRO_FULL_SCALE=1`` to run the accuracy benchmarks at the paper's full
64×64 / 300-cycle configuration (slow); the default is a reduced configuration
whose qualitative conclusions match.
"""

import os

import pytest


def full_scale() -> bool:
    """Whether to run paper-scale (slow) configurations."""
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


@pytest.fixture
def report():
    """Print a small table of reproduced rows (visible with ``-s`` / in CI logs)."""

    def _print(title: str, rows):
        print(f"\n=== {title} ===")
        for row in rows:
            print("   ", row)

    return _print
