"""Fig. 6 — single-node TFLOPS heatmap over ViT kernel-sizing choices."""

import numpy as np

from repro.hpc.gemm import vit_achieved_tflops
from repro.surrogate.vit import ViTConfig


EMBED_DIMS = [768, 1024, 1536, 2048, 3072]
NUM_HEADS = [4, 8, 16, 32]
MLP_RATIOS = [2.0, 4.0, 8.0]


def test_fig6_kernel_sizing_heatmap(benchmark, report):
    def compute():
        heatmap = {}
        for embed in EMBED_DIMS:
            for heads in NUM_HEADS:
                for ratio in MLP_RATIOS:
                    cfg = ViTConfig(
                        image_size=256, patch_size=4, channels=2, depth=2,
                        num_heads=heads, embed_dim=embed, mlp_ratio=ratio,
                    )
                    heatmap[(embed, heads, ratio)] = vit_achieved_tflops(cfg, batch_size=1)
        return heatmap

    heatmap = benchmark(compute)
    rows = [
        {"embed": k[0], "heads": k[1], "mlp_ratio": k[2], "tflops": round(v, 1)}
        for k, v in sorted(heatmap.items())
    ]
    report("Fig. 6: achieved TFLOPS heatmap (256^2 inputs, single GCD)", rows[:12] + ["..."])

    values = np.array(list(heatmap.values()))
    # The paper reports a 20–52 TFLOPS range over the swept configurations.
    assert values.min() >= 5.0 and values.max() <= 55.0
    assert values.max() / values.min() > 1.5

    # Qualitative findings of §IV-B(a):
    # (1) embedding dimension 2048 outperforms 1024 at fixed heads/ratio;
    assert heatmap[(2048, 8, 4.0)] > heatmap[(1024, 8, 4.0)]
    # (2) more attention heads reduce performance;
    assert heatmap[(2048, 8, 4.0)] >= heatmap[(2048, 32, 4.0)]
    # (3) a heavier MLP improves overall throughput.
    assert heatmap[(2048, 8, 8.0)] > heatmap[(2048, 8, 2.0)]
