"""Fig. 3 — training FLOPs and Frontier node-hours for the Table II ViT sizes (Eq. 18)."""

from repro.surrogate.flops import frontier_node_hours, vit_parameter_count, vit_training_flops
from repro.surrogate.presets import TABLE_II_PRESETS


def test_fig3_computational_budget(benchmark, report):
    def compute():
        rows = []
        for size, cfg in TABLE_II_PRESETS.items():
            flops = vit_training_flops(cfg, n_images=1.0e6, epochs=100)
            rows.append(
                {
                    "input": f"{size}^2",
                    "params": vit_parameter_count(cfg),
                    "training_flops": flops,
                    "frontier_node_hours": frontier_node_hours(flops),
                }
            )
        return rows

    rows = benchmark(compute)
    report("Fig. 3: ViT training budget (1M images, 100 epochs)", rows)

    by_size = {r["input"]: r for r in rows}
    # FLOPs and node-hours must grow strongly with model/input size: the
    # 256² / 2.5B configuration needs two orders of magnitude more compute
    # than the 64² / 157M configuration (tokens ×16, parameters ×16).
    ratio = by_size["256^2"]["training_flops"] / by_size["64^2"]["training_flops"]
    assert 100 <= ratio <= 1000
    assert by_size["256^2"]["frontier_node_hours"] > by_size["128^2"]["frontier_node_hours"]
    # Order-of-magnitude sanity: the largest model needs at least thousands of
    # node-hours, which is the paper's argument for why online training is an
    # HPC problem.
    assert by_size["256^2"]["frontier_node_hours"] > 1.0e3
