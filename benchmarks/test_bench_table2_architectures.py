"""Table II — SQG-ViT architectures and their parameter counts."""

from repro.surrogate.flops import vit_parameter_count
from repro.surrogate.presets import TABLE_II_PRESETS, TABLE_II_REPORTED_PARAMS


def test_table2_architectures(benchmark, report):
    def compute():
        rows = []
        for size, cfg in TABLE_II_PRESETS.items():
            rows.append(
                {
                    "input": f"{size}^2",
                    "patch": cfg.patch_size,
                    "layers": cfg.depth,
                    "heads": cfg.num_heads,
                    "embed_dim": cfg.embed_dim,
                    "mlp_ratio": cfg.mlp_ratio,
                    "params": vit_parameter_count(cfg),
                    "paper_params": TABLE_II_REPORTED_PARAMS[size],
                }
            )
        return rows

    rows = benchmark(compute)
    report("Table II: ViT surrogate architectures", rows)
    for row in rows:
        relative_error = abs(row["params"] - row["paper_params"]) / row["paper_params"]
        assert relative_error < 0.08, row
