"""Quickstart: assimilate SQG observations with the Ensemble Score Filter.

Runs a small twin experiment (16×16 SQG grid, 8 analysis cycles): a hidden
truth is integrated with the physics model, synthetic observations of the full
state are generated every 12 hours, and a 10-member EnSF corrects the ensemble
forecast at every cycle.  Takes a few seconds on a laptop.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import EnSF, EnSFConfig, IdentityObservation
from repro.da import OSSEConfig, free_run, run_osse
from repro.models import SQGModel, SQGParameters, spinup_sqg


def main() -> None:
    # 1. Build the SQG turbulence model and spin up a truth state.
    model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))
    truth0 = model.flatten(spinup_sqg(model, n_steps=400, rng=0))
    print(f"SQG state size: {model.state_size} variables "
          f"(2 boundary levels on a {model.params.nx}x{model.params.ny} grid)")

    # 2. Observation model: the full state observed with unit error variance
    #    every 12 hours (24 model steps at dt = 1800 s), as in the paper.
    operator = IdentityObservation(model.state_size, obs_error_var=1.0)

    # 3. Configure the cycling experiment and the EnSF.
    osse = OSSEConfig(n_cycles=8, steps_per_cycle=24, ensemble_size=10, seed=4)
    ensf = EnSF(EnSFConfig(n_sde_steps=60), rng=2)

    # 4. Run with and without assimilation.
    with_da = run_osse(model, model, ensf, operator, truth0, osse, label="SQG+EnSF")
    without_da = free_run(model, model, truth0, osse, label="SQG only")

    # 5. Report.
    print("\ncycle   RMSE (EnSF)   RMSE (no DA)")
    for k in range(osse.n_cycles):
        print(f"{k + 1:5d}   {with_da.analysis_rmse[k]:11.3f}   {without_da.analysis_rmse[k]:12.3f}")
    print(f"\nmean analysis RMSE with EnSF: {with_da.mean_analysis_rmse:.3f} K")
    print(f"mean error without DA:        {without_da.mean_analysis_rmse:.3f} K")
    assert np.isfinite(with_da.analysis_rmse).all()


if __name__ == "__main__":
    main()
