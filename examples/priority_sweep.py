"""Priority-sweep demo for the experiment service.

Submits a 10-job Lorenz-96/EnSF seed sweep at three priority tiers over a
shared 2-slot service, injects one deterministic mid-run crash into a
victim job, and shows that the service heals it: every job ends ``done``
and the crashed job's RMSE history is bit-identical to an undisturbed run
of the same submission.

Run with:

    PYTHONPATH=src python examples/priority_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.utils.faults import FaultPlan
from repro.workflow import ExperimentService, ServiceConfig

RUNNER = "repro.workflow.scheduler:lorenz96_ensf_job"
PARAMS = {"dim": 12, "n_cycles": 10, "ensemble_size": 8, "n_sde_steps": 6}


def run_sweep(journal: Path, fault_plan: FaultPlan | None = None) -> dict:
    config = ServiceConfig(max_running=2, retry_backoff_s=0.05, poll_s=0.02)
    with ExperimentService(journal, config=config, fault_plan=fault_plan) as svc:
        for seed in range(10):
            name = f"osse-{seed:02d}"
            priority = seed % 3  # three tiers: later high-tier jobs preempt
            svc.submit(name, RUNNER, params=dict(PARAMS, seed=seed), priority=priority)
        states = svc.run_until_complete(timeout=600.0)
        return {
            "states": states,
            "rmse": {name: svc.result(name)["analysis_rmse"] for name in states},
            "service_log": svc.fault_log.summary(),
            "victim_log": svc.job_fault_log("osse-03").summary(),
        }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # Scheduler-site occurrences count journal writes; by occurrence 12
        # the sweep is mid-flight, so the crash lands while osse-03 runs.
        plan = FaultPlan.from_spec("job-crash@scheduler:12,job=osse-03")
        faulted = run_sweep(tmp_path / "faulted" / "journal.json", fault_plan=plan)
        clean = run_sweep(tmp_path / "clean" / "journal.json")

    print("job        state  final RMSE")
    for name, state in sorted(faulted["states"].items()):
        print(f"{name:10s} {state:6s} {faulted['rmse'][name][-1]:.6f}")

    print(f"\nservice events: {faulted['service_log']}")
    print(f"victim (osse-03) events: {faulted['victim_log']}")

    assert all(state == "done" for state in faulted["states"].values())
    exact = faulted["rmse"] == clean["rmse"]
    print(f"\nbit-identical to the undisturbed sweep: {exact}")
    assert exact, "faulted sweep diverged from the clean sweep"


if __name__ == "__main__":
    main()
