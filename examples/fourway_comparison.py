"""Reproduce the paper's Fig. 4 comparison: SQG / ViT / LETKF / EnSF.

Runs the four §IV-A experiments on a reduced 32×32 SQG configuration (about
half a minute): free runs of the physics model and the offline-trained ViT
surrogate, the SQG+LETKF baseline, and the proposed ViT+EnSF framework, all
against the same model-error-perturbed truth and observations.

Run with:  python examples/fourway_comparison.py [--paper-scale]
"""

import argparse

from repro.workflow import ExperimentConfig, run_four_experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's 64x64 grid and 300 cycles (takes hours)",
    )
    args = parser.parse_args()

    config = ExperimentConfig.paper_scale() if args.paper_scale else ExperimentConfig()
    print(f"Grid {config.nx}x{config.ny}, {config.n_cycles} cycles, "
          f"{config.ensemble_size}-member ensembles")

    comparison = run_four_experiments(config)

    print("\nexperiment      mean RMSE   final RMSE")
    for name, result in comparison.results.items():
        print(f"{name:12s}   {result.mean_analysis_rmse:9.3f}   {result.analysis_rmse[-1]:10.3f}")

    print("\nRMSE time series (every other cycle):")
    cycles = comparison.results["ViT+EnSF"].times[::2]
    header = "cycle  " + "  ".join(f"{name:>10s}" for name in comparison.results)
    print(header)
    for i, cycle in enumerate(cycles):
        row = f"{int(cycle):5d}  " + "  ".join(
            f"{res.analysis_rmse[2 * i]:10.3f}" for res in comparison.results.values()
        )
        print(row)

    print("\nPaper ordering (DA beats free runs, EnSF+ViT beats LETKF+SQG):",
          "REPRODUCED" if comparison.ordering_holds() else "NOT reproduced at this scale")


if __name__ == "__main__":
    main()
