"""Run the full real-time DA workflow of Fig. 1 with online surrogate training.

Couples the pre-trained SQG-ViT surrogate with the EnSF in the sequential
workflow: surrogate ensemble forecast → EnSF analysis → online fine-tuning of
the surrogate on the newly assimilated state, with per-stage wall-clock
accounting (the two scalability tasks the paper identifies).

Run with:  python examples/realtime_workflow.py
"""

import numpy as np

from repro.core import EnSFConfig
from repro.hpc import EnsembleExecutor
from repro.models import StochasticModelErrorMixture
from repro.surrogate import TrainingConfig
from repro.workflow import ExperimentConfig, RealTimeDAWorkflow
from repro.workflow.experiments import build_sqg_testbed, train_offline_surrogate


def main() -> None:
    config = ExperimentConfig(nx=32, ny=32, n_cycles=10, ensemble_size=12)
    print("Building SQG testbed and pre-training the ViT surrogate offline...")
    testbed = build_sqg_testbed(config)
    surrogate = train_offline_surrogate(testbed)
    print(f"Surrogate parameters: {surrogate.network.n_parameters():,}")

    workflow = RealTimeDAWorkflow(
        surrogate=surrogate,
        truth_model=testbed.model,
        operator=testbed.operator,
        ensf_config=EnSFConfig(n_sde_steps=config.ensf_sde_steps),
        training_config=TrainingConfig(online_iterations=config.online_iterations),
        model_error=StochasticModelErrorMixture(rng=testbed.seeds.rng("model-error")),
        executor=EnsembleExecutor(n_workers=1),
        seed=config.seed,
    )

    rng = np.random.default_rng(config.seed)
    ensemble = testbed.truth0[None, :] + 2.0 * rng.standard_normal(
        (config.ensemble_size, testbed.model.state_size)
    )

    print(f"Running {config.n_cycles} real-time cycles "
          f"({config.steps_per_cycle} model steps per cycle)...")
    result = workflow.run(
        testbed.truth0, ensemble, n_cycles=config.n_cycles, steps_per_cycle=config.steps_per_cycle
    )

    print("\ncycle   forecast RMSE   analysis RMSE")
    for k, (f, a) in enumerate(zip(result["forecast_rmse"], result["analysis_rmse"]), start=1):
        print(f"{k:5d}   {f:13.3f}   {a:13.3f}")

    timings = result["timings"]
    print("\nPer-cycle wall-clock budget (the paper's two scalability tasks dominate):")
    for stage, seconds in timings.per_cycle().items():
        print(f"  {stage:16s} {seconds * 1e3:8.1f} ms/cycle  ({100 * timings.fractions()[stage]:.1f} %)")
    print(f"\nFinal analysis RMSE: {result['final_analysis_rmse']:.3f} K")


if __name__ == "__main__":
    main()
