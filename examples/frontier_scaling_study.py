"""Reproduce the paper's scalability analysis (Figs. 6-10) with the Frontier model.

Sweeps the ViT kernel-sizing heatmap, the collective-bandwidth curves, the
runtime breakdown at 1024 GPUs, the strong-scaling efficiency of the
distribution strategies, and the (locally measured) EnSF weak scaling.

Run with:  python examples/frontier_scaling_study.py
"""

import numpy as np

from repro.hpc import (
    CollectiveKind,
    CollectiveModel,
    DataParallel,
    DistributedTrainingSimulator,
    FSDPParallel,
    TrainingRunConfig,
    ZeROParallel,
    strong_scaling_study,
    weak_scaling_ensf,
)
from repro.hpc.gemm import vit_achieved_tflops
from repro.surrogate.presets import TABLE_II_PRESETS
from repro.surrogate.vit import ViTConfig

MB = 2.0**20


def kernel_sizing_heatmap() -> None:
    print("\n--- Fig. 6: achieved TFLOPS vs embedding dim and heads (256^2 inputs) ---")
    print("embed\\heads |" + "".join(f" {h:>6d}" for h in (4, 8, 16, 32)))
    for embed in (1024, 2048, 3072):
        row = [
            vit_achieved_tflops(
                ViTConfig(image_size=256, patch_size=4, depth=2, num_heads=h, embed_dim=embed),
                batch_size=1,
            )
            for h in (4, 8, 16, 32)
        ]
        print(f"{embed:11d} |" + "".join(f" {v:6.1f}" for v in row))


def collective_bandwidth() -> None:
    print("\n--- Fig. 8: collective bus bandwidth at 1024 GPUs (GB/s) ---")
    model = CollectiveModel()
    sizes = np.array([16, 64, 256, 1024]) * MB
    print("collective      |" + "".join(f" {int(s / MB):>6d}MB" for s in sizes))
    for kind in (CollectiveKind.ALL_REDUCE, CollectiveKind.ALL_GATHER, CollectiveKind.REDUCE_SCATTER):
        values = model.sweep(kind, sizes, 1024)
        print(f"{kind.value:15s} |" + "".join(f" {v:8.1f}" for v in values))


def runtime_breakdown() -> None:
    print("\n--- Fig. 7: runtime breakdown at 1024 GPUs (DeepSpeed ZeRO-1) ---")
    sim = DistributedTrainingSimulator()
    for size, cfg in TABLE_II_PRESETS.items():
        bd = sim.step_breakdown(TrainingRunConfig(vit=cfg, n_gpus=1024), ZeROParallel(1))
        f = bd.fractions()
        print(f"{size:4d}^2: compute {100 * f['compute']:5.1f}%  comm {100 * f['communication']:5.1f}%  "
              f"io {100 * f['io']:4.1f}%   (step {bd.total:.2f} s)")


def strong_scaling() -> None:
    print("\n--- Fig. 9: scaling efficiency at 1024 GPUs ---")
    strategies = {
        "DDP": DataParallel(),
        "ZeRO-1 (200MB)": ZeROParallel(1, 200 * MB),
        "ZeRO-1 (500MB)": ZeROParallel(1, 500 * MB),
        "ZeRO-2": ZeROParallel(2),
        "FSDP full": FSDPParallel("full_shard"),
        "FSDP grad_op": FSDPParallel("shard_grad_op"),
    }
    for size, cfg in TABLE_II_PRESETS.items():
        points = strong_scaling_study(cfg, strategies, [8, 1024])
        effs = {p.strategy: p.efficiency for p in points if p.n_gpus == 1024}
        formatted = "  ".join(f"{name}: {eff:.2f}" for name, eff in effs.items())
        print(f"{size:4d}^2: {formatted}")


def ensf_weak_scaling() -> None:
    print("\n--- Fig. 10: EnSF weak scaling (time per analysis step, seconds) ---")
    points = weak_scaling_ensf(
        dimensions=[1.0e5, 1.0e6, 1.0e7], gpu_counts=[1, 64, 1024], measured_dimension=50_000
    )
    print("dim per rank |      1 GPU     64 GPUs   1024 GPUs")
    for dim in (1.0e5, 1.0e6, 1.0e7):
        times = [p.time_per_step for p in points if p.dimension_per_rank == dim]
        print(f"{dim:12.0e} |" + "".join(f" {t:10.3f}" for t in times))


def main() -> None:
    kernel_sizing_heatmap()
    collective_bandwidth()
    runtime_breakdown()
    strong_scaling()
    ensf_weak_scaling()


if __name__ == "__main__":
    main()
