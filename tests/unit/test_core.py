"""Unit tests for the EnSF core: schedules, score estimator, SDE sampler, observations, filter."""

import numpy as np
import pytest

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.filters import ensemble_statistics, relax_spread
from repro.core.likelihood import ConstantDamping, CosineDamping, GaussianLikelihoodScore, LinearDamping
from repro.core.observations import (
    IdentityObservation,
    LinearObservation,
    NonlinearObservation,
    SubsampledObservation,
)
from repro.core.schedules import LinearAlphaSchedule
from repro.core.score import MonteCarloScoreEstimator, gaussian_reference_score
from repro.core.sde import ReverseSDESampler


class TestSchedule:
    def test_endpoints(self):
        s = LinearAlphaSchedule(eps_alpha=0.05)
        assert s.alpha(0.0) == pytest.approx(1.0)
        assert s.alpha(1.0) == pytest.approx(0.05)
        assert s.beta_sq(1.0) == pytest.approx(1.0)

    def test_diffusion_relation(self):
        """σ²(t) must equal dβ²/dt − 2 b(t) β² (Eq. 9)."""
        s = LinearAlphaSchedule()
        for t in [0.1, 0.3, 0.7, 0.95]:
            expected = s.dbeta_sq_dt(t) - 2.0 * s.drift_coeff(t) * s.beta_sq(t)
            assert s.diffusion_sq(t) == pytest.approx(expected)

    def test_drift_is_dlog_alpha_dt(self):
        s = LinearAlphaSchedule(eps_alpha=0.0)
        t = 0.4
        eps = 1e-6
        fd = (np.log(s.alpha(t + eps)) - np.log(s.alpha(t - eps))) / (2 * eps)
        assert s.drift_coeff(t) == pytest.approx(fd, rel=1e-5)

    def test_time_grid_decreasing(self):
        grid = LinearAlphaSchedule().time_grid(10)
        assert grid[0] == 1.0 and grid[-1] == 0.0
        assert np.all(np.diff(grid) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearAlphaSchedule(eps_alpha=1.5)
        with pytest.raises(ValueError):
            LinearAlphaSchedule().time_grid(0)
        with pytest.raises(ValueError):
            LinearAlphaSchedule().time_grid(5, t_end=0.2, t_start=0.5)


class TestScoreEstimator:
    def test_weights_normalised(self):
        rng = np.random.default_rng(0)
        est = MonteCarloScoreEstimator(rng.normal(size=(15, 6)), rng=1)
        w = est.weights(rng.normal(size=(4, 6)), t=0.5)
        assert w.shape == (4, 15)
        assert np.allclose(w.sum(axis=1), 1.0)
        assert np.all(w >= 0)

    def test_matches_gaussian_score_large_ensemble(self):
        """With many samples from N(μ, σ²I) the MC score approaches the analytic score."""
        rng = np.random.default_rng(2)
        mu, sigma = 1.5, 0.7
        ensemble = mu + sigma * rng.normal(size=(4000, 3))
        est = MonteCarloScoreEstimator(ensemble, rng=3)
        s = LinearAlphaSchedule()
        t = 0.5
        alpha, beta_sq = float(s.alpha(t)), float(s.beta_sq(t))
        z = np.array([[0.5, 1.0, -0.2]])
        # Z_t ~ N(alpha*mu, alpha²σ² + β²) for the forward diffusion of a Gaussian.
        var_t = alpha**2 * sigma**2 + beta_sq
        expected = gaussian_reference_score(z, alpha * mu, var_t)
        got = est.score(z, t)
        assert np.allclose(got, expected, atol=0.15)

    def test_single_point_shape(self):
        est = MonteCarloScoreEstimator(np.random.default_rng(4).normal(size=(10, 5)))
        out = est.score(np.zeros(5), t=0.3)
        assert out.shape == (5,)

    def test_minibatch_bounds(self):
        ens = np.zeros((10, 2))
        with pytest.raises(ValueError):
            MonteCarloScoreEstimator(ens, minibatch=11)
        with pytest.raises(ValueError):
            MonteCarloScoreEstimator(ens, minibatch=0)
        est = MonteCarloScoreEstimator(np.random.default_rng(0).normal(size=(10, 2)), minibatch=4, rng=0)
        assert est.score(np.zeros((3, 2)), 0.5).shape == (3, 2)

    def test_dimension_mismatch(self):
        est = MonteCarloScoreEstimator(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            est.score(np.zeros((2, 3)), 0.5)


class TestReverseSDE:
    def test_samples_gaussian_target(self):
        """With the analytic score of N(m, v) the sampler recovers mean and variance."""
        m, v = 2.0, 0.5
        schedule = LinearAlphaSchedule(eps_alpha=0.05)

        def score(z, t):
            alpha = float(schedule.alpha(t))
            var_t = alpha**2 * v + float(schedule.beta_sq(t))
            return -(z - alpha * m) / var_t

        sampler = ReverseSDESampler(schedule, n_steps=200)
        samples = sampler.sample(score, n_samples=4000, dim=1, rng=0)
        assert samples.mean() == pytest.approx(m, abs=0.1)
        assert samples.var() == pytest.approx(v, rel=0.25)

    def test_deterministic_mode_reproducible(self):
        schedule = LinearAlphaSchedule()
        score = lambda z, t: -z
        sampler = ReverseSDESampler(schedule, n_steps=20, stochastic=False)
        init = np.random.default_rng(1).normal(size=(5, 3))
        a = sampler.sample(score, 5, 3, rng=2, initial=init)
        b = sampler.sample(score, 5, 3, rng=3, initial=init)
        assert np.allclose(a, b)

    def test_trajectory_shape(self):
        sampler = ReverseSDESampler(n_steps=7)
        traj = sampler.sample(lambda z, t: -z, 4, 2, rng=0, return_trajectory=True)
        assert traj.shape == (8, 4, 2)

    def test_magnitude_guard(self):
        sampler = ReverseSDESampler(n_steps=10, max_state_magnitude=5.0)
        out = sampler.sample(lambda z, t: 1e6 * np.ones_like(z), 3, 2, rng=0)
        assert np.all(np.abs(out) <= 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReverseSDESampler(n_steps=0)
        sampler = ReverseSDESampler(n_steps=5)
        with pytest.raises(ValueError):
            sampler.sample(lambda z, t: -z, 3, 2, initial=np.zeros((2, 2)))


class TestObservations:
    def _adjoint_check(self, op, rng, state=None):
        x = rng.normal(size=op.state_dim)
        y = rng.normal(size=op.obs_dim)
        lin_state = state if state is not None else x
        # <H x, y> == <x, Hᵀ y> for linear operators (exact); for nonlinear
        # operators the adjoint is checked at the linearisation point below.
        hx = op.apply(lin_state + x) - op.apply(lin_state) if isinstance(op, NonlinearObservation) else op.apply(x)
        if not isinstance(op, NonlinearObservation):
            assert np.dot(hx, y) == pytest.approx(np.dot(x, op.adjoint(y)), rel=1e-10)

    def test_identity(self):
        rng = np.random.default_rng(0)
        op = IdentityObservation(6, obs_error_var=0.5)
        self._adjoint_check(op, rng)
        x = rng.normal(size=6)
        assert np.allclose(op.apply(x), x)
        assert op.obs_error_var.shape == (6,)

    def test_linear(self):
        rng = np.random.default_rng(1)
        H = rng.normal(size=(3, 5))
        op = LinearObservation(H, obs_error_var=2.0)
        self._adjoint_check(op, rng)
        x = rng.normal(size=5)
        assert np.allclose(op.apply(x), H @ x)

    def test_subsampled(self):
        rng = np.random.default_rng(2)
        op = SubsampledObservation.every_nth(10, 3)
        assert np.array_equal(op.indices, np.array([0, 3, 6, 9]))
        self._adjoint_check(op, rng)
        with pytest.raises(ValueError):
            SubsampledObservation(5, np.array([7]))

    def test_nonlinear_likelihood_score_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        op = NonlinearObservation(4, kind="arctan", obs_error_var=0.3)
        x = rng.normal(size=4)
        y = rng.normal(size=4)
        grad = op.log_likelihood_score(x, y)
        eps = 1e-6
        fd = np.zeros(4)
        for i in range(4):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            fd[i] = (op.log_likelihood(xp, y) - op.log_likelihood(xm, y)) / (2 * eps)
        assert np.allclose(grad, fd, atol=1e-5)

    def test_identity_likelihood_score_matches_finite_difference(self):
        rng = np.random.default_rng(4)
        op = IdentityObservation(5, obs_error_var=1.7)
        x, y = rng.normal(size=5), rng.normal(size=5)
        grad = op.log_likelihood_score(x, y)
        assert np.allclose(grad, (y - x) / 1.7)

    def test_observe_noise_statistics(self):
        op = IdentityObservation(2000, obs_error_var=0.25)
        y = op.observe(np.zeros(2000), rng=0)
        assert y.std() == pytest.approx(0.5, rel=0.1)

    def test_batched_apply(self):
        op = IdentityObservation(4)
        states = np.random.default_rng(5).normal(size=(7, 4))
        assert op.apply(states).shape == (7, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            IdentityObservation(3, obs_error_var=-1.0)
        with pytest.raises(ValueError):
            NonlinearObservation(3, kind="exp")


class TestLikelihoodDamping:
    def test_linear_damping_endpoints(self):
        h = LinearDamping(horizon=1.0)
        assert h(0.0) == pytest.approx(1.0)
        assert h(1.0) == pytest.approx(0.0)

    def test_cosine_damping_endpoints(self):
        h = CosineDamping()
        assert h(0.0) == pytest.approx(1.0)
        assert h(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_constant_damping(self):
        assert ConstantDamping(0.7)(0.3) == 0.7

    def test_damped_score(self):
        op = IdentityObservation(3, obs_error_var=1.0)
        y = np.array([1.0, 2.0, 3.0])
        lik = GaussianLikelihoodScore(op, y)
        z = np.zeros((2, 3))
        assert np.allclose(lik.damped_score(z, 1.0), 0.0)
        assert np.allclose(lik.damped_score(z, 0.0), np.broadcast_to(y, (2, 3)))

    def test_observation_shape_checked(self):
        op = IdentityObservation(3)
        with pytest.raises(ValueError):
            GaussianLikelihoodScore(op, np.zeros(4))


class TestEnsembleHelpers:
    def test_statistics(self):
        ens = np.array([[0.0, 2.0], [2.0, 4.0]])
        stats = ensemble_statistics(ens)
        assert np.allclose(stats.mean, [1.0, 3.0])
        assert np.allclose(stats.spread, np.sqrt(2.0))

    def test_relax_spread_full_restores_prior_spread(self):
        rng = np.random.default_rng(0)
        forecast = rng.normal(size=(30, 10)) * 3.0
        analysis = forecast.mean(axis=0) + 0.1 * rng.normal(size=(30, 10))
        relaxed = relax_spread(analysis, forecast, factor=1.0)
        assert np.allclose(relaxed.std(axis=0, ddof=1), forecast.std(axis=0, ddof=1), rtol=1e-6)
        assert np.allclose(relaxed.mean(axis=0), analysis.mean(axis=0))

    def test_relax_spread_zero_is_identity(self):
        rng = np.random.default_rng(1)
        a, f = rng.normal(size=(5, 4)), rng.normal(size=(5, 4))
        assert np.array_equal(relax_spread(a, f, factor=0.0), a)

    def test_relax_spread_validation(self):
        with pytest.raises(ValueError):
            relax_spread(np.zeros((3, 2)), np.zeros((3, 2)), factor=1.5)
        with pytest.raises(ValueError):
            relax_spread(np.zeros((3, 2)), np.zeros((4, 2)))


class TestEnSF:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EnSFConfig(n_sde_steps=0)
        with pytest.raises(ValueError):
            EnSFConfig(spread_relaxation=1.2)
        with pytest.raises(ValueError):
            EnSFConfig(t_start=1.0)
        assert EnSFConfig(n_sde_steps=50).scaled_obs_var_floor == pytest.approx(0.04)

    def test_analysis_moves_toward_observation(self):
        """With accurate observations the analysis mean must beat the forecast mean."""
        rng = np.random.default_rng(0)
        d = 256
        truth = np.sin(np.linspace(0, 12, d)) * 5.0
        # Biased prior: the forecast mean is systematically wrong by ~2 units,
        # as after several cycles of an imperfect forecast model.
        bias = 2.0 * np.cos(np.linspace(0, 5, d))
        ensemble = truth[None, :] + bias[None, :] + 3.0 * rng.standard_normal((20, d))
        op = IdentityObservation(d, obs_error_var=0.25)
        obs = op.observe(truth, rng=1)
        filt = EnSF(EnSFConfig(n_sde_steps=60), rng=2)
        analysis = filt.analyze(ensemble, obs, op)
        prior_err = np.sqrt(((ensemble.mean(0) - truth) ** 2).mean())
        post_err = np.sqrt(((analysis.mean(0) - truth) ** 2).mean())
        assert analysis.shape == ensemble.shape
        assert post_err < prior_err

    def test_close_to_optimal_on_linear_gaussian(self):
        """Analysis error should approach the optimal Kalman error, not just improve."""
        rng = np.random.default_rng(3)
        d = 512
        truth = 4.0 * np.cos(np.linspace(0, 8, d))
        spread = 4.0
        ensemble = truth[None, :] + spread * rng.standard_normal((20, d))
        op = IdentityObservation(d, obs_error_var=1.0)
        obs = op.observe(truth, rng=4)
        filt = EnSF(EnSFConfig(n_sde_steps=100), rng=5)
        analysis = filt.analyze(ensemble, obs, op)
        post_err = np.sqrt(((analysis.mean(0) - truth) ** 2).mean())
        # Optimal posterior std is sqrt(1/(1/R + 1/spread²)) ≈ 0.97; allow slack.
        assert post_err < 2.0

    def test_spread_relaxation_restores_forecast_spread(self):
        rng = np.random.default_rng(6)
        d = 64
        ensemble = rng.standard_normal((10, d)) * 2.0
        op = IdentityObservation(d, obs_error_var=1.0)
        obs = op.observe(np.zeros(d), rng=7)
        filt = EnSF(EnSFConfig(n_sde_steps=40, spread_relaxation=1.0), rng=8)
        analysis = filt.analyze(ensemble, obs, op)
        assert np.allclose(
            analysis.std(axis=0, ddof=1), ensemble.std(axis=0, ddof=1), rtol=1e-6
        )

    def test_analyze_members_matches_dimensions(self):
        rng = np.random.default_rng(9)
        ensemble = rng.standard_normal((12, 32))
        op = IdentityObservation(32)
        obs = op.observe(np.zeros(32), rng=10)
        filt = EnSF(EnSFConfig(n_sde_steps=20), rng=11)
        local = filt.analyze_members(ensemble, obs, op, n_local_members=5, seed=3)
        assert local.shape == (5, 32)

    def test_rejects_bad_ensemble_shape(self):
        filt = EnSF()
        op = IdentityObservation(4)
        with pytest.raises(ValueError):
            filt.analyze(np.zeros(4), np.zeros(4), op)

    def test_nonlinear_observation_supported(self):
        rng = np.random.default_rng(12)
        d = 64
        truth = rng.normal(size=d)
        ensemble = truth[None, :] + rng.standard_normal((15, d))
        op = NonlinearObservation(d, kind="arctan", obs_error_var=0.05)
        obs = op.observe(truth, rng=13)
        filt = EnSF(EnSFConfig(n_sde_steps=50), rng=14)
        analysis = filt.analyze(ensemble, obs, op)
        assert np.isfinite(analysis).all()
