"""Unit tests for the DA baselines: localization, inflation, LETKF, EnKF, OSSE cycling."""

import numpy as np
import pytest

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation, SubsampledObservation
from repro.da.cycling import OSSEConfig, free_run, run_osse
from repro.da.enkf import EnKFConfig, StochasticEnKF
from repro.da.inflation import multiplicative_inflation, rtpp_inflation, rtps_inflation
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig, column_distances, gaspari_cohn
from repro.models.lorenz96 import Lorenz96
from repro.utils.grid import Grid2D


class TestLocalization:
    def test_gaspari_cohn_unit_at_zero(self):
        assert gaspari_cohn(np.array(0.0), 1.0) == pytest.approx(1.0)

    def test_gaspari_cohn_compact_support(self):
        r = np.linspace(0, 5, 200)
        w = gaspari_cohn(r, 1.0)
        assert np.all(w[r >= 2.0] == 0.0)
        assert np.all((w >= 0.0) & (w <= 1.0))

    def test_gaspari_cohn_monotone_decay(self):
        r = np.linspace(0, 2, 100)
        w = gaspari_cohn(r, 1.0)
        assert np.all(np.diff(w) <= 1e-12)

    def test_gaspari_cohn_validation(self):
        with pytest.raises(ValueError):
            gaspari_cohn(np.array(1.0), 0.0)

    def test_localization_config(self):
        cfg = LocalizationConfig(cutoff=2.0e6)
        assert cfg.weights(np.array(0.0)) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            LocalizationConfig(cutoff=-1.0)

    def test_column_distances_periodic(self):
        grid = Grid2D(nx=8, ny=8, lx=8.0, ly=8.0, nlev=2)
        d = column_distances(grid, 0, np.array([1, 7]))
        assert d[0] == pytest.approx(1.0)
        assert d[1] == pytest.approx(1.0)  # wraps around


class TestInflation:
    def test_multiplicative_preserves_mean(self):
        ens = np.random.default_rng(0).normal(size=(10, 5))
        infl = multiplicative_inflation(ens, 1.5)
        assert np.allclose(infl.mean(axis=0), ens.mean(axis=0))
        assert np.allclose(infl.std(axis=0), 1.5 * ens.std(axis=0))

    def test_rtps_factor_one_restores_forecast_spread(self):
        rng = np.random.default_rng(1)
        forecast = rng.normal(size=(20, 6)) * 2.0
        analysis = forecast.mean(axis=0) + 0.2 * rng.normal(size=(20, 6))
        out = rtps_inflation(analysis, forecast, 1.0)
        assert np.allclose(out.std(axis=0, ddof=1), forecast.std(axis=0, ddof=1), rtol=1e-6)

    def test_rtps_preserves_mean(self):
        rng = np.random.default_rng(2)
        forecast = rng.normal(size=(10, 4))
        analysis = rng.normal(size=(10, 4))
        out = rtps_inflation(analysis, forecast, 0.3)
        assert np.allclose(out.mean(axis=0), analysis.mean(axis=0))

    def test_rtpp_blends_perturbations(self):
        rng = np.random.default_rng(3)
        forecast = rng.normal(size=(10, 4))
        analysis = rng.normal(size=(10, 4))
        out = rtpp_inflation(analysis, forecast, 1.0)
        expected = analysis.mean(axis=0) + (forecast - forecast.mean(axis=0))
        assert np.allclose(out, expected)

    def test_validation(self):
        ens = np.zeros((4, 3))
        with pytest.raises(ValueError):
            multiplicative_inflation(ens, -1.0)
        with pytest.raises(ValueError):
            rtps_inflation(ens, ens, 1.5)
        with pytest.raises(ValueError):
            rtpp_inflation(ens, np.zeros((5, 3)), 0.5)


def _kalman_posterior_mean(prior_mean, prior_cov, obs, obs_var):
    """Reference Kalman update for identity observations."""
    gain = prior_cov @ np.linalg.inv(prior_cov + obs_var * np.eye(len(obs)))
    return prior_mean + gain @ (obs - prior_mean)


class TestEnKF:
    def test_large_ensemble_matches_kalman(self):
        rng = np.random.default_rng(0)
        d = 4
        prior_mean = np.array([1.0, -2.0, 0.5, 3.0])
        a = rng.normal(size=(d, d))
        prior_cov = a @ a.T / d + np.eye(d)
        ens = rng.multivariate_normal(prior_mean, prior_cov, size=4000)
        op = IdentityObservation(d, obs_error_var=0.5)
        obs = np.array([0.5, -1.0, 1.0, 2.0])
        analysis = StochasticEnKF(rng=1).analyze(ens, obs, op)
        expected = _kalman_posterior_mean(ens.mean(0), np.cov(ens.T), obs, 0.5)
        assert np.allclose(analysis.mean(axis=0), expected, atol=0.1)

    def test_reduces_error_with_accurate_obs(self):
        rng = np.random.default_rng(2)
        truth = rng.normal(size=30)
        ens = truth[None, :] + rng.normal(size=(50, 30))
        op = IdentityObservation(30, obs_error_var=0.01)
        obs = op.observe(truth, rng=3)
        analysis = StochasticEnKF(rng=4).analyze(ens, obs, op)
        assert np.abs(analysis.mean(0) - truth).mean() < np.abs(ens.mean(0) - truth).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            EnKFConfig(prior_inflation=0.5)
        filt = StochasticEnKF()
        with pytest.raises(ValueError):
            filt.analyze(np.zeros((1, 3)), np.zeros(3), IdentityObservation(3))


class TestLETKF:
    def _grid(self, n=8):
        return Grid2D(nx=n, ny=n, lx=2.0e7, ly=2.0e7, nlev=2)

    def test_matches_kalman_with_broad_localization(self):
        """With a huge cut-off the LETKF analysis mean approaches the Kalman mean."""
        rng = np.random.default_rng(0)
        grid = self._grid(4)
        d = grid.size
        truth = rng.normal(size=d) * 2.0
        ens = truth[None, :] + rng.normal(size=(400, d))
        op = IdentityObservation(d, obs_error_var=0.5)
        obs = op.observe(truth, rng=1)
        letkf = LETKF(grid, LETKFConfig(localization=LocalizationConfig(cutoff=1.0e9), rtps_factor=0.0))
        analysis = letkf.analyze(ens, obs, op)
        expected = _kalman_posterior_mean(ens.mean(0), np.cov(ens.T), obs, 0.5)
        assert np.sqrt(((analysis.mean(0) - expected) ** 2).mean()) < 0.12

    def test_improves_on_prior(self):
        rng = np.random.default_rng(2)
        grid = self._grid(8)
        d = grid.size
        truth = rng.normal(size=d) * 3.0
        bias = 1.5 * np.sin(np.linspace(0, 6, d))
        ens = truth[None, :] + bias[None, :] + 2.0 * rng.normal(size=(20, d))
        op = IdentityObservation(d, obs_error_var=0.25)
        obs = op.observe(truth, rng=3)
        letkf = LETKF(grid)
        analysis = letkf.analyze(ens, obs, op)
        prior_err = np.sqrt(((ens.mean(0) - truth) ** 2).mean())
        post_err = np.sqrt(((analysis.mean(0) - truth) ** 2).mean())
        assert post_err < prior_err

    def test_distant_observations_ignored(self):
        """With a tiny cut-off only the local observation affects a column."""
        rng = np.random.default_rng(4)
        grid = self._grid(8)
        d = grid.size
        ens = rng.normal(size=(10, d))
        op = SubsampledObservation(d, indices=np.array([0]), obs_error_var=0.01)
        obs = np.array([5.0])
        letkf = LETKF(
            grid, LETKFConfig(localization=LocalizationConfig(cutoff=grid.dx * 1.2), rtps_factor=0.0)
        )
        analysis = letkf.analyze(ens, obs, op)
        far_column = grid.ny * grid.nx // 2 + grid.nx // 2
        assert np.allclose(analysis[:, far_column], ens[:, far_column])
        assert not np.allclose(analysis[:, 0], ens[:, 0])

    def test_subsampled_observations_supported(self):
        rng = np.random.default_rng(5)
        grid = self._grid(8)
        d = grid.size
        truth = rng.normal(size=d)
        ens = truth[None, :] + rng.normal(size=(15, d))
        op = SubsampledObservation.every_nth(d, 4, obs_error_var=0.1)
        obs = op.observe(truth, rng=6)
        analysis = LETKF(grid).analyze(ens, obs, op)
        assert analysis.shape == ens.shape
        assert np.isfinite(analysis).all()

    def test_rtps_applied(self):
        rng = np.random.default_rng(7)
        grid = self._grid(4)
        d = grid.size
        truth = rng.normal(size=d)
        ens = truth[None, :] + rng.normal(size=(10, d))
        op = IdentityObservation(d, obs_error_var=0.01)
        obs = op.observe(truth, rng=8)
        no_rtps = LETKF(grid, LETKFConfig(rtps_factor=0.0)).analyze(ens, obs, op)
        full_rtps = LETKF(grid, LETKFConfig(rtps_factor=1.0)).analyze(ens, obs, op)
        assert full_rtps.std(0).mean() > no_rtps.std(0).mean()

    def test_validation(self):
        grid = self._grid(4)
        letkf = LETKF(grid)
        op = IdentityObservation(grid.size)
        with pytest.raises(ValueError):
            letkf.analyze(np.zeros((1, grid.size)), np.zeros(grid.size), op)
        with pytest.raises(ValueError):
            letkf.analyze(np.zeros((5, 7)), np.zeros(7), IdentityObservation(7))
        with pytest.raises(ValueError):
            LETKFConfig(rtps_factor=2.0)


class TestCycling:
    def _setup(self, seed=0):
        model = Lorenz96(dim=40)
        truth0 = model.spinup(400, rng=seed)
        op = IdentityObservation(40, obs_error_var=0.5)
        cfg = OSSEConfig(n_cycles=10, steps_per_cycle=4, ensemble_size=20, seed=seed,
                         apply_model_error_to_truth=True)
        return model, truth0, op, cfg

    def test_enkf_beats_free_run(self):
        model, truth0, op, cfg = self._setup()
        # RTPS keeps the unlocalized 20-member EnKF from diverging on the
        # model-error-perturbed truth; without it the comparison only passed
        # for lucky noise streams (it flipped when the sha256 seed-stream
        # derivation replaced the collision-prone byte-sum hash).
        filt = StochasticEnKF(EnKFConfig(prior_inflation=1.05, rtps_factor=0.5), rng=1)
        result = run_osse(model, model, filt, op, truth0, cfg, label="EnKF")
        free = free_run(model, model, truth0, cfg, label="free")
        assert result.mean_analysis_rmse < free.mean_analysis_rmse

    def test_ensf_beats_free_run_on_lorenz96(self):
        model, truth0, op, cfg = self._setup(seed=2)
        filt = EnSF(EnSFConfig(n_sde_steps=50), rng=3)
        result = run_osse(model, model, filt, op, truth0, cfg, label="EnSF")
        free = free_run(model, model, truth0, cfg, label="free")
        assert result.mean_analysis_rmse < free.mean_analysis_rmse

    def test_result_shapes_and_summary(self):
        model, truth0, op, cfg = self._setup(seed=4)
        filt = StochasticEnKF(rng=5)
        result = run_osse(model, model, filt, op, truth0, cfg, store_history=True)
        assert len(result.times) == cfg.n_cycles
        assert result.analysis_mean_history.shape == (cfg.n_cycles, 40)
        summary = result.summary()
        assert set(summary) >= {"label", "cycles", "mean_analysis_rmse"}

    def test_no_filter_is_free_ensemble_run(self):
        model, truth0, op, cfg = self._setup(seed=6)
        result = run_osse(model, model, None, op, truth0, cfg, label="no-da")
        assert np.allclose(result.analysis_rmse, result.forecast_rmse)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OSSEConfig(n_cycles=0)
        with pytest.raises(ValueError):
            OSSEConfig(ensemble_size=1)

    def test_initial_ensemble_size_checked(self):
        model, truth0, op, cfg = self._setup(seed=7)
        with pytest.raises(ValueError):
            run_osse(model, model, None, op, truth0, cfg, initial_ensemble=np.zeros((3, 40)))
