"""Unit tests for the simulated-Frontier HPC substrate and local parallelism."""

import os
import pickle
import threading
import time

import numpy as np
import pytest

from repro.hpc.collectives import CollectiveKind, CollectiveModel
from repro.hpc.comm import LocalCommGroup
from repro.hpc.ddp import DataParallel, bucketize
from repro.hpc.ensemble_parallel import (
    EnsembleExecutor,
    LeaseSlotScheduler,
    ensemble_slices,
)
from repro.hpc.fsdp import FSDPParallel
from repro.hpc.gemm import GEMMPerformanceModel, vit_achieved_tflops
from repro.hpc.memory import STRATEGY_TABLE, ShardingStrategy, TrainingMemoryModel
from repro.hpc.scaling import strong_scaling_study, weak_scaling_ensf
from repro.hpc.topology import FrontierTopology, GPUSpec
from repro.hpc.trainer_sim import DistributedTrainingSimulator, TrainingRunConfig
from repro.hpc.zero import ZeROParallel
from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation
from repro.da.cycling import OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.models.lorenz96 import Lorenz96
from repro.surrogate.presets import TABLE_II_PRESETS, laptop_preset
from repro.surrogate.vit import ViTConfig
from repro.utils.faults import FaultPlan
from repro.utils.grid import Grid2D

MB = 2.0**20


class TestTopology:
    def test_frontier_totals(self):
        topo = FrontierTopology()
        assert topo.total_gpus == 75264
        assert topo.node.gpus_per_node == 8
        assert topo.node.gpu.memory_gb == 64.0

    def test_nodes_for(self):
        topo = FrontierTopology()
        assert topo.nodes_for(8) == 1
        assert topo.nodes_for(9) == 2
        assert topo.nodes_for(1024) == 128
        with pytest.raises(ValueError):
            topo.nodes_for(0)
        with pytest.raises(ValueError):
            topo.nodes_for(10**9)

    def test_link_bandwidth_regimes(self):
        topo = FrontierTopology()
        assert topo.link_bandwidth_gbs(8) == pytest.approx(100.0)
        assert topo.link_bandwidth_gbs(64) < topo.link_bandwidth_gbs(8)

    def test_gpu_peak_flops(self):
        gpu = GPUSpec()
        assert gpu.peak_flops("bf16") > gpu.peak_flops("fp32")
        with pytest.raises(ValueError):
            gpu.peak_flops("int8")


class TestCollectives:
    def setup_method(self):
        self.model = CollectiveModel()

    def test_volume_factors(self):
        assert CollectiveModel.volume_factor(CollectiveKind.ALL_REDUCE, 4) == pytest.approx(1.5)
        assert CollectiveModel.volume_factor(CollectiveKind.ALL_GATHER, 4) == pytest.approx(0.75)
        assert CollectiveModel.volume_factor(CollectiveKind.ALL_REDUCE, 1) == 0.0

    def test_bandwidth_increases_with_message_size(self):
        small = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_GATHER, 4 * MB, 64)
        large = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_GATHER, 1024 * MB, 64)
        assert large > small

    def test_allreduce_dip_near_256mb(self):
        """The empirical AllReduce bandwidth drop around 256 MB (Fig. 8)."""
        at_dip = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_REDUCE, 256 * MB, 512)
        before = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_REDUCE, 64 * MB, 512)
        after = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_REDUCE, 1024 * MB, 512)
        assert at_dip < before and at_dip < after

    def test_allreduce_beats_gather_at_midsize_at_scale(self):
        ar = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_REDUCE, 64 * MB, 1024)
        ag = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_GATHER, 64 * MB, 1024)
        assert ar > ag

    def test_allgather_equals_reduce_scatter(self):
        for msg in [16 * MB, 128 * MB, 512 * MB]:
            ag = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_GATHER, msg, 256)
            rs = self.model.bus_bandwidth_gbs(CollectiveKind.REDUCE_SCATTER, msg, 256)
            assert ag == pytest.approx(rs)

    def test_bandwidth_decreases_with_scale(self):
        small = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_GATHER, 256 * MB, 16)
        large = self.model.bus_bandwidth_gbs(CollectiveKind.ALL_GATHER, 256 * MB, 1024)
        assert large < small

    def test_time_zero_cases(self):
        assert self.model.time_seconds(CollectiveKind.ALL_REDUCE, 0.0, 16) == 0.0
        assert self.model.time_seconds(CollectiveKind.ALL_REDUCE, 1e6, 1) == 0.0
        with pytest.raises(ValueError):
            self.model.time_seconds(CollectiveKind.ALL_REDUCE, -1.0, 16)

    def test_sweep_shape(self):
        sizes = np.array([4, 16, 64]) * MB
        out = self.model.sweep(CollectiveKind.ALL_REDUCE, sizes, 64)
        assert out.shape == (3,)
        assert np.all(out > 0)


class TestGEMM:
    def test_efficiency_bounds(self):
        model = GEMMPerformanceModel()
        eff = model.efficiency(2048, 2048, 2048)
        assert 0.0 < eff <= model.max_efficiency
        with pytest.raises(ValueError):
            model.efficiency(0, 10, 10)

    def test_bigger_gemm_more_efficient(self):
        model = GEMMPerformanceModel()
        assert model.efficiency(4096, 4096, 4096) > model.efficiency(128, 128, 128)

    def test_achieved_tflops_in_paper_range(self):
        """All Table II configurations must land in the measured 20–52 TFLOPS band."""
        for size, cfg in TABLE_II_PRESETS.items():
            batch = TrainingRunConfig(vit=cfg, n_gpus=8).per_gpu_batch
            tflops = vit_achieved_tflops(cfg, batch_size=batch)
            assert 20.0 <= tflops <= 52.0, f"{size}: {tflops}"

    def test_embedding_2048_beats_1024(self):
        small = ViTConfig(image_size=128, patch_size=4, depth=4, num_heads=8, embed_dim=1024)
        large = ViTConfig(image_size=128, patch_size=4, depth=4, num_heads=8, embed_dim=2048)
        assert vit_achieved_tflops(large, 4) > vit_achieved_tflops(small, 4)

    def test_more_heads_reduce_performance(self):
        few = ViTConfig(image_size=128, patch_size=4, depth=4, num_heads=8, embed_dim=2048)
        many = ViTConfig(image_size=128, patch_size=4, depth=4, num_heads=32, embed_dim=2048)
        assert vit_achieved_tflops(few, 4) >= vit_achieved_tflops(many, 4)

    def test_higher_mlp_ratio_improves_throughput(self):
        low = ViTConfig(image_size=128, patch_size=4, depth=4, num_heads=8, embed_dim=2048, mlp_ratio=2.0)
        high = ViTConfig(image_size=128, patch_size=4, depth=4, num_heads=8, embed_dim=2048, mlp_ratio=8.0)
        assert vit_achieved_tflops(high, 4) > vit_achieved_tflops(low, 4)


class TestMemory:
    def test_table_i_mapping(self):
        assert STRATEGY_TABLE[ShardingStrategy.FSDP_GRAD_OP]["zero_equivalent"] == ShardingStrategy.ZERO_2
        assert STRATEGY_TABLE[ShardingStrategy.FSDP_FULL]["zero_equivalent"] == ShardingStrategy.ZERO_3
        assert STRATEGY_TABLE[ShardingStrategy.ZERO_1]["shards"] == frozenset({"optimizer"})
        assert STRATEGY_TABLE[ShardingStrategy.FSDP_HYBRID]["zero_equivalent"] is None

    def test_total_multiplier_near_twelve(self):
        assert TrainingMemoryModel().total_multiplier() == pytest.approx(12.0)

    def test_sharding_reduces_memory_monotonically(self):
        model = TrainingMemoryModel()
        params = 2.5e9
        ddp = model.per_gpu_bytes(params, ShardingStrategy.DDP, 64)
        z1 = model.per_gpu_bytes(params, ShardingStrategy.ZERO_1, 64)
        z2 = model.per_gpu_bytes(params, ShardingStrategy.ZERO_2, 64)
        z3 = model.per_gpu_bytes(params, ShardingStrategy.ZERO_3, 64)
        assert ddp > z1 > z2 > z3

    def test_large_model_needs_sharding(self):
        """A 2.5B-parameter ViT under plain DDP leaves no activation headroom on a 64 GB GCD."""
        model = TrainingMemoryModel()
        ddp_bytes = model.per_gpu_bytes(2.5e9, ShardingStrategy.DDP, 64)
        assert ddp_bytes > 0.8 * 64 * 2.0**30
        zero3_bytes = model.per_gpu_bytes(2.5e9, ShardingStrategy.ZERO_3, 64)
        assert zero3_bytes < 10 * 2.0**30
        assert model.fits_on_gpu(2.5e9, ShardingStrategy.ZERO_3, 64)

    def test_hybrid_shards_within_group(self):
        model = TrainingMemoryModel()
        full = model.per_gpu_bytes(1e9, ShardingStrategy.FSDP_FULL, 64)
        hybrid = model.per_gpu_bytes(1e9, ShardingStrategy.FSDP_HYBRID, 64, hybrid_group_size=8)
        assert hybrid > full

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingMemoryModel().per_gpu_bytes(1e6, ShardingStrategy.DDP, 0)


class TestLocalComm:
    def test_allreduce_matches_numpy(self):
        comm = LocalCommGroup(4)
        rng = np.random.default_rng(0)
        buffers = [rng.normal(size=(3, 2)) for _ in range(4)]
        out = comm.allreduce(buffers, op="sum")
        expected = np.sum(buffers, axis=0)
        for o in out:
            assert np.allclose(o, expected)

    def test_allreduce_ops(self):
        comm = LocalCommGroup(3)
        buffers = [np.array([1.0, 5.0]), np.array([2.0, 1.0]), np.array([3.0, 3.0])]
        assert np.allclose(comm.allreduce(buffers, "mean")[0], [2.0, 3.0])
        assert np.allclose(comm.allreduce(buffers, "max")[1], [3.0, 5.0])
        assert np.allclose(comm.allreduce(buffers, "min")[2], [1.0, 1.0])
        with pytest.raises(ValueError):
            comm.allreduce(buffers, "prod")

    def test_allgather(self):
        comm = LocalCommGroup(3)
        buffers = [np.full(2, r, dtype=float) for r in range(3)]
        out = comm.allgather(buffers)
        assert np.allclose(out[0], [0, 0, 1, 1, 2, 2])

    def test_reduce_scatter_chunks_sum(self):
        comm = LocalCommGroup(4)
        rng = np.random.default_rng(1)
        buffers = [rng.normal(size=8) for _ in range(4)]
        chunks = comm.reduce_scatter(buffers)
        reconstructed = np.concatenate(chunks)[:8]
        assert np.allclose(reconstructed, np.sum(buffers, axis=0))

    def test_broadcast_and_scatter_gather(self):
        comm = LocalCommGroup(4)
        out = comm.broadcast(np.arange(3.0), root=2)
        assert all(np.allclose(o, [0, 1, 2]) for o in out)
        scattered = comm.scatter(np.arange(8.0))
        assert np.allclose(scattered[1], [2, 3])
        gathered = comm.gather([np.full(2, r, dtype=float) for r in range(4)])
        assert gathered.shape == (8,)

    def test_traffic_log_and_estimated_time(self):
        comm = LocalCommGroup(4, cost_model=CollectiveModel())
        comm.allreduce([np.zeros(100) for _ in range(4)])
        assert comm.traffic.calls["all_reduce"] == 1
        assert comm.estimated_time(n_gpus=64) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalCommGroup(0)
        comm = LocalCommGroup(2)
        with pytest.raises(ValueError):
            comm.allreduce([np.zeros(2)])
        with pytest.raises(ValueError):
            comm.allreduce([np.zeros(2), np.zeros(3)])
        with pytest.raises(ValueError):
            comm.broadcast(np.zeros(2), root=5)


class TestStrategies:
    def test_bucketize(self):
        assert bucketize(450.0, 200.0) == [200.0, 200.0, 50.0]
        assert bucketize(0.0, 100.0) == []
        with pytest.raises(ValueError):
            bucketize(10.0, 0.0)

    def test_ddp_gradient_sync_matches_mean(self):
        comm = LocalCommGroup(3)
        rng = np.random.default_rng(0)
        grads = [[rng.normal(size=(2, 2)), rng.normal(size=4)] for _ in range(3)]
        synced = DataParallel().synchronize_gradients(comm, grads)
        for t in range(2):
            expected = np.mean([grads[r][t] for r in range(3)], axis=0)
            for r in range(3):
                assert np.allclose(synced[r][t], expected)

    def test_zero_step_equals_serial_sgd(self):
        comm = LocalCommGroup(4)
        rng = np.random.default_rng(1)
        params = rng.normal(size=10)
        grads = [rng.normal(size=10) for _ in range(4)]
        zero = ZeROParallel(stage=2)
        updated = zero.step(comm, [params.copy() for _ in range(4)], grads, learning_rate=0.1)
        serial = params - 0.1 * np.mean(grads, axis=0)
        for rank_params in updated:
            assert np.allclose(rank_params, serial)

    def test_fsdp_round_trip_equals_serial_sgd(self):
        comm = LocalCommGroup(3)
        rng = np.random.default_rng(2)
        params = rng.normal(size=11)
        grads = [rng.normal(size=11) for _ in range(3)]
        fsdp = FSDPParallel("full_shard")
        updated = fsdp.train_step_identity_check(comm, params, grads, learning_rate=0.2)
        assert np.allclose(updated, params - 0.2 * np.mean(grads, axis=0))

    def test_comm_event_volumes(self):
        param_bytes = 1000 * MB
        ddp_vol = sum(e.total_bytes for e in DataParallel(bucket_bytes=200 * MB).comm_events(param_bytes, 64))
        z2_vol = sum(e.total_bytes for e in ZeROParallel(2).comm_events(param_bytes, 64))
        z3_vol = sum(e.total_bytes for e in ZeROParallel(3).comm_events(param_bytes, 64))
        full = sum(e.total_bytes for e in FSDPParallel("full_shard").comm_events(param_bytes, 64))
        grad_op = sum(e.total_bytes for e in FSDPParallel("shard_grad_op").comm_events(param_bytes, 64))
        assert ddp_vol == pytest.approx(param_bytes)
        assert z2_vol == pytest.approx(2 * param_bytes)
        assert z3_vol == pytest.approx(3 * param_bytes)
        # FSDP full_shard carries ~50 % more traffic than shard_grad_op (§III-B b).
        assert full == pytest.approx(1.5 * grad_op)

    def test_single_gpu_needs_no_communication(self):
        assert DataParallel().comm_events(1e9, 1) == []
        assert ZeROParallel(1).comm_events(1e9, 1) == []
        assert FSDPParallel().comm_events(1e9, 1) == []

    def test_strategy_metadata(self):
        assert ZeROParallel(1).strategy == ShardingStrategy.ZERO_1
        assert FSDPParallel("hybrid_shard").strategy == ShardingStrategy.FSDP_HYBRID
        with pytest.raises(ValueError):
            ZeROParallel(4)
        with pytest.raises(ValueError):
            FSDPParallel("bogus")


class TestTrainerSimulator:
    def setup_method(self):
        self.sim = DistributedTrainingSimulator()

    def test_breakdown_fractions_sum_to_one(self):
        run = TrainingRunConfig(vit=TABLE_II_PRESETS[128], n_gpus=1024)
        bd = self.sim.step_breakdown(run, ZeROParallel(1))
        assert sum(bd.fractions().values()) == pytest.approx(1.0)
        assert bd.compute > 0 and bd.io > 0 and bd.total_comm > 0

    def test_auto_micro_batch_matches_memory_rule(self):
        assert TrainingRunConfig(vit=TABLE_II_PRESETS[64], n_gpus=8).per_gpu_batch == 8
        assert TrainingRunConfig(vit=TABLE_II_PRESETS[256], n_gpus=8).per_gpu_batch == 1

    def test_efficiency_decreases_with_scale(self):
        effs = self.sim.scaling_efficiency(TABLE_II_PRESETS[128], [8, 64, 1024], ZeROParallel(1))
        assert effs[8] == pytest.approx(1.0)
        assert effs[1024] <= effs[64] <= 1.0

    def test_fig9_128_scales_best(self):
        """The 128² / 1.2B configuration achieves the best scaling efficiency (Fig. 9)."""
        strategy = ZeROParallel(1, bucket_bytes=500 * MB)
        eff = {
            size: self.sim.scaling_efficiency(cfg, [8, 1024], strategy)[1024]
            for size, cfg in TABLE_II_PRESETS.items()
        }
        assert eff[128] > eff[64]
        assert eff[128] > eff[256]
        assert 0.80 <= eff[128] <= 0.95

    def test_fig9_bucket_tuning_helps_256(self):
        small_bucket = self.sim.scaling_efficiency(TABLE_II_PRESETS[256], [8, 1024], ZeROParallel(1, 200 * MB))[1024]
        tuned_bucket = self.sim.scaling_efficiency(TABLE_II_PRESETS[256], [8, 1024], ZeROParallel(1, 500 * MB))[1024]
        assert tuned_bucket > small_bucket

    def test_fig9_fsdp_full_worst(self):
        strategies = {
            "zero1": ZeROParallel(1, 500 * MB),
            "fsdp_full": FSDPParallel("full_shard"),
            "fsdp_grad_op": FSDPParallel("shard_grad_op"),
        }
        eff = {
            name: self.sim.scaling_efficiency(TABLE_II_PRESETS[256], [8, 1024], s)[1024]
            for name, s in strategies.items()
        }
        assert eff["fsdp_full"] < eff["fsdp_grad_op"]
        assert eff["fsdp_full"] < eff["zero1"]

    def test_fig7_comm_fraction_ordering(self):
        """64² and 256² spend a larger communication share than 128² at 1024 GPUs."""
        fracs = {
            size: self.sim.step_breakdown(
                TrainingRunConfig(vit=cfg, n_gpus=1024), ZeROParallel(1)
            ).fractions()
            for size, cfg in TABLE_II_PRESETS.items()
        }
        assert fracs[64]["communication"] > fracs[128]["communication"]
        assert fracs[256]["communication"] > fracs[128]["communication"]
        for size in fracs:
            assert fracs[size]["io"] < 0.15

    def test_memory_per_gpu_decreases_with_sharding(self):
        run = TrainingRunConfig(vit=TABLE_II_PRESETS[256], n_gpus=64)
        ddp = self.sim.memory_per_gpu_gb(run, DataParallel())
        z3 = self.sim.memory_per_gpu_gb(run, ZeROParallel(3))
        assert z3 < ddp

    def test_run_config_validation(self):
        with pytest.raises(ValueError):
            TrainingRunConfig(vit=TABLE_II_PRESETS[64], n_gpus=0)
        with pytest.raises(ValueError):
            TrainingRunConfig(vit=TABLE_II_PRESETS[64], n_gpus=8, micro_batch=0)


class TestScalingHarness:
    def test_strong_scaling_study_structure(self):
        points = strong_scaling_study(
            laptop_preset(image_size=64, patch_size=4),
            {"ddp": DataParallel(), "zero1": ZeROParallel(1)},
            [8, 64],
        )
        assert len(points) == 4
        assert {p.strategy for p in points} == {"ddp", "zero1"}
        assert all(p.efficiency <= 1.0 + 1e-9 for p in points)

    def test_weak_scaling_ensf_is_flat(self):
        """EnSF weak scaling: time at 1024 ranks stays close to the single-rank time (Fig. 10)."""
        points = weak_scaling_ensf(
            dimensions=[1.0e5],
            gpu_counts=[1, 64, 1024],
            ensemble_size=10,
            n_sde_steps=10,
            measured_dimension=20_000,
        )
        times = {p.n_gpus: p.time_per_step for p in points}
        assert times[1024] <= 1.5 * times[1]

    def test_weak_scaling_dimension_scaling_linear(self):
        points = weak_scaling_ensf(
            dimensions=[1.0e5, 1.0e6],
            gpu_counts=[8],
            ensemble_size=10,
            n_sde_steps=10,
            measured_dimension=20_000,
        )
        t = {p.dimension_per_rank: p.time_per_step for p in points}
        assert t[1.0e6] > 5.0 * t[1.0e5]

    def test_ensemble_slices_cover_everything(self):
        slices = ensemble_slices(20, 6)
        covered = sorted(i for s in slices for i in range(s.start, s.stop))
        assert covered == list(range(20))
        assert max(s.stop - s.start for s in slices) - min(s.stop - s.start for s in slices) <= 1
        with pytest.raises(ValueError):
            ensemble_slices(0, 4)

    def test_executor_serial_matches_direct_forecast(self):
        model = Lorenz96(dim=12)
        ens = np.random.default_rng(0).normal(size=(6, 12)) + 8.0
        executor = EnsembleExecutor(n_workers=1)
        out = executor.map_states(model, ens, n_steps=3)
        assert np.allclose(out, model.forecast(ens, n_steps=3))

    def test_executor_parallel_matches_serial(self):
        model = Lorenz96(dim=12)
        ens = np.random.default_rng(1).normal(size=(8, 12)) + 8.0
        parallel = EnsembleExecutor(n_workers=2, min_members_per_worker=1)
        out = parallel.map_states(model, ens, n_steps=2)
        assert np.allclose(out, model.forecast(ens, n_steps=2))

    def test_executor_validation(self):
        with pytest.raises(ValueError):
            EnsembleExecutor(n_workers=0)
        executor = EnsembleExecutor(n_workers=2)
        with pytest.raises(ValueError):
            executor.map_states(Lorenz96(dim=8), np.zeros(8))

    def test_executor_reuses_pool_across_calls(self):
        model = Lorenz96(dim=8)
        ens = np.random.default_rng(3).normal(size=(4, 8)) + 8.0
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as executor:
            executor.map_states(model, ens, n_steps=1)
            pool = executor._pool
            assert pool is not None
            executor.map_states(model, ens, n_steps=1)
            assert executor._pool is pool  # same pool, no per-call respawn
        assert executor._pool is None  # context exit released the workers

    def test_map_blocks_preserves_order(self):
        jobs = [np.full(3, i, dtype=float) for i in range(7)]
        with EnsembleExecutor(n_workers=2) as executor:
            results = executor.map_blocks(np.negative, jobs)
        for i, out in enumerate(results):
            assert np.array_equal(out, -jobs[i])
        assert EnsembleExecutor(n_workers=4).map_blocks(np.negative, []) == []

    def test_map_blocks_single_job_runs_in_process(self):
        executor = EnsembleExecutor(n_workers=4)
        results = executor.map_blocks(np.negative, [np.ones(2)])
        assert executor._pool is None  # one job => serial fallback, no pool
        assert np.array_equal(results[0], -np.ones(2))

    def test_executor_drops_broken_pool(self):
        from concurrent.futures.process import BrokenProcessPool

        from repro.hpc.ensemble_parallel import ShardRetryError

        # With the retry budget exhausted the failure surfaces as
        # ShardRetryError (chaining the BrokenProcessPool) and the dead pool
        # must not poison the next call.
        executor = EnsembleExecutor(
            n_workers=2, min_members_per_worker=1, max_retries=0, retry_backoff_s=0.0
        )

        class _DeadPool:
            def submit(self, fn, *args):
                raise BrokenProcessPool("worker died")

            def shutdown(self, *a, **k):
                pass

        executor._pool = _DeadPool()
        executor._pool_workers = 2
        with pytest.raises(ShardRetryError) as excinfo:
            executor._gather(np.negative, [np.ones(2), np.ones(2)], workers=2)
        assert isinstance(excinfo.value.__cause__, BrokenProcessPool)
        assert executor._pool is None

    def test_executor_rebuilds_broken_pool_transparently(self):
        from concurrent.futures.process import BrokenProcessPool

        # With retries left, a dead pool is replaced and the shards are
        # recomputed on the fresh pool — the caller never sees the failure.
        executor = EnsembleExecutor(n_workers=2, min_members_per_worker=1, retry_backoff_s=0.0)

        class _DeadPool:
            def submit(self, fn, *args):
                raise BrokenProcessPool("worker died")

            def shutdown(self, *a, **k):
                pass

        executor._pool = _DeadPool()
        executor._pool_workers = 2
        try:
            results = executor.map_blocks(np.negative, [np.ones(2), np.full(2, 2.0)])
            np.testing.assert_array_equal(results[0], -np.ones(2))
            np.testing.assert_array_equal(results[1], np.full(2, -2.0))
            assert executor.fault_log.count(action="retry") == 1
            assert executor.fault_log.count(action="pool-rebuild") == 1
        finally:
            executor.close()


class TestRetryBackoffJitter:
    """Retry delays are exponential with multiplicative jitter drawn from a
    dedicated rng — never from an experiment stream, so healing a fault can
    never shift scientific results."""

    def test_delay_bounds_and_exponential_growth(self):
        executor = EnsembleExecutor(n_workers=2, retry_backoff_s=0.2, backoff_seed=0)
        try:
            for attempt in (1, 2, 3):
                base = 0.2 * 2 ** (attempt - 1)
                delays = [executor._retry_delay(attempt) for _ in range(200)]
                assert all(0.5 * base <= d <= 1.5 * base for d in delays)
                # jitter actually varies (not a constant factor)
                assert max(delays) - min(delays) > 0.1 * base
        finally:
            executor.close()

    def test_backoff_seed_reproducible_and_isolated(self):
        a = EnsembleExecutor(n_workers=2, retry_backoff_s=0.1, backoff_seed=7)
        b = EnsembleExecutor(n_workers=2, retry_backoff_s=0.1, backoff_seed=7)
        try:
            assert [a._retry_delay(1) for _ in range(16)] == [
                b._retry_delay(1) for _ in range(16)
            ]
        finally:
            a.close()
            b.close()

    def test_zero_backoff_stays_zero(self):
        executor = EnsembleExecutor(n_workers=2, retry_backoff_s=0.0, backoff_seed=1)
        try:
            assert executor._retry_delay(1) == 0.0
            assert executor._retry_delay(4) == 0.0
        finally:
            executor.close()


class TestExecutorLease:
    """Per-job views of a shared pool: own fault log, own (empty) fault plan."""

    def test_lease_routes_faults_to_its_own_log(self):
        model = Lorenz96(dim=8)
        ens = np.random.default_rng(5).normal(size=(4, 8)) + 8.0
        plan = FaultPlan.from_spec("worker-crash@executor:0")
        with EnsembleExecutor(
            n_workers=1, retry_backoff_s=0.0, fault_plan=FaultPlan()
        ) as executor:
            lease = executor.lease(job="job-a", fault_plan=plan)
            out = lease.map_states(model, ens, n_steps=2)
            np.testing.assert_array_equal(out, model.forecast(ens, n_steps=2))
            # the injected crash healed into the lease's log, not the pool's
            assert lease.fault_log.count(action="retry") == 1
            assert len(executor.fault_log) == 0
            assert lease.parent is executor

    def test_lease_defaults_to_no_faults(self):
        model = Lorenz96(dim=8)
        ens = np.random.default_rng(6).normal(size=(3, 8)) + 8.0
        plan = FaultPlan.from_spec("worker-crash@executor:0")
        with EnsembleExecutor(
            n_workers=1, retry_backoff_s=0.0, fault_plan=plan
        ) as executor:
            lease = executor.lease(job="job-b")
            # env/executor plans do not leak into leases: each job opts in
            lease.map_states(model, ens, n_steps=1)
            assert len(lease.fault_log) == 0
            # the executor's own plan still applies to direct (non-lease) use
            executor.map_states(model, ens, n_steps=1)
            assert executor.fault_log.count(action="retry") == 1


class TestParallelAnalysis:
    """Worker-invariance contracts of the parallel analysis paths."""

    def _ensf_case(self, members=8, shape=(8, 8)):
        grid = Grid2D(*shape)
        rng = np.random.default_rng(0)
        ensemble = rng.standard_normal((members, grid.size)) * 2.0
        truth = rng.standard_normal(grid.size) * 2.0
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        filt = EnSF(EnSFConfig(n_sde_steps=6), rng=0)
        return filt, ensemble, observation, operator

    def test_ensf_executor_worker_count_invariant(self, array_backend):
        """n_workers ∈ {1, 2, 4} must produce bit-identical analyses — under
        every array backend (the member-seeded draws are host-stream by
        contract, so the backend must never move them)."""
        filt, ensemble, observation, operator = self._ensf_case()
        assert filt.sampler.xp is array_backend
        results = []
        for n_workers in (1, 2, 4):
            with EnsembleExecutor(n_workers=n_workers, min_members_per_worker=1) as ex:
                results.append(ex.analyze_ensf(filt, ensemble, observation, operator, seed=9))
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_ensf_executor_slice_layout_invariant(self):
        """min_members_per_worker only regroups members; draws must not move."""
        filt, ensemble, observation, operator = self._ensf_case()
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as fine:
            a = fine.analyze_ensf(filt, ensemble, observation, operator, seed=4)
        with EnsembleExecutor(n_workers=2, min_members_per_worker=100) as coarse:
            b = coarse.analyze_ensf(filt, ensemble, observation, operator, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_ensf_executor_seed_semantics(self):
        filt, ensemble, observation, operator = self._ensf_case()
        executor = EnsembleExecutor(n_workers=1)
        base = executor.analyze_ensf(filt, ensemble, observation, operator, seed=1)
        again = executor.analyze_ensf(filt, ensemble, observation, operator, seed=1)
        other = executor.analyze_ensf(filt, ensemble, observation, operator, seed=2)
        np.testing.assert_array_equal(base, again)
        assert not np.array_equal(base, other)
        # SeedSequence roots (what the realtime workflow derives per cycle
        # from its named "ensf-parallel" stream) are accepted directly, and
        # the caller's object is never mutated: reusing the same root must
        # reproduce (spawning from it directly would advance its child
        # counter and silently change the second call).
        seq = np.random.SeedSequence(1)
        from_seq = executor.analyze_ensf(filt, ensemble, observation, operator, seed=seq)
        np.testing.assert_array_equal(base, from_seq)
        reused = executor.analyze_ensf(filt, ensemble, observation, operator, seed=seq)
        np.testing.assert_array_equal(from_seq, reused)
        assert seq.n_children_spawned == 0

    def test_analyze_members_member_seeds_concat_invariant(self):
        """Member-wise streams: any split of the seed list concatenates to
        the full-batch draw (the property the executor relies on)."""
        filt, ensemble, observation, operator = self._ensf_case(members=6)
        seeds = np.random.SeedSequence(3).spawn(6)
        full = filt.analyze_members(ensemble, observation, operator, member_seeds=seeds)
        head = filt.analyze_members(ensemble, observation, operator, member_seeds=seeds[:2])
        tail = filt.analyze_members(ensemble, observation, operator, member_seeds=seeds[2:])
        np.testing.assert_array_equal(full, np.concatenate([head, tail], axis=0))
        with pytest.raises(ValueError):
            filt.analyze_members(ensemble, observation, operator)
        with pytest.raises(ValueError):
            filt.analyze_members(
                ensemble, observation, operator, n_local_members=3, member_seeds=seeds
            )
        with pytest.raises(ValueError):
            # legacy mode must never fall through to fresh OS entropy
            filt.analyze_members(ensemble, observation, operator, n_local_members=3)

    def test_analyze_members_rejects_minibatch_with_member_seeds(self):
        """Minibatched score draws are shared per worker chunk, so they can
        never be worker-layout invariant; the member-seeded mode refuses."""
        _, ensemble, observation, operator = self._ensf_case(members=6)
        filt = EnSF(EnSFConfig(n_sde_steps=6, minibatch=3), rng=0)
        seeds = np.random.SeedSequence(0).spawn(6)
        with pytest.raises(ValueError, match="minibatch"):
            filt.analyze_members(ensemble, observation, operator, member_seeds=seeds)
        with pytest.raises(ValueError, match="minibatch"):
            EnsembleExecutor(n_workers=1).analyze_ensf(
                filt, ensemble, observation, operator, seed=0
            )

    def _letkf_case(self, shape=(12, 12), members=10):
        grid = Grid2D(*shape)
        rng = np.random.default_rng(1)
        ensemble = rng.standard_normal((members, grid.size))
        truth = rng.standard_normal(grid.size)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        config = LETKFConfig(
            localization=LocalizationConfig(cutoff=4.0e6), shard_columns=48
        )
        return LETKF(grid, config), ensemble, observation, operator

    def test_letkf_sharded_worker_count_invariant(self):
        letkf, ensemble, observation, operator = self._letkf_case()
        serial = letkf.analyze(ensemble, observation, operator)
        results = []
        for n_workers in (1, 2):
            with EnsembleExecutor(n_workers=n_workers) as ex:
                results.append(
                    letkf.analyze_parallel(ensemble, observation, operator, executor=ex)
                )
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_allclose(results[0], serial, atol=1e-11, rtol=1e-11)

    def test_run_osse_analysis_executor_matches_serial(self):
        """The executor plumbed through the OSSE analysis section must not
        change the cycling results (worker-invariance end to end)."""
        grid = Grid2D(8, 8)
        model = Lorenz96(dim=grid.size)
        truth0 = np.random.default_rng(2).standard_normal(grid.size)
        operator = IdentityObservation(grid.size, 1.0)
        config = OSSEConfig(n_cycles=2, steps_per_cycle=1, ensemble_size=6, seed=0)
        letkf_cfg = LETKFConfig(
            localization=LocalizationConfig(cutoff=4.0e6), shard_columns=32
        )
        serial = run_osse(
            model, model, LETKF(grid, letkf_cfg), operator, truth0, config
        )
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex:
            parallel = run_osse(
                model, model, LETKF(grid, letkf_cfg), operator, truth0, config,
                executor=ex,
            )
        np.testing.assert_allclose(
            parallel.analysis_mean_final, serial.analysis_mean_final, atol=1e-11
        )
        np.testing.assert_allclose(
            parallel.analysis_rmse, serial.analysis_rmse, atol=1e-11
        )


# Module-level worker functions: pool workers resolve them by reference.
def _stamped_sleep(job):
    """Sleep, then report (index, pid, start, end, value) for occupancy proofs."""
    idx, delay = job
    start = time.monotonic()
    time.sleep(delay)
    return (idx, os.getpid(), start, time.monotonic(), float(idx) * 3.0 + 1.0)


def _payload_checksum(job):
    """Deterministic reduction over a (tag, array, array) work-unit."""
    tag, a, b = job
    return float(tag) + float(np.sum(a * 1.5)) + float(np.sum(b[::2]))


class TestLeaseQuotas:
    """Per-lease pool-slot quotas: enforced occupancy, invariant results."""

    def test_quota_lease_never_occupies_more_than_one_slot(self):
        """A max_workers=1 lease must hold at most one pool slot even while a
        co-scheduled unconstrained lease keeps the pool busy — proven from
        worker-side [start, end) stamps, with the quota lease's computed
        values exactly equal to an unconstrained run of the same jobs."""
        quota_jobs = [(i, 0.08) for i in range(4)]
        sibling_jobs = [(10 + i, 0.08) for i in range(4)]
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex:
            quota_lease = ex.lease(job="quota", max_workers=1)
            sibling_lease = ex.lease(job="sibling")
            results = {}
            barrier = threading.Barrier(2)

            def run(name, lease, jobs):
                barrier.wait()
                results[name] = lease.map_blocks(_stamped_sleep, jobs)

            threads = [
                threading.Thread(target=run, args=("quota", quota_lease, quota_jobs)),
                threading.Thread(target=run, args=("sibling", sibling_lease, sibling_jobs)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            unconstrained = ex.map_blocks(_stamped_sleep, quota_jobs)

        quota_spans = sorted((r[2], r[3]) for r in results["quota"])
        # ≤ 1 slot: the quota lease's shard executions never overlap.
        for (_, prev_end), (next_start, _) in zip(quota_spans, quota_spans[1:]):
            assert next_start >= prev_end
        # The pool itself was concurrently busy (the proof is non-vacuous):
        # some sibling shard overlapped some quota shard.
        sibling_spans = [(r[2], r[3]) for r in results["sibling"]]
        assert any(
            s_start < q_end and q_start < s_end
            for q_start, q_end in quota_spans
            for s_start, s_end in sibling_spans
        )
        # Exact-zero result deltas vs. the unconstrained run of the same jobs.
        assert [r[::4] for r in results["quota"]] == [r[::4] for r in unconstrained]

    def test_quota_results_bit_identical_letkf_and_ensf(self):
        """Quotas cap concurrency, never the decomposition: any max_workers
        yields bit-identical analyses through a real pool."""
        case = TestParallelAnalysis()
        letkf, l_ens, l_obs, l_op = case._letkf_case()
        filt, e_ens, e_obs, e_op = case._ensf_case()
        letkf_results, ensf_results = [], []
        for quota in (None, 1, 2):
            with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex:
                lease = ex.lease(job=f"quota-{quota}", max_workers=quota)
                letkf_results.append(
                    letkf.analyze_parallel(l_ens, l_obs, l_op, executor=lease)
                )
                ensf_results.append(lease.analyze_ensf(filt, e_ens, e_obs, e_op, seed=9))
        for got in letkf_results[1:]:
            np.testing.assert_array_equal(letkf_results[0], got)
        for got in ensf_results[1:]:
            np.testing.assert_array_equal(ensf_results[0], got)

    def test_lease_release_bookkeeping(self):
        with EnsembleExecutor(n_workers=2) as ex:
            assert ex.active_leases == 0
            lease = ex.lease(job="a", max_workers=2)
            other = ex.lease(job="b")
            assert ex.active_leases == 2
            lease.close()
            lease.close()  # idempotent
            assert ex.active_leases == 1
            with other:
                pass
            assert ex.active_leases == 0
            assert lease.closed and other.closed

    def test_lease_quota_validation_and_retarget(self):
        with EnsembleExecutor(n_workers=4) as ex:
            with pytest.raises(ValueError):
                ex.lease(job="bad", max_workers=0)
            lease = ex.lease(job="ok", max_workers=3)
            assert lease.max_workers == 3
            lease.max_workers = 1  # the service re-targets quotas live
            assert lease.max_workers == 1
            lease.close()

    def test_slot_scheduler_fair_share_and_waiter_priority(self):
        """Deterministic scheduler semantics, no pool involved."""
        sched = LeaseSlotScheduler(4)
        a, b = sched.register(), sched.register()
        # Lone demander takes the whole capacity...
        sched.set_demand(b, False)
        assert all(sched.try_acquire(a) for _ in range(4))
        assert not sched.try_acquire(a)  # capacity exhausted
        # ...until a sibling demands: then ceil(4/2)=2 is a's share, so a
        # cannot re-acquire past it while b is hungry, and b climbs to its
        # share as a's shards complete.
        sched.set_demand(b, True)
        sched.release(a)
        sched.release(a)
        assert not sched.try_acquire(a)  # a holds 2 == its share, b hungry
        assert sched.try_acquire(b)
        assert sched.try_acquire(b)
        assert not sched.try_acquire(b)  # capacity full again
        # Demand withdrawal restores the whole capacity to the survivor.
        sched.unregister(b)
        assert sched.try_acquire(a) and sched.try_acquire(a)
        # Live retarget: capacity 1 refuses new grants until slots drain.
        sched.capacity = 1
        assert not sched.try_acquire(a)
        sched.unregister(a)

        # Waiter priority: a blocked gather beats a busy one to a freed slot.
        sched = LeaseSlotScheduler(1)
        busy, starved = sched.register(), sched.register()
        assert sched.try_acquire(busy)
        got = []
        waiter = threading.Thread(target=lambda: got.append(sched.acquire(starved, timeout=10)))
        waiter.start()
        for _ in range(100):  # let the waiter enqueue
            if sched._waiters:
                break
            time.sleep(0.01)
        sched.release(busy)
        assert not sched.try_acquire(busy)  # defers to the queued waiter
        waiter.join(timeout=10)
        assert got == [True]
        sched.unregister(busy)
        sched.unregister(starved)

    def test_sibling_gathers_round_robin_one_lease_quota(self):
        """Two concurrent gathers of ONE lease share its quota: the lease-wide
        cap holds across both (their shard executions never overlap under
        max_workers=1 — per-gather windowing would have run 1+1 concurrently),
        and the late gather's shards interleave with the long gather's queued
        work instead of waiting for it to drain."""
        long_jobs = [(i, 0.15) for i in range(4)]
        late_jobs = [(20 + i, 0.15) for i in range(2)]
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex:
            lease = ex.lease(job="shared", max_workers=1)
            results = {}
            barrier = threading.Barrier(2)

            def run(name, jobs, delay):
                barrier.wait()
                time.sleep(delay)
                results[name] = lease.map_blocks(_stamped_sleep, jobs)

            threads = [
                threading.Thread(target=run, args=("long", long_jobs, 0.0)),
                threading.Thread(target=run, args=("late", late_jobs, 0.1)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            lease.close()
        assert set(results) == {"long", "late"}
        # Lease-wide quota: across BOTH gathers, no two shards overlapped.
        spans = sorted(
            (r[2], r[3]) for rs in results.values() for r in rs
        )
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert next_start >= prev_end
        # Round-robin: the late gather got a slot while the long gather
        # still had queued shards (first-come-first-served would drain all
        # four long shards before the late gather's first).
        long_starts = sorted(r[2] for r in results["long"])
        late_first = min(r[2] for r in results["late"])
        assert late_first < long_starts[-1]
        # Exact results for both gathers.
        assert [r[::4] for r in results["long"]] == [
            (i, float(i) * 3.0 + 1.0) for i in range(4)
        ]
        assert [r[::4] for r in results["late"]] == [
            (20 + i, float(20 + i) * 3.0 + 1.0) for i in range(2)
        ]


class TestSharedMemoryPayloads:
    """Shm shard transport: bit-parity with pickle, tiny wire size, no leaks."""

    def _jobs(self, n=5, side=220):
        rng = np.random.default_rng(7)
        shared = rng.standard_normal((side, side))  # broadcast across work-units
        return [(i, shared, rng.standard_normal((side, side))) for i in range(n)]

    def test_shm_vs_pickle_bit_parity_through_real_pools(self):
        jobs = self._jobs()
        with EnsembleExecutor(n_workers=1) as ex:
            serial = ex.map_blocks(_payload_checksum, jobs)
        for n_workers in (2, 4):
            with EnsembleExecutor(n_workers=n_workers, shm_payloads=True) as ex:
                via_shm = ex.map_blocks(_payload_checksum, jobs)
            with EnsembleExecutor(n_workers=n_workers, shm_payloads=False) as ex:
                via_pickle = ex.map_blocks(_payload_checksum, jobs)
            assert via_shm == via_pickle == serial

    def test_letkf_and_ensf_bit_identical_under_shm(self):
        case = TestParallelAnalysis()
        letkf, l_ens, l_obs, l_op = case._letkf_case()
        filt, e_ens, e_obs, e_op = case._ensf_case()
        outs = {}
        for shm_on in (True, False):
            with EnsembleExecutor(
                n_workers=2, min_members_per_worker=1,
                shm_payloads=shm_on, shm_min_bytes=1024,
            ) as ex:
                outs[shm_on] = (
                    letkf.analyze_parallel(l_ens, l_obs, l_op, executor=ex),
                    ex.analyze_ensf(filt, e_ens, e_obs, e_op, seed=3),
                )
        np.testing.assert_array_equal(outs[True][0], outs[False][0])
        np.testing.assert_array_equal(outs[True][1], outs[False][1])

    def test_wire_size_is_o_name_and_broadcast_dedups(self):
        jobs = self._jobs(n=6)
        raw_bytes = len(pickle.dumps(jobs[0], protocol=pickle.HIGHEST_PROTOCOL))
        with EnsembleExecutor(n_workers=2, payload_stats=True) as ex:
            ex.map_blocks(_payload_checksum, jobs)
            stats = ex.last_payload_stats
        assert stats["transport"] == "shm"
        # Two ~380 KB arrays per work-unit collapse to two ~100 B handles.
        assert max(stats["job_bytes_shipped"]) < 512 < raw_bytes
        assert stats["n_handles"] == 12
        # The broadcast array lands in ONE segment: 6 private + 1 shared.
        assert stats["n_segments"] == 7
        expected = 7 * jobs[0][1].nbytes
        assert stats["shared_segment_bytes"] == expected

    def test_segments_are_released_after_the_gather(self):
        from repro.hpc.shm import SharedArrayHandle

        jobs = self._jobs(n=3)
        with EnsembleExecutor(n_workers=2) as ex:
            arena, shipped, names = ex._prepare_payloads(jobs)
            handles = [
                v for job in shipped for v in job if isinstance(v, SharedArrayHandle)
            ]
            assert handles and len(arena) > 0
            arena.release_all()
            with pytest.raises(FileNotFoundError):
                handles[0].materialize()
            # A real gather drains its own arena on the way out.
            ex.map_blocks(_payload_checksum, jobs)
            assert len(ex._arenas) == 0

    def test_serial_and_small_payloads_never_touch_shared_memory(self):
        small = [(i, np.ones((8, 8)), np.ones((8, 8))) for i in range(4)]
        with EnsembleExecutor(n_workers=1, payload_stats=True) as ex:
            ex.map_blocks(_payload_checksum, small)
            assert ex.last_payload_stats["transport"] == "serial"
            assert ex.last_payload_stats["n_segments"] == 0
        with EnsembleExecutor(n_workers=2, payload_stats=True) as ex:
            ex.map_blocks(_payload_checksum, small)  # all below shm_min_bytes
            assert ex.last_payload_stats["transport"] == "shm"
            assert ex.last_payload_stats["n_handles"] == 0
            assert ex.last_payload_stats["job_bytes_shipped"] == (
                ex.last_payload_stats["job_bytes_raw"]
            )

    def test_worker_crash_retry_heals_bit_identically_under_shm(self):
        """A crashed worker mid-gather must not invalidate retained segments:
        the retried shard re-reads the same bytes and matches the clean run."""
        jobs = self._jobs(n=4)
        plan = FaultPlan.from_spec("worker-crash@executor:0")
        with EnsembleExecutor(n_workers=2, retry_backoff_s=0.0) as ex:
            clean = ex.map_blocks(_payload_checksum, jobs)
        with EnsembleExecutor(
            n_workers=2, retry_backoff_s=0.0, fault_plan=FaultPlan()
        ) as ex:
            lease = ex.lease(job="chaos", fault_plan=plan)
            healed = lease.map_blocks(_payload_checksum, jobs)
            assert lease.fault_log.count(action="retry") == 1
            assert len(ex._arenas) == 0
        assert healed == clean
