"""Unit + equivalence tests for the pluggable array backend (`repro.utils.xp`).

Three layers of guarantees:

* **Shim mechanics** — registry/selection semantics shared with the FFT
  shim: numpy and mock-device always available, optional backends (cupy)
  skip cleanly, ``REPRO_ARRAY_BACKEND`` outranks ``set_default_backend``,
  unknown names raise listing the choices, backends pickle by name.
* **Bit-identity** — every routed kernel (batched + sharded LETKF, fused
  Monte-Carlo score, buffered reverse-SDE integrator, fused EnSF analysis,
  fused SQG step, whole LETKF OSSEs) produces **exactly** the same floats
  under every CPU backend as under plain numpy, with identical rng draws —
  the shim is a hardware dispatch layer, not a numerics knob.
* **Transfer discipline** — the mock-device counters prove the sharded
  LETKF solve loop moves data host↔device per *shard* (plus per cached
  geometry group), never per column or per block: counts are invariant
  under grid size at fixed shard count and under ``block_columns``.
"""

import pickle

import numpy as np
import pytest

import repro.utils.xp as xp_mod
from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation, SubsampledObservation
from repro.core.score import MonteCarloScoreEstimator
from repro.core.sde import ReverseSDESampler
from repro.da.cycling import OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.models.lorenz96 import Lorenz96
from repro.models.sqg import SQGModel, SQGParameters
from repro.utils.grid import Grid2D
from repro.utils.random import default_rng
from repro.utils.xp import (
    ArrayBackend,
    MockDeviceBackend,
    available_backends,
    default_backend_name,
    register_backend,
    resolve_backend,
    set_default_backend,
)


@pytest.fixture(autouse=True)
def _restore_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
    yield
    set_default_backend(None)


def _case(seed=0, shape=(12, 12), members=10, scale=1.0):
    grid = Grid2D(*shape)
    rng = np.random.default_rng(seed)
    ensemble = rng.standard_normal((members, grid.size)) * scale
    truth = rng.standard_normal(grid.size) * scale
    return grid, rng, ensemble, truth


def _serial_executor():
    from repro.hpc.ensemble_parallel import EnsembleExecutor

    return EnsembleExecutor(n_workers=1)


class TestSelection:
    def test_cpu_backends_always_available(self):
        names = available_backends()
        assert "numpy" in names and "mock-device" in names
        assert resolve_backend("numpy").name == "numpy"
        assert isinstance(resolve_backend("mock-device"), MockDeviceBackend)

    def test_numpy_backend_is_numpy(self):
        xp = resolve_backend("numpy")
        assert xp.einsum is np.einsum
        assert xp.eigh is np.linalg.eigh
        assert xp.matmul is np.matmul
        a = np.arange(3.0)
        assert xp.to_device(a) is a
        assert xp.to_host(a) is a

    def test_default_is_numpy(self):
        assert default_backend_name() == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_unknown_backend_raises_with_available_list(self):
        with pytest.raises(ValueError, match=r"unknown array backend.*available"):
            resolve_backend("torch")
        with pytest.raises(ValueError, match=r"unknown array backend.*available"):
            set_default_backend("torch")

    def test_env_var_beats_set_default_backend(self, monkeypatch):
        set_default_backend("mock-device")
        assert default_backend_name() == "mock-device"
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        assert resolve_backend(None).name == "numpy"
        monkeypatch.delenv("REPRO_ARRAY_BACKEND")
        assert default_backend_name() == "mock-device"  # override still in force

    def test_explicit_auto_follows_env_precedence(self, monkeypatch):
        """resolve_backend("auto") must honour the same env-beats-override
        precedence as resolve_backend(None) (regression: it used to skip
        the env var and silently fall back to numpy)."""
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "mock-device")
        assert resolve_backend("auto").name == "mock-device"
        monkeypatch.delenv("REPRO_ARRAY_BACKEND")
        set_default_backend("mock-device")
        assert resolve_backend("auto").name == "mock-device"
        set_default_backend(None)
        assert resolve_backend("auto").name == "numpy"

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "fpga")
        with pytest.raises(ValueError, match="unknown array backend"):
            resolve_backend(None)

    def test_backend_object_passthrough(self):
        xp = resolve_backend("numpy")
        assert resolve_backend(xp) is xp

    def test_missing_optional_backend_import_error(self):
        if "cupy" in available_backends():
            pytest.skip("cupy installed; the ImportError path is unreachable")
        with pytest.raises(ImportError, match="not installed"):
            resolve_backend("cupy")

    def test_register_backend_round_trip(self):
        class _Custom(ArrayBackend):
            name = "unit-test-custom"

        register_backend("unit-test-custom", _Custom)
        try:
            assert "unit-test-custom" in available_backends()
            xp = resolve_backend("unit-test-custom")
            assert xp.name == "unit-test-custom"
            clone = pickle.loads(pickle.dumps(xp))
            assert clone.name == "unit-test-custom"
        finally:
            xp_mod._FACTORIES.pop("unit-test-custom", None)
            xp_mod._cache.pop("unit-test-custom", None)


class TestPickling:
    def test_backends_pickle_by_name(self):
        for name in available_backends():
            backend = resolve_backend(name)
            clone = pickle.loads(pickle.dumps(backend))
            assert clone.name == name
            # same-process unpickle returns the cached instance, so e.g.
            # mock-device transfer counters aggregate across shard workers
            assert clone is backend

    def test_configs_holding_backend_names_pickle(self):
        cfg = LETKFConfig(backend="mock-device")
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone.backend == "mock-device"


class TestMockDeviceCounters:
    def test_counters_track_calls_and_bytes(self):
        xp = resolve_backend("mock-device")
        xp.reset_transfers()
        a = np.zeros(10)
        assert xp.to_device(a) is a  # arithmetic stays numpy
        xp.to_host(a)
        counts = xp.transfer_counts()
        assert counts["h2d_calls"] == 1 and counts["d2h_calls"] == 1
        assert counts["h2d_bytes"] == a.nbytes == counts["d2h_bytes"]
        xp.reset_transfers()
        assert sum(xp.transfer_counts().values()) == 0


class TestRoutedKernelBitIdentity:
    """Every routed kernel under ``array_backend`` must equal the plain
    numpy-backend result bit for bit, with identical rng draws."""

    def test_score_estimator(self, array_backend):
        rng = np.random.default_rng(1)
        ensemble = rng.standard_normal((14, 48)) * 2.0
        z = rng.standard_normal((6, 48))
        base = MonteCarloScoreEstimator(ensemble, backend="numpy")
        routed = MonteCarloScoreEstimator(ensemble, backend=array_backend)
        for t in (0.9, 0.4, 0.05):
            np.testing.assert_array_equal(routed.score(z, t), base.score(z, t))
            np.testing.assert_array_equal(
                routed.log_weights(z, t), base.log_weights(z, t)
            )

    def test_sde_sampler_and_rng_draws(self, array_backend):
        score = lambda z, t: -z
        base = ReverseSDESampler(n_steps=20, backend="numpy")
        routed = ReverseSDESampler(n_steps=20, backend=array_backend)
        rng_a, rng_b = default_rng(3), default_rng(3)
        a = base.sample(score, 5, 7, rng=rng_a)
        b = routed.sample(score, 5, 7, rng=rng_b)
        np.testing.assert_array_equal(a, b)
        # identical rng draws: the generators end in the same state
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_ensf_analysis(self, array_backend):
        grid, rng, ensemble, truth = _case(seed=2, members=12, scale=2.0)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        base = EnSF(EnSFConfig(n_sde_steps=8, backend="numpy"), rng=5)
        routed = EnSF(EnSFConfig(n_sde_steps=8, backend=array_backend.name), rng=5)
        np.testing.assert_array_equal(
            routed.analyze(ensemble, observation, operator),
            base.analyze(ensemble, observation, operator),
        )
        assert routed.rng.bit_generator.state == base.rng.bit_generator.state

    def test_ensf_subsampled_operator(self, array_backend):
        grid, rng, ensemble, truth = _case(seed=3, members=10, scale=2.0)
        operator = SubsampledObservation.every_nth(grid.size, 3, 0.8)
        observation = operator.observe(truth, rng=rng)
        base = EnSF(EnSFConfig(n_sde_steps=6, backend="numpy"), rng=1)
        routed = EnSF(EnSFConfig(n_sde_steps=6, backend=array_backend.name), rng=1)
        np.testing.assert_array_equal(
            routed.analyze(ensemble, observation, operator),
            base.analyze(ensemble, observation, operator),
        )

    @pytest.mark.parametrize("mode", ["convolution", "grouped"])
    def test_letkf_serial_and_sharded(self, mode, array_backend):
        grid, rng, ensemble, truth = _case(seed=4)
        if mode == "convolution":
            operator = IdentityObservation(grid.size, 1.2)
        else:
            operator = IdentityObservation(grid.size, 0.5 + rng.random(grid.size))
        observation = operator.observe(truth, rng=rng)
        loc = LocalizationConfig(cutoff=4.0e6)
        base = LETKF(grid, LETKFConfig(localization=loc, backend="numpy"))
        routed = LETKF(
            grid,
            LETKFConfig(localization=loc, backend=array_backend.name, shard_columns=50),
        )
        assert routed.geometry(operator).mode == mode
        serial_base = base.analyze(ensemble, observation, operator)
        np.testing.assert_array_equal(
            routed.analyze(ensemble, observation, operator), serial_base
        )
        np.testing.assert_array_equal(
            routed.analyze_parallel(
                ensemble, observation, operator, executor=_serial_executor()
            ),
            serial_base,
        )

    def test_sqg_step_exact_zero_coefficient_delta(self, array_backend):
        params = SQGParameters(nx=16, ny=16, dt=1800.0)
        base = SQGModel(params, array_backend="numpy")
        routed = SQGModel(params, array_backend=array_backend)
        theta = np.stack(
            [base.random_initial_condition(rng=i, amplitude=3.0) for i in range(3)]
        )
        spec = base.spectral.to_spectral(theta)
        a = base.step_spectral(spec)
        b = routed.step_spectral(spec)
        np.testing.assert_array_equal(a, b)  # exact-zero coefficient deltas
        np.testing.assert_array_equal(base.step_spectral(a), routed.step_spectral(b))

    def test_osse_analysis_rmse_exact_zero_delta(self, array_backend):
        """Whole LETKF OSSE cycling: analysis-RMSE deltas are exactly zero."""
        grid = Grid2D(8, 8)
        model = Lorenz96(dim=grid.size)
        truth0 = np.random.default_rng(6).standard_normal(grid.size)
        operator = IdentityObservation(grid.size, 1.0)
        config = OSSEConfig(n_cycles=3, steps_per_cycle=1, ensemble_size=6, seed=0)
        loc = LocalizationConfig(cutoff=4.0e6)
        results = {}
        for name in ("numpy", array_backend.name):
            letkf = LETKF(grid, LETKFConfig(localization=loc, backend=name))
            results[name] = run_osse(model, model, letkf, operator, truth0, config)
        np.testing.assert_array_equal(
            results[array_backend.name].analysis_rmse, results["numpy"].analysis_rmse
        )
        np.testing.assert_array_equal(
            results[array_backend.name].analysis_mean_final,
            results["numpy"].analysis_mean_final,
        )


class TestShardedTransferDiscipline:
    """Mock-device proof that the sharded LETKF solve loop never round-trips
    per column: transfer counts depend on the shard/group structure only."""

    def _sharded_counts(self, shape, shard_columns, operator_var, block_columns=512):
        grid, rng, ensemble, truth = _case(seed=7, shape=shape)
        operator = IdentityObservation(
            grid.size,
            operator_var if np.isscalar(operator_var) else operator_var(grid.size, rng),
        )
        observation = operator.observe(truth, rng=rng)
        letkf = LETKF(
            grid,
            LETKFConfig(
                localization=LocalizationConfig(cutoff=4.0e6),
                backend="mock-device",
                shard_columns=shard_columns,
                block_columns=block_columns,
            ),
        )
        xp = resolve_backend("mock-device")
        # Prime the geometry (and its per-backend device cache) so the
        # measurement below sees only steady-state per-cycle traffic.
        letkf.analyze_parallel(ensemble, observation, operator, executor=_serial_executor())
        xp.reset_transfers()
        letkf.analyze_parallel(ensemble, observation, operator, executor=_serial_executor())
        counts = xp.transfer_counts()
        n_shards = -(-grid.ny * grid.nx // shard_columns)
        return counts, n_shards

    def test_convolution_counts_independent_of_column_count(self):
        # Same shard count, 4x the columns: identical transfer counts.
        counts_small, shards_small = self._sharded_counts((8, 8), 16, 1.2)
        counts_large, shards_large = self._sharded_counts((16, 16), 64, 1.2)
        assert shards_small == shards_large == 4
        assert counts_small["h2d_calls"] == counts_large["h2d_calls"]
        assert counts_small["d2h_calls"] == counts_large["d2h_calls"]
        # and the counts scale with shards, not columns: 4 transfers per
        # shard (3 inputs in, 1 result out) plus a constant parent overhead
        assert counts_small["h2d_calls"] <= 4 * 3 + 4
        assert counts_small["d2h_calls"] <= 4 + 2

    def test_grouped_counts_independent_of_block_columns(self):
        var = lambda n, rng: 0.5 + rng.random(n)
        counts_fine, _ = self._sharded_counts((12, 12), 48, var, block_columns=2)
        counts_coarse, _ = self._sharded_counts((12, 12), 48, var, block_columns=1000)
        # block_columns only re-chunks the inner solve loop; if any transfer
        # happened per block (or per column) these counts would differ
        assert counts_fine == counts_coarse

    def test_serial_grouped_steady_state_transfers_constant(self):
        """Serial grouped path: per-cycle traffic is the statistics + result,
        independent of the number of footprint groups (device cache)."""
        grid, rng, ensemble, truth = _case(seed=8)
        operator = IdentityObservation(grid.size, 0.5 + rng.random(grid.size))
        observation = operator.observe(truth, rng=rng)
        letkf = LETKF(
            grid,
            LETKFConfig(
                localization=LocalizationConfig(cutoff=4.0e6), backend="mock-device"
            ),
        )
        xp = resolve_backend("mock-device")
        letkf.analyze(ensemble, observation, operator)  # builds + stages geometry
        xp.reset_transfers()
        letkf.analyze(ensemble, observation, operator)
        counts = xp.transfer_counts()
        # prior, y_pert.T, x_pert.T, x_mean, innovation in; analysis out
        assert counts["h2d_calls"] == 5
        assert counts["d2h_calls"] == 1
