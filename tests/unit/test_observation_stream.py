"""Unit tests for the streaming observation subsystem.

Covers the :class:`ObservationScenario` schedule algebra, the
:class:`ObservationStream` event mechanics (dropout, latency, alternating
multi-operator networks), seed-derived reproducibility and the
checkpoint/restore state round-trip.
"""

import numpy as np
import pytest

from repro.core.observations import (
    IdentityObservation,
    ObservationScenario,
    ObservationStream,
    SubsampledObservation,
    coverage_windows,
)
from repro.utils.random import SeedSequenceFactory

DIM = 12


def _truth(cycle: int) -> np.ndarray:
    return np.full(DIM, float(cycle))


def _stream(scenario=None, operators=None, seed=0):
    seeds = SeedSequenceFactory(seed)
    return ObservationStream(
        operators if operators is not None else IdentityObservation(DIM),
        scenario,
        rng=seeds.rng("observations"),
        schedule_rng=seeds.rng("observation-schedule"),
    )


def _drain(stream, n_cycles):
    """Run the stream over n_cycles; returns {cycle: delivered events}."""
    return {cycle: stream.advance(cycle, _truth(cycle)) for cycle in range(n_cycles)}


class TestScenario:
    def test_default_is_idealized(self):
        scenario = ObservationScenario()
        assert scenario.is_idealized
        assert all(scenario.scheduled(c) for c in range(5))

    def test_every_k_and_start(self):
        scenario = ObservationScenario(every=3, start=2)
        assert not scenario.is_idealized
        assert [c for c in range(10) if scenario.scheduled(c)] == [2, 5, 8]

    def test_operator_alternation_index(self):
        scenario = ObservationScenario(every=2)
        indices = [scenario.operator_index(c, 3) for c in range(0, 12, 2)]
        assert indices == [0, 1, 2, 0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservationScenario(every=0)
        with pytest.raises(ValueError):
            ObservationScenario(dropout=1.5)
        with pytest.raises(ValueError):
            ObservationScenario(latency=-1)
        with pytest.raises(ValueError):
            ObservationScenario(start=-2)


class TestCoverageWindows:
    def test_windows_partition_the_state(self):
        ops = coverage_windows(DIM, 3)
        assert len(ops) == 3
        seen = np.concatenate([op.indices for op in ops])
        np.testing.assert_array_equal(np.sort(seen), np.arange(DIM))
        assert all(isinstance(op, SubsampledObservation) for op in ops)

    def test_uneven_split_covers_everything(self):
        ops = coverage_windows(10, 3)
        assert sum(op.obs_dim for op in ops) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_windows(DIM, 0)
        with pytest.raises(ValueError):
            coverage_windows(DIM, DIM + 1)


class TestStreamMechanics:
    def test_idealized_stream_matches_sequential_observe_loop(self):
        """Default scenario == the historical per-cycle observe() loop, draw
        for draw (the property the golden driver equivalence rests on)."""
        stream = _stream()
        events = _drain(stream, 4)
        rng = SeedSequenceFactory(0).rng("observations")
        op = IdentityObservation(DIM)
        for cycle in range(4):
            (event,) = events[cycle]
            np.testing.assert_array_equal(
                event.observation, op.observe(_truth(cycle), rng=rng)
            )
            assert event.cycle == event.available_at == cycle

    def test_every_k_skips_cycles(self):
        events = _drain(_stream(ObservationScenario(every=3)), 7)
        delivered = {c for c, evs in events.items() if evs}
        assert delivered == {0, 3, 6}

    def test_latency_defers_delivery(self):
        stream = _stream(ObservationScenario(latency=2))
        events = _drain(stream, 5)
        assert not events[0] and not events[1]
        for cycle in range(2, 5):
            (event,) = events[cycle]
            assert event.cycle == cycle - 2 and event.available_at == cycle
        assert len(stream.pending) == 2  # measured at cycles 3, 4, still in flight

    def test_dropout_loses_some_but_reproducibly(self):
        scenario = ObservationScenario(dropout=0.5)
        kept_a = [c for c, evs in _drain(_stream(scenario), 20).items() if evs]
        kept_b = [c for c, evs in _drain(_stream(scenario), 20).items() if evs]
        assert kept_a == kept_b  # seed-derived schedule stream
        assert 0 < len(kept_a) < 20  # some lost, some kept
        kept_other = [c for c, evs in _drain(_stream(scenario, seed=1), 20).items() if evs]
        assert kept_a != kept_other

    def test_dropout_does_not_shift_noise_of_surviving_cycles(self):
        """The schedule stream is separate: a kept cycle's noise only depends
        on how many *measurements* preceded it, never on dropout draws."""
        full = {c: e[0].observation for c, e in _drain(_stream(), 6).items()}
        lossy_events = _drain(_stream(ObservationScenario(dropout=0.5)), 6)
        survivors = [e[0] for e in lossy_events.values() if e]
        # the i-th surviving measurement consumed the i-th slot of the noise
        # stream, so it matches the full run's observation at the i-th
        # *measured* cycle only when no earlier cycle was dropped; instead we
        # check determinism against a fresh identically-seeded stream.
        again = [e[0] for e in _drain(_stream(ObservationScenario(dropout=0.5)), 6).values() if e]
        assert len(survivors) == len(again)
        for a, b in zip(survivors, again):
            np.testing.assert_array_equal(a.observation, b.observation)
        assert len(survivors) < len(full)

    def test_multi_operator_network_alternates(self):
        ops = coverage_windows(DIM, 2)
        stream = _stream(ObservationScenario(operators=ops))
        events = _drain(stream, 4)
        assert [events[c][0].operator_index for c in range(4)] == [0, 1, 0, 1]
        assert events[0][0].operator is ops[0]
        assert events[1][0].observation.shape == (ops[1].obs_dim,)

    def test_scenario_operators_override_driver_default(self):
        ops = coverage_windows(DIM, 2)
        stream = _stream(ObservationScenario(operators=ops), operators=IdentityObservation(DIM))
        assert stream.operators == ops

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservationStream((), rng=0)
        with pytest.raises(ValueError):
            ObservationStream(
                (IdentityObservation(3), IdentityObservation(4)), rng=0
            )


class TestStreamState:
    def test_state_roundtrip_resumes_bit_identically(self):
        scenario = ObservationScenario(dropout=0.3, latency=1)
        reference = _stream(scenario)
        _drain(reference, 4)
        ref_tail = _drain_from(reference, 4, 10)

        fresh = _stream(scenario)
        _drain(fresh, 4)
        state = fresh.state_dict()
        resumed = _stream(scenario)  # same construction, rewound streams
        resumed.load_state_dict(state)
        res_tail = _drain_from(resumed, 4, 10)

        assert sorted(ref_tail) == sorted(res_tail)
        for cycle in ref_tail:
            assert len(ref_tail[cycle]) == len(res_tail[cycle])
            for a, b in zip(ref_tail[cycle], res_tail[cycle]):
                assert (a.cycle, a.available_at, a.operator_index) == (
                    b.cycle,
                    b.available_at,
                    b.operator_index,
                )
                np.testing.assert_array_equal(a.observation, b.observation)

    def test_state_dict_is_a_snapshot(self):
        stream = _stream(ObservationScenario(latency=3))
        _drain(stream, 2)
        state = stream.state_dict()
        _drain_from(stream, 2, 4)  # keeps mutating the live stream
        assert len(state["pending"]) == 2  # snapshot unaffected


def _drain_from(stream, start, stop):
    return {cycle: stream.advance(cycle, _truth(cycle)) for cycle in range(start, stop)}
