"""Unit tests for the pluggable FFT backend shim (`repro.utils.fft`).

The shim must (a) default sensibly, (b) honour the ``REPRO_FFT_BACKEND``
environment variable and programmatic overrides, (c) fall back to numpy when
scipy is absent — the whole package must import and run on numpy-only
installs — and (d) keep the two pocketfft backends bit-identical.
"""

import pickle
import sys

import numpy as np
import pytest

import repro.utils.fft as fft_mod
from repro.utils.fft import (
    FFTBackend,
    available_backends,
    default_backend_name,
    resolve_backend,
    set_default_backend,
)


@pytest.fixture(autouse=True)
def _restore_defaults():
    yield
    set_default_backend(None)


class TestSelection:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        backend = resolve_backend("numpy")
        assert backend.name == "numpy"
        assert backend.rfft2 is np.fft.rfft2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown FFT backend"):
            resolve_backend("fftw")
        with pytest.raises(ValueError, match="unknown FFT backend"):
            set_default_backend("fftw")

    def test_explicit_backend_object_passthrough(self):
        backend = resolve_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_env_var_forces_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_env_var_beats_set_default_backend(self, monkeypatch):
        """The env var is the operator's override of record (same contract
        as REPRO_ARRAY_BACKEND in the array shim)."""
        monkeypatch.setenv("REPRO_FFT_BACKEND", "numpy")
        set_default_backend("scipy")
        assert default_backend_name() == "numpy"
        monkeypatch.delenv("REPRO_FFT_BACKEND")
        assert default_backend_name() == "scipy"  # override takes over
        set_default_backend(None)
        assert default_backend_name() in available_backends()

    def test_unknown_env_backend_raises_with_available_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_BACKEND", "fftw")
        with pytest.raises(ValueError, match=r"unknown FFT backend.*available"):
            resolve_backend(None)

    def test_auto_resolves_somewhere_valid(self):
        assert resolve_backend("auto").name in available_backends()

    def test_explicit_auto_follows_env_precedence(self, monkeypatch):
        """resolve_backend("auto") must honour the env var exactly like
        resolve_backend(None) (regression: it used to go straight to host
        auto-detection)."""
        monkeypatch.setenv("REPRO_FFT_BACKEND", "numpy")
        assert resolve_backend("auto").name == "numpy"

    def test_bad_worker_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_FFT_WORKERS"):
            fft_mod._fft_workers()


class TestNumpyFallback:
    def test_scipy_absent_falls_back_to_numpy(self, monkeypatch):
        """Simulate a numpy-only install: auto selection must pick numpy."""
        monkeypatch.delenv("REPRO_FFT_BACKEND", raising=False)
        monkeypatch.setitem(sys.modules, "scipy", None)
        monkeypatch.setitem(sys.modules, "scipy.fft", None)
        monkeypatch.setattr(fft_mod, "_cache", {})
        # mock-device wraps numpy's FFT, so it survives a scipy-less install.
        assert available_backends() == ("numpy", "mock-device")
        assert default_backend_name() == "numpy"
        backend = resolve_backend(None)
        assert backend.name == "numpy"
        # explicit scipy request surfaces a clear error instead of a crash
        with pytest.raises(ImportError, match="not installed"):
            resolve_backend("scipy")

    def test_grid_builds_without_scipy(self, monkeypatch):
        from repro.models.spectral import SpectralGrid

        monkeypatch.delenv("REPRO_FFT_BACKEND", raising=False)
        monkeypatch.setitem(sys.modules, "scipy", None)
        monkeypatch.setitem(sys.modules, "scipy.fft", None)
        monkeypatch.setattr(fft_mod, "_cache", {})
        grid = SpectralGrid(16, 16, 1.0, 1.0)
        assert grid.fft.name == "numpy"
        rng = np.random.default_rng(0)
        field = rng.standard_normal((16, 16))
        np.testing.assert_allclose(
            grid.to_physical(grid.to_spectral(field)), field, atol=1e-12
        )


class TestBackendParity:
    @pytest.mark.skipif(
        "scipy" not in available_backends(), reason="scipy not installed"
    )
    def test_scipy_and_numpy_bit_identical(self):
        a = resolve_backend("numpy")
        b = resolve_backend("scipy")
        rng = np.random.default_rng(1)
        field = rng.standard_normal((3, 2, 32, 32))
        spec_a = a.rfft2(field, axes=(-2, -1))
        spec_b = b.rfft2(field, axes=(-2, -1))
        np.testing.assert_array_equal(spec_a, spec_b)
        np.testing.assert_array_equal(
            a.irfft2(spec_a, s=(32, 32), axes=(-2, -1)),
            b.irfft2(spec_b, s=(32, 32), axes=(-2, -1)),
        )
        w_a = a.ifft(spec_a, axis=-2)
        np.testing.assert_array_equal(w_a, b.ifft(spec_b, axis=-2))
        np.testing.assert_array_equal(
            a.irfft(w_a, n=32, axis=-1), b.irfft(w_a, n=32, axis=-1)
        )


class TestPickling:
    def test_backend_pickles_by_name(self):
        for name in available_backends():
            backend = resolve_backend(name)
            clone = pickle.loads(pickle.dumps(backend))
            assert isinstance(clone, FFTBackend)
            assert clone.name == name

    def test_custom_backend_pickles_by_fields(self):
        """Accelerator-style backends must not be coerced through the registry."""
        f = np.fft
        custom = FFTBackend(
            name="custom-accel",
            rfft2=f.rfft2, irfft2=f.irfft2, rfft=f.rfft,
            irfft=f.irfft, fft=f.fft, ifft=f.ifft,
        )
        clone = pickle.loads(pickle.dumps(custom))
        assert clone.name == "custom-accel"
        assert clone.rfft2 is np.fft.rfft2
