"""Device-residency proofs for the cycling engine (mock-device metered).

These tests are the acceptance criterion of the device-resident cycling
refactor: a full OSSE cycle — truth step, ensemble forecast, analysis —
must perform a **fixed** number of host↔device transfers per cycle,
independent of grid size, ensemble size and cycle count, and the routed
path must stay bit-identical to ``backend="numpy"``.

Strategy: run whole OSSEs on the ``mock-device`` backend (numpy arrays
plus transfer counters) at ``n_cycles`` ∈ {2, 3, 4} and *difference* the
totals.  The delta between consecutive cycle counts is exactly the
steady-state per-cycle transfer budget; differencing cancels the
one-time setup traffic (device constants at model construction, the
member-count-dependent initial-ensemble catalogue, first-analysis
geometry staging), so the assertions survive warm-up effects without
pinning brittle absolute totals.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.utils.xp as xp_mod
from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation
from repro.da.cycling import OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.hpc.ensemble_parallel import EnsembleExecutor
from repro.models.spectral import SpectralGrid
from repro.models.sqg import SQGModel, SQGParameters, spinup_sqg
from repro.utils.xp import StateHandle, device_rng_mode
from repro.workflow.engine import EngineCheckpoint

N_SDE_STEPS = 8


@pytest.fixture()
def mock_xp(monkeypatch):
    """Install mock-device as the process default with fresh counters.

    The relevant environment variables are cleared so the fixture — not the
    outer environment — controls backend selection, FFT pairing and the
    device RNG mode (host-parity is the documented default).
    """
    monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_FFT_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_DEVICE_RNG", raising=False)
    xp_mod.set_default_backend("mock-device")
    backend = xp_mod.resolve_backend("mock-device")
    backend.reset_transfers()
    yield backend
    xp_mod.set_default_backend(None)


def _make_model(nx: int) -> SQGModel:
    return SQGModel(SQGParameters(nx=nx, ny=nx, dt=1800.0))


def _truth0(model: SQGModel, seed: int = 0) -> np.ndarray:
    return model.flatten(spinup_sqg(model, n_steps=30, rng=seed))


def _letkf(model: SQGModel) -> LETKF:
    return LETKF(model.grid, LETKFConfig())


def _ensf(model: SQGModel) -> EnSF:
    return EnSF(EnSFConfig(n_sde_steps=N_SDE_STEPS), rng=4)


def _run_counts(mock_xp, filter_factory, nx, members, cycles, executor=None):
    """Run one SQG OSSE and return (result, transfer-call counts)."""
    model = _make_model(nx)
    truth0 = _truth0(model)
    op = IdentityObservation(model.state_size, obs_error_var=1.0)
    cfg = OSSEConfig(
        n_cycles=cycles, steps_per_cycle=2, ensemble_size=members, seed=11
    )
    metered = hasattr(mock_xp, "reset_transfers")
    if metered:
        mock_xp.reset_transfers()
    result = run_osse(
        model, model, filter_factory(model), op, truth0, cfg, executor=executor
    )
    if not metered:  # plain numpy backend (bit-parity runs)
        return result, {"h2d": 0, "d2h": 0}
    counts = mock_xp.transfer_counts()
    return result, {"h2d": counts["h2d_calls"], "d2h": counts["d2h_calls"]}


def _per_cycle_delta(mock_xp, filter_factory, nx, members, executor=None):
    """Steady-state per-cycle transfer budget via total differencing."""
    _, c2 = _run_counts(mock_xp, filter_factory, nx, members, 2, executor)
    _, c3 = _run_counts(mock_xp, filter_factory, nx, members, 3, executor)
    return {key: c3[key] - c2[key] for key in c2}


class TestFFTDevicePairing:
    """The FFT backend follows the array backend's device automatically."""

    def test_mock_device_grid_pairs_mock_device_fft(self, mock_xp):
        grid = SpectralGrid(8, 8, 1.0, 1.0, array_backend=mock_xp)
        assert grid.fft.name == "mock-device"

    def test_env_var_overrides_pairing(self, mock_xp, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_BACKEND", "numpy")
        grid = SpectralGrid(8, 8, 1.0, 1.0, array_backend=mock_xp)
        assert grid.fft.name == "numpy"

    def test_explicit_backend_overrides_pairing(self, mock_xp):
        grid = SpectralGrid(8, 8, 1.0, 1.0, backend="numpy", array_backend=mock_xp)
        assert grid.fft.name == "numpy"

    def test_paired_fft_meters_no_transfers(self, mock_xp):
        """Transforms on device-resident arrays are device-native."""
        grid = SpectralGrid(8, 8, 1.0, 1.0, array_backend=mock_xp)
        field = mock_xp.to_device(np.random.default_rng(0).standard_normal((8, 8)))
        mock_xp.reset_transfers()
        spec = grid.to_spectral(field)
        grid.to_physical(spec)
        counts = mock_xp.transfer_counts()
        assert counts["h2d_calls"] == 0 and counts["d2h_calls"] == 0


class TestStateHandle:
    def test_mirrors_cache_after_first_transfer(self, mock_xp):
        arr = np.arange(12.0).reshape(3, 4)
        handle = StateHandle.from_host(mock_xp, arr)
        mock_xp.reset_transfers()
        dev = handle.device()
        assert mock_xp.transfer_counts()["h2d_calls"] == 1
        assert handle.device() is dev  # cached — no second upload
        assert mock_xp.transfer_counts()["h2d_calls"] == 1
        # host mirror already exists: reading it downloads nothing
        np.testing.assert_array_equal(handle.host(), arr)
        assert mock_xp.transfer_counts()["d2h_calls"] == 0

    def test_device_origin_downloads_once(self, mock_xp):
        dev = mock_xp.to_device(np.arange(6.0).reshape(2, 3))
        handle = StateHandle.from_device(mock_xp, dev)
        mock_xp.reset_transfers()
        host = handle.host()
        assert mock_xp.transfer_counts()["d2h_calls"] == 1
        assert handle.host() is host
        assert mock_xp.transfer_counts()["d2h_calls"] == 1

    def test_wrap_is_passthrough_for_handles(self, mock_xp):
        handle = StateHandle.from_host(mock_xp, np.zeros((2, 2)))
        assert StateHandle.wrap(handle, mock_xp) is handle


class TestForecastTrajectoryResidency:
    """One upload and one download per trajectory, whatever its size."""

    @pytest.mark.parametrize("nx", [8, 16])
    @pytest.mark.parametrize("members", [3, 8])
    @pytest.mark.parametrize("n_steps", [2, 6])
    def test_forecast_is_one_up_one_down(self, mock_xp, nx, members, n_steps):
        model = _make_model(nx)
        ens = np.stack(
            [model.flatten(model.random_initial_condition(rng=i)) for i in range(members)]
        )
        mock_xp.reset_transfers()
        out = model.forecast(ens, n_steps=n_steps)
        counts = mock_xp.transfer_counts()
        assert counts["h2d_calls"] == 1
        assert counts["d2h_calls"] == 1
        assert np.isfinite(out).all()

    def test_forecast_device_is_zero_transfer(self, mock_xp):
        model = _make_model(8)
        ens = np.stack(
            [model.flatten(model.random_initial_condition(rng=i)) for i in range(3)]
        )
        dev = mock_xp.to_device(ens)
        mock_xp.reset_transfers()
        model.forecast_device(dev, n_steps=3)
        counts = mock_xp.transfer_counts()
        assert counts["h2d_calls"] == 0 and counts["d2h_calls"] == 0


class TestPerCycleBudget:
    """The per-cycle transfer budget is a constant of the configuration."""

    def test_letkf_budget_constant_in_cycles(self, mock_xp):
        _, c2 = _run_counts(mock_xp, _letkf, 8, 4, 2)
        _, c3 = _run_counts(mock_xp, _letkf, 8, 4, 3)
        _, c4 = _run_counts(mock_xp, _letkf, 8, 4, 4)
        assert c3["h2d"] - c2["h2d"] == c4["h2d"] - c3["h2d"]
        assert c3["d2h"] - c2["d2h"] == c4["d2h"] - c3["d2h"]

    def test_letkf_budget_independent_of_grid_and_members(self, mock_xp):
        base = _per_cycle_delta(mock_xp, _letkf, 8, 4)
        assert _per_cycle_delta(mock_xp, _letkf, 16, 4) == base
        assert _per_cycle_delta(mock_xp, _letkf, 8, 6) == base

    def test_ensf_budget_constant_in_cycles(self, mock_xp):
        _, c2 = _run_counts(mock_xp, _ensf, 8, 4, 2)
        _, c3 = _run_counts(mock_xp, _ensf, 8, 4, 3)
        _, c4 = _run_counts(mock_xp, _ensf, 8, 4, 4)
        assert c3["h2d"] - c2["h2d"] == c4["h2d"] - c3["h2d"]
        assert c3["d2h"] - c2["d2h"] == c4["d2h"] - c3["d2h"]

    def test_ensf_budget_independent_of_grid_and_members(self, mock_xp):
        base = _per_cycle_delta(mock_xp, _ensf, 8, 4)
        assert _per_cycle_delta(mock_xp, _ensf, 16, 4) == base
        assert _per_cycle_delta(mock_xp, _ensf, 8, 6) == base

    @pytest.mark.parametrize("filter_factory", [_letkf, _ensf], ids=["letkf", "ensf"])
    def test_pool_budget_independent_of_grid(self, mock_xp, filter_factory):
        """Parent-side counters stay grid-independent through a real pool.

        Worker processes own separate backend instances (the backend
        pickles by name), so the parent's counters meter only the staging
        the cycle engine itself performs.
        """
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex:
            base = _per_cycle_delta(mock_xp, filter_factory, 8, 4, executor=ex)
            wide = _per_cycle_delta(mock_xp, filter_factory, 16, 4, executor=ex)
        assert wide == base


class TestBitParityWithNumpy:
    """Routing through mock-device must change nothing, bit for bit."""

    @pytest.mark.parametrize("filter_factory", [_letkf, _ensf], ids=["letkf", "ensf"])
    def test_whole_osse_bit_identical(self, monkeypatch, filter_factory):
        monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_FFT_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_DEVICE_RNG", raising=False)
        results = {}
        for name in ("numpy", "mock-device"):
            xp_mod.set_default_backend(name)
            try:
                results[name], _ = _run_counts(
                    xp_mod.resolve_backend(name), filter_factory, 8, 4, 3
                )
            finally:
                xp_mod.set_default_backend(None)
        a, b = results["numpy"], results["mock-device"]
        np.testing.assert_array_equal(a.analysis_rmse, b.analysis_rmse)
        np.testing.assert_array_equal(a.forecast_rmse, b.forecast_rmse)
        np.testing.assert_array_equal(a.analysis_mean_final, b.analysis_mean_final)


class TestCheckpointBackendPortability:
    """Checkpoints hold plain host arrays and restore onto any backend."""

    def _run(self, filter_factory, backend_name, monkeypatch, **kwargs):
        monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_FFT_BACKEND", raising=False)
        xp_mod.set_default_backend(backend_name)
        try:
            model = _make_model(8)
            truth0 = _truth0(model)
            op = IdentityObservation(model.state_size, obs_error_var=1.0)
            cfg = OSSEConfig(n_cycles=4, steps_per_cycle=2, ensemble_size=4, seed=11)
            return run_osse(
                model, model, filter_factory(model), op, truth0, cfg, **kwargs
            )
        finally:
            xp_mod.set_default_backend(None)

    @pytest.mark.parametrize(
        "save_on,resume_on",
        [("mock-device", "numpy"), ("numpy", "mock-device")],
        ids=["mock->numpy", "numpy->mock"],
    )
    def test_resume_across_backend_change(
        self, tmp_path, monkeypatch, save_on, resume_on
    ):
        path = str(tmp_path / "engine.ckpt")
        full = self._run(
            _letkf, save_on, monkeypatch, checkpoint_every=2, checkpoint_path=path
        )
        ckpt = EngineCheckpoint.load(path)
        # the persisted state is a plain host ndarray, never a StateHandle
        assert type(ckpt.state) is np.ndarray
        resumed = self._run(_letkf, resume_on, monkeypatch, resume=path)
        np.testing.assert_array_equal(
            resumed.analysis_mean_final, full.analysis_mean_final
        )
        np.testing.assert_array_equal(resumed.analysis_rmse, full.analysis_rmse)


class TestDeviceRNGMode:
    """REPRO_DEVICE_RNG switches noise residency without changing results."""

    def test_default_is_host_parity(self, mock_xp):
        assert device_rng_mode() == "host-parity"

    def test_invalid_mode_rejected(self, mock_xp, monkeypatch):
        monkeypatch.setenv("REPRO_DEVICE_RNG", "banana")
        with pytest.raises(ValueError, match="REPRO_DEVICE_RNG"):
            device_rng_mode()

    def test_device_mode_bit_identical_and_cheaper(self, mock_xp, monkeypatch):
        """On mock-device the two modes share one generator, so results are
        bitwise identical while device mode drops the per-draw upload
        metering: exactly ``n_sde_steps + 1`` fewer uploads per analysis
        (the initial sample plus one noise draw per SDE step)."""
        parity_result, _ = _run_counts(mock_xp, _ensf, 8, 4, 2)
        parity_delta = _per_cycle_delta(mock_xp, _ensf, 8, 4)
        monkeypatch.setenv("REPRO_DEVICE_RNG", "device")
        device_result, _ = _run_counts(mock_xp, _ensf, 8, 4, 2)
        device_delta = _per_cycle_delta(mock_xp, _ensf, 8, 4)
        np.testing.assert_array_equal(
            parity_result.analysis_rmse, device_result.analysis_rmse
        )
        np.testing.assert_array_equal(
            parity_result.analysis_mean_final, device_result.analysis_mean_final
        )
        assert parity_delta["h2d"] - device_delta["h2d"] == N_SDE_STEPS + 1
        assert parity_delta["d2h"] == device_delta["d2h"]
