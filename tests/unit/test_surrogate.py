"""Unit tests for the NumPy ViT surrogate (layers, attention, ViT, optimisers, training, FLOPs)."""

import numpy as np
import pytest

from repro.models.lorenz96 import Lorenz96
from repro.surrogate.attention import MultiHeadSelfAttention, softmax
from repro.surrogate.blocks import MLP, TransformerBlock
from repro.surrogate.flops import (
    frontier_node_hours,
    training_flops_eq18,
    vit_forward_flops,
    vit_parameter_count,
    vit_training_flops,
)
from repro.surrogate.layers import GELU, Dropout, DropPath, LayerNorm, Linear, Sequential
from repro.surrogate.optim import Adam, SGD, clip_gradients
from repro.surrogate.patch import PatchEmbed, patchify, unpatchify
from repro.surrogate.presets import TABLE_II_PRESETS, laptop_preset, preset_by_input_size
from repro.surrogate.training import OfflineTrainer, OnlineTrainer, TrainingConfig, TrajectoryDataset
from repro.surrogate.vit import SQGViTSurrogate, StateNormalizer, ViTConfig, VisionTransformer


def finite_difference_check(module, x, n_checks=4, eps=1e-6, rng=None):
    """Compare module.backward against finite differences of a scalar loss."""
    rng = rng or np.random.default_rng(0)
    target = rng.normal(size=module.forward(x, training=False).shape)

    def loss():
        out = module.forward(x, training=False)
        return float(0.5 * np.sum((out - target) ** 2))

    out = module.forward(x, training=False)
    module.zero_grad()
    module.backward(out - target)
    params = module.parameters()
    assert params, "module has no parameters to check"
    for _ in range(n_checks):
        p = params[rng.integers(0, len(params))]
        idx = tuple(rng.integers(0, s) for s in p.value.shape)
        orig = p.value[idx]
        p.value[idx] = orig + eps
        lp = loss()
        p.value[idx] = orig - eps
        lm = loss()
        p.value[idx] = orig
        fd = (lp - lm) / (2 * eps)
        assert fd == pytest.approx(p.grad[idx], rel=2e-4, abs=1e-7)


class TestLayers:
    def test_linear_gradients(self):
        rng = np.random.default_rng(1)
        layer = Linear(5, 3, rng=2)
        finite_difference_check(layer, rng.normal(size=(4, 5)), rng=rng)

    def test_linear_input_gradient(self):
        rng = np.random.default_rng(2)
        layer = Linear(4, 4, rng=3)
        x = rng.normal(size=(2, 4))
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        assert np.allclose(grad_in, np.ones((2, 4)) @ layer.weight.value.T)

    def test_layernorm_gradients(self):
        rng = np.random.default_rng(3)
        layer = LayerNorm(6)
        finite_difference_check(layer, rng.normal(size=(3, 6)), rng=rng)

    def test_layernorm_output_statistics(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, 16)) * 7 + 3
        out = LayerNorm(16).forward(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gelu_shape_and_backward(self):
        rng = np.random.default_rng(5)
        gelu = GELU()
        x = rng.normal(size=(3, 4))
        out = gelu.forward(x)
        assert out.shape == x.shape
        eps = 1e-6
        grad = gelu.backward(np.ones_like(x))
        fd = (gelu.forward(x + eps) - gelu.forward(x - eps)) / (2 * eps)
        assert np.allclose(grad, fd, atol=1e-6)

    def test_dropout_inference_identity(self):
        x = np.ones((4, 4))
        drop = Dropout(0.5, rng=0)
        assert np.array_equal(drop.forward(x, training=False), x)

    def test_dropout_training_preserves_expectation(self):
        rng = np.random.default_rng(6)
        drop = Dropout(0.3, rng=7)
        x = np.ones((200, 200))
        out = drop.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_droppath_masks_whole_samples(self):
        drop = DropPath(0.5, rng=8)
        x = np.ones((64, 3, 2))
        out = drop.forward(x, training=True)
        per_sample = out.reshape(64, -1)
        unique_rows = {tuple(np.unique(r)) for r in per_sample}
        assert unique_rows <= {(0.0,), (2.0,)}

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            DropPath(-0.1)

    def test_sequential_composition(self):
        rng = np.random.default_rng(9)
        seq = Sequential(Linear(4, 8, rng=1), GELU(), Linear(8, 2, rng=2))
        finite_difference_check(seq, rng.normal(size=(3, 4)), rng=rng)
        assert seq.n_parameters() == (4 * 8 + 8) + (8 * 2 + 2)


class TestAttention:
    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_attention_gradients(self):
        rng = np.random.default_rng(1)
        attn = MultiHeadSelfAttention(embed_dim=8, num_heads=2, rng=2)
        finite_difference_check(attn, rng.normal(size=(2, 5, 8)), rng=rng)

    def test_attention_shape_and_validation(self):
        attn = MultiHeadSelfAttention(8, 4, rng=0)
        out = attn.forward(np.zeros((2, 3, 8)))
        assert out.shape == (2, 3, 8)
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)
        with pytest.raises(ValueError):
            attn.forward(np.zeros((2, 3, 6)))


class TestBlocksAndPatch:
    def test_mlp_gradients(self):
        rng = np.random.default_rng(2)
        mlp = MLP(6, 12, rng=3)
        finite_difference_check(mlp, rng.normal(size=(2, 4, 6)), rng=rng)

    def test_transformer_block_gradients(self):
        rng = np.random.default_rng(3)
        block = TransformerBlock(8, 2, mlp_ratio=2.0, rng=4)
        finite_difference_check(block, rng.normal(size=(2, 4, 8)), rng=rng, n_checks=6)

    def test_patchify_roundtrip(self):
        rng = np.random.default_rng(4)
        fields = rng.normal(size=(3, 2, 16, 16))
        patches = patchify(fields, 4)
        assert patches.shape == (3, 16, 32)
        assert np.allclose(unpatchify(patches, 4, 2, 16, 16), fields)

    def test_patchify_validation(self):
        with pytest.raises(ValueError):
            patchify(np.zeros((1, 2, 15, 15)), 4)
        with pytest.raises(ValueError):
            unpatchify(np.zeros((1, 9, 32)), 4, 2, 16, 16)

    def test_patch_embed_gradients(self):
        rng = np.random.default_rng(5)
        embed = PatchEmbed(image_size=8, patch_size=4, channels=2, embed_dim=6, rng=6)
        finite_difference_check(embed, rng.normal(size=(2, 2, 8, 8)), rng=rng)


class TestViT:
    def _tiny(self):
        return ViTConfig(image_size=8, patch_size=4, channels=2, depth=1, num_heads=2, embed_dim=8)

    def test_untrained_network_is_identity(self):
        net = VisionTransformer(self._tiny(), rng=0)
        x = np.random.default_rng(1).normal(size=(2, 2, 8, 8))
        assert np.allclose(net.forward(x), x)

    def test_forward_shape_and_validation(self):
        net = VisionTransformer(self._tiny(), rng=0)
        with pytest.raises(ValueError):
            net.forward(np.zeros((1, 2, 16, 16)))

    def test_full_model_gradients(self):
        rng = np.random.default_rng(2)
        net = VisionTransformer(self._tiny(), rng=3)
        net.head.weight.value[:] = 0.05 * rng.standard_normal(net.head.weight.value.shape)
        finite_difference_check(net, rng.normal(size=(2, 2, 8, 8)), rng=rng, n_checks=6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ViTConfig(image_size=10, patch_size=4)
        with pytest.raises(ValueError):
            ViTConfig(embed_dim=10, num_heads=4)

    def test_normalizer_roundtrip(self):
        rng = np.random.default_rng(4)
        samples = rng.normal(size=(10, 2, 8, 8)) * 5 + 2
        norm = StateNormalizer.from_samples(samples)
        assert np.allclose(norm.denormalize(norm.normalize(samples)), samples)
        normalized = norm.normalize(samples)
        assert abs(normalized.mean()) < 0.1

    def test_surrogate_forecast_interface(self):
        cfg = self._tiny()
        net = VisionTransformer(cfg, rng=5)
        norm = StateNormalizer(np.zeros((2, 1, 1)), np.ones((2, 1, 1)))
        surrogate = SQGViTSurrogate(net, norm, (2, 8, 8), steps_per_application=4)
        state = np.random.default_rng(6).normal(size=2 * 8 * 8)
        out = surrogate.forecast(state, n_steps=4)
        assert out.shape == state.shape
        ens = np.random.default_rng(7).normal(size=(5, 2 * 8 * 8))
        assert surrogate.forecast(ens, n_steps=8).shape == ens.shape
        with pytest.raises(ValueError):
            surrogate.forecast(np.zeros(10))


class TestOptim:
    def test_adam_minimises_quadratic(self):
        from repro.surrogate.layers import Parameter

        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.zero_grad()
            p.grad += 2 * p.value
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-2)

    def test_sgd_momentum_minimises_quadratic(self):
        from repro.surrogate.layers import Parameter

        p = Parameter(np.array([2.0]))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            p.zero_grad()
            p.grad += 2 * p.value
            opt.step()
        assert abs(p.value[0]) < 1e-2

    def test_clip_gradients(self):
        from repro.surrogate.layers import Parameter

        p = Parameter(np.zeros(4))
        p.grad += np.full(4, 10.0)
        norm = clip_gradients([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_validation(self):
        from repro.surrogate.layers import Parameter

        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], momentum=1.5)
        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)

    def test_adam_state_memory(self):
        from repro.surrogate.layers import Parameter

        p = Parameter(np.zeros(100))
        opt = Adam([p])
        assert opt.state_memory_bytes() == 2 * p.value.nbytes


class TestTraining:
    def test_dataset_pairs_and_batches(self):
        snaps = np.random.default_rng(0).normal(size=(9, 2, 8, 8))
        ds = TrajectoryDataset(snaps)
        x, y = ds.pairs()
        assert x.shape == (8, 2, 8, 8) and y.shape == (8, 2, 8, 8)
        batches = list(ds.batches(3, np.random.default_rng(1)))
        assert sum(b[0].shape[0] for b in batches) == 8

    def test_dataset_from_model(self):
        model = Lorenz96(dim=2 * 8 * 8)
        ds = TrajectoryDataset.from_model(model, model.spinup(50, rng=0), n_pairs=5,
                                          steps_per_pair=2, grid_shape=(2, 8, 8))
        assert len(ds) == 5

    def test_offline_training_reduces_loss(self):
        rng = np.random.default_rng(2)
        # Learnable synthetic dynamics: next state = 0.8 * current state.
        snaps = [rng.normal(size=(2, 8, 8)) * 3]
        for _ in range(12):
            snaps.append(0.8 * snaps[-1])
        ds = TrajectoryDataset(np.array(snaps))
        cfg = ViTConfig(image_size=8, patch_size=4, channels=2, depth=1, num_heads=2, embed_dim=16)
        trainer = OfflineTrainer(VisionTransformer(cfg, rng=3), TrainingConfig(epochs=8, batch_size=4), rng=4)
        losses = trainer.fit(ds)
        assert losses[-1] < losses[0]

    def test_online_trainer_runs_and_records(self):
        cfg = ViTConfig(image_size=8, patch_size=4, channels=2, depth=1, num_heads=2, embed_dim=8)
        net = VisionTransformer(cfg, rng=5)
        surrogate = SQGViTSurrogate(net, StateNormalizer(np.zeros((2, 1, 1)), np.ones((2, 1, 1))), (2, 8, 8))
        online = OnlineTrainer(surrogate, TrainingConfig(online_iterations=3))
        rng = np.random.default_rng(6)
        loss = online.update(rng.normal(size=128), rng.normal(size=128))
        assert np.isfinite(loss)
        assert len(online.loss_history) == 1

    def test_training_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)


class TestFlopsAndPresets:
    def test_parameter_count_matches_actual_network(self):
        cfg = ViTConfig(image_size=8, patch_size=4, channels=2, depth=2, num_heads=2, embed_dim=16)
        net = VisionTransformer(cfg, rng=0)
        assert vit_parameter_count(cfg) == net.n_parameters()

    def test_table_ii_parameter_counts(self):
        """Counts must land near the paper's reported 157M / 1.2B / 2.5B."""
        expected = {64: 157e6, 128: 1.2e9, 256: 2.5e9}
        for size, target in expected.items():
            count = vit_parameter_count(TABLE_II_PRESETS[size])
            assert abs(count - target) / target < 0.08

    def test_eq18_budget(self):
        flops = training_flops_eq18((64, 64), 4, 1.0e8, 1.0e6, 100)
        assert flops == pytest.approx(6 * 256 * 100 * 1e8 * 1e6)

    def test_training_flops_monotone_in_model_size(self):
        assert vit_training_flops(TABLE_II_PRESETS[256]) > vit_training_flops(TABLE_II_PRESETS[128]) > vit_training_flops(TABLE_II_PRESETS[64])

    def test_forward_flops_positive_and_scale_with_batch(self):
        cfg = TABLE_II_PRESETS[64]
        assert vit_forward_flops(cfg, 2) == pytest.approx(2 * vit_forward_flops(cfg, 1), rel=0.01)

    def test_node_hours(self):
        assert frontier_node_hours(1.0e18, achieved_tflops_per_gcd=40, gcds_per_node=8) == pytest.approx(
            1.0e18 / (40e12 * 8) / 3600.0
        )
        with pytest.raises(ValueError):
            frontier_node_hours(1.0, achieved_tflops_per_gcd=0)

    def test_presets(self):
        assert preset_by_input_size(128).embed_dim == 2048
        with pytest.raises(KeyError):
            preset_by_input_size(512)
        small = laptop_preset(image_size=32, patch_size=8)
        assert small.image_size == 32
