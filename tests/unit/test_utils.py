"""Unit tests for repro.utils (random streams, grid geometry, spectra, timing)."""

import numpy as np
import pytest

from repro.utils.grid import Grid2D, periodic_delta, periodic_distance_matrix, chord_distance_km
import repro.utils.random as random_mod
from repro.utils.random import (
    MemberStreams,
    NoisePool,
    SeedSequenceFactory,
    bitgen_name,
    default_rng,
    make_generator,
    noise_pool_blocks,
    sample_from_catalogue,
    split_rng,
)
from repro.utils.spectra import isotropic_spectrum, kinetic_energy_spectrum, spectral_slope
from repro.utils.timing import Stopwatch, Timer


class TestRandom:
    def test_default_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert default_rng(rng) is rng

    def test_default_rng_from_seed_reproducible(self):
        assert default_rng(42).normal() == default_rng(42).normal()

    def test_split_rng_independent_streams(self):
        children = split_rng(default_rng(0), 3)
        draws = [c.normal(size=4) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_split_rng_negative_raises(self):
        with pytest.raises(ValueError):
            split_rng(default_rng(0), -1)

    def test_seed_factory_same_name_same_stream(self):
        factory = SeedSequenceFactory(7)
        assert factory.rng("obs").normal() == factory.rng("obs").normal()

    def test_seed_factory_different_names_differ(self):
        factory = SeedSequenceFactory(7)
        assert factory.rng("obs").normal() != factory.rng("truth").normal()

    def test_seed_factory_member_rngs(self):
        factory = SeedSequenceFactory(3)
        rngs = factory.member_rngs("ensemble", 5)
        assert len(rngs) == 5
        vals = [r.normal() for r in rngs]
        assert len(set(np.round(vals, 12))) == 5

    def test_seed_factory_collision_prone_names_distinct(self):
        """Regression: the byte-sum hash mapped anagrams (and any equal
        byte-sum pair) to identical spawn keys, silently correlating
        "independent" streams; the sha256 derivation must keep them apart."""
        factory = SeedSequenceFactory(7)
        for a, b in [("ab", "ba"), ("ad", "bc"), ("truth", "thrut"), ("a" * 4, "b" * 2)]:
            seq_a, seq_b = factory.seed_for(a), factory.seed_for(b)
            assert seq_a.spawn_key != seq_b.spawn_key, (a, b)
            assert factory.rng(a).normal() != factory.rng(b).normal(), (a, b)

    def test_seed_factory_indexed_substreams(self):
        factory = SeedSequenceFactory(5)
        a0 = np.random.default_rng(factory.seed_for("ensf-parallel", 0)).normal()
        a1 = np.random.default_rng(factory.seed_for("ensf-parallel", 1)).normal()
        again = np.random.default_rng(factory.seed_for("ensf-parallel", 0)).normal()
        assert a0 != a1
        assert a0 == again
        other_root = SeedSequenceFactory(6).seed_for("ensf-parallel", 0)
        assert np.random.default_rng(other_root).normal() != a0

    def test_member_streams_layout_invariant_draws(self):
        seeds = np.random.SeedSequence(0).spawn(6)
        full = MemberStreams(seeds).standard_normal((6, 4))
        head = MemberStreams(seeds[:2]).standard_normal((2, 4))
        tail = MemberStreams(seeds[2:]).standard_normal((4, 4))
        np.testing.assert_array_equal(full, np.concatenate([head, tail], axis=0))

    def test_member_streams_out_and_validation(self):
        streams = MemberStreams([1, 2, 3])
        assert default_rng(streams) is streams
        out = np.empty((3, 5))
        assert streams.standard_normal(out=out) is out
        with pytest.raises(ValueError):
            streams.standard_normal((4, 5))
        with pytest.raises(ValueError):
            streams.standard_normal()
        with pytest.raises(ValueError):
            MemberStreams([])

    def test_sample_from_catalogue_exported(self):
        assert "sample_from_catalogue" in random_mod.__all__
        from repro.utils import sample_from_catalogue as reexported

        assert reexported is sample_from_catalogue

    def test_sample_from_catalogue_shape(self):
        catalogue = np.arange(40.0).reshape(10, 4)
        out = sample_from_catalogue(catalogue, 6, default_rng(0))
        assert out.shape == (6, 4)

    def test_sample_from_catalogue_without_replacement_limit(self):
        with pytest.raises(ValueError):
            sample_from_catalogue(np.zeros((3, 2)), 5, default_rng(0), replace=False)


class TestNoisePool:
    """Bit-identity contract of pooled Gaussian blocks (ISSUE 10 tentpole).

    Every chunking of a :class:`NoisePool` must serve exactly the sequence
    the unpooled per-block ``standard_normal`` calls would have drawn, and a
    drained pool must leave the source generator's state advanced by exactly
    the unpooled amount.
    """

    _SHAPE = (5, 4)
    _N_BLOCKS = 11

    def _reference(self, seed=0):
        rng = np.random.default_rng(seed)
        return [rng.standard_normal(self._SHAPE) for _ in range(self._N_BLOCKS)], rng

    @pytest.mark.parametrize("chunk_blocks", [1, 3, 8, 100])
    def test_pool_matches_unpooled_for_every_chunking(self, chunk_blocks):
        """Chunk 3 over 11 blocks straddles refill boundaries at blocks
        3/6/9; chunk 1 refills on every draw; chunk 100 is one bulk draw."""
        expected, ref_rng = self._reference()
        rng = np.random.default_rng(0)
        with NoisePool(rng, self._SHAPE, self._N_BLOCKS, chunk_blocks=chunk_blocks) as pool:
            for block in expected:
                np.testing.assert_array_equal(pool.standard_normal(self._SHAPE), block)
            assert pool.served == self._N_BLOCKS
        # drained pool leaves the source stream exactly where unpooled
        # consumption would have (the cycling loop keeps drawing from it)
        assert rng.bit_generator.state == ref_rng.bit_generator.state

    def test_sync_refill_identical_to_async(self):
        draws = {}
        for async_refill in (True, False):
            rng = np.random.default_rng(7)
            with NoisePool(
                rng, self._SHAPE, self._N_BLOCKS, chunk_blocks=4, async_refill=async_refill
            ) as pool:
                draws[async_refill] = np.stack(
                    [pool.standard_normal(self._SHAPE) for _ in range(self._N_BLOCKS)]
                )
        np.testing.assert_array_equal(draws[True], draws[False])

    def test_member_streams_pool_matches_unpooled(self):
        seeds = np.random.SeedSequence(5).spawn(4)
        reference = MemberStreams(seeds)
        expected = [reference.standard_normal((4, 6)) for _ in range(7)]
        with NoisePool(MemberStreams(seeds), (4, 6), 7, chunk_blocks=3) as pool:
            for block in expected:
                np.testing.assert_array_equal(pool.standard_normal((4, 6)), block)

    def test_out_parameter_and_shape_validation(self):
        with NoisePool(np.random.default_rng(1), (3, 2), 4, chunk_blocks=2) as pool:
            out = np.empty((3, 2))
            assert pool.standard_normal(out=out) is out
            np.testing.assert_array_equal(
                out, np.random.default_rng(1).standard_normal((3, 2))
            )
            with pytest.raises(ValueError):
                pool.standard_normal((3, 3))
            with pytest.raises(ValueError):
                pool.standard_normal(out=np.empty((2, 3)))
            with pytest.raises(ValueError):
                pool.standard_normal()  # scalar draws are not pooled

    def test_exhaustion_raises(self):
        with NoisePool(np.random.default_rng(2), (2,), 3, chunk_blocks=2) as pool:
            for _ in range(3):
                pool.standard_normal((2,))
            with pytest.raises(RuntimeError, match="exhausted"):
                pool.standard_normal((2,))

    def test_constructor_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            NoisePool(rng, (), 4)  # scalar block shape
        with pytest.raises(ValueError):
            NoisePool(rng, (2, 2), 0)  # no blocks
        with pytest.raises(ValueError):
            NoisePool(rng, (2, 2), 4, chunk_blocks=0)
        with pytest.raises(ValueError):
            # member pools must match the bundle's leading axis
            NoisePool(MemberStreams([1, 2, 3]), (4, 5), 2)

    def test_chunk_memory_budget_caps_chunk_blocks(self):
        # 4 MiB blocks → at most 8 fit the ~32 MiB chunk budget even when a
        # larger chunk is requested; the cap never breaks bit-identity.
        n_elem = (32 << 20) // 8 // 8  # 8 blocks per chunk budget
        with NoisePool(np.random.default_rng(3), (n_elem,), 20, chunk_blocks=100) as pool:
            assert pool.chunk_blocks == 8
            first = pool.standard_normal((n_elem,))
        np.testing.assert_array_equal(
            first, np.random.default_rng(3).standard_normal((n_elem,))
        )

    def test_noise_pool_blocks_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NOISE_POOL", raising=False)
        assert noise_pool_blocks() == 8  # documented default
        monkeypatch.setenv("REPRO_NOISE_POOL", "0")
        assert noise_pool_blocks() == 0  # disables pooling
        monkeypatch.setenv("REPRO_NOISE_POOL", "5")
        assert noise_pool_blocks() == 5
        monkeypatch.setenv("REPRO_NOISE_POOL", "nope")
        with pytest.raises(ValueError):
            noise_pool_blocks()
        monkeypatch.setenv("REPRO_NOISE_POOL", "-1")
        with pytest.raises(ValueError):
            noise_pool_blocks()


class TestBitGenerator:
    """``REPRO_RNG_BITGEN`` selection (ISSUE 10 tentpole satellite)."""

    def test_default_is_bit_identical_to_default_rng(self, monkeypatch):
        monkeypatch.delenv("REPRO_RNG_BITGEN", raising=False)
        assert bitgen_name() == "pcg64"
        a = make_generator(42)
        b = np.random.default_rng(42)
        np.testing.assert_array_equal(a.standard_normal(64), b.standard_normal(64))
        assert a.bit_generator.state == b.bit_generator.state

    @pytest.mark.parametrize(
        "name, cls",
        [("sfc64", np.random.SFC64), ("philox", np.random.Philox)],
    )
    def test_alternate_bitgen_selected_everywhere(self, name, cls, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_BITGEN", name)
        assert bitgen_name() == name
        rng = make_generator(7)
        assert isinstance(rng.bit_generator, cls)
        # deterministic per seed, and routed through every seed-consuming path
        np.testing.assert_array_equal(
            rng.standard_normal(8), make_generator(7).standard_normal(8)
        )
        assert isinstance(default_rng(3).bit_generator, cls)
        factory = SeedSequenceFactory(1)
        assert isinstance(factory.rng("obs").bit_generator, cls)
        assert isinstance(factory.member_rngs("ens", 2)[0].bit_generator, cls)
        for child in split_rng(make_generator(0), 2):
            assert isinstance(child.bit_generator, cls)
        streams = MemberStreams(np.random.SeedSequence(0).spawn(3))
        assert all(isinstance(g.bit_generator, cls) for g in streams.generators)

    def test_invalid_bitgen_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_BITGEN", "mt19937")
        with pytest.raises(ValueError, match="REPRO_RNG_BITGEN"):
            bitgen_name()
        with pytest.raises(ValueError):
            make_generator(0)

    def test_ready_generators_never_rewrapped(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_BITGEN", "sfc64")
        ready = np.random.default_rng(0)
        assert default_rng(ready) is ready
        assert isinstance(ready.bit_generator, np.random.PCG64)

    def test_member_streams_layout_invariant_under_sfc64(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_BITGEN", "sfc64")
        seeds = np.random.SeedSequence(0).spawn(6)
        full = MemberStreams(seeds).standard_normal((6, 4))
        head = MemberStreams(seeds[:2]).standard_normal((2, 4))
        tail = MemberStreams(seeds[2:]).standard_normal((4, 4))
        np.testing.assert_array_equal(full, np.concatenate([head, tail], axis=0))

    def test_pooled_draws_bit_identical_under_sfc64(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_BITGEN", "sfc64")
        expected_rng = make_generator(9)
        expected = [expected_rng.standard_normal((4, 3)) for _ in range(9)]
        with NoisePool(make_generator(9), (4, 3), 9, chunk_blocks=2) as pool:
            for block in expected:
                np.testing.assert_array_equal(pool.standard_normal((4, 3)), block)

    def test_bitgen_round_trip_through_executor_workers(self, monkeypatch):
        """The env knob must survive worker pickling/spawn: a pool analysis
        under sfc64 is bit-identical to the serial member-seeded analysis in
        the parent (worker processes inherit the environment)."""
        from repro.core.ensf import EnSF, EnSFConfig
        from repro.core.observations import IdentityObservation
        from repro.hpc.ensemble_parallel import EnsembleExecutor

        monkeypatch.setenv("REPRO_RNG_BITGEN", "sfc64")
        grid = Grid2D(6, 6)
        rng = np.random.default_rng(0)
        ensemble = rng.standard_normal((6, grid.size))
        truth = rng.standard_normal(grid.size)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        filt = EnSF(EnSFConfig(n_sde_steps=5), rng=0)
        member_seeds = np.random.SeedSequence(4).spawn(6)
        serial = filt.analyze_members(
            ensemble, observation, operator, member_seeds=member_seeds
        )
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex:
            parallel = ex.analyze_ensf(filt, ensemble, observation, operator, seed=4)
        np.testing.assert_array_equal(parallel, serial)
        # and the stream family genuinely differs from the default config
        monkeypatch.delenv("REPRO_RNG_BITGEN")
        pcg = filt.analyze_members(
            ensemble, observation, operator, member_seeds=member_seeds
        )
        assert not np.array_equal(serial, pcg)


class TestGrid:
    def test_periodic_delta_wraps(self):
        assert periodic_delta(np.array(9.0), np.array(1.0), 10.0) == pytest.approx(-2.0)

    def test_distance_matrix_symmetry_and_zero_diagonal(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [9.0, 9.0]])
        d = periodic_distance_matrix(pts, pts, 10.0, 10.0)
        assert np.allclose(np.diag(d), 0.0)
        assert np.allclose(d, d.T)

    def test_distance_uses_minimum_image(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[9.0, 0.0]])
        d = periodic_distance_matrix(a, b, 10.0, 10.0)
        assert d[0, 0] == pytest.approx(1.0)

    def test_chord_distance_quarter_circle(self):
        d = chord_distance_km(0.0, 0.0, 0.0, 90.0)
        assert d == pytest.approx(np.pi / 2 * 6371.0, rel=1e-6)

    def test_grid_flatten_roundtrip(self):
        grid = Grid2D(nx=8, ny=4, nlev=2)
        state = np.arange(grid.size, dtype=float).reshape(grid.shape)
        assert np.array_equal(grid.unflatten_state(grid.flatten_state(state)), state)

    def test_grid_flatten_batched(self):
        grid = Grid2D(nx=4, ny=4, nlev=2)
        states = np.random.default_rng(0).normal(size=(3,) + grid.shape)
        flat = grid.flatten_state(states)
        assert flat.shape == (3, grid.size)
        assert np.array_equal(grid.unflatten_state(flat), states)

    def test_grid_column_index(self):
        grid = Grid2D(nx=4, ny=4, nlev=2)
        idx = np.array([0, 15, 16, 31])
        assert np.array_equal(grid.column_index(idx), np.array([0, 15, 0, 15]))

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            Grid2D(nx=0, ny=4)
        with pytest.raises(ValueError):
            Grid2D(nx=4, ny=4, lx=-1.0)

    def test_point_coordinates_shape(self):
        grid = Grid2D(nx=4, ny=6, nlev=2)
        assert grid.point_coordinates().shape == (24, 2)


class TestSpectra:
    def test_isotropic_spectrum_of_single_mode(self):
        n = 32
        x = np.arange(n) / n
        xx, yy = np.meshgrid(x, x)
        field = np.sin(2 * np.pi * 4 * xx)
        k, spec = isotropic_spectrum(field)
        assert k[np.argmax(spec)] == pytest.approx(4.0)

    def test_spectral_slope_recovers_power_law(self):
        k = np.arange(1.0, 32.0)
        spec = k**-3.0
        slope = spectral_slope(k, spec, k_min=2, k_max=30)
        assert slope == pytest.approx(-3.0, abs=1e-6)

    def test_spectral_slope_needs_points(self):
        with pytest.raises(ValueError):
            spectral_slope(np.array([1.0, 2.0]), np.array([1.0, 1.0]), k_min=10, k_max=20)

    def test_kinetic_energy_spectrum_nonnegative(self):
        rng = np.random.default_rng(0)
        u, v = rng.normal(size=(2, 16, 16))
        k, ke = kinetic_energy_spectrum(u, v)
        assert np.all(ke >= 0)

    def test_isotropic_spectrum_requires_2d(self):
        with pytest.raises(ValueError):
            isotropic_spectrum(np.zeros(10))


class TestTiming:
    def test_timer_measures_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_stopwatch_accumulates_and_fractions(self):
        sw = Stopwatch()
        sw.start("a")
        sw.stop("a")
        sw.start("b")
        sw.stop("b")
        assert set(sw.fractions()) == {"a", "b"}
        assert sum(sw.fractions().values()) == pytest.approx(1.0)

    def test_stopwatch_unknown_lap_raises(self):
        sw = Stopwatch()
        with pytest.raises(KeyError):
            sw.stop("never-started")
        with pytest.raises(KeyError):
            sw.mean("missing")
