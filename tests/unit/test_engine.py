"""Cycle-engine certification suite.

Three layers of coverage for :mod:`repro.workflow.engine`:

* **Golden equivalence** — verbatim copies of the pre-refactor inlined
  loops (`run_osse`, `free_run`, `RealTimeDAWorkflow.run` as of PR 4) are
  kept here as oracles, and the engine-backed drivers must reproduce their
  RMSE/spread trajectories and final states *bit-identically* for seeded
  LETKF and EnSF configurations, serially and through an ``n_workers=2``
  executor.
* **Scenario matrix** — every streaming observation scenario (every-k,
  dropout, partial coverage, latency, alternating multi-operator network)
  runs reproducibly through the engine, and sparser schedules degrade the
  mean analysis RMSE monotonically versus full observation.
* **Checkpoint/restart** — a run interrupted mid-stream and resumed from an
  :class:`EngineCheckpoint` (in memory or from disk) is bit-identical to
  the uninterrupted run, including rng-stream state and in-flight latent
  observations.
"""

import numpy as np
import pytest

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.filters import ensemble_statistics, relax_spread
from repro.core.observations import (
    IdentityObservation,
    ObservationScenario,
    coverage_windows,
)
from repro.da.cycling import CyclingResult, OSSEConfig, _initial_ensemble, free_run, rmse, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.hpc.ensemble_parallel import EnsembleExecutor
from repro.models.base import propagate_ensemble
from repro.models.lorenz96 import Lorenz96
from repro.models.model_error import StochasticModelErrorMixture
from repro.utils.grid import Grid2D
from repro.utils.random import SeedSequenceFactory
from repro.workflow.engine import EngineCheckpoint
from repro.workflow.realtime import RealTimeDAWorkflow

DIM = 40


# --------------------------------------------------------------------------- #
# Pre-refactor oracles (verbatim loop semantics of the PR 4 drivers)
# --------------------------------------------------------------------------- #


def _legacy_run_osse(
    truth_model,
    forecast_model,
    filter_,
    operator,
    truth0,
    config,
    executor=None,
    store_history=False,
):
    """The inlined OSSE loop exactly as it stood before the engine refactor."""
    seeds = SeedSequenceFactory(config.seed)
    rng_obs = seeds.rng("observations")
    rng_init = seeds.rng("initial-ensemble")
    model_error = (
        StochasticModelErrorMixture(rng=seeds.rng("model-error"))
        if config.apply_model_error_to_truth
        else None
    )
    truth = np.array(truth0, dtype=float)
    ensemble = _initial_ensemble(
        truth_model, truth, config.ensemble_size, config.steps_per_cycle, rng_init
    )
    forecast_rmse = np.zeros(config.n_cycles)
    analysis_rmse = np.zeros(config.n_cycles)
    analysis_spread = np.zeros(config.n_cycles)
    history = []
    for cycle in range(config.n_cycles):
        truth = truth_model.forecast(truth, n_steps=config.steps_per_cycle)
        if model_error is not None:
            truth = model_error.perturb(truth)
        ensemble = propagate_ensemble(
            forecast_model, ensemble, n_steps=config.steps_per_cycle, executor=executor
        )
        forecast_rmse[cycle] = rmse(ensemble_statistics(ensemble).mean, truth)
        if filter_ is not None:
            observation = operator.observe(truth, rng=rng_obs)
            ensemble = filter_.analyze_parallel(
                ensemble, observation, operator, executor=executor
            )
        stats_a = ensemble_statistics(ensemble)
        analysis_rmse[cycle] = rmse(stats_a.mean, truth)
        analysis_spread[cycle] = stats_a.mean_spread
        if store_history:
            history.append(stats_a.mean.copy())
    return CyclingResult(
        times=np.arange(1, config.n_cycles + 1, dtype=float),
        forecast_rmse=forecast_rmse,
        analysis_rmse=analysis_rmse,
        analysis_spread=analysis_spread,
        truth_final=truth,
        analysis_mean_final=ensemble_statistics(ensemble).mean,
        analysis_mean_history=np.array(history) if store_history else None,
    )


def _legacy_free_run(truth_model, forecast_model, truth0, config):
    seeds = SeedSequenceFactory(config.seed)
    model_error = (
        StochasticModelErrorMixture(rng=seeds.rng("model-error"))
        if config.apply_model_error_to_truth
        else None
    )
    truth = np.array(truth0, dtype=float)
    prediction = np.array(truth0, dtype=float)
    run_rmse = np.zeros(config.n_cycles)
    for cycle in range(config.n_cycles):
        truth = truth_model.forecast(truth, n_steps=config.steps_per_cycle)
        if model_error is not None:
            truth = model_error.perturb(truth)
        prediction = forecast_model.forecast(prediction, n_steps=config.steps_per_cycle)
        run_rmse[cycle] = rmse(prediction, truth)
    return run_rmse, truth, prediction


def _legacy_realtime_run(
    surrogate,
    truth_model,
    operator,
    ensf_config,
    model_error,
    executor,
    seed,
    truth0,
    initial_ensemble,
    n_cycles,
    steps_per_cycle,
):
    """The pre-refactor ``RealTimeDAWorkflow.run`` loop (online training off)."""
    seeds = SeedSequenceFactory(seed)
    ensf = EnSF(ensf_config, rng=seeds.rng("ensf"))
    truth = np.array(truth0, dtype=float)
    ensemble = np.array(initial_ensemble, dtype=float)
    rng_obs = seeds.rng("observations")
    forecast_rmse = np.zeros(n_cycles)
    analysis_rmse = np.zeros(n_cycles)
    for cycle in range(n_cycles):
        truth = truth_model.forecast(truth, n_steps=steps_per_cycle)
        if model_error is not None:
            truth = model_error.perturb(truth)
        observation = operator.observe(truth, rng=rng_obs)
        if executor is None:
            forecast = surrogate.forecast(ensemble, n_steps=steps_per_cycle)
        else:
            forecast = executor.map_states(surrogate, ensemble, n_steps=steps_per_cycle)
        forecast_rmse[cycle] = rmse(forecast.mean(axis=0), truth)
        if executor is None:
            analysis = ensf.analyze(forecast, observation, operator)
        else:
            analysis = executor.analyze_ensf(
                ensf,
                forecast,
                observation,
                operator,
                seed=seeds.seed_for("ensf-parallel", cycle),
            )
            analysis = relax_spread(
                analysis, forecast, factor=ensf.config.spread_relaxation
            )
        stats = ensemble_statistics(analysis)
        analysis_rmse[cycle] = rmse(stats.mean, truth)
        ensemble = analysis
    return forecast_rmse, analysis_rmse, truth, ensemble


# --------------------------------------------------------------------------- #
# Shared fixtures
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def testbed():
    model = Lorenz96(dim=DIM)
    truth0 = model.spinup(300, rng=0)
    operator = IdentityObservation(DIM, obs_error_var=0.5)
    return model, truth0, operator


@pytest.fixture(scope="module")
def pool():
    with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as executor:
        yield executor


def _letkf():
    # Lorenz96's 40 variables laid out on a periodic 10x2x2 grid so the
    # LETKF localization has a geometry; shard_columns exercises the
    # column-sharded solve stage through the engine's executor plumbing.
    grid = Grid2D(10, 2, nlev=2)
    return LETKF(
        grid,
        LETKFConfig(localization=LocalizationConfig(cutoff=4.0e6), shard_columns=8),
    )


def _ensf(rng=5):
    return EnSF(EnSFConfig(n_sde_steps=15), rng=rng)


def _assert_identical(result: CyclingResult, oracle: CyclingResult):
    np.testing.assert_array_equal(result.forecast_rmse, oracle.forecast_rmse)
    np.testing.assert_array_equal(result.analysis_rmse, oracle.analysis_rmse)
    np.testing.assert_array_equal(result.analysis_spread, oracle.analysis_spread)
    np.testing.assert_array_equal(result.truth_final, oracle.truth_final)
    np.testing.assert_array_equal(result.analysis_mean_final, oracle.analysis_mean_final)


class TestGoldenEquivalence:
    """Engine-backed drivers == pre-refactor inlined loops, bit for bit."""

    CONFIG = OSSEConfig(n_cycles=6, steps_per_cycle=4, ensemble_size=10, seed=3)

    @pytest.mark.parametrize("filter_factory", [_letkf, _ensf], ids=["letkf", "ensf"])
    def test_run_osse_serial(self, testbed, filter_factory):
        model, truth0, operator = testbed
        result = run_osse(
            model, model, filter_factory(), operator, truth0, self.CONFIG,
            store_history=True,
        )
        oracle = _legacy_run_osse(
            model, model, filter_factory(), operator, truth0, self.CONFIG,
            store_history=True,
        )
        _assert_identical(result, oracle)
        np.testing.assert_array_equal(
            result.analysis_mean_history, oracle.analysis_mean_history
        )

    @pytest.mark.parametrize("filter_factory", [_letkf, _ensf], ids=["letkf", "ensf"])
    def test_run_osse_two_worker_executor(self, testbed, pool, filter_factory):
        model, truth0, operator = testbed
        result = run_osse(
            model, model, filter_factory(), operator, truth0, self.CONFIG,
            executor=pool,
        )
        oracle = _legacy_run_osse(
            model, model, filter_factory(), operator, truth0, self.CONFIG,
            executor=pool,
        )
        _assert_identical(result, oracle)

    def test_run_osse_without_filter(self, testbed):
        model, truth0, operator = testbed
        result = run_osse(model, model, None, operator, truth0, self.CONFIG)
        oracle = _legacy_run_osse(model, model, None, operator, truth0, self.CONFIG)
        _assert_identical(result, oracle)

    def test_free_run(self, testbed):
        model, truth0, _ = testbed
        result = free_run(model, model, truth0, self.CONFIG)
        run_rmse, truth, prediction = _legacy_free_run(model, model, truth0, self.CONFIG)
        np.testing.assert_array_equal(result.forecast_rmse, run_rmse)
        np.testing.assert_array_equal(result.analysis_rmse, run_rmse)
        np.testing.assert_array_equal(result.truth_final, truth)
        np.testing.assert_array_equal(result.analysis_mean_final, prediction)
        assert not result.analysis_spread.any()

    @pytest.mark.parametrize("use_executor", [False, True], ids=["serial", "pool2"])
    def test_realtime_workflow(self, testbed, pool, use_executor):
        from repro.surrogate.training import TrainingConfig

        model, truth0, operator = testbed
        executor = pool if use_executor else None
        rng = np.random.default_rng(2)
        ens0 = truth0[None, :] + rng.standard_normal((8, DIM))
        ensf_config = EnSFConfig(n_sde_steps=12)

        workflow = RealTimeDAWorkflow(
            surrogate=model,
            truth_model=model,
            operator=operator,
            ensf_config=ensf_config,
            training_config=TrainingConfig(online_iterations=0),
            model_error=StochasticModelErrorMixture(rng=7),
            executor=executor,
            seed=11,
        )
        summary = workflow.run(truth0, ens0, n_cycles=3, steps_per_cycle=2)
        forecast_rmse, analysis_rmse, truth, ensemble = _legacy_realtime_run(
            model, model, operator, ensf_config,
            StochasticModelErrorMixture(rng=7), executor, 11,
            truth0, ens0, 3, 2,
        )
        np.testing.assert_array_equal(summary["forecast_rmse"], forecast_rmse)
        np.testing.assert_array_equal(summary["analysis_rmse"], analysis_rmse)
        stats = ensemble_statistics(ensemble)
        assert summary["final_analysis_rmse"] == rmse(stats.mean, truth)
        assert summary["final_spread"] == stats.mean_spread


# --------------------------------------------------------------------------- #
# Scenario matrix
# --------------------------------------------------------------------------- #


class TestScenarioMatrix:
    CONFIG = OSSEConfig(n_cycles=8, steps_per_cycle=4, ensemble_size=10, seed=6)

    def _run(self, testbed, scenario):
        model, truth0, operator = testbed
        return run_osse(
            model, model, _letkf(), operator, truth0, self.CONFIG, scenario=scenario
        )

    def scenarios(self):
        return {
            "every_2": ObservationScenario(name="every_2", every=2),
            "dropout": ObservationScenario(name="dropout", dropout=0.5),
            "partial": ObservationScenario(
                name="partial", operators=coverage_windows(DIM, 2, obs_error_var=0.5)
            ),
            "latency": ObservationScenario(name="latency", latency=1),
            "multi_op": ObservationScenario(
                name="multi_op",
                operators=(
                    IdentityObservation(DIM, obs_error_var=0.5),
                    coverage_windows(DIM, 2, obs_error_var=0.5)[0],
                ),
            ),
        }

    @pytest.mark.parametrize(
        "name", ["every_2", "dropout", "partial", "latency", "multi_op"]
    )
    def test_each_scenario_runs_and_reproduces(self, testbed, name):
        scenario = self.scenarios()[name]
        first = self._run(testbed, scenario)
        second = self._run(testbed, scenario)
        assert np.isfinite(first.analysis_rmse).all()
        _assert_identical(first, second)

    def test_sparser_schedules_degrade_rmse_monotonically(self, testbed):
        """Fewer analyses => worse (or equal) mean RMSE, monotonically."""
        means = [
            self._run(
                testbed, ObservationScenario(name=f"every_{k}", every=k)
            ).mean_analysis_rmse
            for k in (1, 2, 4)
        ]
        assert means[0] < means[1] < means[2]

    def test_dropout_degrades_versus_full(self, testbed):
        full = self._run(testbed, None).mean_analysis_rmse
        lossy = self._run(
            testbed, ObservationScenario(name="dropout", dropout=0.5)
        ).mean_analysis_rmse
        assert full < lossy

    def test_latency_marks_cycles_observed_late(self, testbed):
        model, truth0, operator = testbed
        from repro.workflow.engine import (
            CycleEngine,
            EnsembleForecastStage,
            FilterAnalysisStage,
            ObservationStage,
            TruthStage,
        )
        from repro.core.observations import ObservationStream

        seeds = SeedSequenceFactory(0)
        engine = CycleEngine(
            truth=TruthStage(model, 2),
            observations=ObservationStage(
                ObservationStream(
                    operator,
                    ObservationScenario(latency=2),
                    rng=seeds.rng("observations"),
                    schedule_rng=seeds.rng("observation-schedule"),
                )
            ),
            forecast=EnsembleForecastStage(model, 2),
            analysis=FilterAnalysisStage(_letkf()),
        )
        ens0 = truth0[None, :] + np.random.default_rng(1).standard_normal((6, DIM))
        result = engine.run(truth0, ens0, 5)
        assert [r.observed for r in result.records] == [False, False, True, True, True]


# --------------------------------------------------------------------------- #
# Checkpoint / restart
# --------------------------------------------------------------------------- #


class TestCheckpointRestart:
    CONFIG = OSSEConfig(n_cycles=8, steps_per_cycle=4, ensemble_size=10, seed=9)
    SCENARIO = ObservationScenario(name="stress", dropout=0.3, latency=1)

    def _run(self, testbed, **kwargs):
        model, truth0, operator = testbed
        return run_osse(
            model, model, _ensf(rng=SeedSequenceFactory(9).rng("filter")), operator,
            truth0, self.CONFIG, scenario=self.SCENARIO, store_history=True, **kwargs,
        )

    def test_resume_is_bit_identical(self, testbed, tmp_path):
        path = tmp_path / "engine.ckpt"
        uninterrupted = self._run(
            testbed, checkpoint_every=5, checkpoint_path=path
        )
        # "Kill" after the rolling checkpoint at cycle 5: a fresh driver with
        # fresh filter/stream objects resumes from disk and must land on the
        # same trajectory, bit for bit.
        ckpt = EngineCheckpoint.load(path)
        assert ckpt.next_cycle == 5
        resumed = self._run(testbed, resume=path)
        _assert_identical(resumed, uninterrupted)
        np.testing.assert_array_equal(
            resumed.analysis_mean_history, uninterrupted.analysis_mean_history
        )

    def test_checkpoint_rejects_parameter_drift(self, testbed, tmp_path):
        """A checkpoint resumed under an edited scenario (or steps-per-cycle)
        must be refused: slot names still match, so only the pipeline
        fingerprint can catch the drift before it silently voids the
        bit-identical-resume contract."""
        model, truth0, operator = testbed
        path = tmp_path / "engine.ckpt"
        self._run(testbed, checkpoint_every=5, checkpoint_path=path)
        drifted = ObservationScenario(name="stress", dropout=0.2, latency=1)
        with pytest.raises(ValueError, match="fingerprint"):
            run_osse(
                model, model, _ensf(), operator, truth0, self.CONFIG,
                scenario=drifted, store_history=True, resume=path,
            )

    def test_checkpoint_rejects_stage_mismatch(self, testbed, tmp_path):
        model, truth0, operator = testbed
        path = tmp_path / "engine.ckpt"
        self._run(testbed, checkpoint_every=5, checkpoint_path=path)
        with pytest.raises(ValueError, match="stages"):
            # Free-run engine (no observation/analysis slots) must refuse a
            # DA checkpoint instead of silently resuming the wrong pipeline.
            from repro.workflow.engine import (
                CycleEngine,
                DeterministicForecastStage,
                TruthStage,
            )

            CycleEngine(
                truth=TruthStage(model, 4),
                forecast=DeterministicForecastStage(model, 4),
            ).run(resume=path, n_cycles=8)

    def test_run_validation(self, testbed):
        model, truth0, _ = testbed
        from repro.workflow.engine import (
            CycleEngine,
            DeterministicForecastStage,
            TruthStage,
        )

        engine = CycleEngine(
            truth=TruthStage(model, 1),
            forecast=DeterministicForecastStage(model, 1),
        )
        with pytest.raises(ValueError):
            engine.run(truth0, truth0, 0)
        with pytest.raises(ValueError):
            engine.run(n_cycles=3)  # fresh run without states
        with pytest.raises(ValueError):
            engine.run(truth0, truth0, 3, checkpoint_every=2)  # path missing
        with pytest.raises(ValueError):
            engine.checkpoint()  # nothing ran yet


# --------------------------------------------------------------------------- #
# Real-time workflow state semantics (regression)
# --------------------------------------------------------------------------- #


class _ExplodingModel:
    """Forecast model that raises after a set number of forecast calls."""

    def __init__(self, inner, explode_after: int):
        self.inner = inner
        self.state_size = inner.state_size
        self.calls = 0
        self.explode_after = explode_after

    def forecast(self, state, n_steps=1):
        self.calls += 1
        if self.calls > self.explode_after:
            raise RuntimeError("boom")
        return self.inner.forecast(state, n_steps=n_steps)


class TestRealtimeStateSemantics:
    def _workflow(self, testbed, surrogate=None):
        from repro.surrogate.training import TrainingConfig

        model, truth0, operator = testbed
        workflow = RealTimeDAWorkflow(
            surrogate=surrogate if surrogate is not None else model,
            truth_model=model,
            operator=operator,
            ensf_config=EnSFConfig(n_sde_steps=8),
            training_config=TrainingConfig(online_iterations=0),
            seed=21,
        )
        rng = np.random.default_rng(3)
        ens0 = truth0[None, :] + rng.standard_normal((6, DIM))
        return workflow, truth0, ens0

    def test_repeated_runs_reset_history_and_timings(self, testbed):
        """Regression: ``history`` used to accumulate across run() calls
        while ``timings`` was overwritten, so a second run reported 2N
        history rows against N-cycle timings."""
        workflow, truth0, ens0 = self._workflow(testbed)
        first = workflow.run(truth0, ens0, n_cycles=3, steps_per_cycle=2)
        assert len(workflow.history) == 3
        second = workflow.run(truth0, ens0, n_cycles=3, steps_per_cycle=2)
        assert len(workflow.history) == 3
        assert workflow.timings.n_cycles == 3
        assert len(second["analysis_rmse"]) == 3
        assert len(first["analysis_rmse"]) == 3
        # a fresh, identically-seeded workflow reproduces the first run
        fresh, truth0, ens0 = self._workflow(testbed)
        np.testing.assert_array_equal(
            first["analysis_rmse"],
            fresh.run(truth0, ens0, n_cycles=3, steps_per_cycle=2)["analysis_rmse"],
        )

    def test_exception_mid_run_keeps_completed_cycle_records(self, testbed):
        """Regression: an exception mid-run used to lose *all* timing (it was
        only written after the loop); timings/history now accumulate per
        completed cycle."""
        model, _, _ = testbed
        # 2 completed cycles, then the 3rd surrogate forecast explodes.
        surrogate = _ExplodingModel(model, explode_after=2)
        workflow, truth0, ens0 = self._workflow(testbed, surrogate=surrogate)
        with pytest.raises(RuntimeError, match="boom"):
            workflow.run(truth0, ens0, n_cycles=5, steps_per_cycle=2)
        assert len(workflow.history) == 2
        assert workflow.timings.n_cycles == 2
        assert workflow.timings.forecast > 0.0
        assert workflow.timings.analysis > 0.0

    def test_fresh_run_after_exception_is_clean(self, testbed):
        model, _, _ = testbed
        surrogate = _ExplodingModel(model, explode_after=2)
        workflow, truth0, ens0 = self._workflow(testbed, surrogate=surrogate)
        with pytest.raises(RuntimeError):
            workflow.run(truth0, ens0, n_cycles=5, steps_per_cycle=2)
        surrogate.explode_after = 10**9
        summary = workflow.run(truth0, ens0, n_cycles=2, steps_per_cycle=2)
        assert len(workflow.history) == 2
        assert workflow.timings.n_cycles == 2
        assert np.isfinite(summary["final_analysis_rmse"])
