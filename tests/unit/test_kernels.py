"""Determinism and regression tests for the vectorized analysis kernels.

Reference-path retirement (ROADMAP): the pre-refactor reference
implementations (``LETKF.analyze_reference``,
``MonteCarloScoreEstimator.score_reference``, the ``fused=False`` /
``reuse_buffers=False`` configurations) are deleted from the source tree.
Exactness is certified without an oracle: every routed kernel must produce
results on the fixture-selected array backend that match the plain-numpy
backend bit for bit (and consume the host random stream identically), and
repeated evaluations through the persistent workspaces must not perturb a
single bit.  The whole-OSSE cross-backend certification lives in
``tests/unit/test_xp_backend.py``.
"""

import numpy as np
import pytest

import repro.utils.grid as grid_mod
from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation, NonlinearObservation, SubsampledObservation
from repro.core.schedules import LinearAlphaSchedule
from repro.core.score import MonteCarloScoreEstimator
from repro.core.sde import ReverseSDESampler
from repro.da.cycling import OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig, solve_local_batch
from repro.da.localization import LocalAnalysisGeometry, LocalizationConfig
from repro.models.lorenz96 import Lorenz96
from repro.utils.grid import Grid2D
from repro.utils.random import default_rng
from repro.utils.timing import BenchRecorder


def _case(seed=0, shape=(16, 16), members=12, scale=1.0):
    grid = Grid2D(*shape)
    rng = np.random.default_rng(seed)
    ensemble = rng.standard_normal((members, grid.size)) * scale
    truth = rng.standard_normal(grid.size) * scale
    return grid, rng, ensemble, truth


class TestGridGeometry:
    def test_distance_stencil_matches_pairwise(self):
        grid = Grid2D(6, 5)
        coords = grid.point_coordinates()
        full = grid_mod.periodic_distance_matrix(coords, coords, grid.lx, grid.ly)
        stencil = grid.distance_stencil()
        cols = np.arange(grid.ny * grid.nx)
        via_stencil = grid.column_pair_distances(cols, cols, stencil=stencil)
        np.testing.assert_allclose(via_stencil, full, atol=1e-9)

    def test_column_pair_distances_subset(self):
        grid = Grid2D(8, 8)
        coords = grid.point_coordinates()
        cols = np.array([0, 5, 17, 63])
        obs = np.array([3, 9, 60])
        expected = grid_mod.periodic_distance_matrix(
            coords[cols], coords[obs], grid.lx, grid.ly
        )
        np.testing.assert_allclose(grid.column_pair_distances(cols, obs), expected, atol=1e-9)


class TestBatchedLETKFDeterminism:
    """Exactness certification without an oracle (reference-path retirement,
    ROADMAP): ``min_weight = 0`` exercises the convolution assembly (the
    identity operator takes its reshape fast path, the subsampled operator
    the bincount scatter), ``1e-4`` the grouped-footprint assembly, and the
    ``array_backend`` fixture re-runs every case under every registered
    array backend, asserted bit-identical to the plain-numpy baseline."""

    @pytest.mark.parametrize("min_weight", [0.0, 1.0e-4])
    @pytest.mark.parametrize(
        "operator_factory",
        [
            lambda d: IdentityObservation(d, 1.2),
            lambda d: SubsampledObservation.every_nth(d, 3, 0.7),
        ],
        ids=["identity", "subsampled"],
    )
    def test_batched_matches_numpy_baseline(
        self, operator_factory, min_weight, array_backend
    ):
        grid, rng, ensemble, truth = _case(seed=1)
        operator = operator_factory(grid.size)
        observation = operator.observe(truth, rng=rng)
        loc = LocalizationConfig(cutoff=4.0e6, min_weight=min_weight)
        letkf = LETKF(grid, LETKFConfig(localization=loc))
        assert letkf.xp is array_backend  # config backend=None → fixture default
        batched = letkf.analyze(ensemble, observation, operator)
        baseline = LETKF(grid, LETKFConfig(localization=loc, backend="numpy")).analyze(
            ensemble, observation, operator
        )
        np.testing.assert_array_equal(batched, baseline)
        # a second analysis through the same instance reuses the cached
        # geometry/workspaces — still bit-identical
        np.testing.assert_array_equal(
            letkf.analyze(ensemble, observation, operator), baseline
        )

    def test_empty_footprints_keep_prior(self):
        grid, rng, ensemble, truth = _case(seed=4)
        operator = SubsampledObservation.every_nth(grid.size, 7, 1.0)
        observation = operator.observe(truth, rng=rng)
        cfg = LETKFConfig(
            localization=LocalizationConfig(cutoff=grid.dx * 0.55, min_weight=1e-4),
            rtps_factor=0.0,
        )
        letkf = LETKF(grid, cfg)
        geometry = letkf.geometry(operator)
        assert geometry.empty_columns.size > 0
        batched = letkf.analyze(ensemble, observation, operator)
        # columns without local observations must keep the prior exactly
        col = int(geometry.empty_columns[0])
        state_idx = col + np.arange(grid.nlev) * (grid.ny * grid.nx)
        np.testing.assert_array_equal(batched[:, state_idx], ensemble[:, state_idx])


class TestShardedLETKF:
    """Column-sharded parallel analysis vs the serial batched kernel.

    The shard decomposition is fixed by ``shard_columns`` (never by the
    worker count), and every local problem is solved independently, so the
    sharded path must reproduce the serial batched kernel member-wise; the
    cross-worker-count bit-identity contract is exercised with real process
    pools in ``tests/unit/test_hpc.py``.  ``n_workers=1`` executors run the
    same shard jobs serially in-process, which keeps these cases cheap.
    """

    def _executor(self):
        from repro.hpc.ensemble_parallel import EnsembleExecutor

        return EnsembleExecutor(n_workers=1)

    @pytest.mark.parametrize("shard_columns", [1, 37, 64, 1000])
    def test_sharded_matches_serial_convolution(self, shard_columns):
        grid, rng, ensemble, truth = _case(seed=11)
        operator = IdentityObservation(grid.size, 1.2)
        observation = operator.observe(truth, rng=rng)
        cfg = LETKFConfig(
            localization=LocalizationConfig(cutoff=4.0e6), shard_columns=shard_columns
        )
        letkf = LETKF(grid, cfg)
        assert letkf.geometry(operator).mode == "convolution"
        serial = letkf.analyze(ensemble, observation, operator)
        sharded = letkf.analyze_parallel(
            ensemble, observation, operator, executor=self._executor()
        )
        np.testing.assert_allclose(sharded, serial, atol=1e-11, rtol=1e-11)

    @pytest.mark.parametrize("shard_columns", [50, 128])
    def test_sharded_matches_serial_grouped(self, shard_columns):
        grid, rng, ensemble, truth = _case(seed=12)
        var = 0.5 + rng.random(grid.size)
        operator = IdentityObservation(grid.size, var)
        observation = operator.observe(truth, rng=rng)
        cfg = LETKFConfig(
            localization=LocalizationConfig(cutoff=4.0e6), shard_columns=shard_columns
        )
        letkf = LETKF(grid, cfg)
        assert letkf.geometry(operator).mode == "grouped"
        serial = letkf.analyze(ensemble, observation, operator)
        sharded = letkf.analyze_parallel(
            ensemble, observation, operator, executor=self._executor()
        )
        np.testing.assert_allclose(sharded, serial, atol=1e-11, rtol=1e-11)

    def test_sharded_grouped_with_empty_footprints(self):
        grid, rng, ensemble, truth = _case(seed=13)
        operator = SubsampledObservation.every_nth(grid.size, 7, 1.0)
        observation = operator.observe(truth, rng=rng)
        cfg = LETKFConfig(
            localization=LocalizationConfig(cutoff=grid.dx * 0.55, min_weight=1e-4),
            rtps_factor=0.0,
            shard_columns=60,
        )
        letkf = LETKF(grid, cfg)
        assert letkf.geometry(operator).empty_columns.size > 0
        serial = letkf.analyze(ensemble, observation, operator)
        sharded = letkf.analyze_parallel(
            ensemble, observation, operator, executor=self._executor()
        )
        np.testing.assert_allclose(sharded, serial, atol=1e-11, rtol=1e-11)

    def test_sharded_without_executor_or_batching_falls_back(self):
        grid, rng, ensemble, truth = _case(seed=14)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        letkf = LETKF(grid, LETKFConfig())
        np.testing.assert_array_equal(
            letkf.analyze_parallel(ensemble, observation, operator, executor=None),
            letkf.analyze(ensemble, observation, operator),
        )

    def test_geometry_column_block_roundtrip(self):
        grid = Grid2D(10, 8)
        obs_columns = np.arange(grid.ny * grid.nx)[::3]
        geometry = LocalAnalysisGeometry(
            grid,
            obs_columns,
            LocalizationConfig(cutoff=2.0e6, min_weight=1e-4),
            np.ones(obs_columns.size),
        )
        full_footprints = {
            int(col): group.obs_indices[i]
            for group in geometry.groups
            for i, col in enumerate(group.columns)
        }
        covered = []
        for start in range(0, geometry.n_columns, 25):
            block = geometry.column_block(start, min(start + 25, geometry.n_columns))
            assert block.mode == "grouped"
            for group in block.groups:
                assert group.columns.min() >= 0
                assert group.columns.max() < block.n_block_columns
                for i, col in enumerate(group.columns):
                    # remapping through obs_subset recovers the original footprint
                    np.testing.assert_array_equal(
                        block.obs_subset[group.obs_indices[i]],
                        full_footprints[int(col + block.start)],
                    )
                covered.extend((group.columns + block.start).tolist())
        expected = np.setdiff1d(np.arange(geometry.n_columns), geometry.empty_columns)
        assert np.array_equal(np.sort(covered), expected)
        with pytest.raises(ValueError):
            geometry.column_block(5, 3)


class TestBlockedEigh:
    """Blocked stacked-eigh solve path.

    Every local problem in the ``(B, m, m)`` stack is solved independently,
    so partitioning the stack into cache-sized eig batches (``eigh_block``)
    must be **bit-identical** to the monolithic solve for every block size
    and through every analysis path (serial convolution/grouped, sharded).
    The truncated rank-``r`` solve (``solve_rank``) is opt-in and changes
    the arithmetic; ``r >= m`` must fall back to the exact path.
    """

    def _local_case(self, b=37, m=6, nlev=2, seed=0):
        rng = np.random.default_rng(seed)
        y = rng.standard_normal((b, m, 3))
        a_stack = (m - 1) * np.eye(m)[None] + np.matmul(y, y.transpose(0, 2, 1))
        c_innov = rng.standard_normal((b, m))
        local_pert = rng.standard_normal((b, nlev, m))
        local_mean = rng.standard_normal((b, nlev))
        return a_stack, c_innov, local_pert, local_mean

    @pytest.mark.parametrize("block", [1, 2, 5, 16, 36, 37, 38, 1000])
    def test_solve_local_batch_blocked_bit_identical(self, block):
        a, c, pert, mean = self._local_case()
        mono = solve_local_batch(a, c, pert, mean)
        np.testing.assert_array_equal(
            solve_local_batch(a, c, pert, mean, eigh_block=block), mono
        )

    def test_stacked_eigh_block_sweep(self, array_backend):
        xp = array_backend
        a, *_ = self._local_case(b=23)
        a_dev = xp.to_device(a)
        evals0, evecs0 = xp.stacked_eigh(a_dev)
        for block in (1, 4, 22, 23, 24, 1000):
            evals, evecs = xp.stacked_eigh(a_dev, block=block)
            np.testing.assert_array_equal(xp.to_host(evals), xp.to_host(evals0))
            np.testing.assert_array_equal(xp.to_host(evecs), xp.to_host(evecs0))
        with pytest.raises(ValueError):
            xp.stacked_eigh(a_dev, block=0)

    @pytest.mark.parametrize("block", [1, 5, 37, 100])
    def test_truncated_solve_blocked_matches_monolithic(self, block):
        a, c, pert, mean = self._local_case()
        mono = solve_local_batch(a, c, pert, mean, solve_rank=3)
        np.testing.assert_array_equal(
            solve_local_batch(a, c, pert, mean, eigh_block=block, solve_rank=3), mono
        )

    def test_solve_rank_at_member_count_is_exact(self):
        a, c, pert, mean = self._local_case()
        exact = solve_local_batch(a, c, pert, mean)
        for rank in (6, 17):  # r >= m: exact full-rank fallback
            np.testing.assert_array_equal(
                solve_local_batch(a, c, pert, mean, solve_rank=rank), exact
            )
        # below m the truncation is a genuine approximation — it must engage
        truncated = solve_local_batch(a, c, pert, mean, solve_rank=5)
        assert not np.array_equal(truncated, exact)
        assert np.all(np.isfinite(truncated))

    def test_solve_validation(self):
        a, c, pert, mean = self._local_case(b=4)
        with pytest.raises(ValueError):
            solve_local_batch(a, c, pert, mean, eigh_block=0)
        with pytest.raises(ValueError):
            solve_local_batch(a, c, pert, mean, solve_rank=0)

    @pytest.mark.parametrize("eigh_block", [1, 7, 64, 10_000])
    def test_letkf_eigh_block_serial_bit_identical(self, eigh_block):
        grid, rng, ensemble, truth = _case(seed=21)
        var = 0.5 + rng.random(grid.size)
        loc = LocalizationConfig(cutoff=4.0e6)
        for operator, mode in (
            (IdentityObservation(grid.size, 1.2), "convolution"),
            (IdentityObservation(grid.size, var), "grouped"),
        ):
            observation = operator.observe(truth, rng=np.random.default_rng(2))
            base = LETKF(grid, LETKFConfig(localization=loc)).analyze(
                ensemble, observation, operator
            )
            letkf = LETKF(grid, LETKFConfig(localization=loc, eigh_block=eigh_block))
            assert letkf.geometry(operator).mode == mode
            np.testing.assert_array_equal(
                letkf.analyze(ensemble, observation, operator), base
            )

    def test_letkf_eigh_block_sharded_bit_identical(self):
        from repro.hpc.ensemble_parallel import EnsembleExecutor

        grid, rng, ensemble, truth = _case(seed=22)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        loc = LocalizationConfig(cutoff=4.0e6)
        plain = LETKF(grid, LETKFConfig(localization=loc, shard_columns=48))
        blocked = LETKF(
            grid, LETKFConfig(localization=loc, shard_columns=48, eigh_block=5)
        )
        with EnsembleExecutor(n_workers=1) as ex:
            a = plain.analyze_parallel(ensemble, observation, operator, executor=ex)
            b = blocked.analyze_parallel(ensemble, observation, operator, executor=ex)
        np.testing.assert_array_equal(b, a)

    def test_letkf_config_validation_and_rank_fallback(self):
        with pytest.raises(ValueError):
            LETKFConfig(eigh_block=0)
        with pytest.raises(ValueError):
            LETKFConfig(solve_rank=0)
        grid, rng, ensemble, truth = _case(seed=23)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        loc = LocalizationConfig(cutoff=4.0e6)
        exact = LETKF(grid, LETKFConfig(localization=loc)).analyze(
            ensemble, observation, operator
        )
        # ensemble has 12 members: rank 12 falls back to the exact solve
        fallback = LETKF(grid, LETKFConfig(localization=loc, solve_rank=12)).analyze(
            ensemble, observation, operator
        )
        np.testing.assert_array_equal(fallback, exact)
        truncated = LETKF(grid, LETKFConfig(localization=loc, solve_rank=4)).analyze(
            ensemble, observation, operator
        )
        assert not np.array_equal(truncated, exact)
        assert np.all(np.isfinite(truncated))


class TestGeometryCache:
    def _counting(self, monkeypatch):
        calls = {"n": 0}
        original = grid_mod.periodic_distance_matrix

        def counted(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        # Patch every module-level alias used by the analysis code paths
        # (letkf.py no longer imports it since the reference path retired).
        import repro.da.localization as loc_mod

        monkeypatch.setattr(grid_mod, "periodic_distance_matrix", counted)
        monkeypatch.setattr(loc_mod, "periodic_distance_matrix", counted)
        return calls

    def test_second_cycle_does_zero_distance_computations(self, monkeypatch):
        grid, rng, ensemble, truth = _case(seed=7)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        letkf = LETKF(grid)
        calls = self._counting(monkeypatch)

        letkf.analyze(ensemble, observation, operator)
        assert calls["n"] > 0  # geometry build evaluates the stencil once
        calls["n"] = 0
        letkf.analyze(ensemble, observation, operator)
        letkf.analyze(ensemble, observation, operator)
        assert calls["n"] == 0  # static network: geometry fully cached

    def test_geometry_cached_per_network(self):
        grid, rng, ensemble, truth = _case(seed=8)
        op_a = IdentityObservation(grid.size, 1.0)
        op_b = SubsampledObservation.every_nth(grid.size, 2, 1.0)
        letkf = LETKF(grid)
        geom_a = letkf.geometry(op_a)
        geom_b = letkf.geometry(op_b)
        assert letkf.geometry(op_a) is geom_a
        assert letkf.geometry(op_b) is geom_b
        assert geom_a is not geom_b

    def test_grouped_geometry_covers_all_columns(self):
        grid = Grid2D(12, 10)
        obs_columns = np.arange(grid.ny * grid.nx)[::4]
        geometry = LocalAnalysisGeometry(
            grid,
            obs_columns,
            LocalizationConfig(cutoff=2.0e6, min_weight=1e-4),
            np.ones(obs_columns.size),
        )
        assert geometry.mode == "grouped"
        covered = np.concatenate(
            [g.columns for g in geometry.groups] + [geometry.empty_columns]
        )
        assert np.array_equal(np.sort(covered), np.arange(grid.ny * grid.nx))


class TestFusedScorePath:
    def test_log_weights_clamped_nonpositive(self):
        """`dist_sq` can round negative when z = α x_j with large states."""
        rng = np.random.default_rng(0)
        ensemble = rng.standard_normal((6, 40)) * 1.0e6
        est = MonteCarloScoreEstimator(ensemble)
        t = 0.37
        alpha = float(est.schedule.alpha(t))
        logw = est.log_weights(alpha * ensemble, t)
        assert np.all(np.isfinite(logw))
        assert logw.max() <= 0.0

    def test_fused_score_matches_numpy_baseline(self, array_backend):
        """The routed score kernel must match the plain-numpy baseline bit
        for bit on every backend, including repeated evaluations through the
        persistent ``(n, J)`` workspaces."""
        rng = np.random.default_rng(1)
        ensemble = rng.standard_normal((15, 64)) * 2.0
        est = MonteCarloScoreEstimator(ensemble)
        assert est.xp is array_backend
        baseline = MonteCarloScoreEstimator(ensemble, backend="numpy")
        z = rng.standard_normal((9, 64))
        for t in (0.9, 0.5, 0.07):
            np.testing.assert_array_equal(est.score(z, t), baseline.score(z, t))
        # workspace reuse across calls must not perturb the result
        np.testing.assert_array_equal(est.score(z, 0.5), baseline.score(z, 0.5))

    def test_fused_score_1d_input(self):
        est = MonteCarloScoreEstimator(np.random.default_rng(2).normal(size=(10, 5)))
        out = est.score(np.zeros(5), t=0.3)
        assert out.shape == (5,)

    def test_minibatch_rng_parity(self, array_backend):
        """Minibatch selection draws from the host rng identically on every
        backend (the draws must never depend on where arithmetic runs)."""
        rng = np.random.default_rng(3)
        ensemble = rng.standard_normal((12, 8))
        z = rng.standard_normal((4, 8))
        routed = MonteCarloScoreEstimator(ensemble, minibatch=5, rng=11, backend=array_backend)
        base = MonteCarloScoreEstimator(ensemble, minibatch=5, rng=11, backend="numpy")
        np.testing.assert_array_equal(routed.score(z, 0.4), base.score(z, 0.4))
        assert routed.rng.bit_generator.state == base.rng.bit_generator.state

    def test_buffered_sampler_draw_parity(self, array_backend):
        """The buffered loop consumes the host random stream identically on
        every backend and matches the plain-numpy baseline bit for bit."""
        schedule = LinearAlphaSchedule()
        score = lambda z, t: -z
        fast = ReverseSDESampler(schedule, n_steps=25)
        assert fast.xp is array_backend
        base = ReverseSDESampler(schedule, n_steps=25, backend="numpy")
        rng_a, rng_b = default_rng(5), default_rng(5)
        a = fast.sample(score, 6, 4, rng=rng_a)
        b = base.sample(score, 6, 4, rng=rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
        np.testing.assert_array_equal(a, b)

    def test_buffered_sampler_trajectory_and_ode(self):
        sampler = ReverseSDESampler(n_steps=7, stochastic=False)
        traj = sampler.sample(lambda z, t: -z, 4, 2, rng=0, return_trajectory=True)
        assert traj.shape == (8, 4, 2)
        # the recorded trajectory ends at the returned sample, and the
        # deterministic ODE mode reproduces itself exactly
        final = sampler.sample(lambda z, t: -z, 4, 2, rng=0)
        np.testing.assert_array_equal(traj[-1], final)
        np.testing.assert_array_equal(
            final, sampler.sample(lambda z, t: -z, 4, 2, rng=0)
        )


class TestPooledNoiseParity:
    """NoisePool integration with the reverse-SDE loop.

    Pooled draws must be bit-identical to the direct per-step generator
    draws — with identical random-stream consumption — for every chunk size
    (``REPRO_NOISE_POOL``), on every backend (host-parity staging sees one
    call per block, exactly as before), and in both the shared-stream and
    member-seeded EnSF modes.
    """

    def test_pooled_sampler_matches_unpooled(self, array_backend, monkeypatch):
        schedule = LinearAlphaSchedule()
        score = lambda z, t: -z
        sampler = ReverseSDESampler(schedule, n_steps=25)
        rng_a = default_rng(5)
        base = sampler.sample(score, 6, 4, rng=rng_a)
        # "0" disables pooling even when the caller opts in; nonzero values
        # pool with that chunk length — all bit-identical, with the source
        # stream left in exactly the unpooled end state.
        for chunk in ("0", "1", "3", "1000"):
            monkeypatch.setenv("REPRO_NOISE_POOL", chunk)
            rng_b = default_rng(5)
            pooled = sampler.sample(score, 6, 4, rng=rng_b, noise_pool=True)
            np.testing.assert_array_equal(pooled, base)
            assert rng_b.bit_generator.state == rng_a.bit_generator.state

    def test_pooled_ensf_analysis_matches_unpooled(self, monkeypatch):
        grid, rng, ensemble, truth = _case(seed=31, members=10)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        monkeypatch.setenv("REPRO_NOISE_POOL", "0")
        unpooled_filter = EnSF(EnSFConfig(n_sde_steps=20), rng=13)
        unpooled = unpooled_filter.analyze(ensemble, observation, operator)
        monkeypatch.setenv("REPRO_NOISE_POOL", "3")
        pooled_filter = EnSF(EnSFConfig(n_sde_steps=20), rng=13)
        pooled = pooled_filter.analyze(ensemble, observation, operator)
        assert (
            pooled_filter.rng.bit_generator.state
            == unpooled_filter.rng.bit_generator.state
        )
        np.testing.assert_array_equal(pooled, unpooled)

    def test_pooled_member_seeded_analysis_matches_unpooled(self, monkeypatch):
        grid, rng, ensemble, truth = _case(seed=32, members=6)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        seeds = np.random.SeedSequence(8).spawn(6)
        filt = EnSF(EnSFConfig(n_sde_steps=12), rng=0)
        monkeypatch.setenv("REPRO_NOISE_POOL", "0")
        unpooled = filt.analyze_members(
            ensemble, observation, operator, member_seeds=seeds
        )
        monkeypatch.setenv("REPRO_NOISE_POOL", "4")
        pooled = filt.analyze_members(
            ensemble, observation, operator, member_seeds=seeds
        )
        np.testing.assert_array_equal(pooled, unpooled)

    def test_minibatch_filter_bypasses_pool_and_reproduces(self):
        """Minibatched score draws interleave with noise draws on the same
        stream, so the EnSF never pools them — the run must still reproduce
        itself exactly under the default (pooling-enabled) environment."""
        grid, rng, ensemble, truth = _case(seed=33, members=10)
        operator = IdentityObservation(grid.size, 1.0)
        observation = operator.observe(truth, rng=rng)
        a = EnSF(EnSFConfig(n_sde_steps=10, minibatch=4), rng=2).analyze(
            ensemble, observation, operator
        )
        b = EnSF(EnSFConfig(n_sde_steps=10, minibatch=4), rng=2).analyze(
            ensemble, observation, operator
        )
        np.testing.assert_array_equal(a, b)


class TestFusedEnSFDeterminism:
    """Exactness certification without an oracle (reference-path retirement,
    ROADMAP): the operator parametrization covers the identity/subsampled
    fast paths and the generic likelihood fallback, and the
    ``array_backend`` fixture re-runs all three under every registered
    array backend, asserted bit-identical (with identical random-stream
    consumption) to the plain-numpy baseline."""

    @pytest.mark.parametrize(
        "operator_factory",
        [
            lambda d: IdentityObservation(d, 1.0),
            lambda d: SubsampledObservation.every_nth(d, 3, 0.8),
            lambda d: NonlinearObservation(d, kind="arctan", obs_error_var=0.5),
        ],
        ids=["identity", "subsampled", "nonlinear"],
    )
    def test_analysis_matches_numpy_baseline(self, operator_factory, array_backend):
        grid, rng, ensemble, truth = _case(seed=9, members=20, scale=3.0)
        operator = operator_factory(grid.size)
        observation = operator.observe(truth, rng=rng)
        routed = EnSF(EnSFConfig(n_sde_steps=20), rng=13)
        assert routed.sampler.xp is array_backend
        baseline = EnSF(EnSFConfig(n_sde_steps=20, backend="numpy"), rng=13)
        a_routed = routed.analyze(ensemble, observation, operator)
        a_base = baseline.analyze(ensemble, observation, operator)
        assert routed.rng.bit_generator.state == baseline.rng.bit_generator.state
        np.testing.assert_array_equal(a_routed, a_base)


class TestBenchRecorder:
    def test_sections_and_report(self):
        rec = BenchRecorder()
        with rec.section("analysis"):
            pass
        rec.add("analysis", 0.5)
        rec.add("forecast", 0.25)
        assert rec.counts() == {"analysis": 2, "forecast": 1}
        assert rec.totals()["forecast"] == 0.25
        assert rec.mean("forecast") == 0.25
        report = rec.report()
        assert report["analysis"]["count"] == 2
        assert len(report["analysis"]["per_cycle_s"]) == 2

    def test_speedup_and_errors(self):
        assert BenchRecorder.speedup(2.0, 0.5) == 4.0
        with pytest.raises(ValueError):
            BenchRecorder.speedup(1.0, 0.0)
        with pytest.raises(KeyError):
            BenchRecorder().mean("missing")

    def test_write_json(self, tmp_path):
        rec = BenchRecorder()
        rec.add("analysis", 0.125)
        path = tmp_path / "BENCH_test.json"
        payload = rec.write_json(path, benchmark="unit", letkf={"speedup": 6.0})
        assert path.exists()
        assert payload["benchmark"] == "unit"
        assert payload["letkf"]["speedup"] == 6.0
        assert payload["sections"]["analysis"]["count"] == 1

    def test_run_osse_reports_timing_breakdown(self):
        model = Lorenz96(dim=12)
        rng = np.random.default_rng(0)
        truth0 = rng.standard_normal(12)
        operator = IdentityObservation(12, 1.0)
        filt = EnSF(EnSFConfig(n_sde_steps=5), rng=1)
        config = OSSEConfig(n_cycles=3, steps_per_cycle=1, ensemble_size=4, seed=0)
        result = run_osse(model, model, filt, operator, truth0, config)
        assert result.timing is not None
        for section in ("truth", "forecast", "analysis"):
            assert len(result.timing[section]["per_cycle_s"]) == 3
            assert result.timing[section]["total_s"] >= 0.0
        assert "timing" in result.summary()

    def test_shared_recorder_attributes_timing_per_run(self):
        model = Lorenz96(dim=12)
        truth0 = np.random.default_rng(0).standard_normal(12)
        operator = IdentityObservation(12, 1.0)
        config = OSSEConfig(n_cycles=2, steps_per_cycle=1, ensemble_size=4, seed=0)
        recorder = BenchRecorder()
        for seed in (1, 2):
            filt = EnSF(EnSFConfig(n_sde_steps=5), rng=seed)
            result = run_osse(
                model, model, filt, operator, truth0, config, recorder=recorder
            )
            # each run reports only its own cycles even on a shared recorder
            assert result.timing["analysis"]["count"] == 2
        assert recorder.counts()["analysis"] == 4
