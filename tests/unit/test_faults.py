"""Fault-tolerance certification suite.

Four layers of coverage for the fault-tolerant cycling runtime:

* **FaultPlan mechanics** — spec grammar round-trips, seeded determinism,
  one-shot firing semantics and the ``REPRO_FAULT_PLAN`` env hook.
* **Executor recovery** — injected worker crashes and task hangs (serial
  and 2-worker pool) are retried/rebuilt transparently and the recomputed
  shards are *bit-identical* to a fault-free gather; genuine job errors
  are never retried.
* **OSSE bit-identity under faults** — for LETKF and EnSF, serial and
  pooled, a run with faults injected (spurious corrupted observations
  rejected by QC, worker crashes healed by retry, checkpoint truncation
  healed by ``resume="auto"`` fallback) produces exactly the RMSE/spread
  series of the clean run, with every recovery visible in the FaultLog.
* **Degraded modes** — QC verdicts, cycle-deadline forecast-only cycles,
  and the divergence policies (halt / reinflate / reset-from-checkpoint,
  the latter bit-identical for transient faults).
"""

import pickle
import threading

import numpy as np
import pytest

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import (
    IdentityObservation,
    ObservationEvent,
    ObservationQC,
    ObservationScenario,
    ObservationStream,
)
from repro.da.cycling import CyclingResult, OSSEConfig, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.hpc.ensemble_parallel import EnsembleExecutor, ShardRetryError
from repro.models.lorenz96 import Lorenz96
from repro.utils.faults import (
    ENV_FAULT_PLAN,
    FaultEvent,
    FaultInjected,
    FaultLog,
    FaultPlan,
)
from repro.utils.grid import Grid2D
from repro.utils.random import SeedSequenceFactory
from repro.workflow.engine import (
    CheckpointCorruptError,
    CycleEngine,
    DivergencePolicy,
    EngineCheckpoint,
    EnsembleDivergenceError,
    EnsembleForecastStage,
    FilterAnalysisStage,
    ObservationStage,
    TruthStage,
)

DIM = 40


@pytest.fixture(scope="module")
def testbed():
    model = Lorenz96(dim=DIM)
    truth0 = model.spinup(300, rng=0)
    operator = IdentityObservation(DIM, obs_error_var=0.5)
    return model, truth0, operator


def _letkf():
    grid = Grid2D(10, 2, nlev=2)
    return LETKF(
        grid,
        LETKFConfig(localization=LocalizationConfig(cutoff=4.0e6), shard_columns=8),
    )


def _ensf():
    return EnSF(EnSFConfig(n_sde_steps=15), rng=SeedSequenceFactory(9).rng("filter"))


def _assert_identical(result: CyclingResult, oracle: CyclingResult):
    np.testing.assert_array_equal(result.forecast_rmse, oracle.forecast_rmse)
    np.testing.assert_array_equal(result.analysis_rmse, oracle.analysis_rmse)
    np.testing.assert_array_equal(result.analysis_spread, oracle.analysis_spread)
    np.testing.assert_array_equal(result.truth_final, oracle.truth_final)
    np.testing.assert_array_equal(result.analysis_mean_final, oracle.analysis_mean_final)


def _raise_value_error(job):
    raise ValueError("a genuine job bug")


# --------------------------------------------------------------------------- #
# FaultPlan mechanics
# --------------------------------------------------------------------------- #


class TestFaultPlan:
    def test_spec_round_trip(self):
        spec = (
            "worker-crash@executor:1;"
            "obs-corrupt@observations:3,mode=in-place,value=gross,fraction=0.5;"
            "checkpoint-truncate@checkpoint:0,keep=0.25"
        )
        plan = FaultPlan.from_spec(spec)
        assert len(plan) == 3
        assert FaultPlan.from_spec(plan.spec()).events == plan.events
        event = plan.events[1]
        assert event.payload == {"mode": "in-place", "value": "gross", "fraction": 0.5}
        assert plan.events[2].payload == {"keep": 0.25}

    def test_seeded_is_deterministic_and_valid(self):
        assert FaultPlan.seeded(7, n_events=5).spec() == FaultPlan.seeded(7, n_events=5).spec()
        plan = FaultPlan.seeded(7, n_events=5)
        assert len(plan) == 5  # every event validated by FaultEvent.__post_init__

    def test_events_fire_exactly_once(self):
        plan = FaultPlan.from_spec("worker-crash@executor:1")
        assert plan.visit("executor") == []
        fired = plan.visit("executor")
        assert [e.kind for e in fired] == ["worker-crash"]
        assert plan.visit("executor") == []  # one-shot: retries recompute clean
        assert plan.visits("executor") == 3
        plan.reset()
        assert plan.visit("executor") == []
        assert [e.kind for e in plan.visit("executor")] == ["worker-crash"]

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({ENV_FAULT_PLAN: "  "}) is None
        plan = FaultPlan.from_env({ENV_FAULT_PLAN: "task-hang@executor:2,hang_s=0.1"})
        assert plan.events[0].kind == "task-hang"
        assert plan.events[0].payload == {"hang_s": 0.1}

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor-strike", "executor", 0)
        with pytest.raises(ValueError, match="belongs to site"):
            FaultEvent("obs-corrupt", "executor", 0)
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_spec("worker-crash:executor@1")
        with pytest.raises(ValueError, match="malformed fault payload"):
            FaultPlan.from_spec("worker-crash@executor:1,oops")

    def test_malformed_occurrence_quotes_the_entry(self):
        """A typo'd occurrence must fail fast and name the offending entry."""
        with pytest.raises(
            ValueError, match=r"malformed occurrence 'x'.*'worker-crash@executor:x'"
        ):
            FaultPlan.from_spec("worker-crash@executor:x")
        with pytest.raises(ValueError, match=r"malformed occurrence '1\.5'"):
            FaultPlan.from_spec("worker-crash@executor:1.5")
        with pytest.raises(
            ValueError,
            match=r"occurrence must be non-negative.*'worker-crash@executor:-2'",
        ):
            FaultPlan.from_spec("worker-crash@executor:-2")

    def test_unknown_payload_key_quotes_kind_and_known_keys(self):
        """A typo'd payload key must be rejected up front, not silently ignored."""
        with pytest.raises(
            ValueError, match=r"unknown payload key\(s\) \['hangs'\].*'task-hang'"
        ):
            FaultPlan.from_spec("task-hang@executor:1,hangs=0.5")
        # the known-key inventory is part of the message (typo guidance)
        with pytest.raises(ValueError, match=r"known: \['keep'\]"):
            FaultPlan.from_spec("journal-torn@scheduler:0,kep=0.3")
        # a valid key on the wrong kind is still unknown for that kind
        with pytest.raises(ValueError, match="unknown payload key"):
            FaultPlan.from_spec("service-kill@scheduler:0,keep=0.5")

    def test_duplicate_events_rejected_with_spec(self):
        """The same (kind, site, occurrence) scheduled twice is a plan bug."""
        with pytest.raises(
            ValueError, match=r"duplicate fault event 'worker-crash@executor:3'"
        ):
            FaultPlan.from_spec("worker-crash@executor:3;worker-crash@executor:3")
        # duplicates differing only in payload still collide (they would race
        # for the same visit)
        with pytest.raises(ValueError, match="at most once"):
            FaultPlan.from_spec(
                "journal-torn@scheduler:2,keep=0.1;journal-torn@scheduler:2,keep=0.9"
            )
        # distinct occurrences of the same kind remain legal
        plan = FaultPlan.from_spec("worker-crash@executor:3;worker-crash@executor:5")
        assert len(plan) == 2

    def test_fault_log_counting(self):
        log = FaultLog()
        log.record("executor", "retry", "x", cycle=1)
        log.record("executor", "pool-rebuild")
        log.record("observations", "qc-reject", cycle=2)
        assert len(log) == 3
        assert log.count(action="retry") == 1
        assert log.count(site="executor") == 2
        assert log.summary() == {"retry": 1, "pool-rebuild": 1, "qc-reject": 1}


class TestFaultThreadSafety:
    """FaultLog/FaultPlan are shared by scheduler jobs running in threads:
    concurrent records must never be lost and one-shot events must fire
    exactly once even under contended visits."""

    N_THREADS = 8

    def _run_threads(self, work):
        barrier = threading.Barrier(self.N_THREADS)

        def body(i):
            barrier.wait()  # maximize interleaving
            work(i)

        threads = [
            threading.Thread(target=body, args=(i,)) for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_concurrent_records_are_all_kept(self):
        log = FaultLog()
        per_thread = 250

        def work(i):
            for j in range(per_thread):
                log.record("scheduler", "job-retry", f"t{i}.{j}", cycle=j)

        self._run_threads(work)
        total = self.N_THREADS * per_thread
        assert len(log) == total
        assert log.summary() == {"job-retry": total}
        assert log.count(site="scheduler") == total
        # no record was torn: every entry still parses back to its writer
        details = {record.detail for record in log}
        assert len(details) == total

    def test_concurrent_visits_fire_each_event_once(self):
        per_thread = 50
        plan = FaultPlan.from_spec(
            "worker-crash@executor:10;task-hang@executor:177"
        )
        fired = []
        fired_lock = threading.Lock()

        def work(i):
            for _ in range(per_thread):
                events = plan.visit("executor")
                if events:
                    with fired_lock:
                        fired.extend(events)

        self._run_threads(work)
        assert plan.visits("executor") == self.N_THREADS * per_thread
        assert sorted(e.kind for e in fired) == ["task-hang", "worker-crash"]


# --------------------------------------------------------------------------- #
# Executor recovery
# --------------------------------------------------------------------------- #


class TestExecutorRecovery:
    JOBS = [np.arange(4, dtype=float) + i for i in range(3)]

    def test_serial_crash_recovery_is_bit_identical(self):
        clean = EnsembleExecutor(n_workers=1).map_blocks(np.negative, self.JOBS)
        executor = EnsembleExecutor(
            n_workers=1,
            retry_backoff_s=0.0,
            fault_plan=FaultPlan.from_spec("worker-crash@executor:0,job=1"),
        )
        healed = executor.map_blocks(np.negative, self.JOBS)
        for a, b in zip(healed, clean):
            np.testing.assert_array_equal(a, b)
        assert executor.fault_log.count(action="retry") == 1

    def test_pool_crash_recovery_is_bit_identical(self):
        clean = EnsembleExecutor(n_workers=1).map_blocks(np.negative, self.JOBS)
        with EnsembleExecutor(
            n_workers=2,
            min_members_per_worker=1,
            retry_backoff_s=0.0,
            fault_plan=FaultPlan.from_spec("worker-crash@executor:0"),
        ) as executor:
            healed = executor.map_blocks(np.negative, self.JOBS)
            for a, b in zip(healed, clean):
                np.testing.assert_array_equal(a, b)
            assert executor.fault_log.count(action="retry") >= 1
            assert executor.fault_log.count(action="pool-rebuild") >= 1

    def test_task_hang_killed_by_deadline(self):
        clean = EnsembleExecutor(n_workers=1).map_blocks(np.negative, self.JOBS)
        with EnsembleExecutor(
            n_workers=2,
            min_members_per_worker=1,
            retry_backoff_s=0.0,
            task_deadline_s=0.5,
            fault_plan=FaultPlan.from_spec("task-hang@executor:0,hang_s=30,job=2"),
        ) as executor:
            healed = executor.map_blocks(np.negative, self.JOBS)
            for a, b in zip(healed, clean):
                np.testing.assert_array_equal(a, b)
            assert executor.fault_log.count(action="deadline-kill") == 1
            assert executor.fault_log.count(action="pool-rebuild") == 1

    def test_job_function_errors_are_not_retried(self):
        executor = EnsembleExecutor(n_workers=1, fault_plan=FaultPlan())
        with pytest.raises(ValueError, match="genuine job bug"):
            executor.map_blocks(_raise_value_error, self.JOBS)
        assert executor.fault_log.count(action="retry") == 0

    def test_retry_budget_exhaustion(self):
        executor = EnsembleExecutor(
            n_workers=1,
            max_retries=1,
            retry_backoff_s=0.0,
            fault_plan=FaultPlan.from_spec(
                "worker-crash@executor:0;worker-crash@executor:1"
            ),
        )
        with pytest.raises(ShardRetryError) as excinfo:
            executor.map_blocks(np.negative, self.JOBS)
        assert isinstance(excinfo.value.__cause__, FaultInjected)


# --------------------------------------------------------------------------- #
# OSSE bit-identity with faults on vs. off
# --------------------------------------------------------------------------- #

# Spurious corrupted retransmission at the 3rd measurement (QC must reject
# it) plus a worker crash at the 4th executor gather (pool runs only — the
# "executor" site is never visited without an executor).
OSSE_PLAN_SPEC = "obs-corrupt@observations:2;worker-crash@executor:3"


class TestOSSEBitIdentity:
    CONFIG = OSSEConfig(n_cycles=6, steps_per_cycle=4, ensemble_size=10, seed=3)

    def _run(self, testbed, filter_factory, executor=None, fault_plan=None, **kwargs):
        model, truth0, operator = testbed
        return run_osse(
            model, model, filter_factory(), operator, truth0, self.CONFIG,
            executor=executor, fault_plan=fault_plan, qc=ObservationQC(),
            store_history=True, **kwargs,
        )

    @pytest.mark.parametrize("filter_factory", [_letkf, _ensf], ids=["letkf", "ensf"])
    def test_serial_faulted_equals_clean(self, testbed, filter_factory):
        clean = self._run(testbed, filter_factory)
        assert clean.fault_log is not None and len(clean.fault_log) == 0
        faulted = self._run(
            testbed, filter_factory, fault_plan=FaultPlan.from_spec(OSSE_PLAN_SPEC)
        )
        _assert_identical(faulted, clean)
        np.testing.assert_array_equal(
            faulted.analysis_mean_history, clean.analysis_mean_history
        )
        assert faulted.fault_log.count(action="obs-corrupt") == 1
        assert faulted.fault_log.count(action="qc-reject") == 1

    @pytest.mark.parametrize("filter_factory", [_letkf, _ensf], ids=["letkf", "ensf"])
    def test_pool_faulted_equals_clean(self, testbed, filter_factory):
        # Dedicated executors: the faulted one has its pool deliberately
        # crashed, so the shared module fixture must not be used here.
        plan = FaultPlan.from_spec(OSSE_PLAN_SPEC)
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as ex_clean:
            clean = self._run(testbed, filter_factory, executor=ex_clean)
        with EnsembleExecutor(
            n_workers=2, min_members_per_worker=1,
            retry_backoff_s=0.0, fault_plan=plan,
        ) as ex_faulted:
            faulted = self._run(
                testbed, filter_factory, executor=ex_faulted, fault_plan=plan
            )
            assert ex_faulted.fault_log.count(action="retry") >= 1
            assert ex_faulted.fault_log.count(action="pool-rebuild") >= 1
        _assert_identical(faulted, clean)
        assert faulted.fault_log.count(action="qc-reject") == 1

    def test_env_injected_plan_equals_clean(self, testbed, monkeypatch):
        """The REPRO_FAULT_PLAN env knob drives an unmodified driver."""
        monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
        clean = self._run(testbed, _letkf)
        monkeypatch.setenv(ENV_FAULT_PLAN, "obs-corrupt@observations:1,value=inf")
        faulted = self._run(testbed, _letkf)
        _assert_identical(faulted, clean)
        assert faulted.fault_log.count(action="qc-reject") == 1


# --------------------------------------------------------------------------- #
# Checkpoint integrity, ring rotation and resume="auto"
# --------------------------------------------------------------------------- #


class TestSelfHealingCheckpoints:
    CONFIG = OSSEConfig(n_cycles=8, steps_per_cycle=4, ensemble_size=10, seed=9)

    def _run(self, testbed, filter_factory, **kwargs):
        model, truth0, operator = testbed
        return run_osse(
            model, model, filter_factory(), operator, truth0, self.CONFIG,
            store_history=True, **kwargs,
        )

    def test_checkpoint_checksum_detects_truncation(self, testbed, tmp_path):
        path = tmp_path / "engine.ckpt"
        self._run(testbed, _letkf, checkpoint_every=4, checkpoint_path=path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError):
            EngineCheckpoint.load(path)

    def test_legacy_raw_pickle_still_loads(self, testbed, tmp_path):
        path = tmp_path / "engine.ckpt"
        self._run(testbed, _letkf, checkpoint_every=4, checkpoint_path=path)
        ckpt = EngineCheckpoint.load(path)
        legacy = tmp_path / "legacy.ckpt"
        with open(legacy, "wb") as fh:
            pickle.dump(ckpt, fh)
        assert EngineCheckpoint.load(legacy).next_cycle == ckpt.next_cycle

    def test_ring_rotates_and_prunes(self, testbed, tmp_path):
        base = tmp_path / "engine.ckpt"
        self._run(
            testbed, _letkf, checkpoint_every=2, checkpoint_path=base, keep_last=2
        )
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["engine.ckpt.c000006", "engine.ckpt.c000008"]

    @pytest.mark.parametrize("filter_factory", [_letkf, _ensf], ids=["letkf", "ensf"])
    def test_auto_resume_falls_back_past_truncated_checkpoint(
        self, testbed, filter_factory, tmp_path
    ):
        base = tmp_path / "engine.ckpt"
        # The injected truncation tears the final ring member (the 4th
        # checkpoint write) after the run state has moved on, so the run
        # itself is still bit-identical to a clean one.
        uninterrupted = self._run(
            testbed, filter_factory,
            checkpoint_every=2, checkpoint_path=base, keep_last=3,
            fault_plan=FaultPlan.from_spec("checkpoint-truncate@checkpoint:3"),
        )
        assert uninterrupted.fault_log.count(action="checkpoint-truncate") == 1
        clean = self._run(testbed, filter_factory)
        _assert_identical(uninterrupted, clean)
        # A fresh driver resuming "auto" must walk past the torn .c000008
        # member to .c000006 and recompute cycles 6-7 bit-identically.
        resumed = self._run(
            testbed, filter_factory,
            resume="auto", checkpoint_every=2, checkpoint_path=base, keep_last=3,
        )
        assert resumed.fault_log.count(action="checkpoint-fallback") == 1
        _assert_identical(resumed, uninterrupted)
        np.testing.assert_array_equal(
            resumed.analysis_mean_history, uninterrupted.analysis_mean_history
        )

    def test_auto_resume_starts_fresh_without_checkpoints(self, testbed, tmp_path):
        base = tmp_path / "engine.ckpt"
        fresh = self._run(
            testbed, _letkf, resume="auto",
            checkpoint_every=4, checkpoint_path=base, keep_last=2,
        )
        clean = self._run(testbed, _letkf)
        _assert_identical(fresh, clean)


# --------------------------------------------------------------------------- #
# Degraded modes: QC, cycle deadline, divergence policies
# --------------------------------------------------------------------------- #


def _event(operator, observation):
    return ObservationEvent(
        cycle=0, available_at=0, operator_index=0,
        operator=operator, observation=np.asarray(observation, dtype=float),
    )


class TestObservationQC:
    def test_non_finite_always_rejected(self):
        operator = IdentityObservation(4, obs_error_var=0.5)
        qc = ObservationQC()
        good = qc.check(_event(operator, np.zeros(4)))
        assert good.ok and good.n_bad == 0
        bad = qc.check(_event(operator, [0.0, np.nan, 0.0, np.inf]))
        assert not bad.ok and bad.n_bad == 2 and "non-finite" in bad.reason

    def test_gross_error_threshold(self):
        operator = IdentityObservation(4, obs_error_var=1.0)
        qc = ObservationQC(gross_threshold=3.0)
        forecast_mean = np.zeros(4)
        assert qc.check(_event(operator, np.full(4, 2.0)), forecast_mean).ok
        report = qc.check(_event(operator, np.full(4, 10.0)), forecast_mean)
        assert not report.ok and report.n_bad == 4
        # Without a forecast mean only the finite check can run.
        assert qc.check(_event(operator, np.full(4, 10.0))).ok

    def test_per_operator_override_and_bad_fraction(self):
        operator = IdentityObservation(4, obs_error_var=1.0)
        laxer = ObservationQC(
            gross_threshold=3.0, per_operator={"IdentityObservation": 100.0}
        )
        assert laxer.check(_event(operator, np.full(4, 10.0)), np.zeros(4)).ok
        tolerant = ObservationQC(max_bad_fraction=0.5)
        assert tolerant.check(_event(operator, [np.nan, 0.0, 0.0, 0.0])).ok
        assert not tolerant.check(_event(operator, [np.nan, np.nan, np.nan, 0.0])).ok

    def test_stream_spurious_duplicate_is_flagged(self):
        operator = IdentityObservation(4, obs_error_var=0.5)
        plan = FaultPlan.from_spec("obs-corrupt@observations:0,fraction=0.5")
        stream = ObservationStream(operator, rng=1, schedule_rng=2, fault_plan=plan)
        events = stream.advance(0, np.zeros(4))
        assert len(events) == 2  # genuine + corrupted duplicate
        assert np.isfinite(events[0].observation).all()
        assert np.isnan(events[1].observation[:2]).all()
        assert np.isfinite(events[1].observation[2:]).all()
        assert stream.fault_log.count(action="obs-corrupt") == 1


class TestDegradedCycles:
    def _engine(self, testbed, fault_plan=None, **kwargs):
        model, truth0, operator = testbed
        seeds = SeedSequenceFactory(0)
        engine = CycleEngine(
            truth=TruthStage(model, 2),
            observations=ObservationStage(
                ObservationStream(
                    operator,
                    ObservationScenario(),
                    rng=seeds.rng("observations"),
                    schedule_rng=seeds.rng("observation-schedule"),
                    fault_plan=fault_plan,
                )
            ),
            forecast=EnsembleForecastStage(model, 2),
            analysis=FilterAnalysisStage(_letkf()),
            **kwargs,
        )
        ens0 = truth0[None, :] + np.random.default_rng(1).standard_normal((6, DIM))
        return engine, truth0, ens0

    def test_zero_deadline_makes_every_cycle_forecast_only(self, testbed):
        engine, truth0, ens0 = self._engine(testbed, cycle_deadline_s=0.0)
        result = engine.run(truth0, ens0, 4)
        assert all(r.deadline_skipped for r in result.records)
        assert not any(r.observed for r in result.records)
        assert engine.fault_log.count(action="analysis-skipped") == 4
        np.testing.assert_array_equal(result.analysis_rmse, result.forecast_rmse)

    def test_qc_rejections_are_counted_per_cycle(self, testbed):
        engine, truth0, ens0 = self._engine(
            testbed,
            qc=ObservationQC(),
            fault_plan=FaultPlan.from_spec("obs-corrupt@observations:1"),
        )
        result = engine.run(truth0, ens0, 4)
        assert [r.qc_rejected for r in result.records] == [0, 1, 0, 0]
        assert result.records[1].observed  # the genuine event still assimilated


class TestDivergencePolicies:
    CONFIG = OSSEConfig(n_cycles=6, steps_per_cycle=4, ensemble_size=10, seed=3)

    def _run(self, testbed, **kwargs):
        model, truth0, operator = testbed
        return run_osse(
            model, model, _letkf(), operator, truth0, self.CONFIG,
            store_history=True, **kwargs,
        )

    def test_halt_raises(self, testbed):
        with pytest.raises(EnsembleDivergenceError, match="above limit"):
            self._run(testbed, divergence=DivergencePolicy(spread_max=1e-9))

    def test_reinflate_caps_spread_and_completes(self, testbed):
        limit = 0.25
        result = self._run(
            testbed,
            divergence=DivergencePolicy(spread_max=limit, action="reinflate"),
        )
        assert result.fault_log.count(action="divergence-reinflate") >= 1
        assert result.analysis_spread.max() <= limit * (1.0 + 1e-12)

    def test_reset_without_checkpoint_raises(self, testbed):
        with pytest.raises(EnsembleDivergenceError, match="no valid checkpoint"):
            self._run(testbed, divergence=DivergencePolicy(spread_max=1e-9, action="reset"))

    def test_reset_replays_transient_corruption_bit_identically(self, testbed, tmp_path):
        """An in-place NaN-corrupted observation batch (QC off) poisons the
        analysis; the non-finite state trips divergence detection, the engine
        rewinds to the last checkpoint and — because injected faults fire
        exactly once — the replayed cycles recompute the clean trajectory."""
        clean = self._run(testbed, checkpoint_every=1,
                          checkpoint_path=tmp_path / "clean.ckpt", keep_last=3)
        healed = self._run(
            testbed,
            checkpoint_every=1, checkpoint_path=tmp_path / "faulted.ckpt", keep_last=3,
            divergence=DivergencePolicy(action="reset"),
            fault_plan=FaultPlan.from_spec("obs-corrupt@observations:4,mode=in-place"),
        )
        assert healed.fault_log.count(action="obs-corrupt") == 1
        assert healed.fault_log.count(action="divergence-reset") == 1
        _assert_identical(healed, clean)
        np.testing.assert_array_equal(
            healed.analysis_mean_history, clean.analysis_mean_history
        )
