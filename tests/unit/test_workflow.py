"""Unit tests for the workflow layer (config, metrics)."""

import numpy as np
import pytest

from repro.workflow.config import ExperimentConfig
from repro.workflow.metrics import error_field, pattern_correlation, rmse_series, spread_skill_ratio


class TestExperimentConfig:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert cfg.ensemble_size == 20
        assert cfg.sqg_parameters().nx == cfg.nx

    def test_paper_scale_matches_section_iv(self):
        cfg = ExperimentConfig.paper_scale()
        assert cfg.nx == 64 and cfg.ny == 64
        assert cfg.n_cycles == 300
        assert cfg.ensemble_size == 20

    def test_smoke_test_is_small(self):
        cfg = ExperimentConfig.smoke_test()
        assert cfg.nx <= 16 and cfg.n_cycles <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_cycles=0)
        with pytest.raises(ValueError):
            ExperimentConfig(ensemble_size=1)
        with pytest.raises(ValueError):
            ExperimentConfig(nx=30, surrogate_patch=8)


class TestMetrics:
    def test_rmse_series(self):
        a = np.zeros((3, 4))
        b = np.ones((3, 4)) * 2.0
        assert np.allclose(rmse_series(a, b), 2.0)
        with pytest.raises(ValueError):
            rmse_series(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_pattern_correlation_bounds(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=100)
        assert pattern_correlation(a, a) == pytest.approx(1.0)
        assert pattern_correlation(a, -a) == pytest.approx(-1.0)
        assert pattern_correlation(a, np.zeros(100)) == 0.0

    def test_error_field_shape(self):
        mean = np.arange(2 * 4 * 4, dtype=float)
        truth = np.zeros(2 * 4 * 4)
        err = error_field(mean, truth, (2, 4, 4))
        assert err.shape == (2, 4, 4)
        assert np.allclose(err.ravel(), mean)

    def test_spread_skill_ratio(self):
        spread = np.array([1.0, 1.0, 1.0])
        rmse = np.array([2.0, 2.0, 2.0])
        assert spread_skill_ratio(spread, rmse) == pytest.approx(0.5)
        assert spread_skill_ratio(spread, np.zeros(3)) == 0.0
