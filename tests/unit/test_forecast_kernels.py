"""Determinism, invariance and backend-regression tests for the fused
pseudo-spectral forecast engine.

Reference-path retirement (ROADMAP): the pre-fusion oracle
(``step_spectral_reference``) is deleted from the source tree, so exactness
is now certified *between* independent instantiations and backends rather
than against a second implementation: workspace reuse must not perturb a
single bit across repeated steps, pickled clones must reproduce their
parent's trajectory exactly, and the FFT backends (numpy/scipy pocketfft)
must produce identical trajectories.  Cross-array-backend bit-identity
lives in ``tests/unit/test_xp_backend.py``.
"""

import numpy as np
import pytest

from repro.da.cycling import OSSEConfig, free_run
from repro.models.sqg import SQGModel, SQGParameters
from repro.utils.fft import available_backends


def _states(model: SQGModel, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    p = model.params
    if n == 0:
        return model.random_initial_condition(rng=rng, amplitude=3.0)
    return np.stack(
        [model.random_initial_condition(rng=rng, amplitude=3.0) for _ in range(n)]
    )


class TestFusedStepDeterminism:
    """Exactness certification without an oracle (reference-path retirement,
    ROADMAP): the cases cover single/batched states, the dealias-off branch
    and the Ekman-drag branch, each re-run under every array backend."""

    @pytest.mark.parametrize(
        "batch, params_kwargs",
        [
            (0, {}),
            (1, {}),
            (7, {}),
            (3, {"dealias": False}),
            (4, {"ekman_drag": 1.0e-6}),
        ],
        ids=["single", "batch1", "batch7", "dealias_off", "ekman"],
    )
    def test_step_is_deterministic_across_instances(
        self, batch, params_kwargs, array_backend
    ):
        params = SQGParameters(nx=16, ny=16, dt=1800.0, **params_kwargs)
        model = SQGModel(params)
        other = SQGModel(params)
        assert model.xp is array_backend
        if not params_kwargs.get("dealias", True):
            assert model.spectral.kx_keep == 16 // 2 + 1  # nothing truncated
        theta = _states(model, batch, seed=1)
        spec = model.spectral.to_spectral(theta)
        stepped = model.step_spectral(spec)
        np.testing.assert_array_equal(stepped, other.step_spectral(spec))
        # second step reuses the workspace buffers — still exact, and the
        # input spectral state must not have been mutated in place
        np.testing.assert_array_equal(spec, model.spectral.to_spectral(theta))
        np.testing.assert_array_equal(
            model.step_spectral(stepped), other.step_spectral(stepped)
        )

    def test_workspace_cached_per_batch_shape(self):
        model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))
        spec1 = model.spectral.to_spectral(_states(model, 3, seed=5))
        spec2 = model.spectral.to_spectral(_states(model, 0, seed=6))
        model.step_spectral(spec1)
        model.step_spectral(spec2)
        model.step_spectral(spec1)
        assert set(model._workspaces) == {(3,), ()}

    def test_pickle_drops_workspaces_and_stays_exact(self):
        import pickle

        model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))
        ens = np.stack(
            [model.flatten(model.random_initial_condition(rng=i)) for i in range(3)]
        )
        model.forecast(ens, n_steps=1)  # populate a workspace
        clone = pickle.loads(pickle.dumps(model))
        assert clone._workspaces == {}
        np.testing.assert_array_equal(
            clone.forecast(ens, n_steps=3), model.forecast(ens, n_steps=3)
        )


class TestFusedStepInvariants:
    @pytest.fixture(scope="class")
    def model(self):
        return SQGModel(SQGParameters(nx=32, ny=32, dt=1200.0))

    def test_physical_fields_stay_real_and_finite(self, model):
        theta = _states(model, 2, seed=7)
        stepped = model.step(theta, n_steps=5)
        assert stepped.dtype.kind == "f"
        assert np.isfinite(stepped).all()
        # the spectrum of the stepped field keeps Hermitian symmetry: a
        # roundtrip through physical space is lossless
        spec = model.spectral.to_spectral(stepped)
        np.testing.assert_allclose(
            model.spectral.to_physical(spec), stepped, atol=1e-10
        )

    def test_zero_mean_mode_preserved(self, model):
        theta = _states(model, 0, seed=8)
        assert abs(theta.mean()) < 1e-10
        stepped = model.step(theta, n_steps=5)
        assert abs(stepped.mean()) < 1e-8

    def test_cfl_in_stable_range(self, model):
        theta = model.step(_states(model, 0, seed=9), n_steps=50)
        assert 0.0 < model.cfl_number(theta) < 1.0


class TestRetainedTransforms:
    """Pruned-column transforms must match their full-width counterparts."""

    def test_to_physical_retained_matches_full(self):
        model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))
        sp = model.spectral
        rng = np.random.default_rng(10)
        spec = sp.truncate(sp.to_spectral(rng.standard_normal((3, 2, 16, 16))))
        pruned = np.ascontiguousarray(spec[..., : sp.kx_keep])
        np.testing.assert_array_equal(
            sp.to_physical_retained(pruned), sp.to_physical(spec)
        )

    def test_to_spectral_retained_matches_full(self):
        model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))
        sp = model.spectral
        field = np.random.default_rng(11).standard_normal((2, 2, 16, 16))
        np.testing.assert_array_equal(
            sp.to_spectral_retained(field), sp.to_spectral(field)[..., : sp.kx_keep]
        )

    def test_retained_shape_validation(self):
        sp = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0)).spectral
        with pytest.raises(ValueError):
            sp.to_physical_retained(np.zeros((16, sp.kx_keep + 1), dtype=complex))


class TestBackendRegression:
    def test_numpy_backend_forced(self):
        model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0), backend="numpy")
        assert model.spectral.fft.name == "numpy"
        theta = _states(model, 2, seed=12)
        assert np.isfinite(model.step(theta, n_steps=2)).all()

    @pytest.mark.skipif(
        "scipy" not in available_backends(), reason="scipy not installed"
    )
    def test_backends_produce_identical_trajectories(self):
        params = SQGParameters(nx=16, ny=16, dt=1800.0)
        m_np = SQGModel(params, backend="numpy")
        m_sp = SQGModel(params, backend="scipy")
        assert m_sp.spectral.fft.name == "scipy"
        ens = np.stack(
            [m_np.flatten(m_np.random_initial_condition(rng=i)) for i in range(4)]
        )
        # pocketfft underlies both: trajectories must match bit for bit
        np.testing.assert_array_equal(
            m_np.forecast(ens, n_steps=5), m_sp.forecast(ens, n_steps=5)
        )

class TestFusedOSSEParity:
    def test_free_run_records_timing_breakdown(self):
        params = SQGParameters(nx=16, ny=16, dt=1800.0)
        model = SQGModel(params)
        truth0 = model.flatten(_states(model, 0, seed=15))
        config = OSSEConfig(n_cycles=2, steps_per_cycle=1, ensemble_size=2, seed=0)
        result = free_run(model, model, truth0, config)
        assert result.timing is not None
        for section in ("truth", "forecast"):
            assert len(result.timing[section]["per_cycle_s"]) == 2
