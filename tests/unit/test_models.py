"""Unit tests for the forecast-model substrates (spectral ops, SQG, Lorenz-96, model error)."""

import numpy as np
import pytest

from repro.models.base import propagate_ensemble
from repro.models.lorenz96 import Lorenz96
from repro.models.model_error import ModelErrorComponent, StochasticModelErrorMixture
from repro.models.spectral import SpectralGrid
from repro.models.sqg import SQGModel, SQGParameters, spinup_sqg


@pytest.fixture(scope="module")
def small_sqg():
    return SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))


class TestSpectralGrid:
    def setup_method(self):
        self.grid = SpectralGrid(16, 16, 2.0 * np.pi, 2.0 * np.pi)

    def test_roundtrip_transform(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(16, 16))
        back = self.grid.to_physical(self.grid.to_spectral(field))
        assert np.allclose(back, field, atol=1e-12)

    def test_batched_transform_matches_loop(self):
        rng = np.random.default_rng(1)
        fields = rng.normal(size=(3, 2, 16, 16))
        batched = self.grid.to_spectral(fields)
        for i in range(3):
            for l in range(2):
                assert np.allclose(batched[i, l], self.grid.to_spectral(fields[i, l]))

    def test_derivative_of_sine(self):
        x = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        xx, _ = np.meshgrid(x, x)
        field = np.sin(3 * xx)
        dfdx = self.grid.to_physical(self.grid.ddx(self.grid.to_spectral(field)))
        assert np.allclose(dfdx, 3 * np.cos(3 * xx), atol=1e-10)

    def test_laplacian_of_sine(self):
        x = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        xx, yy = np.meshgrid(x, x)
        field = np.sin(2 * xx) * np.cos(yy)
        lap = self.grid.to_physical(self.grid.laplacian(self.grid.to_spectral(field)))
        assert np.allclose(lap, -5.0 * field, atol=1e-10)

    def test_dealias_mask_removes_high_wavenumbers(self):
        mask = self.grid.dealias_mask
        assert mask.min() == 0.0 and mask.max() == 1.0
        # The zero mode is always retained.
        assert mask[0, 0] == 1.0

    def test_jacobian_antisymmetry(self):
        rng = np.random.default_rng(2)
        a = self.grid.to_spectral(rng.normal(size=(16, 16)))
        b = self.grid.to_spectral(rng.normal(size=(16, 16)))
        jab = self.grid.to_physical(self.grid.jacobian(a, b))
        jba = self.grid.to_physical(self.grid.jacobian(b, a))
        assert np.allclose(jab, -jba, atol=1e-8)

    def test_jacobian_of_identical_fields_vanishes(self):
        rng = np.random.default_rng(3)
        a = self.grid.to_spectral(rng.normal(size=(16, 16)))
        jaa = self.grid.to_physical(self.grid.jacobian(a, a))
        assert np.allclose(jaa, 0.0, atol=1e-8)

    def test_hyperdiffusion_filter_bounds(self):
        filt = self.grid.hyperdiffusion_filter(dt=100.0, efolding_time=1000.0, order=8)
        assert np.all(filt <= 1.0) and np.all(filt > 0.0)
        assert filt[0, 0] == pytest.approx(1.0)

    def test_hyperdiffusion_validation(self):
        with pytest.raises(ValueError):
            self.grid.hyperdiffusion_filter(1.0, -1.0)
        with pytest.raises(ValueError):
            self.grid.hyperdiffusion_filter(1.0, 1.0, order=3)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            SpectralGrid(3, 16, 1.0, 1.0)
        with pytest.raises(ValueError):
            SpectralGrid(15, 16, 1.0, 1.0)


class TestSQGModel:
    def test_state_shapes(self, small_sqg):
        theta = small_sqg.random_initial_condition(rng=0)
        assert theta.shape == (2, 16, 16)
        flat = small_sqg.flatten(theta)
        assert flat.shape == (small_sqg.state_size,)
        assert np.allclose(small_sqg.unflatten(flat), theta)

    def test_initial_condition_zero_mean(self, small_sqg):
        theta = small_sqg.random_initial_condition(rng=1)
        assert abs(theta.mean()) < 1e-10

    def test_inversion_consistency(self, small_sqg):
        """ψ reconstructed from θ must reproduce θ via the vertical derivative relation."""
        theta = small_sqg.random_initial_condition(rng=2)
        spec = small_sqg.spectral.to_spectral(theta)
        psi = small_sqg.invert(spec)
        p = small_sqg.params
        kappa = small_sqg.spectral.kappa
        mu = np.clip(p.brunt_vaisala * kappa * p.depth / p.coriolis, 1e-12, 500.0)
        # Reconstruct θ̂ = ∂ψ̂/∂z at the boundaries from the analytic vertical
        # structure used in the inversion and compare with the input.
        m = mu / p.depth
        sinh, cosh = np.sinh(mu), np.cosh(mu)
        b_coef = psi[0] * 0  # placeholder, bottom boundary handled through linear solve below
        # Solve for A, B in ψ(z) = A cosh(mz) + B sinh(mz) from ψ(0), ψ(H):
        a_coef = psi[..., 0, :, :]
        b_coef = (psi[..., 1, :, :] - a_coef * cosh) / np.where(sinh == 0, 1.0, sinh)
        theta0_rec = m * b_coef / small_sqg.params.buoyancy_factor
        theta1_rec = m * (a_coef * sinh + b_coef * cosh) / small_sqg.params.buoyancy_factor
        nonzero = small_sqg.spectral.kappa > 0
        assert np.allclose(theta0_rec[nonzero], spec[0][nonzero], rtol=1e-6, atol=1e-8)
        assert np.allclose(theta1_rec[nonzero], spec[1][nonzero], rtol=1e-6, atol=1e-8)

    def test_step_preserves_domain_mean(self, small_sqg):
        theta = small_sqg.random_initial_condition(rng=3)
        stepped = small_sqg.step(theta, n_steps=5)
        assert abs(stepped.mean()) < 1e-8

    def test_batched_step_matches_individual(self, small_sqg):
        rng = np.random.default_rng(4)
        states = np.stack([small_sqg.random_initial_condition(rng=i) for i in range(3)])
        batched = small_sqg.step(states, n_steps=3)
        for i in range(3):
            single = small_sqg.step(states[i], n_steps=3)
            assert np.allclose(batched[i], single, atol=1e-10)

    def test_forecast_flat_interface(self, small_sqg):
        theta = small_sqg.random_initial_condition(rng=5)
        flat = small_sqg.flatten(theta)
        out1 = small_sqg.forecast(flat, n_steps=2)
        out2 = small_sqg.flatten(small_sqg.step(theta, n_steps=2))
        assert out1.shape == flat.shape
        assert np.allclose(out1, out2)

    def test_forecast_batched(self, small_sqg):
        rng = np.random.default_rng(6)
        ens = np.stack([small_sqg.flatten(small_sqg.random_initial_condition(rng=i)) for i in range(4)])
        out = small_sqg.forecast(ens, n_steps=1)
        assert out.shape == ens.shape

    def test_chaos_perturbation_growth(self):
        """Two nearby states diverge — the chaotic error growth of Fig. 4."""
        model = SQGModel(SQGParameters(nx=32, ny=32, dt=1200.0))
        base = spinup_sqg(model, n_steps=400, rng=7)
        # Perturb with a smooth (large-scale) field so the difference is not
        # immediately removed by hyperdiffusion.
        pert = base + 1e-3 * model.random_initial_condition(rng=8)
        d0 = np.sqrt(((base - pert) ** 2).mean())
        base2 = model.step(base, n_steps=400)
        pert2 = model.step(pert, n_steps=400)
        d1 = np.sqrt(((base2 - pert2) ** 2).mean())
        assert d1 > 2.0 * d0

    def test_velocities_finite_and_shaped(self, small_sqg):
        theta = small_sqg.random_initial_condition(rng=9)
        u, v = small_sqg.velocities(theta)
        assert u.shape == theta.shape and v.shape == theta.shape
        assert np.isfinite(u).all() and np.isfinite(v).all()

    def test_cfl_reasonable_after_spinup(self, small_sqg):
        theta = spinup_sqg(small_sqg, n_steps=200, rng=10)
        assert 0.0 < small_sqg.cfl_number(theta) < 1.0

    def test_run_with_snapshots(self, small_sqg):
        theta = small_sqg.random_initial_condition(rng=11)
        traj = small_sqg.run(theta, n_steps=6, save_every=2)
        assert traj.shape == (4, 2, 16, 16)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SQGParameters(nx=-1)
        with pytest.raises(ValueError):
            SQGParameters(dt=0.0)
        with pytest.raises(ValueError):
            SQGParameters(relaxation_time=-1.0)

    def test_rossby_radius(self):
        p = SQGParameters()
        assert p.rossby_radius == pytest.approx(1.0e6)


class TestLorenz96:
    def test_equilibrium_is_fixed_point(self):
        model = Lorenz96(dim=12)
        x = model.equilibrium_state()
        assert np.allclose(model.tendency(x), 0.0)

    def test_chaotic_divergence(self):
        model = Lorenz96(dim=40)
        x = model.spinup(500, rng=0)
        y = x + 1e-6
        xs, ys = model.step(x, 300), model.step(y, 300)
        assert np.abs(xs - ys).max() > 1e-3

    def test_batched_matches_loop(self):
        model = Lorenz96(dim=10)
        rng = np.random.default_rng(1)
        batch = rng.normal(size=(4, 10)) + 8.0
        stepped = model.step(batch, n_steps=5)
        for i in range(4):
            assert np.allclose(stepped[i], model.step(batch[i], n_steps=5))

    def test_validation(self):
        with pytest.raises(ValueError):
            Lorenz96(dim=3)
        with pytest.raises(ValueError):
            Lorenz96(dt=-0.1)

    def test_propagate_ensemble_helper(self):
        model = Lorenz96(dim=8)
        ens = np.random.default_rng(2).normal(size=(5, 8)) + 8.0
        out = propagate_ensemble(model, ens, n_steps=2)
        assert out.shape == ens.shape
        with pytest.raises(ValueError):
            propagate_ensemble(model, ens[:, :4], n_steps=1)


class TestModelError:
    def test_paper_components(self):
        mix = StochasticModelErrorMixture(rng=0)
        probs = [c.probability for c in mix.components]
        amps = [c.amplitude_fraction for c in mix.components]
        assert probs == [0.20, 0.15, 0.10, 0.05]
        assert amps == [0.20, 0.30, 0.40, 0.50]

    def test_expected_std_formula(self):
        mix = StochasticModelErrorMixture(rng=0)
        expected = np.sqrt(0.2 * 0.2**2 + 0.15 * 0.3**2 + 0.1 * 0.4**2 + 0.05 * 0.5**2)
        assert mix.expected_std(1.0) == pytest.approx(expected)

    def test_long_run_statistics_match_expectation(self):
        mix = StochasticModelErrorMixture(rng=3)
        reference = 10.0
        samples = np.array([mix.sample_error((200,), reference) for _ in range(400)])
        empirical_std = samples.std()
        assert empirical_std == pytest.approx(mix.expected_std(reference), rel=0.15)

    def test_perturb_uses_state_rms_by_default(self):
        mix = StochasticModelErrorMixture(rng=4)
        state = np.full(100, 5.0)
        perturbed = mix.perturb(state)
        assert perturbed.shape == state.shape

    def test_component_validation(self):
        with pytest.raises(ValueError):
            ModelErrorComponent(probability=1.5, amplitude_fraction=0.1)
        with pytest.raises(ValueError):
            ModelErrorComponent(probability=0.5, amplitude_fraction=-0.1)
        with pytest.raises(ValueError):
            StochasticModelErrorMixture(components=())

    def test_zero_probability_mixture_is_inactive(self):
        mix = StochasticModelErrorMixture(
            components=(ModelErrorComponent(0.0, 0.5),), rng=5
        )
        assert np.allclose(mix.sample_error((10,), 1.0), 0.0)
