"""Experiment-service certification suite (crash isolation, preemption,
resume-on-failure, durable journal, drain, backpressure).

The load-bearing claim everywhere: whatever the scheduler does to a job —
preempt it, crash it, requeue it, restart the whole service from the
journal — the job's scientific results are **bit-identical** to an
undisturbed run of the same submission, because progress only ever moves
through the engine's checksummed checkpoints.  ``_clean_rmse`` computes
that undisturbed oracle by running the same OSSE directly, with no
checkpointing and no service machinery at all.
"""

import json
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.hpc.ensemble_parallel import EnsembleExecutor
from repro.utils.faults import FaultPlan
from repro.workflow.scheduler import (
    JOB_STATES,
    TERMINAL_STATES,
    ExperimentService,
    JobSpec,
    ServiceConfig,
    _fair_shares,
    lorenz96_ensf_job,
)

RUNNER = "repro.workflow.scheduler:lorenz96_ensf_job"

# Small-but-real OSSE workloads: SHORT finishes fast, LONG spans enough
# cycle boundaries for a preemption/crash to land mid-run.
SHORT = {"dim": 12, "n_cycles": 4, "ensemble_size": 6, "n_sde_steps": 5, "spinup": 30}
LONG = dict(SHORT, n_cycles=40)

_CLEAN_CACHE: dict = {}


def _clean_rmse(params) -> list:
    """Oracle: the same OSSE run directly — no service, no checkpoints."""
    key = tuple(sorted(params.items()))
    if key not in _CLEAN_CACHE:
        from repro.core.ensf import EnSF, EnSFConfig
        from repro.core.observations import IdentityObservation
        from repro.da.cycling import OSSEConfig, run_osse
        from repro.models.lorenz96 import Lorenz96

        p = dict(params)
        dim = int(p.get("dim", 12))
        seed = int(p.get("seed", 0))
        model = Lorenz96(dim=dim)
        truth0 = model.spinup(int(p.get("spinup", 50)), rng=seed)
        operator = IdentityObservation(dim, obs_error_var=float(p.get("obs_error_var", 0.5)))
        filter_ = EnSF(EnSFConfig(n_sde_steps=int(p.get("n_sde_steps", 8))), rng=seed + 5)
        config = OSSEConfig(
            n_cycles=int(p.get("n_cycles", 8)),
            steps_per_cycle=int(p.get("steps_per_cycle", 2)),
            ensemble_size=int(p.get("ensemble_size", 8)),
            seed=seed,
        )
        result = run_osse(model, model, filter_, operator, truth0, config)
        _CLEAN_CACHE[key] = [float(v) for v in result.analysis_rmse]
    return _CLEAN_CACHE[key]


def _service(tmp_path, **kwargs) -> ExperimentService:
    config = kwargs.pop("config", None) or ServiceConfig(
        max_running=2, retry_backoff_s=0.01, poll_s=0.01
    )
    return ExperimentService(tmp_path / "journal.json", config=config, **kwargs)


def _wait_for_state(service, name, state, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.state(name) == state:
            return
        time.sleep(0.005)
    raise AssertionError(
        f"job {name!r} never reached {state!r} (now {service.state(name)!r})"
    )


def _always_crash(ctx):
    raise RuntimeError("synthetic job bug")


def _slow_job(ctx):
    time.sleep(0.2)
    return {"ok": True}


# --------------------------------------------------------------------------- #
# validation / submission
# --------------------------------------------------------------------------- #


class TestValidation:
    def test_service_config_bounds(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_running=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_queued=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ServiceConfig(checkpoint_every=0)
        with pytest.raises(ValueError):
            ServiceConfig(keep_last=0)

    def test_job_spec_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            JobSpec(name="", runner=RUNNER)
        with pytest.raises(ValueError, match="module:qualname"):
            JobSpec(name="x", runner="not-a-ref")
        with pytest.raises(ValueError, match="not importable"):
            JobSpec(name="x", runner=lambda ctx: None)
        with pytest.raises(TypeError):
            JobSpec(name="x", runner=RUNNER, params={"bad": object()})
        with pytest.raises(ValueError):
            JobSpec(name="x", runner=RUNNER, max_attempts=0)
        # a module-level callable normalizes to its importable reference
        assert JobSpec(name="x", runner=lorenz96_ensf_job).runner == RUNNER

    def test_submit_rejects_unimportable_runner_early(self, tmp_path):
        with _service(tmp_path) as svc:
            with pytest.raises(ValueError, match="not importable"):
                svc.submit("job", "no.such.module:fn")

    def test_duplicate_name_rejected(self, tmp_path):
        with _service(tmp_path) as svc:
            assert svc.submit("job", RUNNER, params=SHORT) == "pending"
            with pytest.raises(ValueError, match="already submitted"):
                svc.submit("job", RUNNER, params=SHORT)

    def test_lifecycle_constants(self):
        assert set(TERMINAL_STATES) <= set(JOB_STATES)
        assert "running" not in TERMINAL_STATES


# --------------------------------------------------------------------------- #
# happy path
# --------------------------------------------------------------------------- #


class TestCompletion:
    def test_jobs_complete_with_clean_results(self, tmp_path):
        with _service(tmp_path) as svc:
            for i in range(3):
                params = dict(SHORT, seed=i)
                assert svc.submit(f"job-{i}", RUNNER, params=params) == "pending"
            states = svc.run_until_complete(timeout=120.0)
        assert states == {f"job-{i}": "done" for i in range(3)}
        for i in range(3):
            result = svc.result(f"job-{i}")
            # journal round-trips results through JSON: plain builtins only
            json.dumps(result)
            assert result["analysis_rmse"] == _clean_rmse(dict(SHORT, seed=i))
            assert result["final_rmse"] == result["analysis_rmse"][-1]

    def test_status_snapshot_and_accessors(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.submit("job", RUNNER, params=SHORT)
            assert svc.status() == {"job": "pending"}
            assert svc.result("job") is None
            assert len(svc.job_fault_log("job")) == 0
            svc.run_until_complete(timeout=60.0)
            assert svc.status() == {"job": "done"}


# --------------------------------------------------------------------------- #
# preemption
# --------------------------------------------------------------------------- #


class TestPreemption:
    def test_high_priority_preempts_and_both_finish_bit_identically(self, tmp_path):
        config = ServiceConfig(max_running=1, retry_backoff_s=0.01, poll_s=0.01)
        low_params = dict(LONG, seed=1)
        high_params = dict(SHORT, seed=2)
        with _service(tmp_path, config=config) as svc:
            svc.start()
            svc.submit("low", RUNNER, params=low_params, priority=0)
            _wait_for_state(svc, "low", "running")
            svc.submit("high", RUNNER, params=high_params, priority=10)
            states = svc.run_until_complete(timeout=180.0)
        assert states == {"low": "done", "high": "done"}
        # the yield is visible in both ledgers...
        assert svc.fault_log.count(action="preempt") >= 1
        assert svc.job_fault_log("low").count(action="preempt") >= 1
        # ...and checkpoint-resume kept the interrupted job bit-identical
        assert svc.result("low")["analysis_rmse"] == _clean_rmse(low_params)
        assert svc.result("high")["analysis_rmse"] == _clean_rmse(high_params)
        # preemption never consumes the crash budget
        assert svc.job_fault_log("low").count(action="job-retry") == 0

    def test_equal_priority_never_preempts(self, tmp_path):
        config = ServiceConfig(max_running=1, retry_backoff_s=0.01, poll_s=0.01)
        with _service(tmp_path, config=config) as svc:
            svc.start()
            svc.submit("first", RUNNER, params=dict(SHORT, seed=3), priority=5)
            svc.submit("second", RUNNER, params=dict(SHORT, seed=4), priority=5)
            states = svc.run_until_complete(timeout=120.0)
        assert states == {"first": "done", "second": "done"}
        assert svc.fault_log.count(action="preempt") == 0


# --------------------------------------------------------------------------- #
# crash isolation + resume-on-failure
# --------------------------------------------------------------------------- #


class TestCrashRecovery:
    def test_injected_crash_heals_bit_identically(self, tmp_path):
        params = dict(LONG, seed=5)
        # scheduler-site visits count journal writes: #0 submit, #1 the
        # pending->running transition -- so occurrence 1 arms the crash just
        # as the job starts and it fires at the next cycle boundary
        plan = FaultPlan.from_spec("job-crash@scheduler:1,job=victim")
        with _service(tmp_path, fault_plan=plan) as svc:
            svc.submit("victim", RUNNER, params=params)
            states = svc.run_until_complete(timeout=180.0)
        assert states == {"victim": "done"}
        log = svc.job_fault_log("victim").summary()
        assert log.get("job-crash") == 1
        assert log.get("job-retry") == 1
        assert svc.result("victim")["analysis_rmse"] == _clean_rmse(params)

    def test_crash_in_one_job_never_touches_siblings(self, tmp_path):
        params = dict(SHORT, seed=6)
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as pool:
            with _service(tmp_path, executor=pool) as svc:
                svc.submit("crasher", "test_scheduler:_always_crash", max_attempts=2)
                svc.submit("healthy", RUNNER, params=params)
                states = svc.run_until_complete(timeout=120.0)
            # every attempt's lease — including the crashed ones' — was
            # released back to the pool, so its bookkeeping is at baseline
            assert pool.active_leases == 0
        assert states == {"crasher": "failed", "healthy": "done"}
        assert svc.result("healthy")["analysis_rmse"] == _clean_rmse(params)

    def test_retry_budget_exhaustion_is_terminal(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.submit("doomed", "test_scheduler:_always_crash", max_attempts=3)
            states = svc.run_until_complete(timeout=60.0)
        assert states == {"doomed": "failed"}
        assert svc.job_fault_log("doomed").count(action="job-retry") == 2
        assert svc.fault_log.count(action="job-failed") == 1
        with svc._lock:
            rec = svc._jobs["doomed"]
        assert rec.attempts == 3
        assert "synthetic job bug" in rec.error


# --------------------------------------------------------------------------- #
# journal durability + restart recovery
# --------------------------------------------------------------------------- #


class TestJournal:
    def test_checksum_rejects_tampering(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.submit("job", RUNNER, params=SHORT)
        path = tmp_path / "journal.json"
        payload = ExperimentService.load_journal(path)
        assert payload["jobs"][0]["name"] == "job"
        wrapper = json.loads(path.read_text())
        wrapper["payload"]["jobs"][0]["state"] = "done"  # tamper
        path.write_text(json.dumps(wrapper))
        assert ExperimentService.load_journal(path) is None

    def test_restart_requeues_non_terminal_and_keeps_results(self, tmp_path):
        params = dict(SHORT, seed=7)
        with _service(tmp_path) as svc:
            svc.submit("finished", RUNNER, params=params)
            svc.run_until_complete(timeout=60.0)
            svc.submit("waiting", RUNNER, params=dict(SHORT, seed=8))
        # new service, same journal: the finished job keeps its result, the
        # pending one is requeued (with resume=True) and completes
        with _service(tmp_path) as svc2:
            assert svc2.status() == {"finished": "done", "waiting": "pending"}
            assert svc2.result("finished")["analysis_rmse"] == _clean_rmse(params)
            states = svc2.run_until_complete(timeout=60.0)
        assert states["waiting"] == "done"
        assert svc2.result("waiting")["analysis_rmse"] == _clean_rmse(dict(SHORT, seed=8))

    def test_torn_journal_falls_back_to_previous_generation(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.submit("a", RUNNER, params=SHORT)
            svc.submit("b", RUNNER, params=dict(SHORT, seed=9))
        path = tmp_path / "journal.json"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])  # tear the newest write
        with _service(tmp_path) as svc2:
            assert svc2.fault_log.count(action="journal-fallback") == 1
            # the .prev generation predates submission of "b" by one write,
            # but both jobs were journaled at least once
            assert "a" in svc2.status()

    def test_recover_false_starts_empty(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.submit("job", RUNNER, params=SHORT)
        with _service(tmp_path, recover=False) as svc2:
            assert svc2.status() == {}


# --------------------------------------------------------------------------- #
# drain + backpressure
# --------------------------------------------------------------------------- #


class TestDrainAndBackpressure:
    def test_backpressure_rejects_beyond_max_queued(self, tmp_path):
        config = ServiceConfig(max_running=1, max_queued=2, poll_s=0.01)
        with _service(tmp_path, config=config) as svc:
            assert svc.submit("a", RUNNER, params=SHORT) == "pending"
            assert svc.submit("b", RUNNER, params=SHORT) == "pending"
            assert svc.submit("c", RUNNER, params=SHORT) == "rejected"
            assert svc.state("c") == "rejected"
            assert svc.fault_log.count(action="reject") == 1
        # rejected is terminal: a restarted service does not resurrect it
        with _service(tmp_path) as svc2:
            assert svc2.status()["c"] == "rejected"

    def test_drain_checkpoints_running_jobs_then_restart_completes(self, tmp_path):
        params = dict(LONG, seed=10)
        config = ServiceConfig(max_running=1, retry_backoff_s=0.01, poll_s=0.01)
        with _service(tmp_path, config=config) as svc:
            svc.start()
            svc.submit("job", RUNNER, params=params)
            _wait_for_state(svc, "job", "running")
            assert svc.drain(timeout=60.0)
            # drained mid-run: preempted (checkpointed), not failed/pending
            assert svc.state("job") == "preempted"
        with _service(tmp_path, config=config) as svc2:
            assert svc2.status() == {"job": "pending"}
            states = svc2.run_until_complete(timeout=180.0)
        assert states == {"job": "done"}
        assert svc2.result("job")["analysis_rmse"] == _clean_rmse(params)

    def test_run_until_complete_timeout(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.submit("slow", "test_scheduler:_slow_job")
            with pytest.raises(TimeoutError, match="slow"):
                svc.run_until_complete(timeout=0.01)


def _nonfinite_result_job(ctx):
    return {"final_rmse": float("nan"), "worst_member": float("inf"), "ok": 1.0}


# Two-phase rendezvous for the fair-share probe: the first wait proves both
# jobs are running (so quotas were re-arbitrated for a 2-job set) before
# either reads its lease, the second keeps both alive until both have read.
_QUOTA_SYNC: dict = {"barrier": None}


def _quota_probe(ctx):
    _QUOTA_SYNC["barrier"].wait(timeout=20)
    quota = None if ctx.executor is None else ctx.executor.max_workers
    _QUOTA_SYNC["barrier"].wait(timeout=20)
    return {"quota": -1 if quota is None else int(quota)}


def _quota_probe_solo(ctx):
    quota = None if ctx.executor is None else ctx.executor.max_workers
    return {"quota": -1 if quota is None else int(quota)}


def _strict_loads(body: bytes):
    def _reject(token):
        raise AssertionError(f"non-strict JSON token {token!r} in response")

    return json.loads(body.decode("utf-8"), parse_constant=_reject)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return _strict_loads(resp.read())


# --------------------------------------------------------------------------- #
# strict-JSON journal (NaN poisoning regression)
# --------------------------------------------------------------------------- #


class TestStrictJournal:
    def test_nonfinite_result_is_sanitized_not_poisonous(self, tmp_path):
        """A runner returning NaN/Inf must not poison the journal: the job
        completes, non-finite fields become null and are flagged, and the
        journal file never carries a non-strict token."""
        with _service(tmp_path) as svc:
            svc.submit("nanjob", "test_scheduler:_nonfinite_result_job")
            states = svc.run_until_complete(timeout=60.0)
        assert states == {"nanjob": "done"}
        result = svc.result("nanjob")
        assert result["ok"] == 1.0
        assert result["final_rmse"] is None
        assert result["worst_member"] is None
        assert result["nonfinite_fields"] == ["final_rmse", "worst_member"]
        assert svc.job_fault_log("nanjob").count(action="nonfinite-result") == 1
        # the on-disk journal is strict JSON end to end...
        text = (tmp_path / "journal.json").read_text()
        _strict_loads(text.encode("utf-8"))
        assert "NaN" not in text and "Infinity" not in text
        # ...and verifies + round-trips through load_journal
        payload = ExperimentService.load_journal(tmp_path / "journal.json")
        (job,) = [j for j in payload["jobs"] if j["name"] == "nanjob"]
        assert job["result"]["final_rmse"] is None

    def test_nonfinite_result_survives_the_http_frontend(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.submit("nanjob", "test_scheduler:_nonfinite_result_job")
            svc.run_until_complete(timeout=60.0)
            server = svc.serve_status()
            detail = _get(f"{server.url}/jobs/nanjob")
        assert detail["state"] == "done"
        assert detail["result"]["final_rmse"] is None
        assert "final_rmse" in detail["result"]["nonfinite_fields"]

    def test_nonfinite_params_rejected_at_submission(self):
        with pytest.raises(ValueError):
            JobSpec(name="x", runner=RUNNER, params={"bad": float("nan")})
        with pytest.raises(ValueError):
            JobSpec(name="x", runner=RUNNER, weight=float("inf"))
        with pytest.raises(ValueError):
            JobSpec(name="x", runner=RUNNER, weight=0.0)

    def test_pre_fix_nan_journal_treated_as_corrupt(self, tmp_path):
        """A journal written by the pre-fix service (checksum over a
        NaN-carrying canonical form) must fail verification, not load."""
        import hashlib

        payload = {"jobs": [{"name": "old", "state": "done", "result": float("nan")}]}
        canonical = json.dumps(payload, sort_keys=True)  # pre-fix: allow_nan=True
        wrapper = {
            "sha256": hashlib.sha256(canonical.encode()).hexdigest(),
            "payload": payload,
        }
        path = tmp_path / "journal.json"
        path.write_text(json.dumps(wrapper))
        assert ExperimentService.load_journal(path) is None


# --------------------------------------------------------------------------- #
# rejected-name resubmission (poisoned-forever regression)
# --------------------------------------------------------------------------- #


class TestResubmission:
    def test_rejected_name_can_resubmit_once_capacity_frees(self, tmp_path):
        config = ServiceConfig(max_running=1, max_queued=1, retry_backoff_s=0.01, poll_s=0.01)
        with _service(tmp_path, config=config) as svc:
            assert svc.submit("a", RUNNER, params=dict(SHORT, seed=11)) == "pending"
            assert svc.submit("b", RUNNER, params=dict(SHORT, seed=12)) == "rejected"
            assert svc.run_until_complete(timeout=120.0)["a"] == "done"
            # capacity freed: the bounced name is usable again...
            assert svc.submit("b", RUNNER, params=dict(SHORT, seed=12)) == "pending"
            states = svc.run_until_complete(timeout=120.0)
        assert states["b"] == "done"
        assert svc.result("b")["analysis_rmse"] == _clean_rmse(dict(SHORT, seed=12))
        # ...while any non-rejected record still owns its name
        with pytest.raises(ValueError, match="already submitted"):
            svc.submit("b", RUNNER, params=SHORT)

    def test_resubmission_survives_restart(self, tmp_path):
        config = ServiceConfig(max_running=1, max_queued=1, poll_s=0.01)
        with _service(tmp_path, config=config) as svc:
            svc.submit("a", RUNNER, params=dict(SHORT, seed=13))
            assert svc.submit("b", RUNNER, params=dict(SHORT, seed=14)) == "rejected"
            svc.run_until_complete(timeout=120.0)
        with _service(tmp_path) as svc2:  # default config: capacity available
            assert svc2.status()["b"] == "rejected"
            assert svc2.submit("b", RUNNER, params=dict(SHORT, seed=14)) == "pending"
            assert svc2.run_until_complete(timeout=120.0)["b"] == "done"


# --------------------------------------------------------------------------- #
# fair-share arbitration
# --------------------------------------------------------------------------- #


class TestFairShare:
    def test_fair_shares_apportionment(self):
        assert _fair_shares([1.0, 1.0], 4) == [2, 2]
        assert _fair_shares([1.0], 4) == [4]
        assert _fair_shares([3.0, 1.0], 4) == [3, 1]
        assert _fair_shares([2.0, 1.0, 1.0], 8) == [4, 2, 2]
        # oversubscribed: everyone keeps the floor of one slot
        assert _fair_shares([1.0, 1.0, 1.0], 2) == [1, 1, 1]
        with pytest.raises(ValueError):
            _fair_shares([0.0], 4)

    def test_fair_shares_conserve_slots_and_respect_floor(self):
        for weights in ([1.0, 2.0, 3.0], [0.1, 0.9], [5.0] * 7):
            for total in range(1, 12):
                shares = _fair_shares(list(weights), total)
                assert sum(shares) == max(total, len(weights))
                assert min(shares) >= 1

    def test_concurrent_jobs_split_the_pool(self, tmp_path):
        _QUOTA_SYNC["barrier"] = threading.Barrier(2)
        with EnsembleExecutor(n_workers=4, min_members_per_worker=1) as pool:
            with _service(tmp_path, executor=pool) as svc:
                svc.submit("p1", "test_scheduler:_quota_probe")
                svc.submit("p2", "test_scheduler:_quota_probe")
                states = svc.run_until_complete(timeout=60.0)
        assert states == {"p1": "done", "p2": "done"}
        # two equal untenanted jobs on a 4-slot pool: 2 slots each
        assert svc.result("p1")["quota"] == 2
        assert svc.result("p2")["quota"] == 2

    def test_single_job_gets_the_whole_pool(self, tmp_path):
        with EnsembleExecutor(n_workers=4, min_members_per_worker=1) as pool:
            with _service(tmp_path, executor=pool) as svc:
                svc.submit("solo", "test_scheduler:_quota_probe_solo")
                svc.run_until_complete(timeout=60.0)
        assert svc.result("solo")["quota"] == 4

    def test_fair_share_off_leaves_leases_uncapped(self, tmp_path):
        config = ServiceConfig(
            max_running=2, retry_backoff_s=0.01, poll_s=0.01, fair_share=False
        )
        with EnsembleExecutor(n_workers=4, min_members_per_worker=1) as pool:
            with _service(tmp_path, config=config, executor=pool) as svc:
                svc.submit("solo", "test_scheduler:_quota_probe_solo")
                svc.run_until_complete(timeout=60.0)
        assert svc.result("solo")["quota"] == -1  # lease max_workers is None

    def test_fair_share_results_bit_identical_to_unshared(self, tmp_path):
        """Arbitration caps concurrency only: OSSE results through a shared
        arbitrated pool match the no-executor (serial) service exactly."""
        params = [dict(SHORT, seed=20 + i) for i in range(2)]
        with _service(tmp_path / "serial") as svc:
            for i, p in enumerate(params):
                svc.submit(f"job-{i}", RUNNER, params=p)
            svc.run_until_complete(timeout=120.0)
            serial = [svc.result(f"job-{i}")["analysis_rmse"] for i in range(2)]
        with EnsembleExecutor(n_workers=2, min_members_per_worker=1) as pool:
            with _service(tmp_path / "shared", executor=pool) as svc2:
                for i, p in enumerate(params):
                    svc2.submit(f"job-{i}", RUNNER, params=p, tenant=f"t{i}")
                svc2.run_until_complete(timeout=120.0)
                shared = [svc2.result(f"job-{i}")["analysis_rmse"] for i in range(2)]
            assert pool.active_leases == 0
        assert shared == serial == [_clean_rmse(p) for p in params]


# --------------------------------------------------------------------------- #
# SIGTERM chaining
# --------------------------------------------------------------------------- #


class TestSignalChaining:
    def test_sigterm_handler_chains_to_previous(self, tmp_path):
        seen = []
        original = signal.getsignal(signal.SIGTERM)
        try:
            signal.signal(signal.SIGTERM, lambda s, f: seen.append(s))
            with _service(tmp_path) as svc:
                svc.install_signal_handlers()
                handler = signal.getsignal(signal.SIGTERM)
                handler(signal.SIGTERM, None)
                assert svc._draining  # drain ran first...
            assert seen == [signal.SIGTERM]  # ...then the previous handler
        finally:
            signal.signal(signal.SIGTERM, original)

    def test_sigterm_default_disposition_not_invoked(self, tmp_path):
        original = signal.getsignal(signal.SIGTERM)
        try:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            with _service(tmp_path) as svc:
                svc.install_signal_handlers()
                # SIG_DFL is not callable — chaining must skip it, not crash
                signal.getsignal(signal.SIGTERM)(signal.SIGTERM, None)
                assert svc._draining
        finally:
            signal.signal(signal.SIGTERM, original)


# --------------------------------------------------------------------------- #
# HTTP status frontend
# --------------------------------------------------------------------------- #


class TestStatusFrontend:
    def test_routes_and_strict_payloads(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.submit("job", RUNNER, params=SHORT)
            svc.run_until_complete(timeout=60.0)
            server = svc.serve_status()
            assert svc.serve_status() is server  # cached, one socket
            listing = _get(f"{server.url}/jobs")
            assert listing["counts"] == {"done": 1}
            assert listing["jobs"]["job"]["state"] == "done"
            assert "result" not in listing["jobs"]["job"]  # cheap poll path
            detail = _get(f"{server.url}/jobs/job")
            assert detail["result"]["analysis_rmse"] == _clean_rmse(SHORT)
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/jobs/nope")
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/unknown")
            assert err.value.code == 404
        # service close shuts the frontend down with it
        with pytest.raises(urllib.error.URLError):
            _get(f"{server.url}/jobs")

    def test_journal_mode_serves_a_dead_service(self, tmp_path):
        from repro.workflow.statusd import StatusServer

        with _service(tmp_path) as svc:
            svc.submit("job", RUNNER, params=SHORT)
            svc.run_until_complete(timeout=60.0)
        with StatusServer(journal_path=tmp_path / "journal.json") as server:
            listing = _get(f"{server.url}/jobs")
            assert listing["source"] == "journal"
            assert listing["jobs"]["job"]["state"] == "done"
            detail = _get(f"{server.url}/jobs/job")
            assert detail["result"]["analysis_rmse"] == _clean_rmse(SHORT)
        with pytest.raises(ValueError):
            StatusServer()  # exactly one of service/journal_path

    def test_concurrent_polling_during_a_live_campaign(self, tmp_path):
        """Journal writes and HTTP snapshots race by design: every poll that
        lands mid-campaign must still return strict, parseable JSON."""
        with _service(tmp_path) as svc:
            server = svc.serve_status()
            stop = threading.Event()
            bodies, errors = [], []

            def poll():
                while not stop.is_set():
                    try:
                        bodies.append(_get(f"{server.url}/jobs"))
                    except urllib.error.URLError as exc:
                        errors.append(exc)
                    time.sleep(0.002)

            pollers = [threading.Thread(target=poll) for _ in range(3)]
            for t in pollers:
                t.start()
            try:
                for i in range(3):
                    svc.submit(f"job-{i}", RUNNER, params=dict(SHORT, seed=30 + i))
                states = svc.run_until_complete(timeout=120.0)
            finally:
                stop.set()
                for t in pollers:
                    t.join(timeout=10)
            final = _get(f"{server.url}/jobs")
        assert states == {f"job-{i}": "done" for i in range(3)}
        assert not errors
        assert len(bodies) >= 3  # saw the campaign, not just the end state
        assert final["counts"] == {"done": 3}
