"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.filters import relax_spread
from repro.core.schedules import LinearAlphaSchedule
from repro.core.score import MonteCarloScoreEstimator
from repro.da.inflation import rtps_inflation
from repro.da.localization import gaspari_cohn
from repro.hpc.collectives import CollectiveKind, CollectiveModel
from repro.hpc.comm import LocalCommGroup
from repro.hpc.ddp import bucketize
from repro.surrogate.flops import vit_parameter_count
from repro.surrogate.patch import patchify, unpatchify
from repro.surrogate.vit import ViTConfig
from repro.utils.grid import Grid2D

SETTINGS = dict(max_examples=25, deadline=None)


@settings(**SETTINGS)
@given(
    n_members=st.integers(2, 12),
    dim=st.integers(1, 8),
    t=st.floats(0.01, 0.99),
    seed=st.integers(0, 1000),
)
def test_score_weights_always_normalised(n_members, dim, t, seed):
    rng = np.random.default_rng(seed)
    estimator = MonteCarloScoreEstimator(rng.normal(size=(n_members, dim)) * 3.0, rng=seed)
    z = rng.normal(size=(4, dim)) * 2.0
    weights = estimator.weights(z, t)
    assert np.all(weights >= 0.0)
    assert np.allclose(weights.sum(axis=1), 1.0, atol=1e-10)
    assert np.isfinite(estimator.score(z, t)).all()


@settings(**SETTINGS)
@given(
    cutoff=st.floats(1.0, 1.0e7),
    distances=st.lists(st.floats(0.0, 5.0e7), min_size=1, max_size=30),
)
def test_gaspari_cohn_bounds_and_support(cutoff, distances):
    d = np.array(distances)
    w = gaspari_cohn(d, cutoff)
    assert np.all((w >= 0.0) & (w <= 1.0))
    assert np.all(w[d >= 2.0 * cutoff] == 0.0)


@settings(**SETTINGS)
@given(
    cutoff=st.floats(1.0, 1.0e7),
    distances=st.lists(st.floats(0.0, 2.5), min_size=2, max_size=40),
)
def test_gaspari_cohn_monotone_decay(cutoff, distances):
    """The correlation never increases with separation (within support and
    across the r = 1, r = 2 knots)."""
    d = np.sort(np.array(distances)) * cutoff  # scaled into [0, 2.5c]
    w = gaspari_cohn(d, cutoff)
    assert np.all(np.diff(w) <= 1.0e-12)


def _gc_piecewise(r: float) -> float:
    """Gaspari & Cohn (1999) Eq. 4.10 evaluated literally (test oracle)."""
    if r <= 1.0:
        return -0.25 * r**5 + 0.5 * r**4 + 0.625 * r**3 - (5.0 / 3.0) * r**2 + 1.0
    if r < 2.0:
        return (
            (1.0 / 12.0) * r**5
            - 0.5 * r**4
            + 0.625 * r**3
            + (5.0 / 3.0) * r**2
            - 5.0 * r
            + 4.0
            - (2.0 / 3.0) / r
        )
    return 0.0


@settings(**SETTINGS)
@given(cutoff=st.floats(1.0e-3, 1.0e7))
def test_gaspari_cohn_knot_points_exact(cutoff):
    """Exact agreement with the piecewise polynomial at the knots r ∈ {0, 1, 2}
    (in units of the cut-off), where the two rational pieces meet."""
    knots = np.array([0.0, cutoff, 2.0 * cutoff])
    w = gaspari_cohn(knots, cutoff)
    assert w[0] == 1.0
    assert w[1] == _gc_piecewise(1.0)
    assert w[2] == 0.0
    # the two polynomial pieces agree at the interior knot
    near = -0.25 + 0.5 + 0.625 - 5.0 / 3.0 + 1.0
    far = 1.0 / 12.0 - 0.5 + 0.625 + 5.0 / 3.0 - 5.0 + 4.0 - 2.0 / 3.0
    assert abs(near - far) < 1.0e-15
    assert abs(w[1] - near) < 1.0e-15


@settings(**SETTINGS)
@given(
    cutoff=st.floats(0.5, 1.0e6),
    scaled=st.lists(st.floats(0.0, 3.0), min_size=1, max_size=25),
)
def test_gaspari_cohn_matches_piecewise_everywhere(cutoff, scaled):
    """The vectorised kernel equals the literal piecewise form (clipped to
    [0, 1]) at arbitrary separations, not just the knots."""
    d = np.array(scaled) * cutoff
    w = gaspari_cohn(d, cutoff)
    expected = np.clip([_gc_piecewise(r) for r in scaled], 0.0, 1.0)
    np.testing.assert_allclose(w, expected, rtol=0.0, atol=5.0e-14)


@settings(**SETTINGS)
@given(
    m=st.integers(2, 10),
    d=st.integers(1, 20),
    factor=st.floats(0.0, 1.0),
    seed=st.integers(0, 500),
)
def test_spread_relaxation_preserves_mean(m, d, factor, seed):
    rng = np.random.default_rng(seed)
    forecast = rng.normal(size=(m, d)) * 2.0
    analysis = rng.normal(size=(m, d))
    relaxed = relax_spread(analysis, forecast, factor=factor)
    assert np.allclose(relaxed.mean(axis=0), analysis.mean(axis=0), atol=1e-10)
    rtps = rtps_inflation(analysis, forecast, factor)
    assert np.allclose(rtps.mean(axis=0), analysis.mean(axis=0), atol=1e-10)


@settings(**SETTINGS)
@given(
    batch=st.integers(1, 3),
    grid_exp=st.sampled_from([8, 16, 32]),
    patch=st.sampled_from([2, 4, 8]),
    channels=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_patchify_roundtrip(batch, grid_exp, patch, channels, seed):
    fields = np.random.default_rng(seed).normal(size=(batch, channels, grid_exp, grid_exp))
    patches = patchify(fields, patch)
    assert patches.shape == (batch, (grid_exp // patch) ** 2, channels * patch * patch)
    assert np.allclose(unpatchify(patches, patch, channels, grid_exp, grid_exp), fields)


@settings(**SETTINGS)
@given(
    nx=st.sampled_from([4, 8, 16]),
    ny=st.sampled_from([4, 8, 16]),
    nlev=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_grid_flatten_roundtrip(nx, ny, nlev, seed):
    grid = Grid2D(nx=nx, ny=ny, nlev=nlev)
    state = np.random.default_rng(seed).normal(size=grid.shape)
    assert np.allclose(grid.unflatten_state(grid.flatten_state(state)), state)


@settings(**SETTINGS)
@given(
    n_ranks=st.integers(1, 6),
    size=st.integers(1, 40),
    seed=st.integers(0, 200),
)
def test_local_comm_allreduce_matches_numpy(n_ranks, size, seed):
    rng = np.random.default_rng(seed)
    comm = LocalCommGroup(n_ranks)
    buffers = [rng.normal(size=size) for _ in range(n_ranks)]
    out = comm.allreduce(buffers, op="sum")
    expected = np.sum(buffers, axis=0)
    assert all(np.allclose(o, expected) for o in out)
    chunks = comm.reduce_scatter(buffers, op="sum")
    assert np.allclose(np.concatenate(chunks)[:size], expected)


@settings(**SETTINGS)
@given(
    total_mb=st.floats(0.0, 5000.0),
    bucket_mb=st.floats(1.0, 1000.0),
)
def test_bucketize_conserves_volume(total_mb, bucket_mb):
    buckets = bucketize(total_mb, bucket_mb)
    assert sum(buckets) == (total_mb if total_mb > 0 else 0) or np.isclose(sum(buckets), total_mb)
    assert all(0 < b <= bucket_mb + 1e-9 for b in buckets)


@settings(**SETTINGS)
@given(
    depth=st.integers(1, 8),
    embed_exp=st.sampled_from([64, 128, 256, 512]),
    heads=st.sampled_from([2, 4, 8]),
)
def test_parameter_count_monotone_in_depth_and_width(depth, embed_exp, heads):
    base = ViTConfig(image_size=32, patch_size=4, depth=depth, num_heads=heads, embed_dim=embed_exp)
    deeper = ViTConfig(image_size=32, patch_size=4, depth=depth + 1, num_heads=heads, embed_dim=embed_exp)
    wider = ViTConfig(image_size=32, patch_size=4, depth=depth, num_heads=heads, embed_dim=embed_exp * 2)
    assert vit_parameter_count(deeper) > vit_parameter_count(base)
    assert vit_parameter_count(wider) > vit_parameter_count(base)


@settings(**SETTINGS)
@given(
    t=st.floats(0.001, 0.999),
    eps_alpha=st.floats(0.0, 0.2),
)
def test_schedule_identity_holds_everywhere(t, eps_alpha):
    s = LinearAlphaSchedule(eps_alpha=eps_alpha)
    lhs = s.diffusion_sq(t)
    rhs = s.dbeta_sq_dt(t) - 2.0 * s.drift_coeff(t) * s.beta_sq(t)
    assert np.isclose(lhs, rhs)
    assert s.beta_sq(t) > 0
    assert s.alpha(t) > 0


@settings(**SETTINGS)
@given(
    msg_mb=st.floats(1.0, 2048.0),
    n_gpus=st.sampled_from([2, 8, 64, 512, 1024]),
    kind=st.sampled_from(list(CollectiveKind)),
)
def test_collective_times_positive_and_finite(msg_mb, n_gpus, kind):
    model = CollectiveModel()
    t = model.time_seconds(kind, msg_mb * 2.0**20, n_gpus)
    assert np.isfinite(t) and t > 0.0
