"""Shared test fixtures: the ``slow_reference`` oracle bundle.

This starts the ROADMAP "reference-path retirement" item: every test that
exercises a pre-refactor reference implementation — ``LETKF.analyze_reference``,
``MonteCarloScoreEstimator.score_reference``, the ``fused=False`` EnSF /
``reuse_buffers=False`` sampler configurations, and the forecast oracle
``SQGModel.step_spectral_reference`` — reaches it through the
:func:`slow_reference` fixture and is automatically tagged with the
``slow_reference`` marker.  The oracle suite can then be selected
(``pytest -m slow_reference``) or skipped (``-m "not slow_reference"``)
wholesale; once the fused kernels have survived a few more PRs the oracles
retire by deleting this bundle and its call sites, not by hunting through
the suite.
"""

from __future__ import annotations

import pytest


class ReferenceOracles:
    """Accessors for the slow pre-refactor reference implementations.

    Each method is a thin indirection; the point is that reference-path
    usage is *named and greppable* rather than scattered as direct calls.
    """

    # -- PR 1 analysis oracles ------------------------------------------- #
    @staticmethod
    def letkf_analyze(letkf, *args, **kwargs):
        """Per-column LETKF loop (oracle for the batched kernel)."""
        return letkf.analyze_reference(*args, **kwargs)

    @staticmethod
    def score(estimator, *args, **kwargs):
        """Unfused Monte-Carlo score path (oracle for ``score_into``)."""
        return estimator.score_reference(*args, **kwargs)

    @staticmethod
    def ensf(config_kwargs=None, rng=None):
        """EnSF on the unfused analysis path (``fused=False``)."""
        from repro.core.ensf import EnSF, EnSFConfig

        kwargs = dict(config_kwargs or {})
        kwargs["fused"] = False
        return EnSF(EnSFConfig(**kwargs), rng=rng)

    @staticmethod
    def sde_sampler(*args, **kwargs):
        """Reverse-SDE integrator without buffer reuse."""
        from repro.core.sde import ReverseSDESampler

        kwargs["reuse_buffers"] = False
        return ReverseSDESampler(*args, **kwargs)

    # -- PR 2 forecast oracle -------------------------------------------- #
    @staticmethod
    def sqg_step(model, theta_spec):
        """Pre-fusion RK4 pseudo-spectral step (oracle for the fused kernel)."""
        return model.step_spectral_reference(theta_spec)

    @staticmethod
    def sqg_model(params=None, **kwargs):
        """An :class:`SQGModel` forced onto the reference step path."""
        from repro.models.sqg import SQGModel

        return SQGModel(params, fused=False, **kwargs)


@pytest.fixture
def slow_reference() -> ReferenceOracles:
    """Handle to the slow reference oracles (tags the test ``slow_reference``)."""
    return ReferenceOracles()


def pytest_collection_modifyitems(items):
    """Auto-mark every test that requests the ``slow_reference`` fixture."""
    for item in items:
        if "slow_reference" in getattr(item, "fixturenames", ()):
            item.add_marker(pytest.mark.slow_reference)
