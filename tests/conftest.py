"""Shared test fixtures: the backend-parametrized ``array_backend`` fixture.

The ``slow_reference`` oracle bundle that used to live here is gone: the
ROADMAP "reference-path retirement" item completed and the pre-refactor
implementations (``LETKF.analyze_reference``,
``MonteCarloScoreEstimator.score_reference``, the ``fused=False`` EnSF /
``reuse_buffers=False`` sampler configurations, and
``SQGModel.step_spectral_reference``) were deleted from the source tree.
The backend-parametrized equivalence suite certifies the fused kernels
against each other across backends instead.

``array_backend`` re-runs the kernel-equivalence tests that request it
under **every** registered array backend (:mod:`repro.utils.xp`), skipping
params whose optional dependency (e.g. cupy) is absent.  The fixture
installs the param as the process default — so code under test that
resolves ``backend=None`` picks it up — and restores the previous selection
afterwards; tests using it are automatically tagged ``array_backend``
(deselect with ``-m "not array_backend"``).
"""

from __future__ import annotations

import pytest

import repro.utils.xp as xp_mod

# The full registry, not available_backends(): unavailable entries must be
# *visible* as skips, not silently dropped from the matrix.
ARRAY_BACKEND_PARAMS = ("numpy", "mock-device", "cupy")


@pytest.fixture(params=ARRAY_BACKEND_PARAMS)
def array_backend(request, monkeypatch) -> "xp_mod.ArrayBackend":
    """Run the test once per registered array backend (process default).

    Unavailable optional backends skip cleanly.  ``REPRO_ARRAY_BACKEND`` is
    cleared for the test body so the fixture's selection — not the outer
    environment — decides which backend ``resolve_backend(None)`` returns
    (the env var outranks ``set_default_backend`` by design).  Mock-device
    transfer counters are reset so tests can meter their own traffic.
    """
    name = request.param
    if name not in xp_mod.available_backends():
        pytest.skip(f"array backend {name!r} not available in this environment")
    monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
    xp_mod.set_default_backend(name)
    backend = xp_mod.resolve_backend(name)
    if hasattr(backend, "reset_transfers"):
        backend.reset_transfers()
    yield backend
    xp_mod.set_default_backend(None)


def pytest_collection_modifyitems(items):
    """Auto-mark tests by the harness fixtures they request."""
    for item in items:
        fixtures = getattr(item, "fixturenames", ())
        if "array_backend" in fixtures:
            item.add_marker(pytest.mark.array_backend)
