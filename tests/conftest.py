"""Shared test fixtures: the ``slow_reference`` oracle bundle and the
backend-parametrized ``array_backend`` fixture.

``slow_reference`` carries the ROADMAP "reference-path retirement" item:
every test that exercises a pre-refactor reference implementation —
``LETKF.analyze_reference``, ``MonteCarloScoreEstimator.score_reference``,
the ``fused=False`` EnSF / ``reuse_buffers=False`` sampler configurations,
and the forecast oracle ``SQGModel.step_spectral_reference`` — reaches it
through the :func:`slow_reference` fixture and is automatically tagged with
the ``slow_reference`` marker.  The oracle inventory is down to one oracle
test per kernel (see ROADMAP.md); the backend-parametrized equivalence
suite now certifies the fused kernels against each other across backends.

``array_backend`` re-runs the kernel-equivalence tests that request it
under **every** registered array backend (:mod:`repro.utils.xp`), skipping
params whose optional dependency (e.g. cupy) is absent.  The fixture
installs the param as the process default — so code under test that
resolves ``backend=None`` picks it up — and restores the previous selection
afterwards; tests using it are automatically tagged ``array_backend``
(deselect with ``-m "not array_backend"``).
"""

from __future__ import annotations

import pytest

import repro.utils.xp as xp_mod

# The full registry, not available_backends(): unavailable entries must be
# *visible* as skips, not silently dropped from the matrix.
ARRAY_BACKEND_PARAMS = ("numpy", "mock-device", "cupy")


class ReferenceOracles:
    """Accessors for the slow pre-refactor reference implementations.

    Each method is a thin indirection; the point is that reference-path
    usage is *named and greppable* rather than scattered as direct calls.
    """

    # -- PR 1 analysis oracles ------------------------------------------- #
    @staticmethod
    def letkf_analyze(letkf, *args, **kwargs):
        """Per-column LETKF loop (oracle for the batched kernel)."""
        return letkf.analyze_reference(*args, **kwargs)

    @staticmethod
    def score(estimator, *args, **kwargs):
        """Unfused Monte-Carlo score path (oracle for ``score_into``)."""
        return estimator.score_reference(*args, **kwargs)

    @staticmethod
    def ensf(config_kwargs=None, rng=None):
        """EnSF on the unfused analysis path (``fused=False``)."""
        from repro.core.ensf import EnSF, EnSFConfig

        kwargs = dict(config_kwargs or {})
        kwargs["fused"] = False
        return EnSF(EnSFConfig(**kwargs), rng=rng)

    @staticmethod
    def sde_sampler(*args, **kwargs):
        """Reverse-SDE integrator without buffer reuse."""
        from repro.core.sde import ReverseSDESampler

        kwargs["reuse_buffers"] = False
        return ReverseSDESampler(*args, **kwargs)

    # -- PR 2 forecast oracle -------------------------------------------- #
    @staticmethod
    def sqg_step(model, theta_spec):
        """Pre-fusion RK4 pseudo-spectral step (oracle for the fused kernel)."""
        return model.step_spectral_reference(theta_spec)

    @staticmethod
    def sqg_model(params=None, **kwargs):
        """An :class:`SQGModel` forced onto the reference step path."""
        from repro.models.sqg import SQGModel

        return SQGModel(params, fused=False, **kwargs)


@pytest.fixture
def slow_reference() -> ReferenceOracles:
    """Handle to the slow reference oracles (tags the test ``slow_reference``)."""
    return ReferenceOracles()


@pytest.fixture(params=ARRAY_BACKEND_PARAMS)
def array_backend(request, monkeypatch) -> "xp_mod.ArrayBackend":
    """Run the test once per registered array backend (process default).

    Unavailable optional backends skip cleanly.  ``REPRO_ARRAY_BACKEND`` is
    cleared for the test body so the fixture's selection — not the outer
    environment — decides which backend ``resolve_backend(None)`` returns
    (the env var outranks ``set_default_backend`` by design).  Mock-device
    transfer counters are reset so tests can meter their own traffic.
    """
    name = request.param
    if name not in xp_mod.available_backends():
        pytest.skip(f"array backend {name!r} not available in this environment")
    monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
    xp_mod.set_default_backend(name)
    backend = xp_mod.resolve_backend(name)
    if hasattr(backend, "reset_transfers"):
        backend.reset_transfers()
    yield backend
    xp_mod.set_default_backend(None)


def pytest_collection_modifyitems(items):
    """Auto-mark tests by the harness fixtures they request."""
    for item in items:
        fixtures = getattr(item, "fixturenames", ())
        if "slow_reference" in fixtures:
            item.add_marker(pytest.mark.slow_reference)
        if "array_backend" in fixtures:
            item.add_marker(pytest.mark.array_backend)
