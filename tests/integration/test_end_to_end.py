"""Integration tests: full OSSE cycling, the four-way comparison and the real-time workflow."""

import numpy as np
import pytest

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation
from repro.da.cycling import OSSEConfig, free_run, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.hpc.ensemble_parallel import EnsembleExecutor
from repro.models.model_error import StochasticModelErrorMixture
from repro.models.sqg import SQGModel, SQGParameters, spinup_sqg
from repro.surrogate.training import TrainingConfig
from repro.workflow.config import ExperimentConfig
from repro.workflow.experiments import build_sqg_testbed, run_four_experiments, train_offline_surrogate
from repro.workflow.realtime import RealTimeDAWorkflow


@pytest.fixture(scope="module")
def smoke_comparison():
    """Run the reduced four-way comparison once and share it across tests."""
    return run_four_experiments(ExperimentConfig.smoke_test())


class TestSQGCyclingIntegration:
    def test_letkf_controls_error_growth_on_sqg(self):
        """LETKF analysis error stays below the free-run error on the SQG testbed."""
        model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))
        truth0 = model.flatten(spinup_sqg(model, n_steps=400, rng=0))
        op = IdentityObservation(model.state_size, obs_error_var=1.0)
        cfg = OSSEConfig(n_cycles=6, steps_per_cycle=12, ensemble_size=10, seed=1)
        letkf = LETKF(model.grid, LETKFConfig())
        da = run_osse(model, model, letkf, op, truth0, cfg, label="letkf")
        free = free_run(model, model, truth0, cfg, label="free")
        assert da.analysis_rmse[-1] < free.analysis_rmse[-1]

    def test_ensf_controls_error_growth_on_sqg(self):
        model = SQGModel(SQGParameters(nx=16, ny=16, dt=1800.0))
        truth0 = model.flatten(spinup_sqg(model, n_steps=400, rng=2))
        op = IdentityObservation(model.state_size, obs_error_var=1.0)
        cfg = OSSEConfig(n_cycles=6, steps_per_cycle=12, ensemble_size=10, seed=3)
        ensf = EnSF(EnSFConfig(n_sde_steps=50), rng=4)
        da = run_osse(model, model, ensf, op, truth0, cfg, label="ensf")
        free = free_run(model, model, truth0, cfg, label="free")
        assert da.analysis_rmse[-1] < free.analysis_rmse[-1]


class TestFourWayComparison:
    def test_all_four_experiments_present(self, smoke_comparison):
        assert set(smoke_comparison.results) == {"SQG only", "ViT only", "SQG+LETKF", "ViT+EnSF"}

    def test_results_are_finite(self, smoke_comparison):
        for res in smoke_comparison.results.values():
            assert np.isfinite(res.analysis_rmse).all()
            assert np.isfinite(res.analysis_mean_final).all()

    def test_ensf_beats_no_da_at_final_time(self, smoke_comparison):
        rmse = smoke_comparison.final_rmse()
        assert rmse["ViT+EnSF"] < max(rmse["SQG only"], rmse["ViT only"])

    def test_summary_rows(self, smoke_comparison):
        rows = smoke_comparison.summary_rows()
        assert len(rows) == 4
        assert all("mean_analysis_rmse" in r for r in rows)


class TestRealTimeWorkflow:
    def test_workflow_runs_and_times_both_scalability_tasks(self):
        config = ExperimentConfig.smoke_test()
        testbed = build_sqg_testbed(config)
        surrogate = train_offline_surrogate(testbed)
        workflow = RealTimeDAWorkflow(
            surrogate=surrogate,
            truth_model=testbed.model,
            operator=testbed.operator,
            ensf_config=EnSFConfig(n_sde_steps=25),
            training_config=TrainingConfig(online_iterations=1),
            model_error=StochasticModelErrorMixture(rng=0),
            seed=7,
        )
        rng = np.random.default_rng(8)
        ensemble = testbed.truth0[None, :] + rng.standard_normal((8, testbed.model.state_size))
        result = workflow.run(testbed.truth0, ensemble, n_cycles=3, steps_per_cycle=config.steps_per_cycle)
        timings = result["timings"]
        assert timings.n_cycles == 3
        assert timings.analysis > 0.0
        assert timings.online_training > 0.0
        assert len(result["analysis_rmse"]) == 3
        assert np.isfinite(result["analysis_rmse"]).all()
        fractions = timings.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_workflow_with_ensemble_executor(self):
        config = ExperimentConfig.smoke_test()
        testbed = build_sqg_testbed(config)
        surrogate = train_offline_surrogate(testbed)
        workflow = RealTimeDAWorkflow(
            surrogate=surrogate,
            truth_model=testbed.model,
            operator=testbed.operator,
            ensf_config=EnSFConfig(n_sde_steps=20),
            training_config=TrainingConfig(online_iterations=0),
            executor=EnsembleExecutor(n_workers=1),
            seed=9,
        )
        rng = np.random.default_rng(10)
        ensemble = testbed.truth0[None, :] + rng.standard_normal((6, testbed.model.state_size))
        result = workflow.run(testbed.truth0, ensemble, n_cycles=2, steps_per_cycle=config.steps_per_cycle)
        assert result["timings"].online_training == 0.0
        assert np.isfinite(result["final_analysis_rmse"])

    def test_executor_workflow_seeds_derive_from_root(self):
        """Regression: the executor path used ``seed=cycle`` for the EnSF
        analysis, so workflows built with different root seeds drew
        *identical* analysis noise.  The per-cycle seed must derive from the
        workflow's own root via the named "ensf-parallel" stream."""
        config = ExperimentConfig.smoke_test()
        testbed = build_sqg_testbed(config)
        surrogate = train_offline_surrogate(testbed)

        class RecordingExecutor(EnsembleExecutor):
            def __init__(self):
                super().__init__(n_workers=1)
                self.seen_seeds = []

            def analyze_ensf(self, filter_, forecast, observation, operator, seed=0):
                self.seen_seeds.append(seed)
                return super().analyze_ensf(
                    filter_, forecast, observation, operator, seed=seed
                )

        def run_with_seed(seed):
            executor = RecordingExecutor()
            workflow = RealTimeDAWorkflow(
                surrogate=surrogate,
                truth_model=testbed.model,
                operator=testbed.operator,
                ensf_config=EnSFConfig(n_sde_steps=10),
                training_config=TrainingConfig(online_iterations=0),
                executor=executor,
                seed=seed,
            )
            rng = np.random.default_rng(10)
            ensemble = testbed.truth0[None, :] + rng.standard_normal(
                (6, testbed.model.state_size)
            )
            workflow.run(
                testbed.truth0, ensemble, n_cycles=2, steps_per_cycle=config.steps_per_cycle
            )
            return executor.seen_seeds

        seeds_a, seeds_b = run_with_seed(1), run_with_seed(2)
        for seeds in (seeds_a, seeds_b):
            assert len(seeds) == 2
            assert all(isinstance(s, np.random.SeedSequence) for s in seeds)
            # per-cycle sub-streams of one named stream
            assert seeds[0].spawn_key != seeds[1].spawn_key
        for cycle in range(2):
            # different workflow roots => different executor seeds (the old
            # seed=cycle collided here), same root => reproducible
            assert seeds_a[cycle].entropy != seeds_b[cycle].entropy
        assert [s.entropy for s in run_with_seed(1)] == [s.entropy for s in seeds_a]
        assert [s.spawn_key for s in run_with_seed(1)] == [s.spawn_key for s in seeds_a]
