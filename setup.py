"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package (needed for PEP 517 editable builds) may not be available: pip then
falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
