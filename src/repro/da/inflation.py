"""Ensemble inflation schemes.

Small ensembles systematically underestimate forecast uncertainty; inflation
compensates.  The paper's LETKF uses relaxation-to-prior-spread (RTPS,
Whitaker & Hamill 2012) with a tuned factor of 0.3; multiplicative inflation
and relaxation-to-prior-perturbation (RTPP) are provided for ablations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["multiplicative_inflation", "rtps_inflation", "rtpp_inflation"]


def _check_ensemble(ensemble: np.ndarray) -> np.ndarray:
    ensemble = np.asarray(ensemble, dtype=float)
    if ensemble.ndim != 2:
        raise ValueError("ensemble must have shape (m, d)")
    return ensemble


def multiplicative_inflation(ensemble: np.ndarray, factor: float) -> np.ndarray:
    """Scale ensemble perturbations about the mean by ``factor`` (≥ 1 inflates)."""
    if factor <= 0:
        raise ValueError("inflation factor must be positive")
    ensemble = _check_ensemble(ensemble)
    mean = ensemble.mean(axis=0)
    return mean + factor * (ensemble - mean)


def rtps_inflation(
    analysis: np.ndarray,
    forecast: np.ndarray,
    factor: float,
    floor: float = 1.0e-12,
) -> np.ndarray:
    """Relaxation-to-prior-spread inflation (Whitaker & Hamill 2012).

    The analysis perturbations are rescaled so that the per-variable analysis
    spread ``σ_a`` is relaxed towards the forecast spread ``σ_f``:

    ``σ_new = σ_a + factor (σ_f − σ_a)``

    ``factor = 0`` leaves the analysis unchanged; ``factor = 1`` restores the
    forecast spread exactly.  The paper's tuned value for SQG-LETKF is 0.3.
    """
    if not 0.0 <= factor <= 1.0:
        raise ValueError("RTPS factor must lie in [0, 1]")
    analysis = _check_ensemble(analysis)
    forecast = _check_ensemble(forecast)
    if analysis.shape != forecast.shape:
        raise ValueError("analysis and forecast must have the same shape")
    if factor == 0.0 or analysis.shape[0] < 2:
        return analysis
    a_mean = analysis.mean(axis=0)
    sigma_a = np.maximum(analysis.std(axis=0, ddof=1), floor)
    sigma_f = forecast.std(axis=0, ddof=1)
    scale = 1.0 + factor * (sigma_f - sigma_a) / sigma_a
    return a_mean + (analysis - a_mean) * scale


def rtpp_inflation(analysis: np.ndarray, forecast: np.ndarray, factor: float) -> np.ndarray:
    """Relaxation-to-prior-perturbation inflation (Zhang et al. 2004).

    Blends analysis and forecast perturbations:
    ``X'_new = (1 − factor) X'_a + factor X'_f``.
    """
    if not 0.0 <= factor <= 1.0:
        raise ValueError("RTPP factor must lie in [0, 1]")
    analysis = _check_ensemble(analysis)
    forecast = _check_ensemble(forecast)
    if analysis.shape != forecast.shape:
        raise ValueError("analysis and forecast must have the same shape")
    a_mean = analysis.mean(axis=0)
    f_mean = forecast.mean(axis=0)
    pert = (1.0 - factor) * (analysis - a_mean) + factor * (forecast - f_mean)
    return a_mean + pert
