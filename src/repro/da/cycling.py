"""Observation System Simulation Experiment (OSSE) cycling driver.

This module implements the experimental protocol of §IV-A: a truth run of the
forecast model (optionally perturbed by the stochastic model-error mixture so
the DA system faces an imperfect model), synthetic observations generated
every analysis interval, and sequential prediction/update cycling of any
:class:`~repro.core.filters.EnsembleFilter`.  It also supports free runs (no
data assimilation) for the "SQG only" and "ViT only" curves of Fig. 4.

Both drivers are thin wrappers over the unified
:class:`~repro.workflow.engine.CycleEngine` (they configure its stage
pipeline and map the engine result back onto :class:`CyclingResult`); under
the default idealized observation protocol they are bit-identical to the
historical inlined loops.  :func:`run_osse` additionally accepts an
:class:`~repro.core.observations.ObservationScenario` (sparse / lossy /
latent / multi-operator networks) and engine checkpointing knobs for
restartable paper-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filters import EnsembleFilter
from repro.core.observations import (
    ObservationOperator,
    ObservationQC,
    ObservationScenario,
    ObservationStream,
)
from repro.models.base import ForecastModel
from repro.models.model_error import StochasticModelErrorMixture
from repro.utils.faults import FaultLog, FaultPlan
from repro.utils.random import SeedSequenceFactory
from repro.utils.timing import BenchRecorder
from repro.workflow.engine import (
    CycleEngine,
    DeterministicForecastStage,
    DivergencePolicy,
    EngineCheckpoint,
    EnsembleForecastStage,
    FilterAnalysisStage,
    ObservationStage,
    TruthStage,
    rmse,
)

__all__ = ["OSSEConfig", "CyclingResult", "run_osse", "free_run", "rmse"]


@dataclass(frozen=True)
class OSSEConfig:
    """Configuration of one OSSE cycling experiment.

    Attributes
    ----------
    n_cycles:
        Number of analysis cycles (the paper runs 300: t ∈ [0, 3600] with
        12-hourly observations).
    steps_per_cycle:
        Forecast-model steps between consecutive analysis times.
    ensemble_size:
        Number of ensemble members (paper: 20 for both LETKF and EnSF).
    seed:
        Root seed; all stochastic sub-streams are derived from it by name.
    apply_model_error_to_truth:
        Add the stochastic model-error mixture to the truth between cycles
        (the paper's imperfect-model scenario).
    """

    n_cycles: int = 20
    steps_per_cycle: int = 4
    ensemble_size: int = 20
    seed: int = 0
    apply_model_error_to_truth: bool = True

    def __post_init__(self) -> None:
        if self.n_cycles < 1 or self.steps_per_cycle < 1:
            raise ValueError("n_cycles and steps_per_cycle must be positive")
        if self.ensemble_size < 2:
            raise ValueError("ensemble_size must be at least 2")


@dataclass
class CyclingResult:
    """Time series produced by a cycling experiment.

    All arrays have length ``n_cycles``.  ``analysis_rmse`` equals
    ``forecast_rmse`` for free runs (no update is performed).
    """

    times: np.ndarray
    forecast_rmse: np.ndarray
    analysis_rmse: np.ndarray
    analysis_spread: np.ndarray
    truth_final: np.ndarray
    analysis_mean_final: np.ndarray
    label: str = ""
    analysis_mean_history: np.ndarray | None = None
    timing: dict | None = None
    fault_log: FaultLog | None = None

    @property
    def mean_analysis_rmse(self) -> float:
        """Time-mean analysis RMSE (skipping the first 10 % spin-up cycles)."""
        skip = max(1, len(self.analysis_rmse) // 10)
        return float(np.mean(self.analysis_rmse[skip:]))

    def summary(self) -> dict:
        """Compact dictionary summary used by the benchmark harness."""
        out = {
            "label": self.label,
            "cycles": int(len(self.times)),
            "mean_analysis_rmse": self.mean_analysis_rmse,
            "final_analysis_rmse": float(self.analysis_rmse[-1]),
            "final_spread": float(self.analysis_spread[-1]),
        }
        if self.timing is not None:
            out["timing"] = {
                name: {k: v for k, v in section.items() if k != "per_cycle_s"}
                for name, section in self.timing.items()
            }
        return out


def _initial_ensemble(
    truth_model: ForecastModel,
    truth0: np.ndarray,
    n_members: int,
    steps_per_cycle: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Initial ensemble drawn from a long model integration (paper §IV-A).

    States are sampled along a free run of the forecast model started from
    the (perturbed) truth, mimicking "random selection of model states from a
    long-term integration".
    """
    catalogue = []
    state = np.array(truth0, dtype=float)
    # Decorrelate the catalogue by taking snapshots a full cycle apart.
    for _ in range(n_members):
        state = truth_model.forecast(state, n_steps=steps_per_cycle)
        catalogue.append(state.copy())
    catalogue = np.array(catalogue)
    order = rng.permutation(n_members)
    return catalogue[order]


def run_osse(
    truth_model: ForecastModel,
    forecast_model: ForecastModel,
    filter_: EnsembleFilter | None,
    operator: ObservationOperator,
    truth0: np.ndarray,
    config: OSSEConfig,
    model_error: StochasticModelErrorMixture | None = None,
    initial_ensemble: np.ndarray | None = None,
    executor=None,
    label: str | None = None,
    store_history: bool = False,
    recorder: BenchRecorder | None = None,
    scenario: ObservationScenario | None = None,
    resume: EngineCheckpoint | str | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    keep_last: int | None = None,
    qc: ObservationQC | None = None,
    cycle_deadline_s: float | None = None,
    divergence: DivergencePolicy | None = None,
    fault_plan: FaultPlan | None = None,
    fault_log: FaultLog | None = None,
    preempt=None,
) -> CyclingResult:
    """Run one cycling DA experiment.

    Parameters
    ----------
    truth_model:
        Model used to evolve the (hidden) truth — always the physics model.
    forecast_model:
        Model used to evolve the ensemble — the physics model for SQG+LETKF,
        or the ViT surrogate for ViT+EnSF (the paper's proposed framework).
    filter_:
        Analysis algorithm, or ``None`` for a free run without assimilation.
    operator:
        Observation operator (identity with R = I in the paper's tests).
    truth0:
        Initial flattened truth state.
    config:
        Experiment configuration.
    model_error:
        Stochastic mixture perturbing the truth between cycles; defaults to
        the paper's mixture when ``config.apply_model_error_to_truth`` is set.
    initial_ensemble:
        Optional pre-built initial ensemble of shape ``(m, d)``.
    executor:
        Optional :class:`~repro.hpc.ensemble_parallel.EnsembleExecutor`.  The
        ensemble forecast is member-sharded over its process pool, and the
        analysis section routes through
        :meth:`~repro.core.filters.EnsembleFilter.analyze_parallel`, so
        filters with a parallel decomposition (the LETKF's column-sharded
        solve stage) use the same pool; filters without one fall back to
        their serial ``analyze``.  All parallel paths are worker-count
        invariant, so results never depend on the executor layout.
    label:
        Name recorded in the result (e.g. ``"SQG+LETKF"``).
    store_history:
        Also record the analysis-mean state at every cycle (needed by the
        Fig. 5 snapshot benchmark).
    recorder:
        Optional :class:`~repro.utils.timing.BenchRecorder`.  Every OSSE run
        records a per-cycle forecast/analysis wall-time breakdown (sections
        ``"truth"``, ``"forecast"``, ``"analysis"``) which is returned in
        ``CyclingResult.timing``; pass an existing recorder to aggregate
        several runs (each result's ``timing`` still covers only its own
        cycles).
    scenario:
        Optional :class:`~repro.core.observations.ObservationScenario`
        degrading the idealized protocol (obs every k-th cycle, dropout,
        latency, alternating partial-coverage operator networks — scenario
        operators override ``operator``).  ``None`` or the default scenario
        reproduce the historical behaviour bit-identically.
    resume:
        :class:`~repro.workflow.engine.EngineCheckpoint` (or a path to one)
        from an earlier run with the same configuration; cycling continues
        at its ``next_cycle`` until ``config.n_cycles``, bit-identically to
        the uninterrupted run (``truth0``/``initial_ensemble`` are then
        ignored).  ``resume="auto"`` resumes from the newest *valid*
        checkpoint on disk (walking past truncated files) and starts fresh
        when none exists.
    checkpoint_every, checkpoint_path:
        Write a rolling engine checkpoint after every so-many cycles.
    keep_last:
        Keep a rotating :class:`~repro.workflow.engine.CheckpointRing` of
        the ``k`` newest checkpoints instead of one self-replacing file.
    qc:
        Optional :class:`~repro.core.observations.ObservationQC` screening
        every observation event before its analysis.
    cycle_deadline_s:
        Optional per-cycle wall-clock budget; remaining analyses are
        skipped once exceeded (forecast-only cycle).
    divergence:
        Optional :class:`~repro.workflow.engine.DivergencePolicy` (halt /
        reinflate / reset-from-checkpoint on ensemble blow-up).
    fault_plan, fault_log:
        Deterministic fault injection and its recovery log (see
        :mod:`repro.utils.faults`).  One shared log collects the stream's
        and engine's recoveries and is returned in
        ``CyclingResult.fault_log`` (an ``executor`` keeps its own
        ``executor.fault_log`` for shard-level recoveries).
    preempt:
        Optional zero-argument callable polled at every cycle boundary; see
        :meth:`~repro.workflow.engine.CycleEngine.run`.  Used by the
        experiment service for checkpoint-based preemption.
    """
    fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    fault_log = fault_log if fault_log is not None else FaultLog()
    seeds = SeedSequenceFactory(config.seed)
    rng_obs = seeds.rng("observations")
    rng_init = seeds.rng("initial-ensemble")
    if model_error is None and config.apply_model_error_to_truth:
        model_error = StochasticModelErrorMixture(rng=seeds.rng("model-error"))

    truth = ensemble = None
    if resume is None or (isinstance(resume, str) and resume == "auto"):
        truth = np.array(truth0, dtype=float)
        if initial_ensemble is None:
            ensemble = _initial_ensemble(
                truth_model, truth, config.ensemble_size, config.steps_per_cycle, rng_init
            )
        else:
            ensemble = np.array(initial_ensemble, dtype=float)
            if ensemble.shape[0] != config.ensemble_size:
                raise ValueError("initial ensemble size does not match config.ensemble_size")

    observations = analysis = None
    if filter_ is not None:
        stream = ObservationStream(
            operator,
            scenario,
            rng=rng_obs,
            schedule_rng=seeds.rng("observation-schedule"),
            fault_plan=fault_plan,
            fault_log=fault_log,
        )
        observations = ObservationStage(stream)
        analysis = FilterAnalysisStage(filter_)

    engine = CycleEngine(
        truth=TruthStage(
            truth_model,
            config.steps_per_cycle,
            model_error if config.apply_model_error_to_truth else None,
        ),
        observations=observations,
        forecast=EnsembleForecastStage(forecast_model, config.steps_per_cycle),
        analysis=analysis,
        executor=executor,
        recorder=recorder,
        store_history=store_history,
        qc=qc,
        cycle_deadline_s=cycle_deadline_s,
        divergence=divergence,
        fault_plan=fault_plan,
        fault_log=fault_log,
    )
    result = engine.run(
        truth,
        ensemble,
        config.n_cycles,
        resume=resume,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        keep_last=keep_last,
        preempt=preempt,
    )

    return CyclingResult(
        times=np.arange(1, config.n_cycles + 1, dtype=float),
        forecast_rmse=result.forecast_rmse,
        analysis_rmse=result.analysis_rmse,
        analysis_spread=result.analysis_spread,
        truth_final=result.truth_final,
        analysis_mean_final=result.mean_final,
        label=label or (filter_.name if filter_ is not None else "free-run"),
        analysis_mean_history=result.history,
        timing=result.timing,
        fault_log=fault_log,
    )


def free_run(
    truth_model: ForecastModel,
    forecast_model: ForecastModel,
    truth0: np.ndarray,
    config: OSSEConfig,
    model_error: StochasticModelErrorMixture | None = None,
    label: str = "free-run",
    recorder: BenchRecorder | None = None,
) -> CyclingResult:
    """Run a no-DA experiment (the "SQG only" / "ViT only" curves of Fig. 4).

    A single deterministic forecast started from the same initial state as
    the truth is compared against the (model-error-perturbed) truth; the
    growing RMSE illustrates the chaotic error growth that assimilation must
    control.  Like :func:`run_osse`, the per-cycle ``"truth"``/``"forecast"``
    wall times are recorded (there is no ``"analysis"`` section), so the
    benchmark harness can attribute free-run cost with the same breakdown.
    """
    seeds = SeedSequenceFactory(config.seed)
    if model_error is None and config.apply_model_error_to_truth:
        model_error = StochasticModelErrorMixture(rng=seeds.rng("model-error"))

    engine = CycleEngine(
        truth=TruthStage(
            truth_model,
            config.steps_per_cycle,
            model_error if config.apply_model_error_to_truth else None,
        ),
        forecast=DeterministicForecastStage(forecast_model, config.steps_per_cycle),
        recorder=recorder,
    )
    truth = np.array(truth0, dtype=float)
    prediction = np.array(truth0, dtype=float)
    result = engine.run(truth, prediction, config.n_cycles)

    return CyclingResult(
        times=np.arange(1, config.n_cycles + 1, dtype=float),
        forecast_rmse=result.forecast_rmse,
        analysis_rmse=result.analysis_rmse.copy(),
        analysis_spread=np.zeros(config.n_cycles),
        truth_final=result.truth_final,
        analysis_mean_final=result.state_final,
        label=label,
        timing=result.timing,
    )
