"""Local Ensemble Transform Kalman Filter (LETKF).

This is the state-of-the-art baseline the paper compares against (Hunt,
Kostelich & Szunyogh 2007).  The analysis is computed independently in local
regions surrounding each horizontal grid column — the embarrassingly parallel
structure that makes LETKF the operational choice (e.g. the German KENDA
system) — with:

* Gaspari–Cohn **R-localization**: observation-error variances are inflated
  with distance so remote observations lose influence smoothly;
* **RTPS inflation** (relaxation to prior spread) applied after the update;
* optional prior multiplicative inflation.

For the two-boundary SQG state both vertical levels of a column are updated
with the same local weights (the paper couples horizontal and vertical
localization through the Rossby radius; with only two boundary levels this
reduces to whole-column updates).

Vectorized analysis kernels
---------------------------
:meth:`LETKF.analyze` is the **batched kernel**.  A
:class:`~repro.da.localization.LocalAnalysisGeometry` is built once per
``(grid, observation network)`` pair and cached across cycles; the local
eigenproblems of all columns are then solved with a single stacked
``np.linalg.eigh`` over ``(n_columns, m, m)`` tensors and the weights are
applied with batched matrix products.  The local Gram matrices are
assembled either by circular FFT convolution (uniform observation errors,
``min_weight == 0``) or by grouped gathers over precomputed footprints.
(The original per-column Python loop served as the numerical oracle through
several releases of equivalence testing and has since been retired.)

Column-sharded parallel analysis
--------------------------------
:meth:`LETKF.analyze_parallel` shards the batched path across an
:class:`~repro.hpc.ensemble_parallel.EnsembleExecutor` process pool — the
local equivalent of the paper's per-rank local analyses plus gather
(§III-A3).  The global ensemble statistics (means, perturbations,
innovation) are computed once by the parent; the per-column system assembly
and stacked-``eigh`` solve/weight stage then runs over contiguous column
blocks of ``config.shard_columns`` columns, each worker receiving only the
small slice it needs (convolved channels in convolution mode;
``y_pert``/``innovation`` subsets plus a
:class:`~repro.da.localization.GeometryBlock` in grouped mode), and the
block results are scatter-gathered into the analysis array.  Because the
shard decomposition depends only on the grid — never on the worker count —
the sharded analysis is bit-identical for every executor layout and
member-wise equivalent to the serial batched kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.filters import EnsembleFilter
from repro.core.observations import (
    IdentityObservation,
    ObservationOperator,
    SubsampledObservation,
)
from repro.da.inflation import multiplicative_inflation, rtps_inflation
from repro.da.localization import (
    LocalAnalysisGeometry,
    LocalizationConfig,
    geometry_cache_key,
)
from repro.utils.grid import Grid2D
from repro.utils.xp import ArrayBackend, as_host_array, resolve_backend

__all__ = ["LETKFConfig", "LETKF", "solve_local_batch"]


def solve_local_batch(
    a_stack: np.ndarray,
    c_innov: np.ndarray,
    local_pert: np.ndarray,
    local_mean: np.ndarray,
    xp: ArrayBackend | None = None,
    eigh_block: int | None = None,
    solve_rank: int | None = None,
) -> np.ndarray:
    """Solve a stack of local ETKF problems.

    This is the LETKF's per-column work-unit (module-level so the
    column-sharded parallel path can ship it to pool workers by reference).
    Every batch element is solved independently, so any contiguous
    re-blocking of the stack yields bit-identical results.

    Parameters
    ----------
    a_stack:
        Local system matrices ``(m-1) I + C Yᵀ``, shape ``(B, m, m)``.
    c_innov:
        Projected innovations ``C (y - ȳ)``, shape ``(B, m)``.
    local_pert:
        Per-column prior perturbations, shape ``(B, nlev, m)``.
    local_mean:
        Per-column prior means, shape ``(B, nlev)``.
    xp:
        Array backend the inputs live on (``None`` = the process default).
        All arithmetic — the stacked ``eigh`` included — runs on that
        backend; the numpy backend is bit-identical to the pre-shim kernel.
    eigh_block:
        ``None`` solves the whole stack monolithically.  A positive value
        partitions the stack into contiguous batches of at most this many
        columns and solves batch-by-batch into a preallocated output, so
        the eigen-workspace and matmul temporaries stay cache-sized at
        paper-scale footprints (256² = 65536 columns).  **Bit-identical**
        to the monolithic solve for every block size — per-column problems
        are independent (see :meth:`ArrayBackend.stacked_eigh`).
    solve_rank:
        ``None`` (default) applies the full symmetric-root transform.  A
        positive value ``r < m`` switches to the truncated solve: only the
        top-``r`` eigenpairs of the local system carry the update, the
        orthogonal complement is treated at the prior eigenvalue ``m - 1``
        (i.e. the localized Gram matrix is rank-``r`` approximated).  This
        **changes the arithmetic** — opt-in for throughput studies; the
        weight-application cost drops from O(m²) to O(m·r) per column.
        ``r >= m`` falls back to the exact full-rank path.

    Returns
    -------
    Local analysis states, shape ``(B, nlev, m)`` (member axis last).
    """
    xp = resolve_backend(xp)
    n_stack = a_stack.shape[0]
    if eigh_block is not None and int(eigh_block) < 1:
        raise ValueError("eigh_block must be positive")
    if eigh_block is not None and int(eigh_block) < n_stack:
        # Blocked path: identical per-column arithmetic over contiguous
        # sub-stacks, written into one preallocated output.
        eigh_block = int(eigh_block)
        analysis = xp.empty(local_pert.shape)
        for start in range(0, n_stack, eigh_block):
            stop = min(start + eigh_block, n_stack)
            analysis[start:stop] = solve_local_batch(
                a_stack[start:stop],
                c_innov[start:stop],
                local_pert[start:stop],
                local_mean[start:stop],
                xp,
                solve_rank=solve_rank,
            )
        return analysis

    n_members = a_stack.shape[-1]
    if solve_rank is not None and int(solve_rank) < 1:
        raise ValueError("solve_rank must be positive")
    if solve_rank is not None and int(solve_rank) < n_members:
        return _solve_truncated(
            a_stack, c_innov, local_pert, local_mean, int(solve_rank), xp
        )

    evals, evecs = xp.stacked_eigh(a_stack)
    xp.maximum(evals, 1.0e-12, out=evals)

    # Mean-update weights: w̄ = A⁻¹ C δy = E (Eᵀ C δy / λ).
    u = xp.einsum("bji,bj->bi", evecs, c_innov)
    u /= evals
    w_mean = xp.matmul(evecs, u[:, :, None])[..., 0]

    # Perturbation transform: Xᵃ = X E √((m-1)/λ) Eᵀ  (symmetric root).
    v = xp.matmul(local_pert, evecs)
    v *= xp.sqrt((n_members - 1) / evals)[:, None, :]
    analysis = xp.matmul(v, xp.ascontiguousarray(evecs.transpose(0, 2, 1)))
    analysis += xp.matmul(local_pert, w_mean[:, :, None])
    analysis += local_mean[:, :, None]
    return analysis


def _solve_truncated(
    a_stack: np.ndarray,
    c_innov: np.ndarray,
    local_pert: np.ndarray,
    local_mean: np.ndarray,
    rank: int,
    xp: ArrayBackend,
) -> np.ndarray:
    """Rank-``r`` truncated local solve (changes arithmetic; opt-in).

    The local system is ``A = (m-1) I + Q`` with ``Q`` PSD, so every
    eigenvalue is ``>= m - 1``.  Keeping only the top-``r`` eigenpairs
    ``(λ_r, E_r)`` and treating the complement at the prior eigenvalue
    ``m - 1`` (a rank-``r`` approximation of ``Q``) gives closed forms that
    never materialise the complement basis:

    * mean weights  ``w̄ = E_r (E_rᵀ c / λ_r) + (c - E_r E_rᵀ c) / (m-1)``
    * perturbations ``Xᵃ = X + (X E_r) diag(√((m-1)/λ_r) - 1) E_rᵀ``

    (the complement's symmetric-root factor ``√((m-1)/(m-1)) = 1`` leaves
    those directions untouched).  Cost: one stacked ``eigh`` plus
    O(m·r)-per-column matmuls instead of O(m²).
    """
    n_members = a_stack.shape[-1]
    evals, evecs = xp.stacked_eigh(a_stack)
    xp.maximum(evals, 1.0e-12, out=evals)
    # eigh returns ascending eigenvalues: the top-r pairs are the last r.
    lam_r = evals[:, -rank:]
    e_r = xp.ascontiguousarray(evecs[:, :, -rank:])  # (B, m, r)
    e_r_t = xp.ascontiguousarray(e_r.transpose(0, 2, 1))  # (B, r, m)

    # Mean-update weights.
    u_r = xp.einsum("bji,bj->bi", e_r, c_innov)  # E_rᵀ c, (B, r)
    w_mean = xp.matmul(e_r, (u_r / lam_r)[:, :, None])[..., 0]
    w_mean += (c_innov - xp.matmul(e_r, u_r[:, :, None])[..., 0]) / (n_members - 1)

    # Perturbation transform.
    xe = xp.matmul(local_pert, e_r)  # (B, nlev, r)
    xe *= (xp.sqrt((n_members - 1) / lam_r) - 1.0)[:, None, :]
    analysis = local_pert + xp.matmul(xe, e_r_t)
    analysis += xp.matmul(local_pert, w_mean[:, :, None])
    analysis += local_mean[:, :, None]
    return analysis


def _assemble_from_conv(
    conv_block: np.ndarray, n_members: int, xp: ArrayBackend
) -> tuple[np.ndarray, np.ndarray]:
    """Build ``(a_stack, c_innov)`` from a block of convolved channels.

    ``conv_block`` holds the ``m(m+1)/2`` upper-triangle Gram channels
    followed by the ``m`` innovation channels, shape
    ``(n_pair + m, n_block_columns)`` — the per-column output of the global
    circular convolution (see :meth:`LETKF._convolution_channels`) — on
    ``xp``'s device.
    """
    iu0, iu1 = xp.triu_indices(n_members)
    n_pair = iu0.size
    n_block = conv_block.shape[1]
    a_stack = xp.empty((n_block, n_members, n_members))
    pair_t = xp.ascontiguousarray(conv_block[:n_pair].T)
    a_stack[:, iu0, iu1] = pair_t
    a_stack[:, iu1, iu0] = pair_t
    diag = xp.arange(n_members)
    a_stack[:, diag, diag] += n_members - 1
    c_innov = xp.ascontiguousarray(conv_block[n_pair:].T)
    return a_stack, c_innov


def _solve_shard_convolution(args) -> np.ndarray:
    """Worker entry point: assemble + solve one convolution-mode column shard.

    The shard's arrays move to the worker's device **once** (and the result
    moves back once) — the per-column work inside never touches the host,
    which the mock-device transfer counters assert in the tests.
    """
    conv_block, local_pert, local_mean, backend, eigh_block, solve_rank = args
    xp = resolve_backend(backend)
    conv_block = xp.to_device(conv_block)
    local_pert = xp.to_device(local_pert)
    local_mean = xp.to_device(local_mean)
    n_members = local_pert.shape[-1]
    a_stack, c_innov = _assemble_from_conv(conv_block, n_members, xp)
    return xp.to_host(
        solve_local_batch(
            a_stack,
            c_innov,
            local_pert,
            local_mean,
            xp,
            eigh_block=eigh_block,
            solve_rank=solve_rank,
        )
    )


def _solve_shard_grouped(args) -> np.ndarray:
    """Worker entry point: assemble + solve one grouped-mode column shard.

    ``y_sub_t`` / ``innov_sub`` are the block's observation subset
    (``(p_sub, m)`` and ``(p_sub,)``), gathered by the parent;
    ``block.groups`` index into them.  Columns without a footprint keep the
    prior, exactly like the serial grouped path.  Device transfers happen
    once per shard input (plus once per footprint group for the precomputed
    geometry tensors) — never inside the per-column batch loop.
    """
    block, y_sub_t, innov_sub, local_pert, local_mean, max_batch, backend, eigh_block, solve_rank = args
    xp = resolve_backend(backend)
    y_sub_t = xp.to_device(y_sub_t)
    innov_sub = xp.to_device(innov_sub)
    local_pert = xp.to_device(local_pert)
    local_mean = xp.to_device(local_mean)
    n_members = local_pert.shape[-1]
    analysis = local_pert + local_mean[:, :, None]  # prior block (member axis last)
    for group in block.groups:
        obs_indices = xp.to_device(group.obs_indices)
        sqrt_r_inv = xp.to_device(group.sqrt_r_inv)
        columns = xp.to_device(group.columns)
        n_group = group.columns.size
        for start in range(0, n_group, max_batch):
            sl = slice(start, min(start + max_batch, n_group))
            idx = obs_indices[sl]
            sqrt_r = sqrt_r_inv[sl]
            cols = columns[sl]

            q = xp.take(y_sub_t, idx, axis=0)  # (B, p, m)
            q *= sqrt_r[:, :, None]
            a_stack = xp.matmul(q.transpose(0, 2, 1), q)
            diag = xp.arange(n_members)
            a_stack[:, diag, diag] += n_members - 1
            c_innov = xp.einsum("bpm,bp->bm", q, sqrt_r * innov_sub[idx])
            analysis[cols] = solve_local_batch(
                a_stack,
                c_innov,
                local_pert[cols],
                local_mean[cols],
                xp,
                eigh_block=eigh_block,
                solve_rank=solve_rank,
            )
    return xp.to_host(analysis)


@dataclass(frozen=True)
class LETKFConfig:
    """LETKF tuning parameters.

    The defaults are the paper's optimally tuned values for the SQG testbed:
    RTPS factor 0.3 and a 2000 km localization cut-off.  The default
    localization (see :class:`~repro.da.localization.LocalizationConfig`)
    uses ``min_weight = 0`` — exact Gaspari–Cohn support, which enables the
    fast convolution assembly; a positive ``min_weight`` selects the
    grouped-footprint kernel instead.

    Attributes
    ----------
    block_columns:
        Upper bound on the number of columns per grouped-gather block; caps
        the peak size of the stacked local-observation tensors.
    shard_columns:
        Number of contiguous columns per parallel shard in
        :meth:`LETKF.analyze_parallel`.  The shard decomposition is a
        function of the grid only — never of the worker count — which is
        what makes the sharded analysis bit-identical for any executor
        layout.
    backend:
        Array backend name for the batched/sharded analysis kernels
        (``None`` = the ``REPRO_ARRAY_BACKEND`` process default).  The
        numpy backend is bit-identical to the pre-shim kernels; the name is
        what ships to pool workers, which resolve their own backend handle.
    eigh_block:
        ``None`` (default) runs the per-column eigen-solve/weight stage
        monolithically over each assembled stack.  A positive value blocks
        that stage into batches of at most this many columns (see
        :func:`solve_local_batch`) — bounds the peak eigen-workspace and
        matmul temporaries at paper-scale footprints, **bit-identical** to
        the monolithic solve for every value, serial and sharded.
    solve_rank:
        Opt-in truncated local solve: keep only the top-``solve_rank``
        eigenpairs of each local system and treat the complement at the
        prior eigenvalue (see :func:`solve_local_batch`).  **Changes the
        arithmetic** — default ``None`` (exact); values ``>= m`` also fall
        back to the exact path.
    """

    localization: LocalizationConfig = field(default_factory=LocalizationConfig)
    rtps_factor: float = 0.3
    prior_inflation: float = 1.0
    block_columns: int = 512
    shard_columns: int = 1024
    backend: str | None = None
    eigh_block: int | None = None
    solve_rank: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rtps_factor <= 1.0:
            raise ValueError("rtps_factor must lie in [0, 1]")
        if self.prior_inflation < 1.0:
            raise ValueError("prior multiplicative inflation must be >= 1")
        if self.block_columns < 1:
            raise ValueError("block_columns must be positive")
        if self.shard_columns < 1:
            raise ValueError("shard_columns must be positive")
        if self.eigh_block is not None and self.eigh_block < 1:
            raise ValueError("eigh_block must be positive or None")
        if self.solve_rank is not None and self.solve_rank < 1:
            raise ValueError("solve_rank must be positive or None")


class LETKF(EnsembleFilter):
    """LETKF analysis on a doubly-periodic grid.

    Parameters
    ----------
    grid:
        Physical grid describing the state layout ``(nlev, ny, nx)``; used to
        compute periodic distances for localization.
    config:
        Tuning parameters (localization radius, inflation factors).
    obs_columns:
        Optional explicit mapping from observation index to horizontal column
        index.  When omitted it is derived automatically for identity and
        subsampled observation operators.
    """

    def __init__(
        self,
        grid: Grid2D,
        config: LETKFConfig | None = None,
        obs_columns: np.ndarray | None = None,
    ) -> None:
        self.grid = grid
        self.config = config or LETKFConfig()
        self.xp = resolve_backend(self.config.backend)
        self._obs_columns = None if obs_columns is None else np.asarray(obs_columns, dtype=int)
        # Geometry cache: one entry per (grid, obs network, localization)
        # identity, so a static network costs zero distance computations
        # after the first analysis cycle.  Bounded so per-cycle adaptive
        # networks/variances cannot accumulate stale geometries.
        self._geometry_cache: dict[tuple, LocalAnalysisGeometry] = {}
        self._geometry_cache_max = 4

    # ------------------------------------------------------------------ #
    def _resolve_obs_columns(self, operator: ObservationOperator) -> np.ndarray:
        """Horizontal column index of every observation."""
        if self._obs_columns is not None:
            if self._obs_columns.shape != (operator.obs_dim,):
                raise ValueError("obs_columns length does not match operator.obs_dim")
            return self._obs_columns
        if isinstance(operator, IdentityObservation):
            return self.grid.column_index(np.arange(operator.obs_dim))
        if isinstance(operator, SubsampledObservation):
            return self.grid.column_index(operator.indices)
        raise ValueError(
            "LETKF needs observation locations: pass obs_columns for operators "
            f"of type {type(operator).__name__}"
        )

    def geometry(self, operator: ObservationOperator) -> LocalAnalysisGeometry:
        """Cached :class:`LocalAnalysisGeometry` for ``operator``'s network."""
        obs_columns = self._resolve_obs_columns(operator)
        key = geometry_cache_key(
            self.grid, obs_columns, self.config.localization, operator.obs_error_var
        )
        geometry = self._geometry_cache.get(key)
        if geometry is None:
            geometry = LocalAnalysisGeometry(
                self.grid, obs_columns, self.config.localization, operator.obs_error_var
            )
            while len(self._geometry_cache) >= self._geometry_cache_max:
                self._geometry_cache.pop(next(iter(self._geometry_cache)))
            self._geometry_cache[key] = geometry
        else:
            # Refresh LRU order (dicts preserve insertion order).
            self._geometry_cache.pop(key)
            self._geometry_cache[key] = geometry
        return geometry

    # ------------------------------------------------------------------ #
    def _validate(self, forecast_ensemble) -> np.ndarray:
        # Accepts a host array or a StateHandle (the cycle engine's
        # device-state seam); LETKF staging starts from the host mirror.
        forecast_ensemble = np.asarray(as_host_array(forecast_ensemble), dtype=float)
        if forecast_ensemble.ndim != 2:
            raise ValueError("forecast ensemble must have shape (m, state_dim)")
        n_members, state_dim = forecast_ensemble.shape
        if state_dim != self.grid.size:
            raise ValueError(
                f"state dimension {state_dim} does not match grid size {self.grid.size}"
            )
        if n_members < 2:
            raise ValueError("LETKF requires at least two ensemble members")
        return forecast_ensemble

    def _update_statistics(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Global ensemble statistics shared by the batched analysis paths.

        Returns ``(prior, x_mean, x_pert, y_pert, innovation)`` with prior
        multiplicative inflation already applied; both the serial and the
        column-sharded analysis start from exactly this computation, so the
        two paths cannot drift apart.
        """
        prior = forecast_ensemble
        if self.config.prior_inflation > 1.0:
            prior = multiplicative_inflation(prior, self.config.prior_inflation)

        x_mean = prior.mean(axis=0)
        x_pert = prior - x_mean
        y_ens = operator.apply(prior)
        y_mean = y_ens.mean(axis=0)
        y_pert = y_ens - y_mean
        innovation = observation - y_mean
        return prior, x_mean, x_pert, y_pert, innovation

    def analyze(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
    ) -> np.ndarray:
        forecast_ensemble = self._validate(forecast_ensemble)
        observation = np.asarray(observation, dtype=float)

        prior, x_mean, x_pert, y_pert, innovation = self._update_statistics(
            forecast_ensemble, observation, operator
        )
        geometry = self.geometry(operator)
        if geometry.mode == "convolution":
            analysis = self._analyze_convolution(
                prior, x_mean, x_pert, y_pert, innovation, geometry
            )
        else:
            analysis = self._analyze_grouped(
                prior, x_mean, x_pert, y_pert, innovation, geometry
            )

        if self.config.rtps_factor > 0.0:
            analysis = rtps_inflation(analysis, forecast_ensemble, self.config.rtps_factor)
        return analysis

    def analyze_parallel(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
        executor=None,
    ) -> np.ndarray:
        """Column-sharded batched analysis over an executor's process pool.

        The parent computes the global ensemble statistics once, cuts the
        grid into contiguous shards of ``config.shard_columns`` columns, and
        maps the per-column assembly + stacked-``eigh`` solve/weight stage
        over the pool via :meth:`EnsembleExecutor.map_blocks`; each worker
        receives only the small slice it needs (see the module docstring)
        and the results are scatter-gathered into the analysis array before
        the global RTPS inflation.  The shard decomposition never depends on
        the worker count, so results are bit-identical for any executor
        layout; with ``executor=None`` the serial :meth:`analyze` runs
        instead.

        Shard payloads ride the executor's transport: where shared memory
        is available the large per-shard slices (and the ensemble arrays
        broadcast to every shard) cross the process boundary as ~100-byte
        segment handles rather than per-shard pickles (see
        :mod:`repro.hpc.shm`), which is transparent here — workers copy
        out on attach, so the analysis is bit-identical either way.
        """
        if executor is None:
            return self.analyze(forecast_ensemble, observation, operator)
        forecast_ensemble = self._validate(forecast_ensemble)
        observation = np.asarray(observation, dtype=float)

        prior, x_mean, x_pert, y_pert, innovation = self._update_statistics(
            forecast_ensemble, observation, operator
        )
        geometry = self.geometry(operator)
        n_members = prior.shape[0]
        n_columns, n_levels = geometry.n_columns, self.grid.nlev
        shard = self.config.shard_columns
        bounds = [
            (start, min(start + shard, n_columns)) for start in range(0, n_columns, shard)
        ]

        local_pert = np.ascontiguousarray(
            x_pert.reshape(n_members, n_levels, n_columns).transpose(2, 1, 0)
        )
        local_mean = np.ascontiguousarray(x_mean.reshape(n_levels, n_columns).T)

        backend_name = self.xp.name
        if geometry.mode == "convolution":
            # The circular convolution is global, so the parent assembles the
            # channels (on its own device) and scatters host column slices.
            conv = self.xp.to_host(
                self._convolution_channels(y_pert, innovation, geometry, n_members)
            )
            jobs = [
                (
                    np.ascontiguousarray(conv[:, a:b]),
                    local_pert[a:b],
                    local_mean[a:b],
                    backend_name,
                    self.config.eigh_block,
                    self.config.solve_rank,
                )
                for a, b in bounds
            ]
            results = executor.map_blocks(_solve_shard_convolution, jobs)
        else:
            y_t = np.ascontiguousarray(y_pert.T)
            jobs = []
            for a, b in bounds:
                block = geometry.column_block(a, b)
                jobs.append(
                    (
                        block,
                        np.ascontiguousarray(y_t[block.obs_subset]),
                        innovation[block.obs_subset],
                        local_pert[a:b],
                        local_mean[a:b],
                        self.config.block_columns,
                        backend_name,
                        self.config.eigh_block,
                        self.config.solve_rank,
                    )
                )
            results = executor.map_blocks(_solve_shard_grouped, jobs)

        analysis_t = np.concatenate(results, axis=0)  # (n_columns, nlev, m)
        analysis = np.ascontiguousarray(analysis_t.transpose(2, 1, 0)).reshape(
            n_members, n_levels * n_columns
        )
        if self.config.rtps_factor > 0.0:
            analysis = rtps_inflation(analysis, forecast_ensemble, self.config.rtps_factor)
        return analysis

    # ------------------------------------------------------------------ #
    def _analyze_convolution(
        self,
        prior: np.ndarray,
        x_mean: np.ndarray,
        x_pert: np.ndarray,
        y_pert: np.ndarray,
        innovation: np.ndarray,
        geometry: LocalAnalysisGeometry,
    ) -> np.ndarray:
        """Assemble all local systems with circular FFT convolutions.

        For uniform observation errors the localized Gram matrix of column
        ``c`` is ``A_c = (m-1)I + Σ_o k(c ⊖ col(o)) y_o y_oᵀ / r`` — a
        circular convolution of the per-column outer-product channels with
        the fixed Gaspari–Cohn kernel.  One batched real FFT over the
        ``m(m+1)/2`` symmetric channels (plus ``m`` innovation channels)
        replaces every per-column distance/weight/gather operation.
        """
        xp = self.xp
        n_members = prior.shape[0]
        n_columns, n_levels = geometry.n_columns, self.grid.nlev

        conv = self._convolution_channels(y_pert, innovation, geometry, n_members)
        a_stack, c_innov = _assemble_from_conv(conv, n_members, xp)

        local_pert = xp.to_device(
            np.ascontiguousarray(
                x_pert.reshape(n_members, n_levels, n_columns).transpose(2, 1, 0)
            )
        )
        local_mean = xp.to_device(x_mean.reshape(n_levels, n_columns).T)
        analysis_t = xp.to_host(
            solve_local_batch(
                a_stack,
                c_innov,
                local_pert,
                local_mean,
                xp,
                eigh_block=self.config.eigh_block,
                solve_rank=self.config.solve_rank,
            )
        )
        return np.ascontiguousarray(analysis_t.transpose(2, 1, 0)).reshape(
            n_members, n_levels * n_columns
        )

    def _convolution_channels(
        self,
        y_pert: np.ndarray,
        innovation: np.ndarray,
        geometry: LocalAnalysisGeometry,
        n_members: int,
    ) -> np.ndarray:
        """Convolved Gram/innovation channels for *all* columns.

        Returns the ``(m(m+1)/2 + m, n_columns)`` array of per-column local
        system entries (upper-triangle Gram channels then innovation
        channels) on the analysis backend's device.  The circular
        convolution is inherently global, so the parallel path runs it once
        in the parent and ships each shard only its column slice.
        """
        xp = self.xp
        grid = self.grid
        n_columns, n_levels = geometry.n_columns, grid.nlev
        ny, nx = grid.ny, grid.nx
        obs_columns = geometry.obs_columns
        identity_network = geometry.n_obs == n_levels * n_columns and np.array_equal(
            obs_columns, np.tile(np.arange(n_columns), n_levels)
        )

        y_pert = xp.to_device(y_pert)
        innovation = xp.to_device(innovation)
        iu0, iu1 = xp.triu_indices(n_members)
        n_pair = iu0.size
        channels = xp.zeros((n_pair + n_members, n_columns))

        if identity_network:
            # Fast path for the fully observed grid: observations are the
            # state columns themselves, so the scatter is a reshape.
            y_lev = y_pert.reshape(n_members, n_levels, n_columns)
            innov_lev = innovation.reshape(n_levels, n_columns)
            for lev in range(n_levels):
                channels[:n_pair] += y_lev[iu0, lev] * y_lev[iu1, lev]
                channels[n_pair:] += y_lev[:, lev] * innov_lev[lev][None, :]
        else:
            obs_cols_dev = xp.to_device(obs_columns)
            contrib = y_pert[iu0] * y_pert[iu1]
            proj = y_pert * innovation[None, :]
            for q in range(n_pair):
                channels[q] = xp.bincount(
                    obs_cols_dev, weights=contrib[q], minlength=n_columns
                )
            for j in range(n_members):
                channels[n_pair + j] = xp.bincount(
                    obs_cols_dev, weights=proj[j], minlength=n_columns
                )

        spectra = xp.rfft2(channels.reshape(-1, ny, nx), axes=(-2, -1))
        spectra *= geometry.conv_kernel(xp)
        return xp.irfft2(spectra, s=(ny, nx), axes=(-2, -1)).reshape(-1, n_columns)

    def _analyze_grouped(
        self,
        prior: np.ndarray,
        x_mean: np.ndarray,
        x_pert: np.ndarray,
        y_pert: np.ndarray,
        innovation: np.ndarray,
        geometry: LocalAnalysisGeometry,
    ) -> np.ndarray:
        """Solve the local problems group-by-group with stacked tensors.

        The ensemble statistics move to the analysis backend's device once
        before the group loop, and the device geometry tensors are cached on
        the geometry per backend (:meth:`LocalAnalysisGeometry.device_groups`)
        — steady-state cycles therefore transfer only the per-cycle
        statistics, never per-column or per-block data.
        """
        xp = self.xp
        n_members = prior.shape[0]
        n_columns, n_levels = geometry.n_columns, self.grid.nlev
        analysis = xp.to_device(prior).copy()  # empty-footprint columns keep the prior
        analysis_t = analysis.T  # (state_dim, m) view for scattered writes
        y_t = xp.to_device(np.ascontiguousarray(y_pert.T))  # (n_obs, m)
        x_t = xp.to_device(np.ascontiguousarray(x_pert.T))  # (state_dim, m)
        x_mean = xp.to_device(x_mean)
        innovation = xp.to_device(innovation)
        lev_offsets = xp.arange(n_levels) * n_columns

        block = self.config.block_columns
        for group, dev_group in zip(geometry.groups, geometry.device_groups(xp)):
            columns, obs_indices, sqrt_r_inv = dev_group
            n_group = group.columns.size
            for start in range(0, n_group, block):
                sl = slice(start, min(start + block, n_group))
                idx = obs_indices[sl]
                sqrt_r = sqrt_r_inv[sl]
                cols = columns[sl]

                q = xp.take(y_t, idx, axis=0)  # (B, p, m)
                q *= sqrt_r[:, :, None]
                a_stack = xp.matmul(q.transpose(0, 2, 1), q)
                diag = xp.arange(n_members)
                a_stack[:, diag, diag] += n_members - 1
                c_innov = xp.einsum("bpm,bp->bm", q, sqrt_r * innovation[idx])

                state_idx = cols[:, None] + lev_offsets[None, :]  # (B, nlev)
                local_pert = x_t[state_idx]  # (B, nlev, m), member axis last
                local_mean = x_mean[state_idx]
                analysis_t[state_idx] = solve_local_batch(
                    a_stack,
                    c_innov,
                    local_pert,
                    local_mean,
                    xp,
                    eigh_block=self.config.eigh_block,
                    solve_rank=self.config.solve_rank,
                )
        return xp.to_host(analysis)

