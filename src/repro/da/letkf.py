"""Local Ensemble Transform Kalman Filter (LETKF).

This is the state-of-the-art baseline the paper compares against (Hunt,
Kostelich & Szunyogh 2007).  The analysis is computed independently in local
regions surrounding each horizontal grid column — the embarrassingly parallel
structure that makes LETKF the operational choice (e.g. the German KENDA
system) — with:

* Gaspari–Cohn **R-localization**: observation-error variances are inflated
  with distance so remote observations lose influence smoothly;
* **RTPS inflation** (relaxation to prior spread) applied after the update;
* optional prior multiplicative inflation.

For the two-boundary SQG state both vertical levels of a column are updated
with the same local weights (the paper couples horizontal and vertical
localization through the Rossby radius; with only two boundary levels this
reduces to whole-column updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.filters import EnsembleFilter
from repro.core.observations import (
    IdentityObservation,
    ObservationOperator,
    SubsampledObservation,
)
from repro.da.inflation import multiplicative_inflation, rtps_inflation
from repro.da.localization import LocalizationConfig, gaspari_cohn
from repro.utils.grid import Grid2D, periodic_distance_matrix

__all__ = ["LETKFConfig", "LETKF"]


@dataclass(frozen=True)
class LETKFConfig:
    """LETKF tuning parameters.

    The defaults are the paper's optimally tuned values for the SQG testbed:
    RTPS factor 0.3 and a 2000 km localization cut-off.
    """

    localization: LocalizationConfig = field(default_factory=lambda: LocalizationConfig(cutoff=2.0e6))
    rtps_factor: float = 0.3
    prior_inflation: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rtps_factor <= 1.0:
            raise ValueError("rtps_factor must lie in [0, 1]")
        if self.prior_inflation < 1.0:
            raise ValueError("prior multiplicative inflation must be >= 1")


class LETKF(EnsembleFilter):
    """LETKF analysis on a doubly-periodic grid.

    Parameters
    ----------
    grid:
        Physical grid describing the state layout ``(nlev, ny, nx)``; used to
        compute periodic distances for localization.
    config:
        Tuning parameters (localization radius, inflation factors).
    obs_columns:
        Optional explicit mapping from observation index to horizontal column
        index.  When omitted it is derived automatically for identity and
        subsampled observation operators.
    """

    def __init__(
        self,
        grid: Grid2D,
        config: LETKFConfig | None = None,
        obs_columns: np.ndarray | None = None,
    ) -> None:
        self.grid = grid
        self.config = config or LETKFConfig()
        self._obs_columns = None if obs_columns is None else np.asarray(obs_columns, dtype=int)

    # ------------------------------------------------------------------ #
    def _resolve_obs_columns(self, operator: ObservationOperator) -> np.ndarray:
        """Horizontal column index of every observation."""
        if self._obs_columns is not None:
            if self._obs_columns.shape != (operator.obs_dim,):
                raise ValueError("obs_columns length does not match operator.obs_dim")
            return self._obs_columns
        if isinstance(operator, IdentityObservation):
            return self.grid.column_index(np.arange(operator.obs_dim))
        if isinstance(operator, SubsampledObservation):
            return self.grid.column_index(operator.indices)
        raise ValueError(
            "LETKF needs observation locations: pass obs_columns for operators "
            f"of type {type(operator).__name__}"
        )

    def _local_obs_geometry(self, operator: ObservationOperator) -> tuple[np.ndarray, np.ndarray]:
        """Distances (n_columns, n_obs) and observation column coordinates."""
        obs_columns = self._resolve_obs_columns(operator)
        coords = self.grid.point_coordinates()
        obs_xy = coords[obs_columns]
        return coords, obs_xy

    # ------------------------------------------------------------------ #
    def analyze(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
    ) -> np.ndarray:
        forecast_ensemble = np.asarray(forecast_ensemble, dtype=float)
        if forecast_ensemble.ndim != 2:
            raise ValueError("forecast ensemble must have shape (m, state_dim)")
        n_members, state_dim = forecast_ensemble.shape
        if state_dim != self.grid.size:
            raise ValueError(
                f"state dimension {state_dim} does not match grid size {self.grid.size}"
            )
        if n_members < 2:
            raise ValueError("LETKF requires at least two ensemble members")
        observation = np.asarray(observation, dtype=float)

        prior = forecast_ensemble
        if self.config.prior_inflation > 1.0:
            prior = multiplicative_inflation(prior, self.config.prior_inflation)

        # Ensemble statistics in state and observation space.
        x_mean = prior.mean(axis=0)
        x_pert = prior - x_mean
        y_ens = operator.apply(prior)
        y_mean = y_ens.mean(axis=0)
        y_pert = y_ens - y_mean
        innovation = observation - y_mean

        coords, obs_xy = self._local_obs_geometry(operator)
        n_columns = self.grid.ny * self.grid.nx
        n_levels = self.grid.nlev
        cutoff = self.config.localization.cutoff
        min_weight = self.config.localization.min_weight
        obs_var = operator.obs_error_var

        analysis = np.empty_like(prior)
        eye = np.eye(n_members)

        for col in range(n_columns):
            dist = periodic_distance_matrix(
                coords[col][None, :], obs_xy, self.grid.lx, self.grid.ly
            )[0]
            loc_w = gaspari_cohn(dist, cutoff)
            sel = loc_w > min_weight
            state_idx = col + np.arange(n_levels) * n_columns

            if not np.any(sel):
                analysis[:, state_idx] = prior[:, state_idx]
                continue

            r_inv = loc_w[sel] / obs_var[sel]
            y_loc = y_pert[:, sel]                      # (m, p_local)
            c_mat = y_loc * r_inv                        # (m, p_local)
            a_mat = (n_members - 1) * eye + c_mat @ y_loc.T

            evals, evecs = np.linalg.eigh(a_mat)
            evals = np.maximum(evals, 1.0e-12)
            pa_tilde = (evecs / evals) @ evecs.T
            w_transform = (evecs * np.sqrt((n_members - 1) / evals)) @ evecs.T
            w_mean = pa_tilde @ (c_mat @ innovation[sel])
            weights = w_transform + w_mean[:, None]      # (m, m): column i → member i

            local_pert = x_pert[:, state_idx]            # (m, nlev)
            analysis[:, state_idx] = x_mean[state_idx] + weights.T @ local_pert

        if self.config.rtps_factor > 0.0:
            analysis = rtps_inflation(analysis, forecast_ensemble, self.config.rtps_factor)
        return analysis
