"""Stochastic (perturbed-observation) ensemble Kalman filter.

Included as a secondary baseline (the EnKF of Evensen 1994 that the paper
positions LETKF against) and, more importantly, as an *exactly verifiable*
reference: on linear-Gaussian problems with a large ensemble its analysis
converges to the Kalman filter solution, which the test suite uses to verify
both the EnKF itself and, transitively, the observation-operator algebra
shared with EnSF and LETKF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filters import EnsembleFilter
from repro.core.observations import ObservationOperator
from repro.da.inflation import multiplicative_inflation, rtps_inflation
from repro.utils.random import default_rng

__all__ = ["EnKFConfig", "StochasticEnKF"]


@dataclass(frozen=True)
class EnKFConfig:
    """Stochastic EnKF tuning parameters."""

    prior_inflation: float = 1.0
    rtps_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.prior_inflation < 1.0:
            raise ValueError("prior multiplicative inflation must be >= 1")
        if not 0.0 <= self.rtps_factor <= 1.0:
            raise ValueError("rtps_factor must lie in [0, 1]")


class StochasticEnKF(EnsembleFilter):
    """Global perturbed-observation EnKF (no localization).

    The Kalman gain is computed from ensemble-sampled covariances:
    ``K = P_xy (P_yy + R)⁻¹`` and each member is updated against a perturbed
    observation, which gives the correct posterior spread in expectation.
    """

    def __init__(self, config: EnKFConfig | None = None, rng: np.random.Generator | int | None = None):
        self.config = config or EnKFConfig()
        self.rng = default_rng(rng)

    def analyze(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
    ) -> np.ndarray:
        forecast_ensemble = np.asarray(forecast_ensemble, dtype=float)
        if forecast_ensemble.ndim != 2:
            raise ValueError("forecast ensemble must have shape (m, state_dim)")
        n_members = forecast_ensemble.shape[0]
        if n_members < 2:
            raise ValueError("EnKF requires at least two ensemble members")
        observation = np.asarray(observation, dtype=float)

        prior = forecast_ensemble
        if self.config.prior_inflation > 1.0:
            prior = multiplicative_inflation(prior, self.config.prior_inflation)

        x_mean = prior.mean(axis=0)
        x_pert = prior - x_mean
        y_ens = operator.apply(prior)
        y_mean = y_ens.mean(axis=0)
        y_pert = y_ens - y_mean

        p_xy = x_pert.T @ y_pert / (n_members - 1)          # (d, p)
        p_yy = y_pert.T @ y_pert / (n_members - 1)           # (p, p)
        innovation_cov = p_yy + np.diag(operator.obs_error_var)

        # Solve rather than invert for numerical stability.
        perturbed_obs = observation[None, :] + operator.sample_noise(rng=self.rng, size=n_members)
        innovations = perturbed_obs - y_ens                   # (m, p)
        gain_increments = np.linalg.solve(innovation_cov, innovations.T).T @ p_xy.T
        analysis = prior + gain_increments

        if self.config.rtps_factor > 0.0:
            analysis = rtps_inflation(analysis, forecast_ensemble, self.config.rtps_factor)
        return analysis
