"""Covariance localization for ensemble Kalman filters.

LETKF regularises the sampled covariances of a small ensemble by damping the
influence of distant observations.  The paper's SQG-LETKF uses the
Gaspari–Cohn (1999) fifth-order piecewise-rational correlation function as an
observation-error (R-)localization, with the cut-off radius optimally tuned
to 2000 km; horizontal and vertical extents are coupled through the Rossby
radius of deformation (so for the two-boundary SQG state the whole column is
updated together).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.grid import Grid2D, periodic_distance_matrix

__all__ = [
    "gaspari_cohn",
    "LocalizationConfig",
    "column_distances",
    "FootprintGroup",
    "GeometryBlock",
    "LocalAnalysisGeometry",
    "geometry_cache_key",
]


def gaspari_cohn(distance: np.ndarray, cutoff: float) -> np.ndarray:
    """Gaspari–Cohn fifth-order compactly supported correlation function.

    Parameters
    ----------
    distance:
        Non-negative separation(s).
    cutoff:
        Localization length scale ``c``.  The function decays smoothly and is
        identically zero for ``distance ≥ 2c``.

    Returns
    -------
    Correlation values in ``[0, 1]`` with ``gaspari_cohn(0, c) == 1``.
    """
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    r = np.abs(np.asarray(distance, dtype=float)) / float(cutoff)
    out = np.zeros_like(r)

    near = r <= 1.0
    far = (r > 1.0) & (r < 2.0)

    rn = r[near]
    out[near] = (
        -0.25 * rn**5 + 0.5 * rn**4 + 0.625 * rn**3 - (5.0 / 3.0) * rn**2 + 1.0
    )
    rf = r[far]
    out[far] = (
        (1.0 / 12.0) * rf**5
        - 0.5 * rf**4
        + 0.625 * rf**3
        + (5.0 / 3.0) * rf**2
        - 5.0 * rf
        + 4.0
        - (2.0 / 3.0) / rf
    )
    return np.clip(out, 0.0, 1.0)


@dataclass(frozen=True)
class LocalizationConfig:
    """Localization settings for LETKF.

    Attributes
    ----------
    cutoff:
        Gaspari–Cohn length scale in metres (paper's tuned value: 2000 km).
    min_weight:
        Observations whose localization weight falls below this threshold are
        dropped from the local analysis.  The default of 0 keeps the exact
        Gaspari–Cohn support (identically zero beyond twice the cut-off) and
        lets the batched LETKF use the convolution assembly; a positive
        threshold shrinks the per-column problems (useful for the reference
        loop and the grouped kernel) at the cost of ~``min_weight``-level
        changes to the analysis.  Before the vectorized kernels the default
        was ``1e-4``; pass that explicitly to reproduce older runs.
    """

    cutoff: float = 2.0e6
    min_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if not 0.0 <= self.min_weight < 1.0:
            raise ValueError("min_weight must lie in [0, 1)")

    def weights(self, distance: np.ndarray) -> np.ndarray:
        """Localization weights for the given distances."""
        return gaspari_cohn(distance, self.cutoff)


@dataclass(frozen=True)
class FootprintGroup:
    """Columns whose local observation footprints have the same size.

    Equal footprint sizes let the per-column local problems stack into dense
    ``(n_cols_in_group, ...)`` tensors, which is all the batched LETKF solver
    needs (columns with *identical* footprints are a special case and stack
    automatically).  All arrays are precomputed once per ``(grid, operator)``
    pair and reused every cycle.

    Attributes
    ----------
    columns:
        Analysis column indices in this group, shape ``(g,)``.
    obs_indices:
        Indices into the observation vector of each column's local
        observations, shape ``(g, p)``.
    sqrt_r_inv:
        Square roots of the localized inverse observation-error variances
        ``sqrt(gc(d)/obs_error_var)`` at the selected observations,
        ``(g, p)`` — the symmetrized form is all the batched Gram/innovation
        products need.
    """

    columns: np.ndarray
    obs_indices: np.ndarray
    sqrt_r_inv: np.ndarray

    @property
    def n_local_obs(self) -> int:
        return int(self.obs_indices.shape[1])


@dataclass(frozen=True)
class GeometryBlock:
    """Slice of a :class:`LocalAnalysisGeometry` over contiguous columns.

    This is the shippable work-unit of the column-sharded parallel LETKF
    (see :meth:`LocalAnalysisGeometry.column_block`): it carries only what
    one worker needs to assemble and solve the local systems of columns
    ``[start, stop)``, so blocks pickle cheaply to pool processes.

    Attributes
    ----------
    start, stop:
        Half-open global column range covered by this block.
    mode:
        ``"convolution"`` or ``"grouped"`` (inherited from the geometry).
    obs_subset:
        Grouped mode: sorted indices into the *full* observation vector of
        the observations appearing in any footprint of this block (what the
        parent gathers from ``y_pert``/``innovation`` for the worker);
        ``None`` in convolution mode, where assembly is a global FFT
        performed by the parent.
    groups:
        Grouped mode: :class:`FootprintGroup` slices with ``columns``
        shifted block-local and ``obs_indices`` remapped into
        ``obs_subset``; empty in convolution mode.
    """

    start: int
    stop: int
    mode: str
    obs_subset: np.ndarray | None
    groups: tuple[FootprintGroup, ...]

    @property
    def n_block_columns(self) -> int:
        return int(self.stop - self.start)


class LocalAnalysisGeometry:
    """Precomputed localization geometry for one ``(grid, obs network)`` pair.

    This is the cache layer behind the vectorized LETKF analysis kernels: the
    full column→observation distance structure, Gaspari–Cohn weights, and
    per-column selection footprints are computed **once** and reused across
    cycles, so steady-state analysis steps perform zero distance evaluations.

    Two execution modes are selected at build time:

    ``"convolution"``
        Available when the observation-error variance is uniform and
        ``min_weight == 0``.  Because the Gaspari–Cohn weight depends only on
        the periodic column offset, the per-column weighted sums over
        observations (the local Gram matrices and innovation projections) are
        circular convolutions with a fixed kernel; the geometry stores the
        kernel's real FFT and the analysis assembles all local systems with a
        handful of batched FFTs.  This is exact: Gaspari–Cohn is identically
        zero beyond twice the cut-off, so summing over *all* observations
        equals summing over the selected footprint.

    ``"grouped"``
        The general path: per-column footprints (``weight > min_weight``) are
        grouped by footprint size into :class:`FootprintGroup` tensors which
        the batched solver processes with stacked ``eigh`` calls.

    Parameters
    ----------
    grid:
        The physical analysis grid.
    obs_columns:
        Horizontal column index of every observation, shape ``(n_obs,)``.
    config:
        Localization settings (cut-off, selection threshold).
    obs_error_var:
        Diagonal observation-error variances, shape ``(n_obs,)``.
    chunk:
        Number of analysis columns processed per build chunk (bounds the
        peak memory of the one-off build; does not affect results).
    """

    def __init__(
        self,
        grid: Grid2D,
        obs_columns: np.ndarray,
        config: LocalizationConfig,
        obs_error_var: np.ndarray,
        chunk: int = 512,
    ) -> None:
        self.grid = grid
        self.obs_columns = np.asarray(obs_columns, dtype=np.intp)
        self.config = config
        self.obs_error_var = np.asarray(obs_error_var, dtype=float)
        if self.obs_error_var.shape != self.obs_columns.shape:
            raise ValueError("obs_error_var and obs_columns must have the same length")
        self.n_columns = grid.ny * grid.nx
        self.n_obs = int(self.obs_columns.size)

        # Per-array-backend device copies of the cycle-invariant tensors
        # (the convolution kernel spectrum / the grouped footprint arrays),
        # keyed by backend name: steady-state analysis cycles perform zero
        # geometry transfers after the first cycle on a device backend.
        self._device_cache: dict[str, object] = {}

        uniform_var = bool(np.all(self.obs_error_var == self.obs_error_var[0]))
        if uniform_var and config.min_weight == 0.0:
            self.mode = "convolution"
            self._build_convolution()
            self.groups: list[FootprintGroup] = []
            self.empty_columns = np.empty(0, dtype=np.intp)
        else:
            self.mode = "grouped"
            self.kernel_rfft2 = None
            self._build_grouped(chunk)

    # ------------------------------------------------------------------ #
    def _build_convolution(self) -> None:
        """Store the real FFT of the localized R⁻¹ kernel on the grid."""
        stencil = self.grid.distance_stencil()
        kernel = gaspari_cohn(stencil, self.config.cutoff) / float(self.obs_error_var[0])
        # The kernel is even under periodic index negation, so its spectrum
        # is exactly real; taking .real only discards FFT round-off.
        self.kernel_rfft2 = np.fft.rfft2(kernel).real

    def _build_grouped(self, chunk: int) -> None:
        """Group columns by footprint size with precomputed weights."""
        stencil = self.grid.distance_stencil()
        cutoff = self.config.cutoff
        min_weight = self.config.min_weight

        by_size: dict[int, list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        empty: list[np.ndarray] = []
        all_columns = np.arange(self.n_columns, dtype=np.intp)
        for start in range(0, self.n_columns, chunk):
            cols = all_columns[start : start + chunk]
            dist = self.grid.column_pair_distances(cols, self.obs_columns, stencil=stencil)
            weight = gaspari_cohn(dist, cutoff)
            mask = weight > min_weight
            counts = mask.sum(axis=1)
            for p in np.unique(counts):
                rows = np.nonzero(counts == p)[0]
                if p == 0:
                    empty.append(cols[rows])
                    continue
                obs_idx = np.nonzero(mask[rows])[1].reshape(rows.size, int(p))
                w_sel = weight[rows[:, None], obs_idx]
                by_size.setdefault(int(p), []).append((cols[rows], obs_idx, w_sel))

        groups = []
        for p in sorted(by_size):
            parts = by_size[p]
            columns = np.concatenate([c for c, _, _ in parts])
            obs_idx = np.concatenate([i for _, i, _ in parts]).astype(np.intp)
            w_sel = np.concatenate([w for _, _, w in parts])
            groups.append(
                FootprintGroup(
                    columns=columns,
                    obs_indices=obs_idx,
                    sqrt_r_inv=np.sqrt(w_sel / self.obs_error_var[obs_idx]),
                )
            )
        self.groups = groups
        self.empty_columns = (
            np.concatenate(empty) if empty else np.empty(0, dtype=np.intp)
        )

    # ------------------------------------------------------------------ #
    def conv_kernel(self, xp):
        """Device copy of :attr:`kernel_rfft2` on backend ``xp`` (cached).

        The localized R⁻¹ kernel spectrum never changes between cycles, so
        it is moved to the device once per backend and reused — the
        mock-device transfer counters verify this in the tests.
        """
        if self.mode != "convolution":
            raise ValueError("conv_kernel is only defined for convolution-mode geometries")
        key = ("kernel", xp.name)
        cached = self._device_cache.get(key)
        if cached is None:
            cached = xp.to_device(self.kernel_rfft2)
            self._device_cache[key] = cached
        return cached

    def device_groups(self, xp) -> tuple:
        """Footprint-group tensors on backend ``xp``'s device (cached).

        Returns one ``(columns, obs_indices, sqrt_r_inv)`` triple per entry
        of :attr:`groups`, each moved to the device once per backend — the
        batched grouped solver indexes these inside its block loop, so
        caching them keeps the loop free of host↔device traffic.
        """
        key = ("groups", xp.name)
        cached = self._device_cache.get(key)
        if cached is None:
            cached = tuple(
                (
                    xp.to_device(group.columns),
                    xp.to_device(group.obs_indices),
                    xp.to_device(group.sqrt_r_inv),
                )
                for group in self.groups
            )
            self._device_cache[key] = cached
        return cached

    def column_block(self, start: int, stop: int) -> GeometryBlock:
        """First-class slice of this geometry over columns ``[start, stop)``.

        The returned :class:`GeometryBlock` is self-contained: in grouped
        mode the footprint rows of the block's columns are extracted, their
        observation indices remapped onto the block's own (sorted, unique)
        ``obs_subset``, and the column indices shifted block-local, so a
        worker needs only ``y_pert[:, obs_subset]`` and
        ``innovation[obs_subset]`` alongside the block.  In convolution mode
        the per-column systems come from a *global* circular convolution, so
        the block carries no geometry payload (the parent assembles and
        ships the convolved channels instead).
        """
        if not 0 <= start < stop <= self.n_columns:
            raise ValueError(
                f"column block [{start}, {stop}) outside [0, {self.n_columns})"
            )
        if self.mode == "convolution":
            return GeometryBlock(int(start), int(stop), "convolution", None, ())

        parts = []
        for group in self.groups:
            mask = (group.columns >= start) & (group.columns < stop)
            if not np.any(mask):
                continue
            parts.append(
                (
                    group.columns[mask] - start,
                    group.obs_indices[mask],
                    group.sqrt_r_inv[mask],
                )
            )
        if parts:
            obs_subset = np.unique(np.concatenate([idx.ravel() for _, idx, _ in parts]))
        else:
            obs_subset = np.empty(0, dtype=np.intp)
        groups = tuple(
            FootprintGroup(
                columns=cols,
                obs_indices=np.searchsorted(obs_subset, idx).astype(np.intp),
                sqrt_r_inv=w,
            )
            for cols, idx, w in parts
        )
        return GeometryBlock(int(start), int(stop), "grouped", obs_subset, groups)


def geometry_cache_key(
    grid: Grid2D,
    obs_columns: np.ndarray,
    config: LocalizationConfig,
    obs_error_var: np.ndarray,
) -> tuple:
    """Key identifying one ``(grid, observation network, localization)`` tuple."""
    return (
        grid,
        config.cutoff,
        config.min_weight,
        np.asarray(obs_columns, dtype=np.intp).tobytes(),
        np.asarray(obs_error_var, dtype=float).tobytes(),
    )


def column_distances(grid: Grid2D, column_index: int, obs_columns: np.ndarray) -> np.ndarray:
    """Periodic horizontal distances from one analysis column to observation columns.

    Parameters
    ----------
    grid:
        The physical grid.
    column_index:
        Index of the analysis column in ``[0, ny*nx)``.
    obs_columns:
        Column indices of the observations.

    Returns
    -------
    Distances in metres, shape ``(len(obs_columns),)``.
    """
    coords = grid.point_coordinates()
    target = coords[column_index][None, :]
    obs_xy = coords[np.asarray(obs_columns, dtype=int)]
    return periodic_distance_matrix(target, obs_xy, grid.lx, grid.ly)[0]
