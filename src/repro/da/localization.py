"""Covariance localization for ensemble Kalman filters.

LETKF regularises the sampled covariances of a small ensemble by damping the
influence of distant observations.  The paper's SQG-LETKF uses the
Gaspari–Cohn (1999) fifth-order piecewise-rational correlation function as an
observation-error (R-)localization, with the cut-off radius optimally tuned
to 2000 km; horizontal and vertical extents are coupled through the Rossby
radius of deformation (so for the two-boundary SQG state the whole column is
updated together).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.grid import Grid2D, periodic_distance_matrix

__all__ = ["gaspari_cohn", "LocalizationConfig", "column_distances"]


def gaspari_cohn(distance: np.ndarray, cutoff: float) -> np.ndarray:
    """Gaspari–Cohn fifth-order compactly supported correlation function.

    Parameters
    ----------
    distance:
        Non-negative separation(s).
    cutoff:
        Localization length scale ``c``.  The function decays smoothly and is
        identically zero for ``distance ≥ 2c``.

    Returns
    -------
    Correlation values in ``[0, 1]`` with ``gaspari_cohn(0, c) == 1``.
    """
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    r = np.abs(np.asarray(distance, dtype=float)) / float(cutoff)
    out = np.zeros_like(r)

    near = r <= 1.0
    far = (r > 1.0) & (r < 2.0)

    rn = r[near]
    out[near] = (
        -0.25 * rn**5 + 0.5 * rn**4 + 0.625 * rn**3 - (5.0 / 3.0) * rn**2 + 1.0
    )
    rf = r[far]
    out[far] = (
        (1.0 / 12.0) * rf**5
        - 0.5 * rf**4
        + 0.625 * rf**3
        + (5.0 / 3.0) * rf**2
        - 5.0 * rf
        + 4.0
        - (2.0 / 3.0) / rf
    )
    return np.clip(out, 0.0, 1.0)


@dataclass(frozen=True)
class LocalizationConfig:
    """Localization settings for LETKF.

    Attributes
    ----------
    cutoff:
        Gaspari–Cohn length scale in metres (paper's tuned value: 2000 km).
    min_weight:
        Observations whose localization weight falls below this threshold are
        dropped from the local analysis (keeps the local problems small).
    """

    cutoff: float = 2.0e6
    min_weight: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if not 0.0 <= self.min_weight < 1.0:
            raise ValueError("min_weight must lie in [0, 1)")

    def weights(self, distance: np.ndarray) -> np.ndarray:
        """Localization weights for the given distances."""
        return gaspari_cohn(distance, self.cutoff)


def column_distances(grid: Grid2D, column_index: int, obs_columns: np.ndarray) -> np.ndarray:
    """Periodic horizontal distances from one analysis column to observation columns.

    Parameters
    ----------
    grid:
        The physical grid.
    column_index:
        Index of the analysis column in ``[0, ny*nx)``.
    obs_columns:
        Column indices of the observations.

    Returns
    -------
    Distances in metres, shape ``(len(obs_columns),)``.
    """
    coords = grid.point_coordinates()
    target = coords[column_index][None, :]
    obs_xy = coords[np.asarray(obs_columns, dtype=int)]
    return periodic_distance_matrix(target, obs_xy, grid.lx, grid.ly)[0]
