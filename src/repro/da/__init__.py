"""Baseline data-assimilation methods and the OSSE cycling machinery.

The state-of-the-art baseline of the paper is the Local Ensemble Transform
Kalman Filter (LETKF, Hunt et al. 2007) with Gaspari–Cohn R-localization and
relaxation-to-prior-spread (RTPS) inflation.  A stochastic (perturbed
observation) EnKF is also provided as a secondary baseline and as an exactly
verifiable reference on linear-Gaussian problems.
"""

from repro.da.localization import gaspari_cohn, LocalizationConfig, column_distances
from repro.da.inflation import multiplicative_inflation, rtps_inflation, rtpp_inflation
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.enkf import StochasticEnKF, EnKFConfig
from repro.da.cycling import OSSEConfig, CyclingResult, run_osse, free_run

__all__ = [
    "gaspari_cohn",
    "LocalizationConfig",
    "column_distances",
    "multiplicative_inflation",
    "rtps_inflation",
    "rtpp_inflation",
    "LETKF",
    "LETKFConfig",
    "StochasticEnKF",
    "EnKFConfig",
    "OSSEConfig",
    "CyclingResult",
    "run_osse",
    "free_run",
]
