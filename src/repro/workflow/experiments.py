"""The four-way accuracy comparison of the paper (Figs. 4 and 5).

Architectures compared over the same truth and observations:

* **SQG only** — free run of the physics model, no assimilation;
* **ViT only** — free run of the offline-trained surrogate, no assimilation;
* **SQG + LETKF** — the state-of-the-art baseline;
* **ViT + EnSF** — the proposed framework (surrogate forecasts corrected by
  the ensemble score filter, with optional online fine-tuning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.observations import IdentityObservation
from repro.da.cycling import CyclingResult, OSSEConfig, free_run, run_osse
from repro.da.letkf import LETKF, LETKFConfig
from repro.da.localization import LocalizationConfig
from repro.models.sqg import SQGModel, spinup_sqg
from repro.surrogate.presets import laptop_preset
from repro.surrogate.training import OfflineTrainer, TrainingConfig, TrajectoryDataset
from repro.surrogate.vit import SQGViTSurrogate, VisionTransformer
from repro.utils.random import SeedSequenceFactory
from repro.workflow.config import ExperimentConfig

__all__ = ["SQGTestbed", "FourWayComparison", "build_sqg_testbed", "train_offline_surrogate", "run_four_experiments"]


@dataclass
class SQGTestbed:
    """Shared ingredients of the accuracy experiments."""

    config: ExperimentConfig
    model: SQGModel
    truth0: np.ndarray
    operator: IdentityObservation
    seeds: SeedSequenceFactory

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        return self.model.grid.shape


@dataclass
class FourWayComparison:
    """Results of the four experiments, keyed as in the paper's legend."""

    results: dict[str, CyclingResult]
    truth_final: np.ndarray
    grid_shape: tuple[int, int, int]

    def mean_rmse(self) -> dict[str, float]:
        """Time-mean analysis RMSE of each experiment."""
        return {name: res.mean_analysis_rmse for name, res in self.results.items()}

    def final_rmse(self) -> dict[str, float]:
        """Final-cycle analysis RMSE of each experiment."""
        return {name: float(res.analysis_rmse[-1]) for name, res in self.results.items()}

    def ordering_holds(self) -> bool:
        """The paper's headline ordering: DA beats no-DA and EnSF+ViT beats LETKF+SQG."""
        rmse = self.mean_rmse()
        da_beats_free = rmse["ViT+EnSF"] < min(rmse["SQG only"], rmse["ViT only"]) and rmse[
            "SQG+LETKF"
        ] < min(rmse["SQG only"], rmse["ViT only"])
        ensf_beats_letkf = rmse["ViT+EnSF"] <= rmse["SQG+LETKF"]
        return bool(da_beats_free and ensf_beats_letkf)

    def summary_rows(self) -> list[dict]:
        """Benchmark-friendly summary rows (one per experiment)."""
        return [res.summary() for res in self.results.values()]


def build_sqg_testbed(config: ExperimentConfig) -> SQGTestbed:
    """Build the SQG model, spin up the truth and create the observation operator."""
    seeds = SeedSequenceFactory(config.seed)
    model = SQGModel(config.sqg_parameters(), array_backend=config.array_backend)
    truth_field = spinup_sqg(model, n_steps=config.spinup_steps, rng=seeds.rng("truth-spinup"))
    truth0 = model.flatten(truth_field)
    operator = IdentityObservation(model.state_size, obs_error_var=config.obs_error_var)
    return SQGTestbed(config=config, model=model, truth0=truth0, operator=operator, seeds=seeds)


def train_offline_surrogate(testbed: SQGTestbed) -> SQGViTSurrogate:
    """Offline pre-training of the SQG-ViT on a trajectory of the physics model."""
    cfg = testbed.config
    dataset = TrajectoryDataset.from_model(
        testbed.model,
        testbed.truth0,
        n_pairs=cfg.surrogate_pairs,
        steps_per_pair=cfg.steps_per_cycle,
        grid_shape=testbed.grid_shape,
    )
    vit_config = laptop_preset(
        image_size=cfg.nx,
        patch_size=cfg.surrogate_patch,
        depth=cfg.surrogate_depth,
        embed_dim=cfg.surrogate_embed_dim,
        num_heads=cfg.surrogate_heads,
    )
    network = VisionTransformer(vit_config, rng=testbed.seeds.rng("vit-init"))
    trainer = OfflineTrainer(
        network,
        TrainingConfig(epochs=cfg.surrogate_epochs, batch_size=8),
        rng=testbed.seeds.rng("vit-training"),
    )
    trainer.fit(dataset)
    return trainer.build_surrogate(dataset, testbed.grid_shape, cfg.steps_per_cycle)


def run_four_experiments(
    config: ExperimentConfig | None = None,
    surrogate: SQGViTSurrogate | None = None,
    store_history: bool = False,
) -> FourWayComparison:
    """Run the four §IV-A experiments and return their RMSE time series."""
    config = config or ExperimentConfig()
    testbed = build_sqg_testbed(config)
    if surrogate is None:
        surrogate = train_offline_surrogate(testbed)

    osse = OSSEConfig(
        n_cycles=config.n_cycles,
        steps_per_cycle=config.steps_per_cycle,
        ensemble_size=config.ensemble_size,
        seed=config.seed,
        apply_model_error_to_truth=config.apply_model_error,
    )

    letkf = LETKF(
        testbed.model.grid,
        LETKFConfig(
            localization=LocalizationConfig(cutoff=config.letkf_cutoff),
            rtps_factor=config.letkf_rtps,
            backend=config.array_backend,
        ),
    )
    ensf = EnSF(
        EnSFConfig(
            n_sde_steps=config.ensf_sde_steps,
            spread_relaxation=1.0,
            backend=config.array_backend,
        ),
        rng=testbed.seeds.rng("ensf"),
    )

    results: dict[str, CyclingResult] = {}
    results["SQG only"] = free_run(
        testbed.model, testbed.model, testbed.truth0, osse, label="SQG only"
    )
    results["ViT only"] = free_run(
        testbed.model, surrogate, testbed.truth0, osse, label="ViT only"
    )
    scenario = config.observation_scenario()
    qc = config.observation_qc()
    divergence = config.divergence_policy()
    results["SQG+LETKF"] = run_osse(
        truth_model=testbed.model,
        forecast_model=testbed.model,
        filter_=letkf,
        operator=testbed.operator,
        truth0=testbed.truth0,
        config=osse,
        label="SQG+LETKF",
        store_history=store_history,
        scenario=scenario,
        qc=qc,
        cycle_deadline_s=config.cycle_deadline_s,
        divergence=divergence,
    )
    results["ViT+EnSF"] = run_osse(
        truth_model=testbed.model,
        forecast_model=surrogate,
        filter_=ensf,
        operator=testbed.operator,
        truth0=testbed.truth0,
        config=osse,
        label="ViT+EnSF",
        store_history=store_history,
        scenario=scenario,
        qc=qc,
        cycle_deadline_s=config.cycle_deadline_s,
        divergence=divergence,
    )

    return FourWayComparison(
        results=results,
        truth_final=results["ViT+EnSF"].truth_final,
        grid_shape=testbed.grid_shape,
    )
