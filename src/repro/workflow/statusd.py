"""HTTP status frontend for the experiment service.

The paper's operational framing is a continuously running assimilation
service that external dashboards poll; this module is the cheap read path
for that: a stdlib :class:`~http.server.ThreadingHTTPServer` serving
**strict-JSON** snapshots of an :class:`~repro.workflow.scheduler
.ExperimentService` (or, detached, of a job journal on disk — e.g. to
inspect a dead service's last durable state).

Routes
------
``GET /jobs``
    Service-wide snapshot: per-job summaries (state, attempts, backoff,
    fair-share quota, fault counts) plus scheduler counters.  Cheap enough
    for high-frequency polling — result arrays are excluded.
``GET /jobs/<name>``
    Full detail for one job, including its journaled result payload.

Every response body — success or error — is ``json.dumps(...,
allow_nan=False)``: the frontend can never emit the non-strict
``NaN``/``Infinity`` tokens a strict parser would choke on (the journal
side of that guarantee lives in the scheduler's ``_jsonable``).  The
server runs on a daemon thread, binds an ephemeral port by default
(``port=0``), and is closed by ``ExperimentService.close()`` when created
through :meth:`~repro.workflow.scheduler.ExperimentService.serve_status`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

__all__ = ["StatusServer"]


def _strict_json(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, allow_nan=False).encode("utf-8")


class _StatusHandler(BaseHTTPRequestHandler):
    """Routes ``/jobs`` and ``/jobs/<name>``; everything else is 404."""

    # The server instance carries the snapshot callbacks (see StatusServer).
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # polling frontends must not spam the service's stderr

    def do_GET(self):  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/jobs":
                self._reply(200, self.server.snapshot())
            elif path.startswith("/jobs/"):
                name = path[len("/jobs/") :]
                try:
                    self._reply(200, self.server.job_snapshot(name))
                except KeyError:
                    self._reply(404, {"error": f"unknown job {name!r}"})
            else:
                self._reply(404, {"error": f"unknown path {path!r}"})
        except ValueError as exc:
            # A non-finite float slipped into a payload: refuse to emit
            # non-strict JSON, surface the bug instead.
            self._reply(500, {"error": f"payload not strict-JSON: {exc}"})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _reply(self, code: int, payload) -> None:
        body = _strict_json(payload)
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # poller hung up mid-reply; nothing to salvage


class StatusServer:
    """Threaded HTTP endpoint over a live service or a journal file.

    Exactly one of ``service`` / ``journal_path`` drives the snapshots:

    - **live mode** reads :meth:`ExperimentService.status_details` /
      :meth:`ExperimentService.job_details` under the service lock, so a
      poll always sees a consistent lifecycle state mid-campaign;
    - **journal mode** re-reads (and checksum-verifies) the journal file
      per request — the read-only view of a service that is not running,
      with ``attempts``/``resume``/``error`` taken from the durable record.
    """

    def __init__(
        self,
        service=None,
        journal_path=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        if (service is None) == (journal_path is None):
            raise ValueError("exactly one of service/journal_path is required")
        self._service = service
        self._journal_path = None if journal_path is None else Path(journal_path)
        self._httpd = ThreadingHTTPServer((host, int(port)), _StatusHandler)
        self._httpd.daemon_threads = True
        self._httpd.snapshot = self._snapshot
        self._httpd.job_snapshot = self._job_snapshot
        self._address = self._httpd.server_address  # survives close()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="statusd", daemon=True
        )
        self._thread.start()

    # -- snapshot sources --------------------------------------------------- #
    def _journal_jobs(self) -> dict[str, dict]:
        from repro.workflow.scheduler import ExperimentService

        payload = ExperimentService.load_journal(self._journal_path)
        if payload is None:
            raise KeyError("journal unreadable")
        return {job["name"]: job for job in payload.get("jobs", ())}

    def _snapshot(self) -> dict:
        if self._service is not None:
            return self._service.status_details()
        jobs = {}
        counts: dict[str, int] = {}
        for name, job in self._journal_jobs().items():
            jobs[name] = {k: v for k, v in job.items() if k != "result"}
            counts[job["state"]] = counts.get(job["state"], 0) + 1
        return {"jobs": jobs, "counts": counts, "source": "journal"}

    def _job_snapshot(self, name: str) -> dict:
        if self._service is not None:
            return self._service.job_details(name)
        return self._journal_jobs()[name]

    # -- lifecycle ---------------------------------------------------------- #
    @property
    def host(self) -> str:
        return self._address[0]

    @property
    def port(self) -> int:
        return self._address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "StatusServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
