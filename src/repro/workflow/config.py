"""Experiment configuration for the accuracy experiments (paper §IV-A)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.observations import ObservationQC, ObservationScenario
from repro.models.sqg import SQGParameters
from repro.workflow.engine import DivergencePolicy

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of the four-way comparison experiment (Fig. 4 / Fig. 5).

    The paper's full setting is a 64×64×2 SQG mesh observed every 12 hours
    (72 model steps at dt = 600 s) for 300 cycles with a 20-member ensemble.
    The defaults here are a reduced configuration that runs in about a minute
    on a laptop; the benchmark harness scales it up via environment options.

    Attributes
    ----------
    nx, ny:
        SQG grid size.
    n_cycles:
        Number of 12-hourly analysis cycles.
    steps_per_cycle:
        SQG steps per analysis interval.
    ensemble_size:
        Ensemble members for both LETKF and EnSF (paper: 20).
    obs_error_var:
        Observation error variance (paper: R = I).
    spinup_steps:
        SQG steps used to spin the truth up to developed turbulence.
    surrogate_pairs, surrogate_epochs:
        Offline training-set size (state pairs) and epochs for the ViT.
    surrogate_embed_dim, surrogate_depth, surrogate_patch:
        Laptop-scale SQG-ViT architecture.
    online_training:
        Fine-tune the surrogate each cycle inside the ViT+EnSF workflow.
    array_backend:
        Array backend (:mod:`repro.utils.xp`) for the SQG forecast engine
        and both analysis algorithms; ``None`` defers to the
        ``REPRO_ARRAY_BACKEND`` process default.  The numpy backend is
        bit-identical, so this is a hardware knob, not a numerics knob.
    obs_every, obs_dropout, obs_latency:
        Streaming observation-network protocol applied to the DA
        experiments (see :meth:`observation_scenario`): observe only every
        k-th cycle, lose each scheduled observation with this probability,
        and delay its arrival by this many cycles.  The defaults reproduce
        the paper's idealized every-cycle protocol bit-identically.
    qc_gross_threshold:
        Gross-error QC bound in observation-error standard deviations; an
        observation event with innovations beyond it is rejected before the
        analysis (see :meth:`observation_qc`).  ``None`` (default) disables
        QC entirely, preserving historical results bit-identically.
    cycle_deadline_s:
        Per-cycle wall-clock budget for the DA experiments; analyses past
        it are skipped (forecast-only degraded cycle).  ``None``: no limit.
    divergence_spread_max, divergence_action:
        Ensemble-divergence guard (see :meth:`divergence_policy`): when the
        mean spread exceeds the bound (or the state goes non-finite) the
        engine halts, re-inflates, or resets from the last checkpoint.
        ``divergence_spread_max=None`` (default) disables the guard.
    checkpoint_keep_last:
        Size of the rotating checkpoint ring the drivers use when
        checkpointing is enabled.
    seed:
        Root seed for all stochastic streams.
    """

    nx: int = 32
    ny: int = 32
    n_cycles: int = 20
    steps_per_cycle: int = 24
    ensemble_size: int = 20
    obs_error_var: float = 1.0
    spinup_steps: int = 1500
    apply_model_error: bool = True
    surrogate_pairs: int = 60
    surrogate_epochs: int = 10
    surrogate_embed_dim: int = 64
    surrogate_depth: int = 2
    surrogate_patch: int = 8
    surrogate_heads: int = 4
    online_training: bool = True
    online_iterations: int = 2
    letkf_cutoff: float = 2.0e6
    letkf_rtps: float = 0.3
    ensf_sde_steps: int = 100
    array_backend: str | None = None
    obs_every: int = 1
    obs_dropout: float = 0.0
    obs_latency: int = 0
    qc_gross_threshold: float | None = None
    cycle_deadline_s: float | None = None
    divergence_spread_max: float | None = None
    divergence_action: str = "halt"
    checkpoint_keep_last: int = 3
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.n_cycles < 1 or self.steps_per_cycle < 1:
            raise ValueError("n_cycles and steps_per_cycle must be positive")
        if self.ensemble_size < 2:
            raise ValueError("ensemble_size must be at least 2")
        if self.nx % self.surrogate_patch or self.ny % self.surrogate_patch:
            raise ValueError("grid size must be divisible by the surrogate patch size")
        if self.checkpoint_keep_last < 1:
            raise ValueError("checkpoint_keep_last must be positive")
        # Delegate range validation of the observation/resilience knobs.
        self.observation_scenario()
        self.observation_qc()
        self.divergence_policy()

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The configuration closest to the paper's §IV-A setup (slow: ~hours)."""
        return cls(
            nx=64,
            ny=64,
            n_cycles=300,
            steps_per_cycle=72,
            ensemble_size=20,
            spinup_steps=4000,
            surrogate_pairs=200,
            surrogate_epochs=30,
            surrogate_embed_dim=128,
            surrogate_depth=4,
            surrogate_patch=8,
        )

    @classmethod
    def smoke_test(cls) -> "ExperimentConfig":
        """A minimal configuration used by the integration tests (seconds)."""
        return cls(
            nx=16,
            ny=16,
            n_cycles=5,
            steps_per_cycle=8,
            ensemble_size=8,
            spinup_steps=300,
            surrogate_pairs=12,
            surrogate_epochs=4,
            surrogate_embed_dim=32,
            surrogate_depth=1,
            surrogate_patch=8,
            surrogate_heads=2,
            ensf_sde_steps=25,
        )

    def sqg_parameters(self) -> SQGParameters:
        """SQG model parameters for this experiment."""
        return SQGParameters(nx=self.nx, ny=self.ny)

    def observation_scenario(self) -> ObservationScenario:
        """Observation protocol for the DA experiments (idealized by default)."""
        return ObservationScenario(
            name="config",
            every=self.obs_every,
            dropout=self.obs_dropout,
            latency=self.obs_latency,
        )

    def observation_qc(self) -> ObservationQC | None:
        """QC stage for the DA experiments, or ``None`` when disabled."""
        if self.qc_gross_threshold is None:
            return None
        return ObservationQC(gross_threshold=self.qc_gross_threshold)

    def divergence_policy(self) -> DivergencePolicy | None:
        """Divergence guard for the DA experiments, or ``None`` when disabled."""
        if self.divergence_spread_max is None:
            return None
        return DivergencePolicy(
            spread_max=self.divergence_spread_max, action=self.divergence_action
        )
