"""Supervised multi-job experiment service over the cycling runtime.

The paper's framing is a *continuously operating* assimilation service:
hundreds of cycling experiments (parameter sweeps, per-user scenario
streams) share one machine and must survive job crashes, host restarts and
oversubscription.  :class:`ExperimentService` is that control plane, built
on the two guarantees the runtime already provides — bit-identical
checkpoint/restart (:class:`~repro.workflow.engine.EngineCheckpoint`,
``resume="auto"``) and deterministic fault injection
(:mod:`repro.utils.faults`):

**Crash isolation.**  Every job runs on its own thread with its own
:class:`~repro.utils.faults.FaultLog` and its own
:class:`~repro.hpc.ensemble_parallel.ExecutorLease` onto the shared worker
pool.  An exception (or injected fault) in one job transitions *that* job
to ``backoff``/``failed`` and never touches its siblings or the pool.

**Checkpoint-based preemption.**  Jobs are queued by priority.  When a
higher-priority job is waiting and every slot is busy, the lowest-priority
running job is asked to yield: the engine writes a checkpoint at the next
cycle boundary and raises :class:`~repro.workflow.engine.EnginePreempted`;
the job re-enters the queue and later resumes **bit-identically** via
``resume="auto"``.

**Resume-on-failure.**  A crashed job is requeued from its newest intact
checkpoint after a jittered exponential backoff
(``retry_backoff_s * 2**(attempt-1) * uniform(0.5, 1.5)``, drawn from a
dedicated non-experiment rng), escalating to the terminal ``failed`` state
when ``max_attempts`` is exhausted.

**Durable journal.**  Every lifecycle transition rewrites a checksummed
JSON journal with the same tmp+fsync+``os.replace`` discipline as
:meth:`EngineCheckpoint.save`, keeping the previous generation as
``<journal>.prev``.  A killed-and-restarted service reloads the journal
(falling back to ``.prev`` if the newest write was torn) and requeues every
non-terminal job; combined with checkpoint resume this makes a
SIGKILL-mid-sweep recoverable with bit-identical per-job results.

**Drain and backpressure.**  ``request_drain()`` (wired to SIGTERM by
:meth:`install_signal_handlers`) stops launching, preempts all running
jobs so their progress is checkpointed, and flushes the journal.
Submissions beyond ``max_queued`` live jobs are journaled in the explicit
terminal state ``rejected`` instead of growing the queue without bound.

Job lifecycle::

                 submit                    launch
    (rejected) <-------- [pending] ------------------> [running]
                           ^   ^                        |  |  |
                 backoff   |   |  preempt (checkpoint)  |  |  |
          [backoff] -------+   +------ [preempted] <----+  |  +--> [done]
              ^                                            v
              +------------------ crash (retry left) --- [failed]
                                                          (budget exhausted)

Chaos testing hooks live at the ``"scheduler"`` fault site, visited once
per journal write under the service lock (see :mod:`repro.utils.faults`):
``job-crash`` arms an injected crash of one job at its next cycle
boundary, ``journal-torn`` truncates the just-written journal, and
``service-kill`` hard-kills the process — the recorded recovery path must
reproduce the clean run's results bit for bit.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import math
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.hpc.ensemble_parallel import EnsembleExecutor
from repro.utils.faults import FaultInjected, FaultLog, FaultPlan
from repro.workflow.engine import EnginePreempted

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "ServiceConfig",
    "JobSpec",
    "JobContext",
    "ExperimentService",
    "lorenz96_ensf_job",
]

JOB_STATES = ("pending", "running", "preempted", "backoff", "done", "failed", "rejected")
TERMINAL_STATES = ("done", "failed", "rejected")

_JOURNAL_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Operating limits of an :class:`ExperimentService`.

    ``max_running`` bounds concurrent jobs (each job may still fan its own
    shards over the shared pool); ``max_queued`` bounds *live* (non-terminal)
    jobs — submissions beyond it are journaled as ``rejected``.
    ``max_attempts`` is the per-job crash budget (a preemption is not a
    crash and never consumes it).  ``checkpoint_every``/``keep_last``
    configure each job's checkpoint ring, which is what makes preemption
    and crash recovery bit-identical.  ``fair_share`` re-arbitrates
    per-job pool-slot quotas (equal across tenants, weighted by
    ``weight``/priority within one) every time the running set changes;
    when off, every lease runs unconstrained as before.
    """

    max_running: int = 2
    max_queued: int = 64
    max_attempts: int = 3
    retry_backoff_s: float = 0.05
    backoff_seed: int | None = None
    checkpoint_every: int = 1
    keep_last: int = 3
    poll_s: float = 0.05
    fair_share: bool = True

    def __post_init__(self) -> None:
        if self.max_running < 1:
            raise ValueError("max_running must be positive")
        if self.max_queued < 1:
            raise ValueError("max_queued must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        if self.keep_last < 1:
            raise ValueError("keep_last must be positive")


def _runner_ref(runner) -> str:
    """Normalize ``runner`` to an importable ``"module:qualname"`` string."""
    if isinstance(runner, str):
        ref = runner
    else:
        module = getattr(runner, "__module__", None)
        qualname = getattr(runner, "__qualname__", None)
        if not module or not qualname:
            raise ValueError(f"runner {runner!r} is not an importable callable")
        ref = f"{module}:{qualname}"
    if ":" not in ref:
        raise ValueError(f"runner reference {ref!r} must look like 'module:qualname'")
    if "<" in ref:
        raise ValueError(
            f"runner reference {ref!r} is not importable (lambdas and local "
            "functions cannot be resumed after a service restart)"
        )
    return ref


def _resolve_runner(ref: str):
    """Import the callable behind a ``"module:qualname"`` reference."""
    module_name, _, qualname = ref.partition(":")
    try:
        obj = importlib.import_module(module_name)
    except ImportError as exc:
        raise ValueError(f"runner module {module_name!r} is not importable: {exc}") from None
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise ValueError(f"runner {ref!r} does not resolve to an attribute") from None
    if not callable(obj):
        raise ValueError(f"runner {ref!r} is not callable")
    return obj


def _jsonable(value, dropped: list | None = None, path: str = ""):
    """Recursively convert a runner result into **strict**-JSON builtins.

    Non-finite floats (a diverged job's ``final_rmse`` is the canonical
    case) are sanitized to ``None`` rather than passed through: ``NaN`` /
    ``Infinity`` are not JSON, and letting :func:`json.dumps` emit its
    non-strict tokens would poison the checksummed journal for every
    strict parser that later reads it.  When ``dropped`` is given, the
    dotted path of each sanitized field is appended to it so the caller
    can flag the loss instead of silently serving ``null``.
    """
    if isinstance(value, dict):
        return {
            str(k): _jsonable(v, dropped, f"{path}.{k}" if path else str(k))
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v, dropped, f"{path}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist(), dropped, path)
    if isinstance(value, (np.floating,)):
        value = float(value)
    elif isinstance(value, (np.integer,)):
        return int(value)
    elif isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, float) and not math.isfinite(value):
        if dropped is not None:
            dropped.append(path or "<root>")
        return None
    return value


def _fair_shares(weights: list[float], total_slots: int) -> list[int]:
    """Split ``total_slots`` pool slots across weighted jobs, fairly.

    Largest-remainder apportionment with a floor of one slot per job:
    every running job can always make progress, the shares sum exactly to
    ``total_slots`` whenever ``total_slots >= len(weights)``, and ties
    break deterministically by position.  With more jobs than slots the
    pool is simply oversubscribed at one slot each — the executor's
    windowed submission then interleaves them on whatever workers exist.
    """
    n = len(weights)
    if n == 0:
        return []
    if any(not (w > 0) for w in weights):
        raise ValueError("fair-share weights must be positive")
    total = int(total_slots)
    if total <= n:
        return [1] * n
    extra = total - n  # one slot each is reserved; the rest follows weight
    wsum = float(sum(weights))
    ideal = [w / wsum * extra for w in weights]
    base = [int(x) for x in ideal]
    leftover = extra - sum(base)
    by_remainder = sorted(range(n), key=lambda i: (-(ideal[i] - base[i]), i))
    for i in by_remainder[:leftover]:
        base[i] += 1
    return [1 + b for b in base]


@dataclass(frozen=True)
class JobSpec:
    """One experiment submission.

    ``runner`` is an importable ``"module:qualname"`` reference (or a
    module-level callable, normalized to one) with signature
    ``runner(ctx: JobContext) -> dict``; it must be importable because a
    restarted service re-resolves runners from the journal.  ``params`` is
    the strict-JSON-serializable argument payload handed to the runner via
    ``ctx.params``.  Higher ``priority`` preempts lower.  ``tenant``
    groups jobs for fair-share arbitration (untenanted jobs each count as
    their own tenant) and ``weight`` scales a job's share within its
    tenant.
    """

    name: str
    runner: str
    params: dict = field(default_factory=dict)
    priority: int = 0
    max_attempts: int | None = None
    tenant: str = ""
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        object.__setattr__(self, "runner", _runner_ref(self.runner))
        # Fail early: the journal must serialize it, strictly (no NaN tokens).
        json.dumps(self.params, allow_nan=False)
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        object.__setattr__(self, "weight", float(self.weight))
        if not (math.isfinite(self.weight) and self.weight > 0):
            raise ValueError("weight must be a positive finite float")


class _JobRecord:
    """Internal per-job state: journaled fields plus runtime machinery."""

    def __init__(self, spec: JobSpec, index: int):
        self.spec = spec
        self.index = index
        self.state = "pending"
        self.attempts = 0  # crash count (preemptions don't consume the budget)
        self.resume = False
        self.result: dict | None = None
        self.error: str | None = None
        self.backoff_until = 0.0  # monotonic deadline while in "backoff"
        self.fault_log = FaultLog()
        self.preempt_event = threading.Event()
        self.crash_event = threading.Event()
        self.thread: threading.Thread | None = None
        self.context: "JobContext | None" = None  # live attempt only
        self.quota: int | None = None  # current fair-share pool-slot quota

    def to_payload(self) -> dict:
        return {
            "name": self.spec.name,
            "runner": self.spec.runner,
            "params": self.spec.params,
            "priority": self.spec.priority,
            "max_attempts": self.spec.max_attempts,
            "tenant": self.spec.tenant,
            "weight": self.spec.weight,
            "index": self.index,
            "state": self.state,
            "attempts": self.attempts,
            "resume": self.resume,
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "_JobRecord":
        spec = JobSpec(
            name=payload["name"],
            runner=payload["runner"],
            # Sanitize on the way in: a journal written before the strict-
            # JSON fix (or edited by hand) may carry non-finite floats that
            # JobSpec validation and the next journal write would reject.
            params=_jsonable(payload.get("params") or {}),
            priority=int(payload.get("priority", 0)),
            max_attempts=payload.get("max_attempts"),
            tenant=str(payload.get("tenant", "") or ""),
            weight=float(payload.get("weight", 1.0)),
        )
        rec = cls(spec, int(payload["index"]))
        rec.state = payload["state"]
        rec.attempts = int(payload.get("attempts", 0))
        rec.resume = bool(payload.get("resume", False))
        rec.result = _jsonable(payload.get("result"))
        rec.error = payload.get("error")
        return rec


class JobContext:
    """What a runner gets: identity, parameters, workdir, and the hooks
    that make it preemptible and crash-recoverable.

    Runners should forward ``**ctx.engine_kwargs()`` to
    :func:`~repro.da.cycling.run_osse` /
    :meth:`~repro.workflow.engine.CycleEngine.run` — it wires up
    ``resume="auto"`` against the job's checkpoint ring and the service's
    preemption hook — and use ``ctx.executor`` (the job's lease on the
    shared pool, or ``None``) for ensemble-parallel work.
    """

    def __init__(self, service: "ExperimentService", record: _JobRecord):
        self._record = record
        self.name = record.spec.name
        self.params = dict(record.spec.params)
        self.attempt = record.attempts + 1
        self.resume = record.resume
        self.fault_log = record.fault_log
        self.workdir = service.workdir / record.spec.name
        self.checkpoint_path = self.workdir / "engine.ckpt"
        self.checkpoint_every = service.config.checkpoint_every
        self.keep_last = service.config.keep_last
        pool = service.executor
        self.executor = None if pool is None else pool.lease(
            job=self.name, fault_log=record.fault_log
        )
        self.workdir.mkdir(parents=True, exist_ok=True)

    def release(self) -> None:
        """Close this attempt's lease (idempotent; every attempt gets a fresh one).

        Called from ``_run_job``'s ``finally`` so leases cannot accumulate
        across retries and preemptions — the pool's ``active_leases`` count
        returns to baseline after every attempt, however it ended.
        """
        if self.executor is not None:
            self.executor.close()
        self._record.context = None

    def should_preempt(self) -> bool:
        """Cycle-boundary hook: injected crashes fire here, preemption polls here."""
        record = self._record
        if record.crash_event.is_set():
            record.crash_event.clear()
            record.fault_log.record(
                "scheduler", "job-crash", f"injected crash of job {self.name!r}"
            )
            raise FaultInjected(f"injected job crash in {self.name!r}")
        return record.preempt_event.is_set()

    def engine_kwargs(self) -> dict:
        return {
            "resume": "auto",
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_path": self.checkpoint_path,
            "keep_last": self.keep_last,
            "preempt": self.should_preempt,
        }


class ExperimentService:
    """Run many cycling experiments concurrently over one shared pool.

    Parameters
    ----------
    journal_path:
        The durable job-state store.  If the file (or its ``.prev``
        generation) exists and ``recover=True``, the queue is reloaded:
        terminal jobs keep their results, everything else is requeued with
        ``resume=True`` and continues from its newest intact checkpoint.
    executor:
        Optional shared :class:`~repro.hpc.ensemble_parallel.EnsembleExecutor`;
        each job receives its own :class:`ExecutorLease` onto it.  The
        service never closes it — the caller owns the pool.
    config:
        :class:`ServiceConfig` operating limits.
    fault_plan / fault_log:
        Deterministic chaos hooks (``"scheduler"`` site) and the service's
        own recovery ledger; per-job recoveries land in each job's log.
    """

    def __init__(
        self,
        journal_path,
        executor: EnsembleExecutor | None = None,
        config: ServiceConfig | None = None,
        workdir=None,
        recover: bool = True,
        fault_plan: FaultPlan | None = None,
        fault_log: FaultLog | None = None,
    ):
        self.journal_path = Path(journal_path)
        self.executor = executor
        self.config = config if config is not None else ServiceConfig()
        self.workdir = (
            Path(workdir) if workdir is not None else self.journal_path.parent / "jobs"
        )
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, _JobRecord] = {}
        self._order: list[_JobRecord] = []
        self._running: list[_JobRecord] = []
        self._draining = False
        self._stop = False
        self._supervisor: threading.Thread | None = None
        self._backoff_rng = np.random.default_rng(self.config.backoff_seed)
        self._seq = 0  # monotonic job index (never reused, even after resubmits)
        self._status_server = None
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        self.workdir.mkdir(parents=True, exist_ok=True)
        if recover:
            self._recover()

    # -- journal ------------------------------------------------------------ #
    def _journal_payload(self) -> dict:
        return {
            "version": _JOURNAL_VERSION,
            "jobs": [rec.to_payload() for rec in self._order],
        }

    def _write_journal_locked(self) -> None:
        """Atomically persist the queue, then visit the chaos site.

        Same durability discipline as ``EngineCheckpoint.save``: tmp +
        fsync + ``os.replace``, with the previous generation kept as
        ``.prev`` so a torn write (only reachable through injected faults
        or storage-level corruption) still leaves a loadable journal.
        """
        payload = self._journal_payload()
        # allow_nan=False end to end: a non-finite float that slipped past
        # result sanitization must fail the write loudly, never land as a
        # non-strict NaN/Infinity token inside the checksummed journal.
        canonical = json.dumps(payload, sort_keys=True, allow_nan=False)
        digest = hashlib.sha256(canonical.encode()).hexdigest()
        body = json.dumps(
            {"sha256": digest, "payload": payload}, sort_keys=True, allow_nan=False
        )
        path = self.journal_path
        if path.exists():
            prev_tmp = path.with_name(path.name + ".prev.tmp")
            prev_tmp.write_bytes(path.read_bytes())
            os.replace(prev_tmp, path.with_name(path.name + ".prev"))
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._chaos_after_journal_write(path)

    def _chaos_after_journal_write(self, path: Path) -> None:
        """One ``"scheduler"`` fault-site visit per journal write (see module doc)."""
        if self.fault_plan is None:
            return
        for event in self.fault_plan.visit("scheduler"):
            if event.kind == "journal-torn":
                keep = float(event.payload.get("keep", 0.5))
                data = path.read_bytes()
                with open(path, "wb") as fh:
                    fh.write(data[: max(0, int(len(data) * keep))])
                self.fault_log.record(
                    "scheduler", "journal-torn", f"truncated journal to keep={keep}"
                )
            elif event.kind == "job-crash":
                rec = self._match_job(event.payload.get("job", 0))
                if rec is not None:
                    rec.crash_event.set()
                    self.fault_log.record(
                        "scheduler", "job-crash", f"armed injected crash of {rec.spec.name!r}"
                    )
            elif event.kind == "service-kill":
                code = int(event.payload.get("code", 137))
                os._exit(code)  # the SIGKILL shape: no cleanup, no journal flush

    def _match_job(self, which) -> _JobRecord | None:
        if isinstance(which, str) and which in self._jobs:
            return self._jobs[which]
        try:
            return self._order[int(which) % len(self._order)] if self._order else None
        except (TypeError, ValueError):
            return None

    @staticmethod
    def load_journal(path) -> dict | None:
        """Verified journal payload at ``path``, or ``None`` if unloadable."""
        path = Path(path)
        try:
            wrapper = json.loads(path.read_text())
            payload = wrapper["payload"]
            # allow_nan=False: a journal carrying non-strict NaN/Infinity
            # tokens (pre-fix writes) fails re-canonicalization here and is
            # treated as corrupt, falling back to the .prev generation.
            canonical = json.dumps(payload, sort_keys=True, allow_nan=False)
            if hashlib.sha256(canonical.encode()).hexdigest() != wrapper["sha256"]:
                return None
            return payload
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _recover(self) -> None:
        payload = self.load_journal(self.journal_path)
        if payload is None:
            prev = self.journal_path.with_name(self.journal_path.name + ".prev")
            payload = self.load_journal(prev)
            if payload is not None:
                self.fault_log.record(
                    "scheduler",
                    "journal-fallback",
                    f"journal unreadable; recovered previous generation {prev.name!r}",
                )
        if payload is None:
            return
        with self._cond:
            for job_payload in payload.get("jobs", ()):
                rec = _JobRecord.from_payload(job_payload)
                if rec.state not in TERMINAL_STATES:
                    # Anything in flight when the service died resumes from
                    # its newest intact checkpoint.
                    rec.state = "pending"
                    rec.resume = True
                self._jobs[rec.spec.name] = rec
                self._order.append(rec)
                self._seq = max(self._seq, rec.index + 1)
            if self._order:
                self._write_journal_locked()

    # -- submission / status ------------------------------------------------ #
    def submit(
        self,
        name: str,
        runner,
        params: dict | None = None,
        priority: int = 0,
        max_attempts: int | None = None,
        tenant: str = "",
        weight: float = 1.0,
    ) -> str:
        """Queue a job; returns its state (``"pending"`` or ``"rejected"``).

        The runner is resolved immediately so an unimportable reference
        fails at submission, not deep inside a worker thread.  A name whose
        only record is terminal-``rejected`` may be resubmitted — a
        backpressure bounce is a statement about queue capacity at that
        moment, not a permanent claim on the name (any other state still
        raises: the name's history must stay unambiguous).
        """
        spec = JobSpec(
            name=name,
            runner=runner,
            params=dict(params or {}),
            priority=priority,
            max_attempts=max_attempts,
            tenant=tenant,
            weight=weight,
        )
        _resolve_runner(spec.runner)
        with self._cond:
            existing = self._jobs.get(spec.name)
            if existing is not None:
                if existing.state != "rejected":
                    raise ValueError(f"job {spec.name!r} already submitted")
                self._order.remove(existing)
                del self._jobs[spec.name]
            rec = _JobRecord(spec, index=self._seq)
            self._seq += 1
            live = sum(1 for r in self._order if r.state not in TERMINAL_STATES)
            if live >= self.config.max_queued:
                rec.state = "rejected"
                rec.error = f"queue full ({live} live jobs >= max_queued={self.config.max_queued})"
                self.fault_log.record("scheduler", "reject", rec.error)
            self._jobs[spec.name] = rec
            self._order.append(rec)
            self._write_journal_locked()
            self._cond.notify_all()
            return rec.state

    def state(self, name: str) -> str:
        with self._lock:
            return self._jobs[name].state

    def result(self, name: str) -> dict | None:
        with self._lock:
            return self._jobs[name].result

    def job_fault_log(self, name: str) -> FaultLog:
        with self._lock:
            return self._jobs[name].fault_log

    def status(self) -> dict[str, str]:
        """Cheap name → state snapshot (what a frontend would poll)."""
        with self._lock:
            return {rec.spec.name: rec.state for rec in self._order}

    def _job_details_locked(self, rec: _JobRecord) -> dict:
        now = time.monotonic()
        return _jsonable(
            {
                "name": rec.spec.name,
                "state": rec.state,
                "priority": rec.spec.priority,
                "tenant": rec.spec.tenant,
                "weight": rec.spec.weight,
                "index": rec.index,
                "attempts": rec.attempts,
                "max_attempts": rec.spec.max_attempts or self.config.max_attempts,
                "resume": rec.resume,
                "quota": rec.quota,
                "backoff_remaining_s": (
                    max(0.0, rec.backoff_until - now) if rec.state == "backoff" else 0.0
                ),
                "error": rec.error,
                "fault_summary": {
                    str(k): int(v) for k, v in rec.fault_log.summary().items()
                },
                "result": rec.result,
            }
        )

    def job_details(self, name: str) -> dict:
        """Full strict-JSON detail for one job (the ``/jobs/<name>`` payload)."""
        with self._lock:
            return self._job_details_locked(self._jobs[name])

    def status_details(self) -> dict:
        """Service-wide strict-JSON snapshot (the ``/jobs`` payload).

        Per-job summaries (state/attempts/backoff/quota/fault counts, no
        result arrays — those stay behind ``/jobs/<name>``) plus scheduler
        counters, cheap enough for high-frequency polling.
        """
        with self._lock:
            jobs = {}
            for rec in self._order:
                detail = self._job_details_locked(rec)
                detail.pop("result", None)
                jobs[rec.spec.name] = detail
            counts: dict[str, int] = {}
            for rec in self._order:
                counts[rec.state] = counts.get(rec.state, 0) + 1
            return {
                "jobs": jobs,
                "counts": counts,
                "running": [rec.spec.name for rec in self._running],
                "draining": self._draining,
                "fair_share": self.config.fair_share,
                "max_running": self.config.max_running,
                "pool_workers": None if self.executor is None else self.executor.n_workers,
            }

    def serve_status(self, host: str = "127.0.0.1", port: int = 0):
        """Start (or return) the HTTP status frontend bound to this service.

        Lazily imports :mod:`repro.workflow.statusd`; the server lives on a
        daemon thread and is closed with the service.  ``port=0`` binds an
        ephemeral port — read it back from the returned server's ``port``.
        """
        from repro.workflow.statusd import StatusServer

        with self._lock:
            if self._status_server is None:
                self._status_server = StatusServer(service=self, host=host, port=port)
            return self._status_server

    # -- scheduling --------------------------------------------------------- #
    def _transition_locked(self, rec: _JobRecord, state: str) -> None:
        rec.state = state
        self._write_journal_locked()

    def _ready_locked(self, now: float) -> list[_JobRecord]:
        for rec in self._order:
            if rec.state == "backoff" and now >= rec.backoff_until:
                self._transition_locked(rec, "pending")
        ready = [rec for rec in self._order if rec.state == "pending"]
        ready.sort(key=lambda r: (-r.spec.priority, r.index))
        return ready

    def _launch_locked(self, rec: _JobRecord) -> None:
        # Only the preempt request is cleared: an injected crash armed while
        # the job sat in the queue must still fire once it runs.
        rec.preempt_event.clear()
        ctx = JobContext(self, rec)
        rec.context = ctx
        self._transition_locked(rec, "running")
        self._running.append(rec)
        self._rebalance_quotas_locked()
        rec.thread = threading.Thread(
            target=self._run_job, args=(rec, ctx), name=f"job-{rec.spec.name}", daemon=True
        )
        rec.thread.start()

    def _finish_running_locked(self, rec: _JobRecord) -> None:
        self._running.remove(rec)
        rec.quota = None
        self._rebalance_quotas_locked()

    def _rebalance_quotas_locked(self) -> None:
        """Re-arbitrate pool-slot quotas across the running set.

        Two-level weighted fair share over the parent pool's workers:
        tenants split the pool equally (an untenanted job is its own
        tenant), and jobs within a tenant split that share proportionally
        to ``weight * max(1, priority + 1)``.  Quotas land directly on each
        live lease's ``max_workers``, so a re-arbitration takes effect at
        the job's next gather — mid-gather shards are never revoked.  The
        executor caps only *concurrency*, never the decomposition, so any
        quota assignment yields bit-identical job results.
        """
        if self.executor is None or not self._running:
            return
        if not self.config.fair_share:
            for rec in self._running:
                rec.quota = None
                if rec.context is not None and rec.context.executor is not None:
                    rec.context.executor.max_workers = None
            return
        tenants: dict[str, list[_JobRecord]] = {}
        for rec in self._running:
            tenants.setdefault(rec.spec.tenant or f"~{rec.spec.name}", []).append(rec)
        names = sorted(tenants)
        tenant_shares = _fair_shares([1.0] * len(names), self.executor.n_workers)
        for tenant_name, tenant_share in zip(names, tenant_shares):
            members = tenants[tenant_name]
            weights = [r.spec.weight * max(1, r.spec.priority + 1) for r in members]
            for rec, share in zip(members, _fair_shares(weights, tenant_share)):
                rec.quota = int(share)
                if rec.context is not None and rec.context.executor is not None:
                    rec.context.executor.max_workers = int(share)

    def _supervise(self) -> None:
        with self._cond:
            while True:
                if self._stop:
                    return
                now = time.monotonic()
                ready = self._ready_locked(now)
                if not self._draining:
                    while ready and len(self._running) < self.config.max_running:
                        self._launch_locked(ready.pop(0))
                    if ready and self._running:
                        # Full house: ask the weakest running job to yield if
                        # something strictly more important is waiting.
                        best = ready[0]
                        victim = min(self._running, key=lambda r: (r.spec.priority, -r.index))
                        if (
                            victim.spec.priority < best.spec.priority
                            and not victim.preempt_event.is_set()
                        ):
                            victim.preempt_event.set()
                            self.fault_log.record(
                                "scheduler",
                                "preempt",
                                f"preempting {victim.spec.name!r} (priority "
                                f"{victim.spec.priority}) for {best.spec.name!r} "
                                f"(priority {best.spec.priority})",
                            )
                else:
                    for rec in self._running:
                        rec.preempt_event.set()
                timeout = self.config.poll_s
                pending_backoff = [
                    rec.backoff_until - now for rec in self._order if rec.state == "backoff"
                ]
                if pending_backoff:
                    timeout = max(0.0, min(timeout, min(pending_backoff)))
                self._cond.wait(timeout)

    def _run_job(self, rec: _JobRecord, ctx: JobContext) -> None:
        try:
            try:
                runner = _resolve_runner(rec.spec.runner)
                result = runner(ctx)
            except EnginePreempted as exc:
                with self._cond:
                    self._finish_running_locked(rec)
                    rec.resume = True
                    rec.fault_log.record(
                        "scheduler", "preempt", f"checkpointed; resumes at cycle {exc.next_cycle}"
                    )
                    self._transition_locked(rec, "preempted")
                    # Outside a drain the job immediately re-enters the queue.
                    if not self._draining:
                        self._transition_locked(rec, "pending")
                    self._cond.notify_all()
            except BaseException as exc:  # crash isolation: nothing escapes the thread
                with self._cond:
                    self._finish_running_locked(rec)
                    rec.attempts += 1
                    rec.resume = True
                    rec.error = f"{type(exc).__name__}: {exc}"
                    budget = rec.spec.max_attempts or self.config.max_attempts
                    if rec.attempts >= budget:
                        self.fault_log.record(
                            "scheduler",
                            "job-failed",
                            f"{rec.spec.name!r} exhausted {budget} attempts: {rec.error}",
                        )
                        self._transition_locked(rec, "failed")
                    else:
                        delay = self._retry_delay_locked(rec.attempts)
                        rec.backoff_until = time.monotonic() + delay
                        rec.fault_log.record(
                            "scheduler",
                            "job-retry",
                            f"attempt {rec.attempts}/{budget} crashed ({rec.error}); "
                            f"requeued after {delay:.3f}s backoff",
                        )
                        self._transition_locked(rec, "backoff")
                    self._cond.notify_all()
            else:
                with self._cond:
                    self._finish_running_locked(rec)
                    if isinstance(result, dict):
                        dropped: list[str] = []
                        payload = _jsonable(result, dropped)
                        if dropped:
                            # Sanitized non-finite floats: keep the journal
                            # strict but make the loss visible in the result
                            # and the job's fault ledger.
                            payload["nonfinite_fields"] = sorted(dropped)
                            rec.fault_log.record(
                                "scheduler",
                                "nonfinite-result",
                                f"sanitized {len(dropped)} non-finite result "
                                f"field(s): {', '.join(sorted(dropped))}",
                            )
                        rec.result = payload
                    else:
                        rec.result = None
                    rec.error = None
                    self._transition_locked(rec, "done")
                    self._cond.notify_all()
        finally:
            # Whatever path the attempt took, its lease must die with it —
            # leases (and their fault routing) never accumulate across
            # retries and preemptions.
            ctx.release()

    def _retry_delay_locked(self, attempt: int) -> float:
        """Jittered exponential backoff (dedicated rng — never an experiment stream)."""
        jitter = float(self._backoff_rng.uniform(0.5, 1.5))
        return self.config.retry_backoff_s * (2 ** (attempt - 1)) * jitter

    # -- lifecycle ---------------------------------------------------------- #
    def start(self) -> None:
        """Start the supervisor thread (idempotent)."""
        with self._cond:
            if self._supervisor is not None and self._supervisor.is_alive():
                return
            self._stop = False
            self._supervisor = threading.Thread(
                target=self._supervise, name="experiment-supervisor", daemon=True
            )
            self._supervisor.start()

    def request_drain(self) -> None:
        """Signal-safe: stop launching and preempt running jobs (non-blocking)."""
        with self._cond:
            self._draining = True
            for rec in self._running:
                rec.preempt_event.set()
            self._cond.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Checkpoint-preempt everything, flush the journal, stop the supervisor.

        Returns ``True`` once no job is running (all progress durably in
        checkpoints + journal), ``False`` on timeout.
        """
        self.request_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._running:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining if remaining is not None else self.config.poll_s)
            self._write_journal_locked()
        self._shutdown_supervisor()
        return True

    def install_signal_handlers(self) -> None:
        """SIGTERM → graceful drain request (main thread only).

        Chains to whatever handler was installed before: embedding hosts
        (test harnesses, process supervisors, a second service in the same
        process) keep their SIGTERM behaviour — this service's drain runs
        first, then the previous handler fires with the same arguments.
        """
        previous = signal.getsignal(signal.SIGTERM)

        def _drain_then_chain(signum, frame):
            self.request_drain()
            if callable(previous) and previous not in (signal.SIG_IGN, signal.SIG_DFL):
                previous(signum, frame)

        signal.signal(signal.SIGTERM, _drain_then_chain)

    def _shutdown_supervisor(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None

    def run_until_complete(self, timeout: float | None = None) -> dict[str, str]:
        """Start, wait for every job to reach a terminal state, and stop.

        A drain request (e.g. SIGTERM) also ends the wait once running jobs
        have checkpointed out.  Returns the final name → state map.
        """
        self.start()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                live = [rec for rec in self._order if rec.state not in TERMINAL_STATES]
                if not live:
                    break
                if self._draining and not self._running:
                    break
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._shutdown_supervisor_from_wait()
                    raise TimeoutError(
                        f"{len(live)} job(s) not terminal after {timeout}s: "
                        f"{[rec.spec.name for rec in live]}"
                    )
                self._cond.wait(min(self.config.poll_s, remaining) if remaining else self.config.poll_s)
        self._shutdown_supervisor()
        return self.status()

    def _shutdown_supervisor_from_wait(self) -> None:
        # Called with the lock held: flip the flag here, join outside.
        self._stop = True
        self._cond.notify_all()

    def close(self) -> None:
        self._shutdown_supervisor()
        server, self._status_server = self._status_server, None
        if server is not None:
            server.close()

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# A built-in job runner: a small Lorenz-96 + EnSF OSSE.  Importable as
# "repro.workflow.scheduler:lorenz96_ensf_job", which is what the examples,
# the chaos soak and the scheduler tests submit.
# --------------------------------------------------------------------------- #


def lorenz96_ensf_job(ctx: JobContext) -> dict:
    """Run a checkpointed Lorenz-96/EnSF OSSE as an experiment-service job.

    ``ctx.params``: ``dim`` (default 12), ``n_cycles`` (8),
    ``steps_per_cycle`` (2), ``ensemble_size`` (8), ``seed`` (0),
    ``n_sde_steps`` (8), ``obs_error_var`` (0.5), ``spinup`` (50).
    Deterministic in its params: the same submission always produces the
    same RMSE history, which is what the chaos certification compares.
    """
    from repro.core.ensf import EnSF, EnSFConfig
    from repro.core.observations import IdentityObservation
    from repro.da.cycling import OSSEConfig, run_osse
    from repro.models.lorenz96 import Lorenz96

    p = ctx.params
    dim = int(p.get("dim", 12))
    seed = int(p.get("seed", 0))
    model = Lorenz96(dim=dim)
    truth0 = model.spinup(int(p.get("spinup", 50)), rng=seed)
    operator = IdentityObservation(dim, obs_error_var=float(p.get("obs_error_var", 0.5)))
    filter_ = EnSF(EnSFConfig(n_sde_steps=int(p.get("n_sde_steps", 8))), rng=seed + 5)
    config = OSSEConfig(
        n_cycles=int(p.get("n_cycles", 8)),
        steps_per_cycle=int(p.get("steps_per_cycle", 2)),
        ensemble_size=int(p.get("ensemble_size", 8)),
        seed=seed,
    )
    result = run_osse(
        model,
        model,
        filter_,
        operator,
        truth0,
        config,
        executor=ctx.executor,
        fault_log=ctx.fault_log,
        **ctx.engine_kwargs(),
    )
    return {
        "analysis_rmse": [float(v) for v in result.analysis_rmse],
        "forecast_rmse": [float(v) for v in result.forecast_rmse],
        "final_rmse": float(result.analysis_rmse[-1]),
        "fault_recoveries": len(ctx.fault_log),
    }
