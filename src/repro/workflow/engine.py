"""Unified streaming cycle engine behind every cycling workflow.

The paper's Fig. 1 loop — truth → observe → forecast → analyze →
(online-train) → diagnose — used to be hand-rolled three times
(:func:`repro.da.cycling.run_osse`, :func:`~repro.da.cycling.free_run` and
:meth:`repro.workflow.realtime.RealTimeDAWorkflow.run`), each hard-coding
the idealized protocol of one identity observation per cycle.
:class:`CycleEngine` owns that loop once, as a pipeline of pluggable stages:

``truth``
    :class:`TruthStage` — hidden-truth evolution plus the stochastic
    model-error mixture.
``observations``
    :class:`ObservationStage` — a scenario-driven
    :class:`~repro.core.observations.ObservationStream` (obs every k-th
    cycle, dropout, latency, alternating partial-coverage networks); omitted
    for free runs.
``forecast``
    :class:`EnsembleForecastStage` (member-parallel through an
    :class:`~repro.hpc.ensemble_parallel.EnsembleExecutor`) or
    :class:`DeterministicForecastStage` (single trajectory, the "SQG only" /
    "ViT only" free-run curves).
``analysis``
    :class:`FilterAnalysisStage` (any
    :class:`~repro.core.filters.EnsembleFilter`, routed through
    ``analyze_parallel`` so column-sharded LETKF analyses reuse the
    executor) or :class:`EnSFWorkflowAnalysisStage` (the real-time
    workflow's member-seeded executor path).
``post_analysis``
    :class:`OnlineTrainingStage` — per-cycle surrogate fine-tuning.

All stages consume named rng streams only, so the engine-backed drivers are
*bit-identical* to the historical inlined loops (certified by the golden
equivalence suite in ``tests/unit/test_engine.py``).  The engine also
checkpoints: :meth:`CycleEngine.checkpoint` serializes truth/ensemble state,
per-stage rng streams and in-flight observations, and
:meth:`CycleEngine.run` resumes from a checkpoint bit-identically — which is
what makes paper-scale 300-cycle runs restartable.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.filters import EnsembleStatistics, ensemble_statistics, relax_spread
from repro.core.observations import ObservationEvent, ObservationStream
from repro.models.base import propagate_ensemble
from repro.utils.faults import FaultLog, FaultPlan
from repro.utils.random import SeedSequenceFactory
from repro.utils.timing import BenchRecorder
from repro.utils.xp import StateHandle, as_host_array

__all__ = [
    "rmse",
    "CycleRecord",
    "CycleContext",
    "EngineResult",
    "EngineCheckpoint",
    "CheckpointCorruptError",
    "CheckpointRing",
    "EnginePreempted",
    "DivergencePolicy",
    "EnsembleDivergenceError",
    "TruthStage",
    "ObservationStage",
    "EnsembleForecastStage",
    "DeterministicForecastStage",
    "FilterAnalysisStage",
    "EnSFWorkflowAnalysisStage",
    "OnlineTrainingStage",
    "CycleEngine",
]


def rmse(a: np.ndarray, b: np.ndarray) -> float:
    """Root-mean-square difference between two flattened states."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def _rng_state(rng) -> dict | None:
    """Serializable bit-generator state of ``rng`` (``None`` when absent)."""
    if isinstance(rng, np.random.Generator):
        return copy.deepcopy(rng.bit_generator.state)
    return None


def _load_rng_state(rng, state: dict | None) -> None:
    if state is None:
        return
    if not isinstance(rng, np.random.Generator):
        raise ValueError("checkpoint carries an rng state but the stage has no rng")
    rng.bit_generator.state = copy.deepcopy(state)


@dataclass
class CycleRecord:
    """Diagnostics of one completed cycle.

    Degraded-mode flags: ``qc_rejected`` counts observation events this
    cycle's QC stage refused to assimilate, ``deadline_skipped`` marks a
    forecast-only cycle whose remaining analyses were dropped at the cycle
    deadline, and ``divergence_action`` names the in-place divergence
    recovery applied (currently ``"reinflate"``; a checkpoint *reset*
    discards the diverged cycle entirely, so it appears in the
    :class:`~repro.utils.faults.FaultLog` instead).
    """

    cycle: int
    forecast_rmse: float
    analysis_rmse: float
    analysis_spread: float
    observed: bool
    online_loss: float | None = None
    qc_rejected: int = 0
    deadline_skipped: bool = False
    divergence_action: str | None = None


@dataclass
class CycleContext:
    """Mutable per-cycle state handed through the stage pipeline.

    ``state`` is the ensemble: a host array after an analysis, or a
    :class:`~repro.utils.xp.StateHandle` after a device-resident ensemble
    forecast (host consumers unwrap via
    :func:`~repro.utils.xp.as_host_array`, sharing the handle's single
    cached download).  ``truth`` and the diagnostics are always host arrays.
    """

    cycle: int
    recorder: BenchRecorder
    executor: object | None
    truth: np.ndarray
    state: object
    events: list[ObservationEvent] = field(default_factory=list)
    forecast_mean: np.ndarray | None = None
    analysis_stats: EnsembleStatistics | None = None
    online_loss: float | None = None


@dataclass
class EngineResult:
    """Full-run diagnostics (resumed runs include the pre-checkpoint cycles)."""

    records: list[CycleRecord]
    truth_final: np.ndarray
    state_final: np.ndarray
    mean_final: np.ndarray
    history: np.ndarray | None
    timing: dict
    fault_log: FaultLog | None = None

    def series(self, name: str) -> np.ndarray:
        """Per-cycle series of one :class:`CycleRecord` field."""
        return np.array([getattr(r, name) for r in self.records], dtype=float)

    @property
    def forecast_rmse(self) -> np.ndarray:
        return self.series("forecast_rmse")

    @property
    def analysis_rmse(self) -> np.ndarray:
        return self.series("analysis_rmse")

    @property
    def analysis_spread(self) -> np.ndarray:
        return self.series("analysis_spread")


@dataclass
class EngineCheckpoint:
    """Everything needed to resume a cycling run bit-identically.

    ``stage_state`` maps pipeline-slot names to the owning stage's
    :meth:`state_dict` (rng bit-generator states, in-flight observation
    events, the online trainer's previous analysis mean).  Loading a
    checkpoint into an engine with a different slot layout — or whose
    ``fingerprint`` (stage classes, steps per cycle, observation-scenario
    parameters, model/filter types) drifted from the checkpointing engine —
    is refused, since a silently-accepted mismatch would void the
    bit-identical-resume contract.  The fingerprint is a drift tripwire,
    not a proof: numerical knobs it cannot see (e.g. a filter's SDE step
    count) remain the caller's responsibility.
    """

    next_cycle: int
    truth: np.ndarray
    state: np.ndarray
    records: list[CycleRecord]
    history: list[np.ndarray] | None
    stage_state: dict[str, dict]
    fingerprint: dict[str, dict]

    def save(self, path) -> None:
        """Write the checkpoint to ``path`` crash-consistently.

        The file layout is a magic line, the SHA-256 of the pickled payload,
        then the payload — so :meth:`load` can tell a torn/bit-rotted file
        from a valid one.  The bytes are written to a sibling temporary
        file, flushed and fsynced, then moved over ``path`` with
        :func:`os.replace` (atomic on POSIX).  A process killed mid-save
        therefore leaves either the old checkpoint or the new one — never a
        truncated file that would poison a later ``resume``.
        """
        payload = pickle.dumps(self)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(_CKPT_MAGIC)
                fh.write(digest)
                fh.write(b"\n")
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path) -> "EngineCheckpoint":
        """Load and checksum-verify a checkpoint written by :meth:`save`.

        Raises :class:`CheckpointCorruptError` (a :class:`ValueError`) when
        the file is truncated, fails its checksum, or does not unpickle —
        the signal ``resume="auto"`` uses to fall back to an older
        checkpoint.  Pre-checksum checkpoints (raw pickles) still load.
        """
        data = Path(path).read_bytes()
        if data.startswith(_CKPT_MAGIC):
            head = len(_CKPT_MAGIC)
            digest, sep, payload = data[head : head + 64], data[head + 64 : head + 65], data[head + 65 :]
            if sep != b"\n" or hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
                raise CheckpointCorruptError(
                    f"checkpoint {str(path)!r} is corrupt (checksum mismatch or truncated)"
                )
        else:
            payload = data  # legacy raw-pickle checkpoint
        try:
            ckpt = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointCorruptError(
                f"checkpoint {str(path)!r} does not unpickle: {exc!r}"
            ) from exc
        if not isinstance(ckpt, cls):
            raise ValueError(f"{path!r} does not contain an EngineCheckpoint")
        return ckpt


_CKPT_MAGIC = b"REPRO-CKPT-1\n"


class CheckpointCorruptError(ValueError):
    """A checkpoint file failed verification (truncated, bit-rot, bad pickle)."""


class EnginePreempted(Exception):
    """Raised by :meth:`CycleEngine.run` when a ``preempt`` hook fires.

    The engine checkpoints the just-completed cycle *before* raising, so the
    run can later continue bit-identically with ``resume="auto"``.
    ``next_cycle`` is the cycle the resumed run will execute first.
    """

    def __init__(self, next_cycle: int):
        super().__init__(f"run preempted at cycle boundary {next_cycle}")
        self.next_cycle = int(next_cycle)


class CheckpointRing:
    """Rotating ring of the last ``keep_last`` checkpoints of a run.

    Members live next to ``base_path`` as ``<name>.c<NNNNNN>`` (the cycle
    the checkpoint resumes at), newest last; :meth:`save` prunes the oldest
    beyond ``keep_last``.  :meth:`latest_valid` walks newest→oldest past
    corrupt members, which is what lets ``resume="auto"`` and the
    reset-from-checkpoint divergence policy survive a torn latest file.
    """

    def __init__(self, base_path, keep_last: int = 3) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be positive")
        self.base = Path(base_path)
        self.keep_last = int(keep_last)

    def path_for(self, next_cycle: int) -> Path:
        return self.base.with_name(f"{self.base.name}.c{int(next_cycle):06d}")

    def paths(self) -> list[Path]:
        """Ring members on disk, oldest first."""
        prefix = self.base.name + ".c"
        members = []
        if self.base.parent.is_dir():
            for p in self.base.parent.iterdir():
                if p.name.startswith(prefix) and p.name[len(prefix) :].isdigit():
                    members.append((int(p.name[len(prefix) :]), p))
        return [p for _, p in sorted(members)]

    def save(self, ckpt: EngineCheckpoint) -> Path:
        path = self.path_for(ckpt.next_cycle)
        ckpt.save(path)
        for stale in self.paths()[: -self.keep_last]:
            stale.unlink(missing_ok=True)
        return path

    def latest_valid(self, fault_log: FaultLog | None = None):
        """Newest loadable ``(checkpoint, path)``, or ``None`` if none is.

        Invalid members are skipped (and noted in ``fault_log`` as
        ``"checkpoint-fallback"`` actions), not deleted — they are evidence.
        """
        for path in reversed(self.paths()):
            try:
                return EngineCheckpoint.load(path), path
            except (CheckpointCorruptError, OSError, ValueError) as exc:
                if fault_log is not None:
                    fault_log.record(
                        "checkpoint", "checkpoint-fallback", f"skipping {path.name}: {exc}"
                    )
        return None


class EnsembleDivergenceError(RuntimeError):
    """The ensemble diverged and the policy could not (or must not) recover."""


@dataclass(frozen=True)
class DivergencePolicy:
    """What the engine does when the ensemble blows up.

    Divergence means a non-finite ensemble state, or a mean spread above
    ``spread_max`` (when set).  ``action`` is one of:

    ``"halt"``
        Raise :class:`EnsembleDivergenceError` (the default: fail loudly).
    ``"reinflate"``
        Deterministically rescale the perturbations around the ensemble
        mean down/up to ``reinflate_to`` (default ``spread_max``) and carry
        on; only possible while the state is still finite.
    ``"reset"``
        Reload the newest valid checkpoint and recompute from there —
        bit-identical recovery when the divergence was caused by a
        transient (e.g. a corrupted observation batch), since each injected
        fault fires only once.  Requires checkpointing with ``keep_last``;
        after ``max_resets`` reloads the engine halts instead of livelocking
        on a deterministic divergence.
    """

    spread_max: float | None = None
    action: str = "halt"
    reinflate_to: float | None = None
    max_resets: int = 3

    def __post_init__(self) -> None:
        if self.action not in ("halt", "reinflate", "reset"):
            raise ValueError(f"unknown divergence action {self.action!r}")
        if self.max_resets < 1:
            raise ValueError("max_resets must be positive")


# --------------------------------------------------------------------------- #
# Pipeline stages
# --------------------------------------------------------------------------- #


class TruthStage:
    """Hidden-truth evolution: physics model plus unknown model error."""

    def __init__(self, model, steps_per_cycle: int, model_error=None) -> None:
        self.model = model
        self.steps_per_cycle = int(steps_per_cycle)
        self.model_error = model_error

    def run(self, ctx: CycleContext) -> None:
        with ctx.recorder.section("truth"):
            ctx.truth = self.model.forecast(ctx.truth, n_steps=self.steps_per_cycle)
            if self.model_error is not None:
                ctx.truth = self.model_error.perturb(ctx.truth)

    def state_dict(self) -> dict:
        if self.model_error is None:
            return {}
        return {"model_error_rng": _rng_state(getattr(self.model_error, "rng", None))}

    def load_state_dict(self, state: dict) -> None:
        if self.model_error is not None:
            _load_rng_state(self.model_error.rng, state.get("model_error_rng"))


class ObservationStage:
    """Measure and deliver this cycle's observation events from the stream."""

    def __init__(self, stream: ObservationStream) -> None:
        self.stream = stream

    def run(self, ctx: CycleContext) -> None:
        ctx.events = self.stream.advance(ctx.cycle, ctx.truth)

    def state_dict(self) -> dict:
        return self.stream.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.stream.load_state_dict(state)


class EnsembleForecastStage:
    """Member-parallel ensemble forecast to the next analysis time.

    The stage owns the device-state seam: the incoming ensemble (a host
    array after an analysis, or a still-resident handle on unobserved
    cycles) is wrapped in a :class:`~repro.utils.xp.StateHandle` on the
    model's array backend, advanced device-side when the model supports it
    (``forecast_device``), and handed downstream as a handle whose single
    cached host mirror — materialised here for the forecast mean — serves
    every host consumer (diagnostics, QC, analysis input, checkpoints)
    without further downloads.
    """

    def __init__(self, model, steps_per_cycle: int) -> None:
        self.model = model
        self.steps_per_cycle = int(steps_per_cycle)

    @property
    def xp(self):
        """The model's array backend (``None`` for pre-shim models)."""
        return getattr(self.model, "xp", None)

    def run(self, ctx: CycleContext) -> None:
        with ctx.recorder.section("forecast"):
            state = StateHandle.wrap(ctx.state, self.xp)
            ctx.state = propagate_ensemble(
                self.model, state, n_steps=self.steps_per_cycle, executor=ctx.executor
            )
        # The one scheduled download of the cycle: the handle caches this
        # host mirror, so everything downstream shares it.
        ctx.forecast_mean = ctx.state.host().mean(axis=0)

    def statistics(self, state) -> EnsembleStatistics:
        return ensemble_statistics(as_host_array(state))

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class DeterministicForecastStage:
    """Single-trajectory forecast (free runs: the Fig. 4 no-DA curves)."""

    def __init__(self, model, steps_per_cycle: int) -> None:
        self.model = model
        self.steps_per_cycle = int(steps_per_cycle)

    def run(self, ctx: CycleContext) -> None:
        with ctx.recorder.section("forecast"):
            # The state *is* the diagnosed mean here, so it stays a host
            # array (the model's own forecast pays one up/down per cycle).
            ctx.state = self.model.forecast(ctx.state, n_steps=self.steps_per_cycle)
        ctx.forecast_mean = ctx.state

    def statistics(self, state) -> EnsembleStatistics:
        state = as_host_array(state)
        return EnsembleStatistics(mean=state, spread=np.zeros_like(state))

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class FilterAnalysisStage:
    """Analysis through any :class:`~repro.core.filters.EnsembleFilter`.

    Routed through ``analyze_parallel`` so filters with an intra-analysis
    decomposition (the LETKF's column-sharded solve stage) reuse the
    engine's executor; filters without one fall back to their serial
    ``analyze``.
    """

    def __init__(self, filter_) -> None:
        self.filter = filter_

    def analyze(self, ctx: CycleContext, event: ObservationEvent) -> np.ndarray:
        # Filters take the host mirror (cached by the forecast stage — no
        # extra download); their internal kernels manage their own fixed
        # per-analysis device staging.
        return self.filter.analyze_parallel(
            as_host_array(ctx.state), event.observation, event.operator,
            executor=ctx.executor,
        )

    def state_dict(self) -> dict:
        return {"filter_rng": _rng_state(getattr(self.filter, "rng", None))}

    def load_state_dict(self, state: dict) -> None:
        rng_state = state.get("filter_rng")
        if rng_state is not None:
            _load_rng_state(getattr(self.filter, "rng", None), rng_state)


class EnSFWorkflowAnalysisStage:
    """The real-time workflow's EnSF analysis semantics.

    Serial runs use the filter's own rng (``EnSF.analyze``); with an
    executor the analysis is member-seeded through
    :meth:`~repro.hpc.ensemble_parallel.EnsembleExecutor.analyze_ensf`, with
    the per-cycle seed derived from the workflow's root via the named
    ``"ensf-parallel"`` stream, followed by the global spread relaxation the
    executor path cannot apply per worker.
    """

    def __init__(self, ensf, seeds: SeedSequenceFactory, stream_name: str = "ensf-parallel") -> None:
        self.ensf = ensf
        self.seeds = seeds
        self.stream_name = stream_name

    def analyze(self, ctx: CycleContext, event: ObservationEvent) -> np.ndarray:
        forecast = as_host_array(ctx.state)
        if ctx.executor is None:
            return self.ensf.analyze(forecast, event.observation, event.operator)
        analysis = ctx.executor.analyze_ensf(
            self.ensf,
            forecast,
            event.observation,
            event.operator,
            seed=self.seeds.seed_for(self.stream_name, ctx.cycle),
        )
        return relax_spread(analysis, forecast, factor=self.ensf.config.spread_relaxation)

    def state_dict(self) -> dict:
        return {"filter_rng": _rng_state(getattr(self.ensf, "rng", None))}

    def load_state_dict(self, state: dict) -> None:
        rng_state = state.get("filter_rng")
        if rng_state is not None:
            _load_rng_state(getattr(self.ensf, "rng", None), rng_state)


class OnlineTrainingStage:
    """Per-cycle surrogate fine-tuning on the newly observed transition.

    Checkpoint note: the stage state carries only the previous analysis mean
    — the surrogate weights and optimizer moments live in the (shared)
    surrogate object, so an in-process resume is exact, while a cross-process
    restart must persist the surrogate alongside the engine checkpoint.
    """

    def __init__(self, trainer) -> None:
        self.trainer = trainer
        self.previous: np.ndarray | None = None

    def prime(self, previous_mean: np.ndarray) -> None:
        """Set the transition input for the first cycle (initial ensemble mean)."""
        self.previous = np.asarray(previous_mean, dtype=float)

    def run(self, ctx: CycleContext) -> None:
        if self.previous is None:
            raise ValueError("OnlineTrainingStage.prime() must be called before run()")
        with ctx.recorder.section("online_training"):
            ctx.online_loss = self.trainer.update(self.previous, ctx.analysis_stats.mean)
        self.previous = ctx.analysis_stats.mean

    def state_dict(self) -> dict:
        return {"previous": None if self.previous is None else np.array(self.previous)}

    def load_state_dict(self, state: dict) -> None:
        previous = state.get("previous")
        self.previous = None if previous is None else np.array(previous)


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #

_SLOTS = ("truth", "observations", "forecast", "analysis", "post_analysis")


class CycleEngine:
    """Run the truth→observe→forecast→analyze→(train)→diagnose loop.

    Parameters
    ----------
    truth:
        :class:`TruthStage`.
    forecast:
        :class:`EnsembleForecastStage` or :class:`DeterministicForecastStage`.
    observations:
        :class:`ObservationStage` or ``None`` (free runs).
    analysis:
        :class:`FilterAnalysisStage` / :class:`EnSFWorkflowAnalysisStage` or
        ``None``; each delivered observation event triggers one analysis,
        timed as one ``"analysis"`` recorder section (late arrivals can
        yield several per cycle, schedule gaps none).
    post_analysis:
        :class:`OnlineTrainingStage` or ``None``.
    executor:
        Optional :class:`~repro.hpc.ensemble_parallel.EnsembleExecutor`
        shared by the forecast and analysis stages.
    recorder:
        Optional :class:`~repro.utils.timing.BenchRecorder`; results report
        only the sections recorded by their own :meth:`run` call.
    store_history:
        Keep the per-cycle analysis-mean states in the result.
    on_cycle:
        Optional callback invoked with each completed :class:`CycleRecord`
        (the real-time workflow uses it for incremental timing/history).
        Cycles replayed after a divergence *reset* recompute records the
        callback already saw bit-identically, so they are not re-delivered.
    qc:
        Optional :class:`~repro.core.observations.ObservationQC`; events it
        rejects are counted in ``CycleRecord.qc_rejected`` and skipped.
    cycle_deadline_s:
        Optional per-cycle wall-clock budget.  Once exceeded, the cycle's
        remaining analyses are skipped (forecast-only cycle, flagged as
        ``CycleRecord.deadline_skipped``) — the real-time degraded mode.
    divergence:
        Optional :class:`DivergencePolicy`.
    fault_plan / fault_log:
        Deterministic fault injection (see :mod:`repro.utils.faults`); the
        engine owns the ``"checkpoint"`` site.  The plan defaults to
        ``FaultPlan.from_env()``; every degradation/recovery (QC reject,
        deadline skip, checkpoint fallback, divergence handling) is appended
        to the log.
    """

    def __init__(
        self,
        *,
        truth: TruthStage,
        forecast,
        observations: ObservationStage | None = None,
        analysis=None,
        post_analysis: OnlineTrainingStage | None = None,
        executor=None,
        recorder: BenchRecorder | None = None,
        store_history: bool = False,
        on_cycle=None,
        qc=None,
        cycle_deadline_s: float | None = None,
        divergence: DivergencePolicy | None = None,
        fault_plan: FaultPlan | None = None,
        fault_log: FaultLog | None = None,
    ) -> None:
        self.truth_stage = truth
        self.forecast_stage = forecast
        self.observation_stage = observations
        self.analysis_stage = analysis
        self.post_analysis_stage = post_analysis
        self.executor = executor
        self.recorder = recorder if recorder is not None else BenchRecorder()
        self.store_history = bool(store_history)
        self.on_cycle = on_cycle
        self.qc = qc
        self.cycle_deadline_s = None if cycle_deadline_s is None else float(cycle_deadline_s)
        self.divergence = divergence
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        # run state (populated by run()/checkpoint loading)
        self._truth: np.ndarray | None = None
        self._state: np.ndarray | None = None
        self._next_cycle = 0
        self._records: list[CycleRecord] = []
        self._history: list[np.ndarray] | None = [] if self.store_history else None

    # -- stage bookkeeping ------------------------------------------------- #
    def _stages(self) -> dict[str, object]:
        slots = {
            "truth": self.truth_stage,
            "observations": self.observation_stage,
            "forecast": self.forecast_stage,
            "analysis": self.analysis_stage,
            "post_analysis": self.post_analysis_stage,
        }
        return {name: stage for name, stage in slots.items() if stage is not None}

    def _fingerprint(self) -> dict[str, dict]:
        """Structural descriptor of the pipeline, stored with checkpoints.

        Captures what a resuming engine must not have drifted on for the
        bit-identical contract to be meaningful: stage classes, steps per
        cycle, the model/filter types and the observation-scenario
        parameters (schedule, dropout, latency, operator network shape).
        """
        fingerprint: dict[str, dict] = {}
        for name, stage in self._stages().items():
            desc: dict = {"stage": type(stage).__name__}
            steps = getattr(stage, "steps_per_cycle", None)
            if steps is not None:
                desc["steps_per_cycle"] = int(steps)
            for attr in ("model", "filter", "ensf"):
                obj = getattr(stage, attr, None)
                if obj is not None:
                    desc[attr] = type(obj).__name__
            stream = getattr(stage, "stream", None)
            if stream is not None:
                scenario = stream.scenario
                desc["scenario"] = {
                    "name": scenario.name,
                    "every": scenario.every,
                    "dropout": scenario.dropout,
                    "latency": scenario.latency,
                    "start": scenario.start,
                }
                desc["operators"] = [
                    (type(op).__name__, op.state_dim, op.obs_dim) for op in stream.operators
                ]
            fingerprint[name] = desc
        return fingerprint

    # -- checkpointing ----------------------------------------------------- #
    def checkpoint(self) -> EngineCheckpoint:
        """Snapshot the run state for a bit-identical resume."""
        if self._truth is None or self._state is None:
            raise ValueError("nothing to checkpoint: run() has not started")
        # Device-resident state converts to a plain host array here:
        # checkpoints are backend-portable by construction, so resume="auto"
        # works across REPRO_ARRAY_BACKEND changes (the load path rehydrates
        # onto whatever backend the resuming engine is configured with).
        return EngineCheckpoint(
            next_cycle=self._next_cycle,
            truth=np.array(self._truth),
            state=np.array(as_host_array(self._state)),
            records=copy.deepcopy(self._records),
            history=None if self._history is None else [h.copy() for h in self._history],
            stage_state={name: stage.state_dict() for name, stage in self._stages().items()},
            fingerprint=self._fingerprint(),
        )

    def _load_checkpoint(self, ckpt: EngineCheckpoint) -> None:
        stages = self._stages()
        if set(ckpt.stage_state) != set(stages):
            raise ValueError(
                f"checkpoint stages {sorted(ckpt.stage_state)} do not match "
                f"engine stages {sorted(stages)}"
            )
        fingerprint = self._fingerprint()
        if ckpt.fingerprint != fingerprint:
            drifted = sorted(
                name
                for name in fingerprint
                if ckpt.fingerprint.get(name) != fingerprint[name]
            )
            raise ValueError(
                "checkpoint pipeline fingerprint does not match this engine "
                f"(drifted slots: {drifted}); resuming would not be "
                "bit-identical to the checkpointing run"
            )
        for name, stage in stages.items():
            stage.load_state_dict(ckpt.stage_state[name])
        self._truth = np.array(ckpt.truth)
        # Checkpoint state is a host array; rehydrate it onto the engine's
        # configured array backend so a resumed run is device-resident from
        # its first forecast (identity for host-only forecast stages).
        state = np.array(ckpt.state)
        xp = getattr(self.forecast_stage, "xp", None)
        self._state = state if xp is None else StateHandle.from_host(xp, state)
        self._next_cycle = int(ckpt.next_cycle)
        self._records = copy.deepcopy(ckpt.records)
        if self.store_history:
            if ckpt.history is None:
                raise ValueError("checkpoint has no history but store_history is set")
            self._history = [np.array(h) for h in ckpt.history]
        else:
            self._history = None

    # -- degraded modes ---------------------------------------------------- #
    def _divergence_reason(self, stats: EnsembleStatistics, state) -> str | None:
        """Why the ensemble counts as diverged, or ``None`` when healthy."""
        if not np.all(np.isfinite(as_host_array(state))):
            return "non-finite ensemble state"
        limit = self.divergence.spread_max
        if limit is not None and stats.mean_spread > limit:
            return f"mean spread {stats.mean_spread:.6g} above limit {limit:.6g}"
        return None

    def _latest_valid_checkpoint(self, checkpoint_path, ring: "CheckpointRing | None"):
        """Newest loadable ``(checkpoint, path)`` on disk, or ``None``."""
        if ring is not None:
            return ring.latest_valid(self.fault_log)
        if checkpoint_path is None:
            return None
        path = Path(checkpoint_path)
        try:
            return EngineCheckpoint.load(path), path
        except FileNotFoundError:
            return None
        except (CheckpointCorruptError, OSError, ValueError) as exc:
            self.fault_log.record(
                "checkpoint", "checkpoint-fallback", f"skipping {path.name}: {exc}"
            )
            return None

    # -- the loop ---------------------------------------------------------- #
    def run(
        self,
        truth0: np.ndarray | None = None,
        state0: np.ndarray | None = None,
        n_cycles: int | None = None,
        *,
        resume: EngineCheckpoint | str | Path | None = None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
        keep_last: int | None = None,
        preempt=None,
    ) -> EngineResult:
        """Run cycles until ``n_cycles`` total have completed.

        Fresh runs start from ``truth0``/``state0`` at cycle 0; with
        ``resume`` (a checkpoint or a path to one) the initial states are
        taken from the checkpoint and cycling continues at its
        ``next_cycle``.  ``resume="auto"`` resumes from the newest *valid*
        checkpoint on disk — walking past truncated/corrupt files — and
        starts fresh (from ``truth0``/``state0``) when none exists.

        ``checkpoint_every``/``checkpoint_path`` write a rolling checkpoint
        after every so-many completed cycles: to a single self-replacing
        file by default, or — with ``keep_last=k`` — to a
        :class:`CheckpointRing` of the ``k`` newest ``<path>.c<NNNNNN>``
        files (which is what makes ``resume="auto"`` and the ``"reset"``
        divergence policy robust to a torn latest checkpoint).

        ``preempt`` is an optional zero-argument callable polled once per
        **cycle boundary** (after the cycle's bookkeeping and ``on_cycle``
        delivery).  When it returns true the engine writes a checkpoint of
        the completed cycle — unless the periodic checkpoint already covered
        it — and raises :class:`EnginePreempted`; a later
        ``run(resume="auto")`` continues bit-identically.  Requires
        ``checkpoint_every``/``checkpoint_path``.  Exceptions raised by the
        hook itself (e.g. an injected job crash) propagate unchanged.
        """
        if preempt is not None and checkpoint_path is None:
            raise ValueError("preempt needs checkpoint_every/checkpoint_path")
        if n_cycles is None or n_cycles < 1:
            raise ValueError("n_cycles must be positive")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        if (checkpoint_every is None) != (checkpoint_path is None):
            raise ValueError("checkpoint_every and checkpoint_path go together")
        if keep_last is not None and checkpoint_path is None:
            raise ValueError("keep_last needs checkpoint_every/checkpoint_path")
        ring = None if keep_last is None else CheckpointRing(checkpoint_path, keep_last)

        if isinstance(resume, str) and resume == "auto":
            found = self._latest_valid_checkpoint(checkpoint_path, ring)
            resume = found[0] if found is not None else None
        if resume is not None:
            if isinstance(resume, (str, Path)):
                resume = EngineCheckpoint.load(resume)
            self._load_checkpoint(resume)
        else:
            if truth0 is None or state0 is None:
                raise ValueError("a fresh run needs truth0 and state0")
            self._truth = np.array(truth0, dtype=float)
            self._state = np.array(state0, dtype=float)
            self._next_cycle = 0
            self._records = []
            self._history = [] if self.store_history else None
        start = self._next_cycle
        if n_cycles == start and resume is not None:
            # The checkpoint already covers the whole request — possible when
            # an experiment service is killed between a job's final
            # checkpoint write and its "done" journal entry.  Nothing to
            # recompute: the completed result lives in the checkpoint.
            stats_final = self.forecast_stage.statistics(self._state)
            return EngineResult(
                records=list(self._records),
                truth_final=self._truth,
                state_final=as_host_array(self._state),
                mean_final=stats_final.mean,
                history=None if self._history is None else np.array(self._history),
                timing=self.recorder.report(since=self.recorder.snapshot()),
                fault_log=self.fault_log,
            )
        if n_cycles <= start:
            raise ValueError(
                f"n_cycles={n_cycles} already completed (checkpoint at cycle {start})"
            )

        recorder = self.recorder
        timing_snapshot = recorder.snapshot()
        resets = 0
        reported_high = start - 1  # highest cycle already delivered to on_cycle
        while self._next_cycle < n_cycles:
            cycle = self._next_cycle
            cycle_started = time.perf_counter()
            ctx = CycleContext(
                cycle=cycle,
                recorder=recorder,
                executor=self.executor,
                truth=self._truth,
                state=self._state,
            )
            self.truth_stage.run(ctx)
            if self.observation_stage is not None:
                self.observation_stage.run(ctx)
            self.forecast_stage.run(ctx)
            forecast_rmse = rmse(ctx.forecast_mean, ctx.truth)

            observed = False
            qc_rejected = 0
            deadline_skipped = False
            if self.analysis_stage is not None:
                for event in ctx.events:
                    if (
                        self.cycle_deadline_s is not None
                        and time.perf_counter() - cycle_started > self.cycle_deadline_s
                    ):
                        deadline_skipped = True
                        self.fault_log.record(
                            "observations",
                            "analysis-skipped",
                            f"cycle deadline {self.cycle_deadline_s}s exceeded; "
                            "remaining analyses dropped (forecast-only cycle)",
                            cycle=cycle,
                        )
                        break
                    if self.qc is not None:
                        report = self.qc.check(event, ctx.forecast_mean)
                        if not report.ok:
                            qc_rejected += 1
                            self.fault_log.record(
                                "observations", "qc-reject", report.reason, cycle=cycle
                            )
                            continue
                    with recorder.section("analysis"):
                        ctx.state = self.analysis_stage.analyze(ctx, event)
                    observed = True

            stats = self.forecast_stage.statistics(ctx.state)
            divergence_action = None
            if self.divergence is not None:
                reason = self._divergence_reason(stats, ctx.state)
                if reason is not None:
                    stats, divergence_action = self._handle_divergence(
                        ctx, stats, reason, checkpoint_path, ring, resets
                    )
                    if divergence_action == "reset":
                        resets += 1
                        continue  # state rewound; recompute from the checkpoint
            ctx.analysis_stats = stats
            if self.post_analysis_stage is not None:
                self.post_analysis_stage.run(ctx)

            record = CycleRecord(
                cycle=cycle,
                forecast_rmse=forecast_rmse,
                analysis_rmse=rmse(stats.mean, ctx.truth),
                analysis_spread=stats.mean_spread,
                observed=observed,
                online_loss=ctx.online_loss,
                qc_rejected=qc_rejected,
                deadline_skipped=deadline_skipped,
                divergence_action=divergence_action,
            )
            self._truth = ctx.truth
            self._state = ctx.state
            self._records.append(record)
            if self._history is not None:
                self._history.append(stats.mean.copy())
            self._next_cycle = cycle + 1
            wrote_checkpoint = False
            if checkpoint_every is not None and (cycle + 1 - start) % checkpoint_every == 0:
                ckpt = self.checkpoint()
                written = ring.save(ckpt) if ring is not None else Path(checkpoint_path)
                if ring is None:
                    ckpt.save(written)
                self._maybe_corrupt_checkpoint(written, cycle)
                wrote_checkpoint = True
            if self.on_cycle is not None and cycle > reported_high:
                reported_high = cycle
                self.on_cycle(record)
            if preempt is not None and preempt():
                if not wrote_checkpoint:
                    # The preempt save must not visit the "checkpoint" fault
                    # site: preemption is scheduling, and shifting the site's
                    # occurrence counter would make fault plans fire at
                    # different cycles depending on when jobs were preempted.
                    ckpt = self.checkpoint()
                    written = ring.save(ckpt) if ring is not None else Path(checkpoint_path)
                    if ring is None:
                        ckpt.save(written)
                raise EnginePreempted(cycle + 1)

        stats_final = self.forecast_stage.statistics(self._state)
        return EngineResult(
            records=list(self._records),
            truth_final=self._truth,
            state_final=as_host_array(self._state),
            mean_final=stats_final.mean,
            history=None if self._history is None else np.array(self._history),
            timing=recorder.report(since=timing_snapshot),
            fault_log=self.fault_log,
        )

    def _handle_divergence(
        self, ctx, stats, reason, checkpoint_path, ring, resets_done
    ):
        """Apply the divergence policy; returns ``(stats, action_taken)``.

        ``"reinflate"`` rescales in place and returns fresh statistics;
        ``"reset"`` rewinds the engine to the newest valid checkpoint (the
        caller restarts the cycle); anything unrecoverable raises
        :class:`EnsembleDivergenceError`.
        """
        policy = self.divergence
        cycle = ctx.cycle
        if policy.action == "reinflate":
            target = policy.reinflate_to if policy.reinflate_to is not None else policy.spread_max
            state = as_host_array(ctx.state)
            finite = bool(np.all(np.isfinite(state)))
            if finite and target is not None and stats.mean_spread > 0:
                factor = float(target) / float(stats.mean_spread)
                # Host arithmetic on the cached mirror; the next forecast
                # re-wraps (and re-uploads) the corrected ensemble.
                ctx.state = stats.mean + (state - stats.mean) * factor
                self.fault_log.record(
                    "observations",
                    "divergence-reinflate",
                    f"{reason}; rescaled perturbations by {factor:.3g}",
                    cycle=cycle,
                )
                return self.forecast_stage.statistics(ctx.state), "reinflate"
            raise EnsembleDivergenceError(
                f"cycle {cycle}: {reason}; reinflation impossible "
                f"({'non-finite state' if not finite else 'no target spread'})"
            )
        if policy.action == "reset":
            if resets_done >= policy.max_resets:
                raise EnsembleDivergenceError(
                    f"cycle {cycle}: {reason}; divergence persisted through "
                    f"{policy.max_resets} checkpoint reset(s)"
                )
            found = self._latest_valid_checkpoint(checkpoint_path, ring)
            if found is None:
                raise EnsembleDivergenceError(
                    f"cycle {cycle}: {reason}; no valid checkpoint to reset from"
                )
            ckpt, path = found
            self._load_checkpoint(ckpt)
            self.fault_log.record(
                "checkpoint",
                "divergence-reset",
                f"{reason}; reset to {path.name} (resumes at cycle {ckpt.next_cycle})",
                cycle=cycle,
            )
            return stats, "reset"
        raise EnsembleDivergenceError(f"cycle {cycle}: {reason}")

    def _maybe_corrupt_checkpoint(self, path: Path, cycle: int) -> None:
        """Fire any injected ``"checkpoint"``-site faults on the file just written."""
        if self.fault_plan is None:
            return
        for event in self.fault_plan.visit("checkpoint"):
            if event.kind != "checkpoint-truncate":
                continue
            keep = float(event.payload.get("keep", 0.5))
            size = path.stat().st_size
            with open(path, "r+b") as fh:
                fh.truncate(max(0, int(size * keep)))
            self.fault_log.record(
                "checkpoint",
                "checkpoint-truncate",
                f"injected truncation of {path.name} to {keep:.0%} of {size} bytes",
                cycle=cycle,
            )
