"""End-to-end real-time data-assimilation workflow (Fig. 1 of the paper)."""

from repro.workflow.config import ExperimentConfig
from repro.workflow.metrics import rmse_series, pattern_correlation, error_field
from repro.workflow.experiments import (
    FourWayComparison,
    run_four_experiments,
    build_sqg_testbed,
)
from repro.workflow.realtime import RealTimeDAWorkflow, WorkflowTimings

__all__ = [
    "ExperimentConfig",
    "rmse_series",
    "pattern_correlation",
    "error_field",
    "FourWayComparison",
    "run_four_experiments",
    "build_sqg_testbed",
    "RealTimeDAWorkflow",
    "WorkflowTimings",
]
