"""End-to-end real-time data-assimilation workflow (Fig. 1 of the paper).

Attribute access is lazy (PEP 562): the cycling drivers in
:mod:`repro.da.cycling` import the engine from this package, while
:mod:`repro.workflow.experiments` imports those drivers back — resolving
exports on first access keeps that dependency loop acyclic at import time.
"""

import importlib

_EXPORTS = {
    "ExperimentConfig": "repro.workflow.config",
    "rmse_series": "repro.workflow.metrics",
    "pattern_correlation": "repro.workflow.metrics",
    "error_field": "repro.workflow.metrics",
    "FourWayComparison": "repro.workflow.experiments",
    "run_four_experiments": "repro.workflow.experiments",
    "build_sqg_testbed": "repro.workflow.experiments",
    "RealTimeDAWorkflow": "repro.workflow.realtime",
    "WorkflowTimings": "repro.workflow.realtime",
    "ExperimentService": "repro.workflow.scheduler",
    "ServiceConfig": "repro.workflow.scheduler",
    "JobSpec": "repro.workflow.scheduler",
    "JobContext": "repro.workflow.scheduler",
    "lorenz96_ensf_job": "repro.workflow.scheduler",
    "StatusServer": "repro.workflow.statusd",
    "EnginePreempted": "repro.workflow.engine",
    "CycleEngine": "repro.workflow.engine",
    "CycleRecord": "repro.workflow.engine",
    "CycleContext": "repro.workflow.engine",
    "EngineResult": "repro.workflow.engine",
    "EngineCheckpoint": "repro.workflow.engine",
    "CheckpointCorruptError": "repro.workflow.engine",
    "CheckpointRing": "repro.workflow.engine",
    "DivergencePolicy": "repro.workflow.engine",
    "EnsembleDivergenceError": "repro.workflow.engine",
    "TruthStage": "repro.workflow.engine",
    "ObservationStage": "repro.workflow.engine",
    "EnsembleForecastStage": "repro.workflow.engine",
    "DeterministicForecastStage": "repro.workflow.engine",
    "FilterAnalysisStage": "repro.workflow.engine",
    "EnSFWorkflowAnalysisStage": "repro.workflow.engine",
    "OnlineTrainingStage": "repro.workflow.engine",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
