"""The real-time sequential DA workflow of Fig. 1.

Each analysis cycle performs, in order:

1. **surrogate forecast** of the ensemble to the new observation time;
2. **EnSF analysis** blending the new observation into the ensemble;
3. **online ViT training** on the newly available analysis (the "real-time
   adaptation through the integration of observational data");

and records the wall-clock time of each stage.  The paper's central HPC
observation is that steps 2 and 3 run sequentially every cycle, so the
workflow time is their sum — which is why both must scale on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.filters import ensemble_statistics, relax_spread
from repro.core.observations import ObservationOperator
from repro.da.cycling import rmse
from repro.models.base import ForecastModel
from repro.models.model_error import StochasticModelErrorMixture
from repro.surrogate.training import OnlineTrainer, TrainingConfig
from repro.surrogate.vit import SQGViTSurrogate
from repro.utils.random import SeedSequenceFactory
from repro.utils.timing import Stopwatch

__all__ = ["WorkflowTimings", "RealTimeDAWorkflow"]


@dataclass
class WorkflowTimings:
    """Accumulated per-stage wall-clock time of the real-time workflow."""

    forecast: float = 0.0
    analysis: float = 0.0
    online_training: float = 0.0
    n_cycles: int = 0

    @property
    def total(self) -> float:
        return self.forecast + self.analysis + self.online_training

    def per_cycle(self) -> dict[str, float]:
        """Mean seconds per cycle spent in each stage."""
        n = max(self.n_cycles, 1)
        return {
            "forecast": self.forecast / n,
            "analysis": self.analysis / n,
            "online_training": self.online_training / n,
        }

    def fractions(self) -> dict[str, float]:
        """Fraction of workflow time per stage (the paper's two scalability tasks)."""
        total = self.total
        if total == 0.0:
            return {"forecast": 0.0, "analysis": 0.0, "online_training": 0.0}
        return {
            "forecast": self.forecast / total,
            "analysis": self.analysis / total,
            "online_training": self.online_training / total,
        }


@dataclass
class _CycleRecord:
    cycle: int
    forecast_rmse: float
    analysis_rmse: float
    analysis_spread: float
    online_loss: float | None


class RealTimeDAWorkflow:
    """Couple a ViT surrogate with the EnSF in the Fig. 1 loop.

    Parameters
    ----------
    surrogate:
        The (pre-trained) ViT surrogate used for ensemble forecasts.
    truth_model:
        Physics model evolving the hidden truth (the "real atmosphere" of the
        OSSE).
    operator:
        Observation operator.
    ensf_config:
        EnSF configuration.
    training_config:
        Online-training hyper-parameters; ``online_iterations = 0`` disables
        the online-adaptation stage.
    executor:
        Optional :class:`repro.hpc.ensemble_parallel.EnsembleExecutor` to run
        forecasts and EnSF member-parallel.
    """

    def __init__(
        self,
        surrogate: SQGViTSurrogate,
        truth_model: ForecastModel,
        operator: ObservationOperator,
        ensf_config: EnSFConfig | None = None,
        training_config: TrainingConfig | None = None,
        model_error: StochasticModelErrorMixture | None = None,
        executor=None,
        seed: int = 0,
    ):
        self.surrogate = surrogate
        self.truth_model = truth_model
        self.operator = operator
        self.seeds = SeedSequenceFactory(seed)
        self.ensf = EnSF(ensf_config or EnSFConfig(), rng=self.seeds.rng("ensf"))
        self.training_config = training_config or TrainingConfig()
        self.online_trainer = (
            OnlineTrainer(surrogate, self.training_config)
            if self.training_config.online_iterations > 0
            else None
        )
        self.model_error = model_error
        self.executor = executor
        self.timings = WorkflowTimings()
        self.history: list[_CycleRecord] = []

    # ------------------------------------------------------------------ #
    def run(
        self,
        truth0: np.ndarray,
        initial_ensemble: np.ndarray,
        n_cycles: int,
        steps_per_cycle: int,
    ) -> dict:
        """Run ``n_cycles`` of the real-time workflow; returns a result summary."""
        if n_cycles < 1 or steps_per_cycle < 1:
            raise ValueError("n_cycles and steps_per_cycle must be positive")
        truth = np.array(truth0, dtype=float)
        ensemble = np.array(initial_ensemble, dtype=float)
        rng_obs = self.seeds.rng("observations")
        stopwatch = Stopwatch()
        previous_analysis_mean = ensemble.mean(axis=0)

        for cycle in range(n_cycles):
            # Hidden truth evolution (physics model + unknown model error).
            truth = self.truth_model.forecast(truth, n_steps=steps_per_cycle)
            if self.model_error is not None:
                truth = self.model_error.perturb(truth)
            observation = self.operator.observe(truth, rng=rng_obs)

            # 1. surrogate ensemble forecast
            stopwatch.start("forecast")
            if self.executor is None:
                forecast = self.surrogate.forecast(ensemble, n_steps=steps_per_cycle)
            else:
                forecast = self.executor.map_states(self.surrogate, ensemble, n_steps=steps_per_cycle)
            stopwatch.stop("forecast")
            forecast_rmse = rmse(forecast.mean(axis=0), truth)

            # 2. EnSF analysis
            stopwatch.start("analysis")
            if self.executor is None:
                analysis = self.ensf.analyze(forecast, observation, self.operator)
            else:
                # Per-cycle seed derived from the workflow's root seed via the
                # named "ensf-parallel" stream: workflows built with different
                # seeds draw different analysis noise (seed=cycle alone made
                # them collide), and reruns of the same workflow reproduce.
                analysis = self.executor.analyze_ensf(
                    self.ensf,
                    forecast,
                    observation,
                    self.operator,
                    seed=self.seeds.seed_for("ensf-parallel", cycle),
                )
                analysis = relax_spread(
                    analysis, forecast, factor=self.ensf.config.spread_relaxation
                )
            stopwatch.stop("analysis")
            stats = ensemble_statistics(analysis)

            # 3. online surrogate adaptation on the newly observed transition
            online_loss = None
            if self.online_trainer is not None:
                stopwatch.start("online_training")
                online_loss = self.online_trainer.update(previous_analysis_mean, stats.mean)
                stopwatch.stop("online_training")

            previous_analysis_mean = stats.mean
            ensemble = analysis
            self.history.append(
                _CycleRecord(
                    cycle=cycle,
                    forecast_rmse=forecast_rmse,
                    analysis_rmse=rmse(stats.mean, truth),
                    analysis_spread=stats.mean_spread,
                    online_loss=online_loss,
                )
            )

        self.timings = WorkflowTimings(
            forecast=stopwatch.laps.get("forecast", 0.0),
            analysis=stopwatch.laps.get("analysis", 0.0),
            online_training=stopwatch.laps.get("online_training", 0.0),
            n_cycles=n_cycles,
        )
        return self.summary(truth, ensemble)

    # ------------------------------------------------------------------ #
    def summary(self, truth: np.ndarray, ensemble: np.ndarray) -> dict:
        """Final-state summary of the run."""
        stats = ensemble_statistics(ensemble)
        return {
            "final_analysis_rmse": rmse(stats.mean, truth),
            "final_spread": stats.mean_spread,
            "analysis_rmse": np.array([h.analysis_rmse for h in self.history]),
            "forecast_rmse": np.array([h.forecast_rmse for h in self.history]),
            "timings": self.timings,
        }
