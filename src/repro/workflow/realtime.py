"""The real-time sequential DA workflow of Fig. 1.

Each analysis cycle performs, in order:

1. **surrogate forecast** of the ensemble to the new observation time;
2. **EnSF analysis** blending the new observation into the ensemble;
3. **online ViT training** on the newly available analysis (the "real-time
   adaptation through the integration of observational data");

and records the wall-clock time of each stage.  The paper's central HPC
observation is that steps 2 and 3 run sequentially every cycle, so the
workflow time is their sum — which is why both must scale on the machine.

The loop itself lives in the unified
:class:`~repro.workflow.engine.CycleEngine`; :meth:`RealTimeDAWorkflow.run`
configures the stage pipeline (surrogate forecast, the executor-aware EnSF
analysis, online training) and accumulates ``timings``/``history``
incrementally per cycle, so a run interrupted mid-stream still reports every
completed cycle.  Each ``run()`` call starts from a clean ``history`` and
``timings`` (earlier versions leaked history across calls while silently
overwriting timings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ensf import EnSF, EnSFConfig
from repro.core.filters import ensemble_statistics
from repro.core.observations import ObservationQC, ObservationScenario, ObservationStream
from repro.utils.faults import FaultLog, FaultPlan
from repro.models.base import ForecastModel
from repro.models.model_error import StochasticModelErrorMixture
from repro.surrogate.training import OnlineTrainer, TrainingConfig
from repro.surrogate.vit import SQGViTSurrogate
from repro.utils.random import SeedSequenceFactory
from repro.utils.timing import BenchRecorder
from repro.workflow.engine import (
    CycleEngine,
    CycleRecord,
    EnSFWorkflowAnalysisStage,
    EnsembleForecastStage,
    ObservationStage,
    OnlineTrainingStage,
    TruthStage,
    rmse,
)

__all__ = ["WorkflowTimings", "RealTimeDAWorkflow"]


@dataclass
class WorkflowTimings:
    """Accumulated per-stage wall-clock time of the real-time workflow."""

    forecast: float = 0.0
    analysis: float = 0.0
    online_training: float = 0.0
    n_cycles: int = 0

    @property
    def total(self) -> float:
        return self.forecast + self.analysis + self.online_training

    def per_cycle(self) -> dict[str, float]:
        """Mean seconds per cycle spent in each stage."""
        n = max(self.n_cycles, 1)
        return {
            "forecast": self.forecast / n,
            "analysis": self.analysis / n,
            "online_training": self.online_training / n,
        }

    def fractions(self) -> dict[str, float]:
        """Fraction of workflow time per stage (the paper's two scalability tasks)."""
        total = self.total
        if total == 0.0:
            return {"forecast": 0.0, "analysis": 0.0, "online_training": 0.0}
        return {
            "forecast": self.forecast / total,
            "analysis": self.analysis / total,
            "online_training": self.online_training / total,
        }


# Per-cycle diagnostics are the engine's records; the historical name is kept
# for callers that annotated against it.
_CycleRecord = CycleRecord


class RealTimeDAWorkflow:
    """Couple a ViT surrogate with the EnSF in the Fig. 1 loop.

    Parameters
    ----------
    surrogate:
        The (pre-trained) ViT surrogate used for ensemble forecasts.
    truth_model:
        Physics model evolving the hidden truth (the "real atmosphere" of the
        OSSE).
    operator:
        Observation operator.
    ensf_config:
        EnSF configuration.
    training_config:
        Online-training hyper-parameters; ``online_iterations = 0`` disables
        the online-adaptation stage.
    executor:
        Optional :class:`repro.hpc.ensemble_parallel.EnsembleExecutor` to run
        forecasts and EnSF member-parallel.
    scenario:
        Optional :class:`~repro.core.observations.ObservationScenario`
        degrading the observation protocol (sparse / lossy / latent /
        multi-operator streaming networks); ``None`` keeps the idealized
        one-observation-per-cycle protocol bit-identically.
    qc:
        Optional :class:`~repro.core.observations.ObservationQC` screening
        every observation event before its EnSF analysis (a real-time
        system must reject a corrupted packet rather than assimilate it).
    cycle_deadline_s:
        Optional per-cycle wall-clock budget; once exceeded the remaining
        analyses of that cycle are skipped (forecast-only degraded cycle).
    fault_plan / fault_log:
        Deterministic fault injection and the recovery log (see
        :mod:`repro.utils.faults`); the log is shared by the observation
        stream and the engine and exposed as ``workflow.fault_log``.
    """

    def __init__(
        self,
        surrogate: SQGViTSurrogate,
        truth_model: ForecastModel,
        operator,
        ensf_config: EnSFConfig | None = None,
        training_config: TrainingConfig | None = None,
        model_error: StochasticModelErrorMixture | None = None,
        executor=None,
        seed: int = 0,
        scenario: ObservationScenario | None = None,
        qc: ObservationQC | None = None,
        cycle_deadline_s: float | None = None,
        fault_plan: FaultPlan | None = None,
        fault_log: FaultLog | None = None,
    ):
        self.surrogate = surrogate
        self.truth_model = truth_model
        self.operator = operator
        self.seeds = SeedSequenceFactory(seed)
        self.ensf = EnSF(ensf_config or EnSFConfig(), rng=self.seeds.rng("ensf"))
        self.training_config = training_config or TrainingConfig()
        self.online_trainer = (
            OnlineTrainer(surrogate, self.training_config)
            if self.training_config.online_iterations > 0
            else None
        )
        self.model_error = model_error
        self.executor = executor
        self.scenario = scenario
        self.qc = qc
        self.cycle_deadline_s = cycle_deadline_s
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.timings = WorkflowTimings()
        self.history: list[CycleRecord] = []

    # ------------------------------------------------------------------ #
    def run(
        self,
        truth0: np.ndarray,
        initial_ensemble: np.ndarray,
        n_cycles: int,
        steps_per_cycle: int,
        *,
        resume=None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
        keep_last: int | None = None,
        preempt=None,
    ) -> dict:
        """Run ``n_cycles`` of the real-time workflow; returns a result summary.

        The checkpoint/resume/preempt knobs are forwarded verbatim to
        :meth:`~repro.workflow.engine.CycleEngine.run`, which lets the
        realtime workflow run as a preemptible, resumable experiment-service
        job.  A resumed run's ``history``/``timings`` cover only the cycles
        executed by *this* call (completed cycles live in the checkpoint).
        """
        if n_cycles < 1 or steps_per_cycle < 1:
            raise ValueError("n_cycles and steps_per_cycle must be positive")
        truth = np.array(truth0, dtype=float)
        ensemble = np.array(initial_ensemble, dtype=float)

        # Fresh per-run state, updated incrementally from the engine's
        # per-cycle callback: an exception mid-run keeps every completed
        # cycle's timing and history instead of losing the whole run.
        self.history = []
        self.timings = WorkflowTimings()
        recorder = BenchRecorder()
        timing_snapshot = recorder.snapshot()

        def on_cycle(record: CycleRecord) -> None:
            report = recorder.report(since=timing_snapshot)
            self.timings = WorkflowTimings(
                forecast=report.get("forecast", {}).get("total_s", 0.0),
                analysis=report.get("analysis", {}).get("total_s", 0.0),
                online_training=report.get("online_training", {}).get("total_s", 0.0),
                n_cycles=len(self.history) + 1,
            )
            self.history.append(record)

        stream = ObservationStream(
            self.operator,
            self.scenario,
            rng=self.seeds.rng("observations"),
            schedule_rng=self.seeds.rng("observation-schedule"),
            fault_plan=self.fault_plan,
            fault_log=self.fault_log,
        )
        post_analysis = None
        if self.online_trainer is not None:
            post_analysis = OnlineTrainingStage(self.online_trainer)
            post_analysis.prime(ensemble.mean(axis=0))

        engine = CycleEngine(
            truth=TruthStage(self.truth_model, steps_per_cycle, self.model_error),
            observations=ObservationStage(stream),
            forecast=EnsembleForecastStage(self.surrogate, steps_per_cycle),
            analysis=EnSFWorkflowAnalysisStage(self.ensf, self.seeds),
            post_analysis=post_analysis,
            executor=self.executor,
            recorder=recorder,
            on_cycle=on_cycle,
            qc=self.qc,
            cycle_deadline_s=self.cycle_deadline_s,
            fault_plan=self.fault_plan,
            fault_log=self.fault_log,
        )
        result = engine.run(
            truth,
            ensemble,
            n_cycles,
            resume=resume,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            keep_last=keep_last,
            preempt=preempt,
        )
        return self.summary(result.truth_final, result.state_final)

    # ------------------------------------------------------------------ #
    def summary(self, truth: np.ndarray, ensemble: np.ndarray) -> dict:
        """Final-state summary of the run."""
        stats = ensemble_statistics(ensemble)
        return {
            "final_analysis_rmse": rmse(stats.mean, truth),
            "final_spread": stats.mean_spread,
            "analysis_rmse": np.array([h.analysis_rmse for h in self.history]),
            "forecast_rmse": np.array([h.forecast_rmse for h in self.history]),
            "timings": self.timings,
            "qc_rejected": int(sum(h.qc_rejected for h in self.history)),
            "deadline_skipped_cycles": int(sum(h.deadline_skipped for h in self.history)),
            "fault_recoveries": len(self.fault_log),
        }
