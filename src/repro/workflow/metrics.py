"""Verification metrics used by the experiments (Figs. 4 and 5)."""

from __future__ import annotations

import numpy as np

__all__ = ["rmse_series", "pattern_correlation", "error_field", "spread_skill_ratio"]


def rmse_series(predictions: np.ndarray, truths: np.ndarray) -> np.ndarray:
    """Per-time RMSE between two trajectories of flattened states ``(T, d)``."""
    predictions = np.asarray(predictions, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if predictions.shape != truths.shape:
        raise ValueError("trajectories must have the same shape")
    return np.sqrt(np.mean((predictions - truths) ** 2, axis=-1))


def pattern_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Anomaly (pattern) correlation between two states."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt((a**2).sum() * (b**2).sum())
    if denom == 0.0:
        return 0.0
    return float((a * b).sum() / denom)


def error_field(analysis_mean: np.ndarray, truth: np.ndarray, grid_shape) -> np.ndarray:
    """Analysis-mean error field reshaped to ``(nlev, ny, nx)`` (Fig. 5, bottom row)."""
    analysis_mean = np.asarray(analysis_mean, dtype=float)
    truth = np.asarray(truth, dtype=float)
    return (analysis_mean - truth).reshape(grid_shape)


def spread_skill_ratio(spread: np.ndarray, rmse: np.ndarray) -> float:
    """Time-mean ratio of ensemble spread to RMSE (≈1 for a calibrated ensemble)."""
    spread = np.asarray(spread, dtype=float)
    rmse = np.asarray(rmse, dtype=float)
    mask = rmse > 0
    if not mask.any():
        return 0.0
    return float(np.mean(spread[mask] / rmse[mask]))
