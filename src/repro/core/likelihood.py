"""Likelihood score and pseudo-time damping for the EnSF update step.

The posterior score used inside the reverse-time SDE is (Eq. 11 / Eq. 17)

``s_{k|k}(z, t) = s_{k|k−1}(z, t) + h(t) ∇_x log p(y_k | z)``

where the damping function satisfies ``h(T) = 0`` (no observation influence
at the pure-noise end of the diffusion) and ``h(0) = 1`` (full influence when
the sample has been transported back to the data scale).  The paper uses the
linear ramp ``h(t) = T − t`` and notes other choices are possible; we provide
linear, cosine and constant dampings so the choice can be ablated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.observations import ObservationOperator

__all__ = [
    "LinearDamping",
    "CosineDamping",
    "ConstantDamping",
    "GaussianLikelihoodScore",
]


@dataclass(frozen=True)
class LinearDamping:
    """``h(t) = T − t`` (the paper's choice, §III-A2)."""

    horizon: float = 1.0

    def __call__(self, t: float) -> float:
        return float(self.horizon - t)


@dataclass(frozen=True)
class CosineDamping:
    """``h(t) = ½ (1 + cos(π t / T))`` — smooth variant for ablation."""

    horizon: float = 1.0

    def __call__(self, t: float) -> float:
        return float(0.5 * (1.0 + np.cos(np.pi * t / self.horizon)))


@dataclass(frozen=True)
class ConstantDamping:
    """``h(t) = value`` — disables the ramp (ablation baseline)."""

    value: float = 1.0

    def __call__(self, t: float) -> float:
        return float(self.value)


class GaussianLikelihoodScore:
    """Analytic likelihood score for additive-Gaussian observations (Eq. 5).

    Parameters
    ----------
    operator:
        Observation operator bundling ``h``, its adjoint and ``R``.
    observation:
        The observation vector ``y_k`` for the current analysis time.
    damping:
        Callable ``h(t)``; defaults to the paper's linear ramp.
    """

    def __init__(
        self,
        operator: ObservationOperator,
        observation: np.ndarray,
        damping=None,
    ) -> None:
        observation = np.asarray(observation, dtype=float)
        if observation.shape != (operator.obs_dim,):
            raise ValueError(
                f"observation shape {observation.shape} != ({operator.obs_dim},)"
            )
        self.operator = operator
        self.observation = observation
        self.damping = damping or LinearDamping()

    def score(self, z: np.ndarray) -> np.ndarray:
        """Undamped likelihood score ``∇_z log p(y | z)`` at states ``z``."""
        return self.operator.log_likelihood_score(z, self.observation)

    def damped_score(self, z: np.ndarray, t: float) -> np.ndarray:
        """``h(t) ∇_z log p(y | z)`` — the term added to the prior score."""
        return self.damping(t) * self.score(z)

    def add_damped_score(self, z: np.ndarray, t: float, out: np.ndarray) -> np.ndarray:
        """Accumulate ``h(t) ∇_z log p(y | z)`` into ``out`` (generic path).

        The fused EnSF posterior score uses this hook so specialised
        operators can avoid materialising the full likelihood-score array;
        the base implementation simply adds the allocating result.
        """
        term = self.score(z)
        term *= self.damping(t)
        out += term
        return out

    def __call__(self, z: np.ndarray, t: float) -> np.ndarray:
        return self.damped_score(z, t)
