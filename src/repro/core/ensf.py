"""The Ensemble Score Filter (EnSF) — the paper's primary contribution.

The analysis step (paper §III-A2) proceeds as follows for each filtering
cycle ``k``:

1. *Prior score*: build the training-free Monte-Carlo estimator
   ``ŝ_{k|k−1}(z, t)`` from the forecast ensemble (Eqs. 13–16).
2. *Posterior score*: add the damped analytic likelihood score,
   ``ŝ_{k|k}(z, t) = ŝ_{k|k−1}(z, t) + h(t) ∇ log p(y_k | z)`` (Eq. 17).
3. *Sampling*: draw standard Gaussian vectors and integrate the reverse-time
   SDE (Eq. 7) with the posterior score to obtain the analysis ensemble.
4. *Stabilisation*: relax the analysis spread to the forecast spread (the
   paper's only regularisation — no localization, no tuning).

The update is embarrassingly parallel over the ensemble; member-sharded
execution is provided by :mod:`repro.hpc.ensemble_parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.filters import EnsembleFilter, relax_spread
from repro.core.likelihood import GaussianLikelihoodScore, LinearDamping
from repro.core.observations import (
    IdentityObservation,
    ObservationOperator,
    SubsampledObservation,
)
from repro.core.schedules import LinearAlphaSchedule
from repro.core.score import MonteCarloScoreEstimator
from repro.core.sde import ReverseSDESampler
from repro.utils.random import MemberStreams, default_rng
from repro.utils.xp import as_host_array

__all__ = ["EnSFConfig", "EnSF"]


@dataclass(frozen=True)
class EnSFConfig:
    """Configuration of the EnSF analysis step.

    Attributes
    ----------
    n_sde_steps:
        Number of Euler steps used to discretise the reverse-time SDE.
    minibatch:
        Mini-batch size ``J`` for the Monte-Carlo score estimate (``None`` =
        full ensemble, the paper's default at M = 20).
    eps_alpha:
        Schedule floor (see :class:`~repro.core.schedules.LinearAlphaSchedule`).
    t_start:
        Pseudo-time at which the reverse integration stops.  With a finite
        ensemble the Monte-Carlo prior score becomes a sum of near-delta
        kernels as ``t → 0`` (bandwidth ``β_t → 0``), which collapses the
        analysis back onto individual forecast members and erases the
        observation information; stopping slightly above zero (the reference
        EnSF implementation uses a small ``ε``) keeps the Bayesian update
        intact.
    spread_relaxation:
        RTPS-style relaxation factor towards the forecast spread; 1.0
        reproduces the paper's "relax to prior spread" stabilisation.
    stochastic_sampler:
        Integrate the reverse SDE (True) or the probability-flow ODE (False).
    scale_states:
        Normalise the ensemble (per-variable affine map to roughly unit range)
        before diffusion and undo the scaling afterwards.  Score-based
        samplers assume the target lives on an O(1) scale; physical SQG
        states have O(10) amplitudes, so this keeps the method scale-free.
    damping:
        Damping function ``h(t)``; defaults to the paper's ``h(t) = T − t``.
    backend:
        Array backend name for the fused analysis kernels (``None`` = the
        ``REPRO_ARRAY_BACKEND`` process default).  Forwarded to the
        Monte-Carlo score estimator and the buffered reverse-SDE
        integrator; the numpy backend is bit-identical to the pre-shim
        kernels, and draws never depend on the backend (host stream
        semantics, see :mod:`repro.utils.xp`).
    """

    n_sde_steps: int = 100
    minibatch: int | None = None
    eps_alpha: float = 0.05
    t_start: float = 0.05
    spread_relaxation: float = 1.0
    stochastic_sampler: bool = True
    scale_states: bool = True
    obs_var_stability_factor: float = 2.0
    damping: object = field(default_factory=LinearDamping)
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.n_sde_steps < 1:
            raise ValueError("n_sde_steps must be at least 1")
        if self.minibatch is not None and self.minibatch < 1:
            raise ValueError("minibatch must be positive or None")
        if not 0.0 <= self.spread_relaxation <= 1.0:
            raise ValueError("spread_relaxation must lie in [0, 1]")
        if self.obs_var_stability_factor < 0.0:
            raise ValueError("obs_var_stability_factor must be non-negative")
        if not 0.0 <= self.t_start < 1.0:
            raise ValueError("t_start must lie in [0, 1)")

    @property
    def scaled_obs_var_floor(self) -> float:
        """Stability floor for the *scaled* observation-error variance.

        In normalised state space the explicit Euler discretisation of the
        reverse SDE becomes stiff when the damped likelihood coefficient
        ``Δt σ²(t) h(t) / R_scaled`` exceeds O(1); since ``σ²(t) h(t)`` stays
        below ≈1.5 for the paper's schedule, flooring ``R_scaled`` at
        ``obs_var_stability_factor / n_sde_steps`` keeps the update stable.
        Physically this acts as a mild observation-error inflation that only
        engages when the forecast ensemble variance vastly exceeds the
        observation error — a standard regularisation in ensemble DA.
        """
        return self.obs_var_stability_factor / float(self.n_sde_steps)


class _StateScaler:
    """Per-update affine normalisation of the state space.

    Maps the forecast ensemble to zero mean and unit scale (a single global
    scale, so spatial structure is preserved), and transports observations of
    linear operators consistently.  The observation error variance is scaled
    by the same factor squared so the Bayesian update is unchanged.
    """

    def __init__(self, ensemble: np.ndarray):
        self.center = ensemble.mean(axis=0)
        spread = ensemble.std()
        self.scale = float(spread) if spread > 0 else 1.0

    def forward(self, states: np.ndarray) -> np.ndarray:
        return (states - self.center) / self.scale

    def inverse(self, states: np.ndarray) -> np.ndarray:
        return states * self.scale + self.center


class _ScaledOperator(ObservationOperator):
    """Wrap an operator so it acts on scaler-normalised states."""

    def __init__(self, operator: ObservationOperator, scaler: _StateScaler, obs_var_floor: float = 0.0):
        super().__init__(
            operator.state_dim,
            operator.obs_dim,
            np.maximum(operator.obs_error_var / scaler.scale**2, obs_var_floor),
        )
        self._inner = operator
        self._scaler = scaler
        self._center_obs = operator.apply(scaler.center)

    def apply(self, state: np.ndarray) -> np.ndarray:
        physical = self._scaler.inverse(np.asarray(state, dtype=float))
        return (self._inner.apply(physical) - self._center_obs) / self._scaler.scale

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        physical_state = None if state is None else self._scaler.inverse(np.asarray(state, dtype=float))
        # Jacobian of the scaled map equals the inner Jacobian (the 1/scale on
        # the output cancels the scale on the input for the adjoint action on
        # R⁻¹-weighted innovations already expressed in scaled units).
        return self._inner.adjoint(np.asarray(obs_vector, dtype=float), state=physical_state)

    def scale_observation(self, observation: np.ndarray) -> np.ndarray:
        """Express a physical observation in scaled observation units."""
        return (np.asarray(observation, dtype=float) - self._center_obs) / self._scaler.scale


class _FusedPosteriorScore:
    """Posterior score ``ŝ_{k|k}(z, t)`` evaluated into a reused workspace.

    Combines the fused Monte-Carlo prior score
    (:meth:`MonteCarloScoreEstimator.score_into`) with an in-place damped
    likelihood accumulation.  For operators that act as a (possibly scaled)
    identity or subsampling — which covers the paper's experiments, including
    the :class:`_ScaledOperator` wrappers whose forward/inverse affine maps
    cancel exactly for those inner operators — the likelihood score reduces
    to ``h(t) · (y − z[..., idx]) / R`` and is applied with one subtraction
    and one broadcast multiply instead of the full inverse→apply→adjoint
    round-trip.  Other operators fall back to
    :meth:`GaussianLikelihoodScore.add_damped_score`.

    The returned array is a workspace owned by this object: it is valid
    until the next evaluation, which is exactly the lifetime the reverse-SDE
    integrator requires.
    """

    def __init__(
        self,
        prior: MonteCarloScoreEstimator,
        likelihood: GaussianLikelihoodScore,
        operator: ObservationOperator,
        observation: np.ndarray,
    ) -> None:
        self.prior = prior
        self.likelihood = likelihood
        self.xp = prior.xp
        self._out: np.ndarray | None = None
        self._lik_buf: np.ndarray | None = None

        inner = operator._inner if isinstance(operator, _ScaledOperator) else operator
        if isinstance(inner, IdentityObservation):
            self._kind = "identity"
            self._indices = None
        elif isinstance(inner, SubsampledObservation):
            self._kind = "subsampled"
            self._indices = inner.indices
        else:
            self._kind = "generic"
            self._indices = None
        self._observation = np.asarray(observation, dtype=float)
        self._observation_dev = self.xp.to_device(self._observation)
        inv_var = 1.0 / operator.obs_error_var
        # Uniform R collapses the broadcast multiply to a scalar scale.
        if np.all(inv_var == inv_var[0]):
            self._inv_var: float | np.ndarray = float(inv_var[0])
        else:
            self._inv_var = self.xp.to_device(inv_var)

    def __call__(self, z: np.ndarray, t: float) -> np.ndarray:
        xp = self.xp
        if self._out is None or self._out.shape != z.shape:
            self._out = xp.empty_like(z)
        out = self.prior.score_into(z, t, self._out)

        if self._kind == "generic":
            # Generic operators evaluate on the host (they are arbitrary
            # Python); round-trip the state once per call.  Identity on the
            # CPU backends.
            out_host = self.likelihood.add_damped_score(xp.to_host(z), t, xp.to_host(out))
            if out_host is not out:
                xp.copyto(out, xp.to_device(out_host))
            return out

        damping = float(self.likelihood.damping(t))
        if self._kind == "identity":
            if self._lik_buf is None or self._lik_buf.shape != z.shape:
                self._lik_buf = xp.empty_like(z)
            xp.subtract(self._observation_dev[None, :], z, out=self._lik_buf)
            self._lik_buf *= damping * self._inv_var
            out += self._lik_buf
        else:
            z_local = z[:, self._indices]
            xp.subtract(self._observation_dev[None, :], z_local, out=z_local)
            z_local *= damping * self._inv_var
            out[:, self._indices] += z_local
        return out


class EnSF(EnsembleFilter):
    """Ensemble Score Filter.

    Parameters
    ----------
    config:
        Algorithmic configuration; the defaults match the paper.
    rng:
        Random stream for mini-batching, the initial Gaussian draw and the
        Brownian increments of the reverse SDE.
    """

    def __init__(self, config: EnSFConfig | None = None, rng: np.random.Generator | int | None = None):
        self.config = config or EnSFConfig()
        self.rng = default_rng(rng)
        self.schedule = LinearAlphaSchedule(eps_alpha=self.config.eps_alpha)
        self.sampler = ReverseSDESampler(
            schedule=self.schedule,
            n_steps=self.config.n_sde_steps,
            stochastic=self.config.stochastic_sampler,
            t_start=self.config.t_start,
            backend=self.config.backend,
        )

    # ------------------------------------------------------------------ #
    def posterior_score_fn(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
    ):
        """Build the posterior score callable ``ŝ_{k|k}(z, t)`` (Eq. 17)."""
        prior = MonteCarloScoreEstimator(
            forecast_ensemble,
            schedule=self.schedule,
            minibatch=self.config.minibatch,
            rng=self.rng,
            backend=self.config.backend,
        )
        likelihood = GaussianLikelihoodScore(operator, observation, damping=self.config.damping)
        return _FusedPosteriorScore(prior, likelihood, operator, observation)

    def _analysis_samples(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw ``n_samples`` analysis members (no spread relaxation applied)."""
        n_members, dim = forecast_ensemble.shape
        if self.config.scale_states:
            scaler = _StateScaler(forecast_ensemble)
            work_ensemble = scaler.forward(forecast_ensemble)
            work_operator = _ScaledOperator(operator, scaler, self.config.scaled_obs_var_floor)
            work_observation = work_operator.scale_observation(observation)
        else:
            scaler = None
            work_ensemble = forecast_ensemble
            work_operator = operator
            work_observation = observation

        score_fn = self.posterior_score_fn(work_ensemble, work_observation, work_operator)
        # Pool the reverse-SDE noise draws (batched generation + background
        # refill, bit-identical to direct draws) whenever the sampler owns
        # the stream for the whole integration.  A minibatched score draws
        # its subsets from the same rng *between* noise draws, so pooling
        # would reorder the stream — leave it direct in that mode.
        analysis = self.sampler.sample(
            score_fn,
            n_samples=n_samples,
            dim=dim,
            rng=rng,
            noise_pool=self.config.minibatch is None,
        )
        if scaler is not None:
            analysis = scaler.inverse(analysis)
        return analysis

    def analyze(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
    ) -> np.ndarray:
        """EnSF analysis step mapping the forecast ensemble to the analysis ensemble.

        Accepts a host array or a :class:`~repro.utils.xp.StateHandle` (the
        cycle engine's device-state seam); the analysis itself needs the
        host mirror for the affine state scaler, and its device work — the
        score statics, the reverse-SDE state and the backend-RNG noise
        draws — is a fixed per-analysis budget independent of state
        dimension and member count.
        """
        forecast_ensemble = np.asarray(as_host_array(forecast_ensemble), dtype=float)
        if forecast_ensemble.ndim != 2:
            raise ValueError("forecast ensemble must have shape (m, state_dim)")
        observation = np.asarray(observation, dtype=float)
        analysis = self._analysis_samples(
            forecast_ensemble, observation, operator, forecast_ensemble.shape[0], self.rng
        )
        if self.config.spread_relaxation > 0.0:
            analysis = relax_spread(analysis, forecast_ensemble, factor=self.config.spread_relaxation)
        return analysis

    # ------------------------------------------------------------------ #
    def analyze_members(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
        n_local_members: int | None = None,
        seed: int | None = None,
        member_seeds=None,
    ) -> np.ndarray:
        """Draw the analysis members owned by one parallel rank.

        This is the unit of work used by the MPI-style ensemble-parallel
        execution (paper §III-A3: "The most efficient factor for
        parallelization are the ensembles").  Each rank holds the full
        forecast ensemble (it is broadcast once per cycle, so the score
        estimator is identical everywhere) and integrates the reverse SDE
        only for its own particles.  Spread relaxation is a global operation
        and is applied by the caller after gathering.

        Two seeding modes are supported:

        ``member_seeds``
            One seed (or :class:`numpy.random.SeedSequence`) *per local
            member*; all Gaussian draws for member ``i`` come from its own
            stream (:class:`~repro.utils.random.MemberStreams`), so the
            gathered analysis is bit-identical for every worker layout.
            This is what :meth:`EnsembleExecutor.analyze_ensf` uses.
        ``n_local_members`` + ``seed``
            Legacy rank-wise mode: one shared stream draws the whole
            ``(n_local_members, dim)`` batch.  Results then depend on how
            members are grouped into ranks; kept for the oracle parity
            tests and for callers that manage their own rank streams.
        """
        forecast_ensemble = np.asarray(forecast_ensemble, dtype=float)
        observation = np.asarray(observation, dtype=float)
        if member_seeds is not None:
            if n_local_members is not None and n_local_members != len(member_seeds):
                raise ValueError("n_local_members does not match len(member_seeds)")
            if self.config.minibatch is not None:
                # The Monte-Carlo score minibatch is drawn from the filter's
                # own rng and shared by every member of a chunk, so its draws
                # depend on how members are grouped into workers — the
                # worker-invariance contract of the member-seeded mode cannot
                # hold.  Refuse loudly rather than return layout-dependent
                # analyses (the paper's configuration uses the full ensemble).
                raise ValueError(
                    "member-seeded parallel analysis requires the full-ensemble "
                    "score (EnSFConfig.minibatch=None); minibatched scores are "
                    "not worker-layout invariant"
                )
            rank_rng = MemberStreams(member_seeds)
            n_local_members = len(member_seeds)
        else:
            if n_local_members is None:
                raise ValueError("pass either member_seeds or n_local_members")
            if seed is None:
                # Reproducibility API: never fall through to fresh OS entropy.
                raise ValueError("the n_local_members mode requires an explicit seed")
            rank_rng = default_rng(seed)
        return self._analysis_samples(
            forecast_ensemble, observation, operator, n_local_members, rank_rng
        )
