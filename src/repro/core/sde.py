"""Euler–Maruyama integrator for the reverse-time SDE (Eq. 7).

Samples from the target (posterior) distribution are produced by drawing
standard Gaussian vectors ``Z_T ∼ N(0, I)`` and integrating

``dZ_t = [ b(t) Z_t − σ²(t) s(Z_t, t) ] dt + σ(t) dW̄_t``

backwards from ``t = T = 1`` to ``t = 0``, where ``s`` is the (posterior)
score supplied by the caller.  The paper discretises this with an Euler
scheme; we additionally expose a predictor-only (probability-flow ODE) mode
for deterministic ablations.

The integrator precomputes the per-step schedule constants once, performs
the Euler update in place, and reuses a single drift buffer and a single
noise buffer across all steps (Gaussian increments are drawn directly into
the noise buffer with ``Generator.standard_normal(out=...)``, which
consumes the random stream identically to the allocating call).  (The
original allocating step loop served as the numerical oracle through
several releases of equivalence testing and has been retired.)

Noise goes through the backend RNG hook
(:meth:`~repro.utils.xp.ArrayBackend.standard_normal`): in the default
**host-parity** mode the bits come from the host ``rng`` stream in the
documented order and are staged into the device buffer — bit-identical and
worker-invariant across backends; ``REPRO_DEVICE_RNG=device`` lets device
backends fill the buffers natively on-device instead (faster, not
bit-identical — see :func:`repro.utils.xp.device_rng_mode`).  The state
itself is device-resident for the whole integration.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.schedules import LinearAlphaSchedule
from repro.utils.random import NoisePool, default_rng, noise_pool_blocks
from repro.utils.xp import ArrayBackend, device_rng_mode, resolve_backend

__all__ = ["ReverseSDESampler"]

ScoreFn = Callable[[np.ndarray, float], np.ndarray]


class ReverseSDESampler:
    """Integrate the reverse-time SDE with a user-supplied score function.

    Parameters
    ----------
    schedule:
        Diffusion schedule providing ``b(t)`` and ``σ(t)``.
    n_steps:
        Number of Euler steps over the pseudo-time interval.
    stochastic:
        When ``True`` (default) the Brownian term is included (reverse SDE);
        when ``False`` the probability-flow ODE
        ``dZ = [b Z − ½ σ² s] dt`` is integrated instead.
    t_end, t_start:
        Pseudo-time integration limits (defaults: from 1 down to 0).
    backend:
        Array backend (name, :class:`~repro.utils.xp.ArrayBackend`, or
        ``None`` for the ``REPRO_ARRAY_BACKEND`` default) used by the
        buffered loop.  The state lives on the backend's device for the
        whole integration (the initial draw lands in a device buffer, one
        device→host move at the end); Gaussian increments go through the
        backend RNG hook — host ``rng`` stream bits by default
        (host-parity, backend-reproducible), backend-native generation
        under ``REPRO_DEVICE_RNG=device`` (see
        :meth:`ArrayBackend.standard_normal`).
    """

    def __init__(
        self,
        schedule: LinearAlphaSchedule | None = None,
        n_steps: int = 100,
        stochastic: bool = True,
        t_end: float = 1.0,
        t_start: float = 0.0,
        max_state_magnitude: float = 1.0e3,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        if n_steps < 1:
            raise ValueError("n_steps must be at least 1")
        self.schedule = schedule or LinearAlphaSchedule()
        self.n_steps = int(n_steps)
        self.stochastic = bool(stochastic)
        self.t_end = float(t_end)
        self.t_start = float(t_start)
        # Numerical safeguard: EnSF operates on normalised (O(1)) states, so
        # any Euler iterate beyond this magnitude signals stiffness-induced
        # overshoot; clamping prevents overflow while leaving well-resolved
        # integrations untouched.
        self.max_state_magnitude = float(max_state_magnitude)
        self.xp = resolve_backend(backend)

    def sample(
        self,
        score_fn: ScoreFn,
        n_samples: int,
        dim: int,
        rng: np.random.Generator | int | None = None,
        initial: np.ndarray | None = None,
        return_trajectory: bool = False,
        noise_pool: bool = False,
    ) -> np.ndarray:
        """Generate samples of the target distribution.

        Parameters
        ----------
        score_fn:
            Callable ``score_fn(z, t)`` returning the (posterior) score at the
            batch of points ``z`` (shape ``(n, d)``) and pseudo-time ``t``.
        n_samples, dim:
            Number of samples and state dimension.
        rng:
            Random stream for the initial Gaussian draw and Brownian noise.
        initial:
            Optional custom initial condition ``Z_T`` of shape ``(n, d)``;
            defaults to a standard Gaussian draw.
        return_trajectory:
            When ``True`` the full pseudo-time trajectory (``n_steps + 1``
            snapshots) is returned instead of only the final state.
        noise_pool:
            When ``True``, route the host Gaussian draws through a
            :class:`~repro.utils.random.NoisePool` sized to exactly the
            draws this call makes — batched generation refilled on a
            background thread ahead of the Euler loop, bit-identical to the
            direct per-step draws (``REPRO_NOISE_POOL=0`` disables).  Only
            safe when nothing else draws from ``rng`` during the
            integration (in particular the score function must not); the
            pool is bypassed whenever the backend generates natively
            on-device (``REPRO_DEVICE_RNG=device``), where the host stream
            is not the draw source.
        """
        rng = default_rng(rng)
        xp = self.xp
        n_draws = (1 if initial is None else 0) + (self.n_steps if self.stochastic else 0)
        pool: NoisePool | None = None
        draw_rng = rng
        if (
            noise_pool
            and n_draws > 1
            and (xp.device == "cpu" or device_rng_mode() == "host-parity")
        ):
            chunk = noise_pool_blocks()
            if chunk > 0:
                pool = NoisePool(rng, (n_samples, dim), n_draws, chunk_blocks=chunk)
                draw_rng = pool
        try:
            if initial is None:
                # Initial Z_T lands directly in a device buffer via the backend
                # RNG hook (host-parity bits by default; native device draws
                # under REPRO_DEVICE_RNG=device).
                z = xp.standard_normal(draw_rng, size=(n_samples, dim))
            else:
                host = np.array(initial, dtype=float, copy=True)
                if host.shape != (n_samples, dim):
                    raise ValueError(f"initial shape {host.shape} != {(n_samples, dim)}")
                z = xp.to_device(host)

            grid = self.schedule.time_grid(
                self.n_steps, t_end=self.t_end, t_start=self.t_start
            )
            trajectory = [xp.to_host(z).copy()] if return_trajectory else None

            self._integrate_buffered(score_fn, z, grid, draw_rng, trajectory)
        finally:
            if pool is not None:
                pool.close()
        z = xp.to_host(z)

        if return_trajectory:
            return np.array(trajectory)
        return z

    # ------------------------------------------------------------------ #
    def _integrate_buffered(
        self,
        score_fn: ScoreFn,
        z: np.ndarray,
        grid: np.ndarray,
        rng: np.random.Generator,
        trajectory: list | None,
    ) -> np.ndarray:
        """In-place Euler loop with persistent buffers (mutates device ``z``)."""
        xp = self.xp
        t_vals = grid[:-1]
        dt = grid[:-1] - grid[1:]  # positive step sizes
        b = np.asarray(self.schedule.drift_coeff(t_vals), dtype=float)
        sigma_sq = np.asarray(self.schedule.diffusion_sq(t_vals), dtype=float)

        drift = xp.empty_like(z)
        noise = xp.empty_like(z) if self.stochastic else None
        bound = self.max_state_magnitude

        for i in range(self.n_steps):
            t = float(t_vals[i])
            dti = float(dt[i])
            score = score_fn(z, t)
            diffusion_dt = float(sigma_sq[i]) * dti
            if self.stochastic:
                # z ← z(1 − b dt) + σ² dt s + √(σ² dt) ξ
                xp.multiply(score, diffusion_dt, out=drift)
                z *= 1.0 - float(b[i]) * dti
                z += drift
                xp.standard_normal(rng, out=noise)
                # math.sqrt on the python float is bit-identical to np.sqrt
                # and keeps the device loop free of host-array numpy calls.
                noise *= math.sqrt(diffusion_dt)
                z += noise
            else:
                xp.multiply(score, 0.5 * diffusion_dt, out=drift)
                z *= 1.0 - float(b[i]) * dti
                z += drift
            if bound > 0 and (float(xp.amax(z)) > bound or float(xp.amin(z)) < -bound):
                xp.clip(z, -bound, bound, out=z)
            if trajectory is not None:
                trajectory.append(xp.to_host(z.copy()))
        return z

