"""Observation operators and observation-error models (Eq. 2).

All filters in this library (EnSF, LETKF, EnKF) interact with observations
through :class:`ObservationOperator`, which bundles the forward map
``h_k(x)``, its adjoint action (needed by the EnSF likelihood score and by
the Kalman-gain algebra), and the Gaussian observation-error covariance
``R_k`` (assumed diagonal, as in the paper where ``R = I``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.random import default_rng

__all__ = [
    "ObservationOperator",
    "IdentityObservation",
    "LinearObservation",
    "SubsampledObservation",
    "NonlinearObservation",
]


class ObservationOperator(ABC):
    """Abstract observation model ``y = h(x) + ε``, ``ε ∼ N(0, R)`` with diagonal ``R``."""

    def __init__(self, state_dim: int, obs_dim: int, obs_error_var: float | np.ndarray = 1.0):
        if state_dim <= 0 or obs_dim <= 0:
            raise ValueError("state_dim and obs_dim must be positive")
        self.state_dim = int(state_dim)
        self.obs_dim = int(obs_dim)
        var = np.asarray(obs_error_var, dtype=float)
        if var.ndim == 0:
            var = np.full(self.obs_dim, float(var))
        if var.shape != (self.obs_dim,):
            raise ValueError("obs_error_var must be a scalar or a vector of length obs_dim")
        if np.any(var <= 0):
            raise ValueError("observation error variances must be positive")
        self.obs_error_var = var

    # -- forward / adjoint ------------------------------------------------ #
    @abstractmethod
    def apply(self, state: np.ndarray) -> np.ndarray:
        """Map state(s) ``(..., state_dim)`` to observation space ``(..., obs_dim)``."""

    @abstractmethod
    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        """Apply ``H(x)ᵀ`` (the Jacobian transpose at ``state``) to ``obs_vector``.

        For linear operators the Jacobian is state-independent and ``state``
        is ignored.
        """

    # -- derived quantities ------------------------------------------------ #
    def innovation(self, state: np.ndarray, observation: np.ndarray) -> np.ndarray:
        """``y − h(x)`` broadcast over leading state axes."""
        return np.asarray(observation, dtype=float) - self.apply(state)

    def log_likelihood_score(self, state: np.ndarray, observation: np.ndarray) -> np.ndarray:
        """``∇_x log p(y | x) = H(x)ᵀ R⁻¹ (y − h(x))`` (gradient of Eq. 5)."""
        innov = self.innovation(state, observation) / self.obs_error_var
        return self.adjoint(innov, state=state)

    def log_likelihood(self, state: np.ndarray, observation: np.ndarray) -> np.ndarray:
        """Log of Eq. 5 up to an additive constant (per state in the batch)."""
        innov = self.innovation(state, observation)
        return -0.5 * np.sum(innov**2 / self.obs_error_var, axis=-1)

    def sample_noise(self, rng: np.random.Generator | int | None = None, size: int | None = None) -> np.ndarray:
        """Draw observation-error realisations ``ε ∼ N(0, R)``."""
        rng = default_rng(rng)
        shape = (self.obs_dim,) if size is None else (size, self.obs_dim)
        return rng.standard_normal(shape) * np.sqrt(self.obs_error_var)

    def observe(self, true_state: np.ndarray, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate a synthetic observation of ``true_state`` (OSSE, §IV-A)."""
        return self.apply(true_state) + self.sample_noise(rng=rng)


class IdentityObservation(ObservationOperator):
    """Fully observed state, ``h(x) = x`` — the paper's accuracy-test setting."""

    def __init__(self, state_dim: int, obs_error_var: float | np.ndarray = 1.0):
        super().__init__(state_dim, state_dim, obs_error_var)

    def apply(self, state: np.ndarray) -> np.ndarray:
        return np.asarray(state, dtype=float)

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        return np.asarray(obs_vector, dtype=float)


class LinearObservation(ObservationOperator):
    """General linear operator ``h(x) = H x`` for a dense matrix ``H``."""

    def __init__(self, matrix: np.ndarray, obs_error_var: float | np.ndarray = 1.0):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("observation matrix must be 2-D")
        super().__init__(matrix.shape[1], matrix.shape[0], obs_error_var)
        self.matrix = matrix

    def apply(self, state: np.ndarray) -> np.ndarray:
        return np.asarray(state, dtype=float) @ self.matrix.T

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        return np.asarray(obs_vector, dtype=float) @ self.matrix


class SubsampledObservation(ObservationOperator):
    """Observe a subset of state components, ``h(x) = x[indices]``.

    A memory-efficient special case of :class:`LinearObservation` used for
    partially-observed experiments (e.g. observing every n-th grid column).
    """

    def __init__(self, state_dim: int, indices: np.ndarray, obs_error_var: float | np.ndarray = 1.0):
        indices = np.asarray(indices, dtype=int)
        if indices.ndim != 1 or indices.size == 0:
            raise ValueError("indices must be a non-empty 1-D integer array")
        if indices.min() < 0 or indices.max() >= state_dim:
            raise ValueError("observation indices out of range")
        super().__init__(state_dim, indices.size, obs_error_var)
        self.indices = indices

    @classmethod
    def every_nth(cls, state_dim: int, stride: int, obs_error_var: float | np.ndarray = 1.0):
        """Observe every ``stride``-th state variable."""
        return cls(state_dim, np.arange(0, state_dim, stride), obs_error_var)

    def apply(self, state: np.ndarray) -> np.ndarray:
        return np.asarray(state, dtype=float)[..., self.indices]

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        obs_vector = np.asarray(obs_vector, dtype=float)
        out = np.zeros(obs_vector.shape[:-1] + (self.state_dim,), dtype=float)
        out[..., self.indices] = obs_vector
        return out


class NonlinearObservation(ObservationOperator):
    """Componentwise nonlinear operator ``h(x) = g(x[indices])``.

    The EnSF literature demonstrates the filter on highly nonlinear operators
    such as ``arctan`` and cubic observations; this class provides those and
    the exact Jacobian needed for the likelihood score.
    """

    SUPPORTED = ("arctan", "cubic", "abs")

    def __init__(
        self,
        state_dim: int,
        kind: str = "arctan",
        indices: np.ndarray | None = None,
        obs_error_var: float | np.ndarray = 1.0,
    ):
        if kind not in self.SUPPORTED:
            raise ValueError(f"unsupported nonlinear observation kind {kind!r}")
        if indices is None:
            indices = np.arange(state_dim)
        indices = np.asarray(indices, dtype=int)
        super().__init__(state_dim, indices.size, obs_error_var)
        self.kind = kind
        self.indices = indices

    def _g(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "arctan":
            return np.arctan(x)
        if self.kind == "cubic":
            return x**3
        return np.abs(x)

    def _gprime(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "arctan":
            return 1.0 / (1.0 + x**2)
        if self.kind == "cubic":
            return 3.0 * x**2
        return np.sign(x)

    def apply(self, state: np.ndarray) -> np.ndarray:
        return self._g(np.asarray(state, dtype=float)[..., self.indices])

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        if state is None:
            raise ValueError("nonlinear adjoint requires the linearisation state")
        state = np.asarray(state, dtype=float)
        obs_vector = np.asarray(obs_vector, dtype=float)
        jac_diag = self._gprime(state[..., self.indices])
        out = np.zeros(np.broadcast_shapes(state.shape[:-1], obs_vector.shape[:-1]) + (self.state_dim,))
        out[..., self.indices] = jac_diag * obs_vector
        return out
