"""Observation operators, observation-error models (Eq. 2) and the
streaming observation subsystem.

All filters in this library (EnSF, LETKF, EnKF) interact with observations
through :class:`ObservationOperator`, which bundles the forward map
``h_k(x)``, its adjoint action (needed by the EnSF likelihood score and by
the Kalman-gain algebra), and the Gaussian observation-error covariance
``R_k`` (assumed diagonal, as in the paper where ``R = I``).

The *streaming* layer (:class:`ObservationScenario`,
:class:`ObservationStream`) sits on top of the operators: a scenario
describes the per-cycle observation protocol of a real-time network —
observations every ``k``-th cycle, random message loss (dropout), arrival
latency that defers an observation to a later analysis, and alternating
multi-operator networks (e.g. rotating partial-coverage windows built with
:func:`coverage_windows`) — and a stream instantiates it as a reproducible
sequence of :class:`ObservationEvent`\\ s for the cycle engine
(:mod:`repro.workflow.engine`).
"""

from __future__ import annotations

import copy
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.utils.faults import FaultLog, FaultPlan
from repro.utils.random import default_rng

__all__ = [
    "ObservationOperator",
    "IdentityObservation",
    "LinearObservation",
    "SubsampledObservation",
    "NonlinearObservation",
    "ObservationScenario",
    "ObservationEvent",
    "ObservationStream",
    "ObservationQC",
    "QCReport",
    "coverage_windows",
]


class ObservationOperator(ABC):
    """Abstract observation model ``y = h(x) + ε``, ``ε ∼ N(0, R)`` with diagonal ``R``."""

    def __init__(self, state_dim: int, obs_dim: int, obs_error_var: float | np.ndarray = 1.0):
        if state_dim <= 0 or obs_dim <= 0:
            raise ValueError("state_dim and obs_dim must be positive")
        self.state_dim = int(state_dim)
        self.obs_dim = int(obs_dim)
        var = np.asarray(obs_error_var, dtype=float)
        if var.ndim == 0:
            var = np.full(self.obs_dim, float(var))
        if var.shape != (self.obs_dim,):
            raise ValueError("obs_error_var must be a scalar or a vector of length obs_dim")
        if np.any(var <= 0):
            raise ValueError("observation error variances must be positive")
        self.obs_error_var = var

    # -- forward / adjoint ------------------------------------------------ #
    @abstractmethod
    def apply(self, state: np.ndarray) -> np.ndarray:
        """Map state(s) ``(..., state_dim)`` to observation space ``(..., obs_dim)``."""

    @abstractmethod
    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        """Apply ``H(x)ᵀ`` (the Jacobian transpose at ``state``) to ``obs_vector``.

        For linear operators the Jacobian is state-independent and ``state``
        is ignored.
        """

    # -- derived quantities ------------------------------------------------ #
    def innovation(self, state: np.ndarray, observation: np.ndarray) -> np.ndarray:
        """``y − h(x)`` broadcast over leading state axes."""
        return np.asarray(observation, dtype=float) - self.apply(state)

    def log_likelihood_score(self, state: np.ndarray, observation: np.ndarray) -> np.ndarray:
        """``∇_x log p(y | x) = H(x)ᵀ R⁻¹ (y − h(x))`` (gradient of Eq. 5)."""
        innov = self.innovation(state, observation) / self.obs_error_var
        return self.adjoint(innov, state=state)

    def log_likelihood(self, state: np.ndarray, observation: np.ndarray) -> np.ndarray:
        """Log of Eq. 5 up to an additive constant (per state in the batch)."""
        innov = self.innovation(state, observation)
        return -0.5 * np.sum(innov**2 / self.obs_error_var, axis=-1)

    def sample_noise(self, rng: np.random.Generator | int | None = None, size: int | None = None) -> np.ndarray:
        """Draw observation-error realisations ``ε ∼ N(0, R)``."""
        rng = default_rng(rng)
        shape = (self.obs_dim,) if size is None else (size, self.obs_dim)
        return rng.standard_normal(shape) * np.sqrt(self.obs_error_var)

    def observe(self, true_state: np.ndarray, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate a synthetic observation of ``true_state`` (OSSE, §IV-A)."""
        return self.apply(true_state) + self.sample_noise(rng=rng)


class IdentityObservation(ObservationOperator):
    """Fully observed state, ``h(x) = x`` — the paper's accuracy-test setting."""

    def __init__(self, state_dim: int, obs_error_var: float | np.ndarray = 1.0):
        super().__init__(state_dim, state_dim, obs_error_var)

    def apply(self, state: np.ndarray) -> np.ndarray:
        return np.asarray(state, dtype=float)

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        return np.asarray(obs_vector, dtype=float)


class LinearObservation(ObservationOperator):
    """General linear operator ``h(x) = H x`` for a dense matrix ``H``."""

    def __init__(self, matrix: np.ndarray, obs_error_var: float | np.ndarray = 1.0):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("observation matrix must be 2-D")
        super().__init__(matrix.shape[1], matrix.shape[0], obs_error_var)
        self.matrix = matrix

    def apply(self, state: np.ndarray) -> np.ndarray:
        return np.asarray(state, dtype=float) @ self.matrix.T

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        return np.asarray(obs_vector, dtype=float) @ self.matrix


class SubsampledObservation(ObservationOperator):
    """Observe a subset of state components, ``h(x) = x[indices]``.

    A memory-efficient special case of :class:`LinearObservation` used for
    partially-observed experiments (e.g. observing every n-th grid column).
    """

    def __init__(self, state_dim: int, indices: np.ndarray, obs_error_var: float | np.ndarray = 1.0):
        indices = np.asarray(indices, dtype=int)
        if indices.ndim != 1 or indices.size == 0:
            raise ValueError("indices must be a non-empty 1-D integer array")
        if indices.min() < 0 or indices.max() >= state_dim:
            raise ValueError("observation indices out of range")
        super().__init__(state_dim, indices.size, obs_error_var)
        self.indices = indices

    @classmethod
    def every_nth(cls, state_dim: int, stride: int, obs_error_var: float | np.ndarray = 1.0):
        """Observe every ``stride``-th state variable."""
        return cls(state_dim, np.arange(0, state_dim, stride), obs_error_var)

    def apply(self, state: np.ndarray) -> np.ndarray:
        return np.asarray(state, dtype=float)[..., self.indices]

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        obs_vector = np.asarray(obs_vector, dtype=float)
        out = np.zeros(obs_vector.shape[:-1] + (self.state_dim,), dtype=float)
        out[..., self.indices] = obs_vector
        return out


class NonlinearObservation(ObservationOperator):
    """Componentwise nonlinear operator ``h(x) = g(x[indices])``.

    The EnSF literature demonstrates the filter on highly nonlinear operators
    such as ``arctan`` and cubic observations; this class provides those and
    the exact Jacobian needed for the likelihood score.
    """

    SUPPORTED = ("arctan", "cubic", "abs")

    def __init__(
        self,
        state_dim: int,
        kind: str = "arctan",
        indices: np.ndarray | None = None,
        obs_error_var: float | np.ndarray = 1.0,
    ):
        if kind not in self.SUPPORTED:
            raise ValueError(f"unsupported nonlinear observation kind {kind!r}")
        if indices is None:
            indices = np.arange(state_dim)
        indices = np.asarray(indices, dtype=int)
        super().__init__(state_dim, indices.size, obs_error_var)
        self.kind = kind
        self.indices = indices

    def _g(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "arctan":
            return np.arctan(x)
        if self.kind == "cubic":
            return x**3
        return np.abs(x)

    def _gprime(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "arctan":
            return 1.0 / (1.0 + x**2)
        if self.kind == "cubic":
            return 3.0 * x**2
        return np.sign(x)

    def apply(self, state: np.ndarray) -> np.ndarray:
        return self._g(np.asarray(state, dtype=float)[..., self.indices])

    def adjoint(self, obs_vector: np.ndarray, state: np.ndarray | None = None) -> np.ndarray:
        if state is None:
            raise ValueError("nonlinear adjoint requires the linearisation state")
        state = np.asarray(state, dtype=float)
        obs_vector = np.asarray(obs_vector, dtype=float)
        jac_diag = self._gprime(state[..., self.indices])
        out = np.zeros(np.broadcast_shapes(state.shape[:-1], obs_vector.shape[:-1]) + (self.state_dim,))
        out[..., self.indices] = jac_diag * obs_vector
        return out


# --------------------------------------------------------------------------- #
# Streaming observation subsystem
# --------------------------------------------------------------------------- #


def coverage_windows(
    state_dim: int, n_windows: int, obs_error_var: float | np.ndarray = 1.0
) -> tuple[SubsampledObservation, ...]:
    """Partition the state into ``n_windows`` contiguous coverage windows.

    Returns one :class:`SubsampledObservation` per window; used with
    :class:`ObservationScenario` multi-operator alternation this models a
    scanning instrument that only sees part of the domain each cycle (every
    state variable is revisited once per ``n_windows`` scheduled cycles).
    """
    if n_windows < 1 or n_windows > state_dim:
        raise ValueError("n_windows must lie in [1, state_dim]")
    edges = np.linspace(0, state_dim, n_windows + 1).astype(int)
    return tuple(
        SubsampledObservation(state_dim, np.arange(lo, hi), obs_error_var)
        for lo, hi in zip(edges[:-1], edges[1:])
    )


@dataclass(frozen=True)
class ObservationScenario:
    """Per-cycle observation protocol of a (possibly degraded) network.

    The default scenario — one observation of the configured operator at
    every cycle, never lost, never late — reproduces the paper's idealized
    OSSE protocol exactly (the cycling drivers are bit-identical to their
    pre-scenario behaviour under it).

    Attributes
    ----------
    every:
        Measure only on cycles with ``(cycle - start) % every == 0``
        (``every = 1``: every cycle).
    dropout:
        Probability that a scheduled measurement is lost before it reaches
        the analysis (drawn from the stream's dedicated schedule rng, so the
        observation-noise stream is untouched by the schedule).
    latency:
        Number of cycles between the measurement and its availability to the
        analysis; a latent observation is assimilated — against the newer
        forecast — at the first analysis time ``>= cycle + latency``.
    start:
        First cycle eligible for a measurement.
    operators:
        Alternating observation-operator network: scheduled cycle ``j`` uses
        ``operators[j % len(operators)]`` (e.g. rotating coverage windows
        from :func:`coverage_windows`).  Empty = the driver's default
        operator.
    name:
        Label recorded in diagnostics.
    """

    name: str = "full"
    every: int = 1
    dropout: float = 0.0
    latency: int = 0
    start: int = 0
    operators: tuple[ObservationOperator, ...] = ()

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("every must be at least 1")
        if not 0.0 <= self.dropout <= 1.0:
            raise ValueError("dropout must lie in [0, 1]")
        if self.latency < 0 or self.start < 0:
            raise ValueError("latency and start must be non-negative")
        object.__setattr__(self, "operators", tuple(self.operators))

    @property
    def is_idealized(self) -> bool:
        """True for the paper's protocol (full obs, every cycle, on time)."""
        return (
            self.every == 1
            and self.dropout == 0.0
            and self.latency == 0
            and self.start == 0
            and not self.operators
        )

    def scheduled(self, cycle: int) -> bool:
        """Is a measurement scheduled at ``cycle``?"""
        return cycle >= self.start and (cycle - self.start) % self.every == 0

    def operator_index(self, cycle: int, n_operators: int) -> int:
        """Index of the network operator used at scheduled ``cycle``."""
        return ((cycle - self.start) // self.every) % n_operators


@dataclass
class ObservationEvent:
    """One measurement: taken at ``cycle``, usable from ``available_at`` on."""

    cycle: int
    available_at: int
    operator_index: int
    operator: ObservationOperator
    observation: np.ndarray


@dataclass(frozen=True)
class QCReport:
    """Verdict of one :meth:`ObservationQC.check` on one event."""

    ok: bool
    n_values: int
    n_bad: int
    reason: str = ""


@dataclass(frozen=True)
class ObservationQC:
    """Pre-analysis observation quality control.

    Two checks run on every event: a sanity check rejecting non-finite
    values (NaN/inf — always on, a corrupted packet must never reach a
    filter), and an optional gross-error check rejecting values whose
    innovation against the forecast mean exceeds ``gross_threshold``
    standard deviations of the operator's observation error
    (``sqrt(obs_error_var)``).  ``per_operator`` overrides the threshold by
    operator class name (e.g. a laxer bound for ``"NonlinearObservation"``).

    Rejection is per *event*: the event is dropped once more than
    ``max_bad_fraction`` of its values fail (default 0.0 — one bad value
    kills the batch, the conservative real-time posture).  With
    ``gross_threshold=None`` clean observations always pass, so enabling
    the QC stage does not perturb a fault-free run.
    """

    gross_threshold: float | None = None
    per_operator: dict = field(default_factory=dict)
    max_bad_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.gross_threshold is not None and self.gross_threshold <= 0:
            raise ValueError("gross_threshold must be positive")
        if not 0.0 <= self.max_bad_fraction <= 1.0:
            raise ValueError("max_bad_fraction must lie in [0, 1]")

    def threshold_for(self, operator: ObservationOperator) -> float | None:
        """Gross-error threshold (in σ units) applying to ``operator``."""
        return self.per_operator.get(type(operator).__name__, self.gross_threshold)

    def check(self, event: ObservationEvent, forecast_mean: np.ndarray | None = None) -> QCReport:
        """Judge ``event`` against the forecast mean (``None``: finite-only)."""
        obs = np.asarray(event.observation, dtype=float)
        bad = ~np.isfinite(obs)
        threshold = self.threshold_for(event.operator)
        if threshold is not None and forecast_mean is not None:
            predicted = event.operator.apply(np.asarray(forecast_mean, dtype=float))
            sigma = np.sqrt(event.operator.obs_error_var)
            with np.errstate(invalid="ignore"):
                bad |= np.abs(obs - predicted) > threshold * sigma
        n_bad = int(np.count_nonzero(bad))
        ok = n_bad <= self.max_bad_fraction * obs.size
        reason = ""
        if not ok:
            what = "non-finite" if threshold is None else f"non-finite or >{threshold}σ"
            reason = (
                f"cycle-{event.cycle} {type(event.operator).__name__} event: "
                f"{n_bad}/{obs.size} values {what}"
            )
        return QCReport(ok=bool(ok), n_values=int(obs.size), n_bad=n_bad, reason=reason)


def _corrupt_observation(observation: np.ndarray, payload: dict) -> np.ndarray:
    """Deterministically corrupted copy of ``observation`` (no rng draws).

    ``payload["value"]`` picks the garbage (``"nan"`` default, ``"inf"``,
    or ``"gross"`` — a huge finite offset that only gross-error QC can
    catch); ``payload["fraction"]`` how much of the vector is hit (leading
    components, at least one).
    """
    corrupted = np.array(observation, dtype=float)
    fraction = float(payload.get("fraction", 1.0))
    n_bad = min(corrupted.size, max(1, math.ceil(fraction * corrupted.size)))
    value = str(payload.get("value", "nan"))
    if value == "gross":
        corrupted[:n_bad] += 1.0e6
    elif value == "inf":
        corrupted[:n_bad] = np.inf
    else:
        corrupted[:n_bad] = np.nan
    return corrupted


class ObservationStream:
    """Reproducible per-cycle stream of observation events for one scenario.

    Parameters
    ----------
    operators:
        A single operator or the scenario's alternating network.  When the
        scenario itself carries ``operators`` they take precedence.
    scenario:
        The protocol; ``None`` means the idealized default.
    rng:
        Observation-noise stream (generator or seed).  Under the idealized
        scenario the draws are identical, cycle for cycle, to the historical
        ``operator.observe(truth, rng=rng_obs)`` loop — which is what keeps
        the engine-backed drivers bit-identical to their predecessors.
    schedule_rng:
        Separate stream for dropout decisions, so degrading the schedule
        never shifts the noise realisations of the measurements that survive
        their own cycle's draw.
    fault_plan / fault_log:
        Deterministic fault injection (see :mod:`repro.utils.faults`); the
        stream owns the ``"observations"`` site, visited once per
        measurement actually taken.  Corruption is applied *after* the
        noise draw and without consuming any rng, so an injected run's
        surviving measurements are bit-identical to a clean run's.  The
        plan defaults to ``FaultPlan.from_env()`` (usually unset).
    """

    def __init__(
        self,
        operators: ObservationOperator | tuple[ObservationOperator, ...] | list,
        scenario: ObservationScenario | None = None,
        rng: np.random.Generator | int | None = None,
        schedule_rng: np.random.Generator | int | None = None,
        fault_plan: FaultPlan | None = None,
        fault_log: FaultLog | None = None,
    ) -> None:
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.scenario = scenario or ObservationScenario()
        if isinstance(operators, ObservationOperator):
            operators = (operators,)
        if self.scenario.operators:
            operators = self.scenario.operators
        self.operators = tuple(operators)
        if not self.operators:
            raise ValueError("an observation stream needs at least one operator")
        if len({op.state_dim for op in self.operators}) != 1:
            raise ValueError("all network operators must share one state_dim")
        self.rng = default_rng(rng)
        self.schedule_rng = default_rng(schedule_rng)
        self._pending: list[ObservationEvent] = []

    # -- per-cycle protocol ------------------------------------------------ #
    def measure(self, cycle: int, truth: np.ndarray) -> ObservationEvent | None:
        """Take this cycle's measurement (if scheduled and not dropped)."""
        scenario = self.scenario
        if not scenario.scheduled(cycle):
            return None
        if scenario.dropout > 0.0 and self.schedule_rng.random() < scenario.dropout:
            return None
        index = scenario.operator_index(cycle, len(self.operators))
        operator = self.operators[index]
        event = ObservationEvent(
            cycle=cycle,
            available_at=cycle + scenario.latency,
            operator_index=index,
            operator=operator,
            observation=operator.observe(truth, rng=self.rng),
        )
        self._pending.append(event)
        if self.fault_plan is not None:
            self._inject_faults(event)
        return event

    def _inject_faults(self, event: ObservationEvent) -> None:
        """Fire this measurement's ``"observations"``-site fault events.

        ``"spurious"`` mode (default) queues an *additional* corrupted
        duplicate of the measurement — the garbage retransmission QC must
        reject, leaving the genuine event untouched (bit-identical
        recovery).  ``"in-place"`` corrupts the genuine measurement itself —
        recoverable only by skipping it (QC) or rewinding past it
        (reset-from-checkpoint).
        """
        for fault in self.fault_plan.visit("observations"):
            if fault.kind != "obs-corrupt":
                continue
            corrupted = _corrupt_observation(event.observation, fault.payload)
            mode = str(fault.payload.get("mode", "spurious"))
            if mode == "in-place":
                event.observation = corrupted
                detail = f"in-place corruption of cycle-{event.cycle} measurement"
            else:
                self._pending.append(
                    ObservationEvent(
                        cycle=event.cycle,
                        available_at=event.available_at,
                        operator_index=event.operator_index,
                        operator=event.operator,
                        observation=corrupted,
                    )
                )
                detail = f"spurious corrupted duplicate of cycle-{event.cycle} measurement"
            self.fault_log.record("observations", "obs-corrupt", detail, cycle=event.cycle)

    def deliver(self, cycle: int) -> list[ObservationEvent]:
        """Pop every pending event that has arrived by ``cycle`` (in order)."""
        ready = [e for e in self._pending if e.available_at <= cycle]
        self._pending = [e for e in self._pending if e.available_at > cycle]
        return ready

    def advance(self, cycle: int, truth: np.ndarray) -> list[ObservationEvent]:
        """Measure at ``cycle`` and return everything deliverable there."""
        self.measure(cycle, truth)
        return self.deliver(cycle)

    @property
    def pending(self) -> tuple[ObservationEvent, ...]:
        """Measurements still in flight (scheduled but not yet delivered)."""
        return tuple(self._pending)

    # -- checkpointing ----------------------------------------------------- #
    def state_dict(self) -> dict:
        """Serializable stream state (rng states + in-flight events)."""
        return {
            "rng": copy.deepcopy(self.rng.bit_generator.state),
            "schedule_rng": copy.deepcopy(self.schedule_rng.bit_generator.state),
            "pending": copy.deepcopy(self._pending),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-exact resume)."""
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])
        self.schedule_rng.bit_generator.state = copy.deepcopy(state["schedule_rng"])
        self._pending = copy.deepcopy(state["pending"])
