"""Diffusion schedules for the score-based filter.

The forward SDE (Eq. 6) ``dZ_t = b(t) Z_t dt + σ(t) dW_t`` transports the
target (filtering) distribution at pseudo-time ``t = 0`` to a standard
Gaussian at ``t = T = 1``.  The paper (Eq. 9) chooses

``b(t) = d log α_t / dt``   and   ``σ²(t) = dβ²_t/dt − 2 (d log α_t/dt) β²_t``

with ``α_t = 1 − t`` and ``β_t = √t``.  Under this schedule the conditional
transition is Gaussian, ``Z_t | Z_0 ∼ N(α_t Z_0, β²_t I)`` (Eq. 12), which is
what makes the training-free Monte-Carlo score estimate possible.

For numerical robustness we follow the reference EnSF implementation and use
``α_t = 1 − t (1 − ε_α)`` with a small floor ``ε_α`` so that the drift and
diffusion stay finite at ``t = 1``.  Setting ``ε_α = 0`` recovers the paper's
exact schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["DiffusionSchedule", "LinearAlphaSchedule"]


@runtime_checkable
class DiffusionSchedule(Protocol):
    """Protocol for diffusion schedules on the pseudo-time interval [0, 1]."""

    def alpha(self, t: np.ndarray | float) -> np.ndarray | float:
        """Conditional mean scaling ``α_t``."""
        ...

    def beta_sq(self, t: np.ndarray | float) -> np.ndarray | float:
        """Conditional variance ``β²_t``."""
        ...

    def drift_coeff(self, t: np.ndarray | float) -> np.ndarray | float:
        """Drift coefficient ``b(t) = d log α_t / dt``."""
        ...

    def diffusion_sq(self, t: np.ndarray | float) -> np.ndarray | float:
        """Squared diffusion coefficient ``σ²(t)``."""
        ...


@dataclass(frozen=True)
class LinearAlphaSchedule:
    """The paper's schedule ``α_t = 1 − t (1 − ε_α)``, ``β²_t = t``.

    Parameters
    ----------
    eps_alpha:
        Floor applied to ``α_t`` at ``t = 1``; keeps the reverse-SDE drift
        finite.  The reference EnSF implementation uses 0.05.
    eps_beta:
        Floor applied to ``β²_t`` at ``t = 0``; avoids division by zero in the
        score estimator at the final reverse step.
    """

    eps_alpha: float = 0.05
    eps_beta: float = 1.0e-4

    def __post_init__(self) -> None:
        if not 0.0 <= self.eps_alpha < 1.0:
            raise ValueError("eps_alpha must lie in [0, 1)")
        if self.eps_beta <= 0.0:
            raise ValueError("eps_beta must be positive")

    def alpha(self, t):
        """``α_t = 1 − t (1 − ε_α)`` — decreases from 1 to ``ε_α``."""
        return 1.0 - np.asarray(t, dtype=float) * (1.0 - self.eps_alpha)

    def beta_sq(self, t):
        """``β²_t = max(t, ε_β)`` — increases from ~0 to 1."""
        return np.maximum(np.asarray(t, dtype=float), self.eps_beta)

    def dalpha_dt(self, t):
        """``dα_t/dt`` (constant for the linear schedule)."""
        t = np.asarray(t, dtype=float)
        return np.full_like(t, -(1.0 - self.eps_alpha))

    def dbeta_sq_dt(self, t):
        """``dβ²_t/dt`` (constant, equal to 1)."""
        t = np.asarray(t, dtype=float)
        return np.ones_like(t)

    def drift_coeff(self, t):
        """``b(t) = d log α_t / dt = α̇_t / α_t`` (Eq. 9, first relation)."""
        return self.dalpha_dt(t) / self.alpha(t)

    def diffusion_sq(self, t):
        """``σ²(t) = dβ²_t/dt − 2 b(t) β²_t`` (Eq. 9, second relation)."""
        return self.dbeta_sq_dt(t) - 2.0 * self.drift_coeff(t) * self.beta_sq(t)

    def diffusion(self, t):
        """``σ(t)`` — the reverse-SDE noise amplitude."""
        return np.sqrt(self.diffusion_sq(t))

    def time_grid(self, n_steps: int, t_end: float = 1.0, t_start: float = 0.0) -> np.ndarray:
        """Uniform pseudo-time grid from ``t_end`` down to ``t_start``.

        The reverse SDE is integrated backwards, so the grid is returned in
        decreasing order with ``n_steps + 1`` points.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be at least 1")
        if not 0.0 <= t_start < t_end <= 1.0:
            raise ValueError("require 0 <= t_start < t_end <= 1")
        return np.linspace(t_end, t_start, n_steps + 1)
