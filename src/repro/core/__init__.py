"""The paper's primary contribution: the Ensemble Score Filter (EnSF).

Submodules
----------
``schedules``
    Diffusion drift/diffusion coefficient schedules (Eq. 9).
``score``
    Training-free Monte-Carlo estimator of the prior score (Eqs. 13–16).
``likelihood``
    Analytic Gaussian likelihood score and the damping function ``h(t)``.
``sde``
    Euler–Maruyama integrator of the reverse-time SDE (Eq. 7).
``ensf``
    The :class:`EnSF` filter combining the above (predict/update API).
``observations``
    Observation operators shared by all filters (Eq. 2).
``filters``
    Common filter API and ensemble post-processing (spread relaxation).
"""

from repro.core.schedules import LinearAlphaSchedule, DiffusionSchedule
from repro.core.score import MonteCarloScoreEstimator
from repro.core.likelihood import GaussianLikelihoodScore, LinearDamping, CosineDamping, ConstantDamping
from repro.core.sde import ReverseSDESampler
from repro.core.observations import (
    ObservationOperator,
    IdentityObservation,
    LinearObservation,
    SubsampledObservation,
    NonlinearObservation,
    ObservationScenario,
    ObservationEvent,
    ObservationStream,
    ObservationQC,
    QCReport,
    coverage_windows,
)
from repro.core.filters import EnsembleFilter, relax_spread, ensemble_statistics
from repro.core.ensf import EnSF, EnSFConfig

__all__ = [
    "LinearAlphaSchedule",
    "DiffusionSchedule",
    "MonteCarloScoreEstimator",
    "GaussianLikelihoodScore",
    "LinearDamping",
    "CosineDamping",
    "ConstantDamping",
    "ReverseSDESampler",
    "ObservationOperator",
    "IdentityObservation",
    "LinearObservation",
    "SubsampledObservation",
    "NonlinearObservation",
    "ObservationScenario",
    "ObservationEvent",
    "ObservationStream",
    "ObservationQC",
    "QCReport",
    "coverage_windows",
    "EnsembleFilter",
    "relax_spread",
    "ensemble_statistics",
    "EnSF",
    "EnSFConfig",
]
