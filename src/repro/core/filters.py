"""Common ensemble-filter API and ensemble post-processing helpers.

Every DA method in this library implements :class:`EnsembleFilter`:
``analyze(forecast_ensemble, observation, operator)`` maps the forecast
(prior) ensemble to the analysis (posterior) ensemble.  The OSSE cycling
driver in :mod:`repro.da.cycling` and the real-time workflow in
:mod:`repro.workflow.realtime` only depend on this interface, so EnSF, LETKF
and EnKF are interchangeable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.observations import ObservationOperator

__all__ = ["EnsembleFilter", "relax_spread", "ensemble_statistics", "EnsembleStatistics"]


@dataclass(frozen=True)
class EnsembleStatistics:
    """Summary statistics of an ensemble."""

    mean: np.ndarray
    spread: np.ndarray

    @property
    def mean_spread(self) -> float:
        """Domain-averaged ensemble spread (scalar)."""
        return float(np.mean(self.spread))


def ensemble_statistics(ensemble: np.ndarray) -> EnsembleStatistics:
    """Mean and per-variable spread (std with ddof=1) of an ``(m, d)`` ensemble."""
    ensemble = np.asarray(ensemble, dtype=float)
    if ensemble.ndim != 2:
        raise ValueError("ensemble must have shape (m, d)")
    mean = ensemble.mean(axis=0)
    if ensemble.shape[0] > 1:
        spread = ensemble.std(axis=0, ddof=1)
    else:
        spread = np.zeros_like(mean)
    return EnsembleStatistics(mean=mean, spread=spread)


def relax_spread(
    analysis: np.ndarray,
    forecast: np.ndarray,
    factor: float = 1.0,
    floor: float = 1.0e-12,
) -> np.ndarray:
    """Relax the analysis ensemble spread towards the forecast (prior) spread.

    The paper stabilises the EnSF without localization by relaxing the
    analysis spread to the prior values (§IV-A: "the variance (spread) of the
    analysis ensemble is simply relaxed to the prior (forecast) values").
    With ``factor = 1`` the analysis perturbations are rescaled so that the
    per-variable spread equals the forecast spread; ``factor = 0`` leaves the
    analysis unchanged; intermediate values blend the two (the RTPS form of
    Whitaker & Hamill 2012).

    Parameters
    ----------
    analysis, forecast:
        Ensembles of shape ``(m, d)``.
    factor:
        Relaxation factor in ``[0, 1]``.
    floor:
        Lower bound applied to the analysis spread to avoid division by zero.
    """
    if not 0.0 <= factor <= 1.0:
        raise ValueError("relaxation factor must lie in [0, 1]")
    analysis = np.asarray(analysis, dtype=float)
    forecast = np.asarray(forecast, dtype=float)
    if analysis.shape != forecast.shape:
        raise ValueError("analysis and forecast ensembles must have the same shape")
    if factor == 0.0 or analysis.shape[0] < 2:
        return analysis

    a_stats = ensemble_statistics(analysis)
    f_stats = ensemble_statistics(forecast)
    a_spread = np.maximum(a_stats.spread, floor)
    # RTPS: σ_new = (1 − factor) σ_a + factor σ_f
    target = (1.0 - factor) * a_stats.spread + factor * f_stats.spread
    scale = target / a_spread
    perturbations = analysis - a_stats.mean
    return a_stats.mean + perturbations * scale


class EnsembleFilter(ABC):
    """Abstract base class for ensemble analysis updates."""

    @abstractmethod
    def analyze(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
    ) -> np.ndarray:
        """Return the analysis ensemble given the forecast ensemble and observation.

        Parameters
        ----------
        forecast_ensemble:
            Prior ensemble, shape ``(m, state_dim)``.
        observation:
            Observation vector ``y_k`` of length ``operator.obs_dim``.
        operator:
            Observation operator for the current analysis time.
        """

    def analyze_parallel(
        self,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator: ObservationOperator,
        executor=None,
    ) -> np.ndarray:
        """Analysis update with optional intra-analysis parallelism.

        ``executor`` is an :class:`repro.hpc.ensemble_parallel.EnsembleExecutor`
        (or ``None``).  Filters whose update decomposes into independent
        work-units override this to shard the work across the executor's
        process pool — e.g. the LETKF's local column analyses.  The default
        implementation ignores the executor and runs :meth:`analyze`
        in-process, so the OSSE driver can pass its executor unconditionally.
        Overrides must produce results bit-identical across worker counts
        and member-wise equivalent to :meth:`analyze`.
        """
        return self.analyze(forecast_ensemble, observation, operator)

    @property
    def name(self) -> str:
        """Human-readable filter name (used in experiment reports)."""
        return type(self).__name__
