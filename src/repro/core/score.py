"""Training-free Monte-Carlo estimator of the prior score function.

This is the key ingredient of the EnSF (paper §III-A2, Eqs. 13–16): instead of
training a neural network to represent the score ``s(z, t) = ∇ log Q(z_t)``,
the score is approximated directly from the forecast ensemble
``{x^m_{k|k−1}}`` using the closed-form conditional ``Q(z_t | z_0) =
N(α_t z_0, β²_t I)``:

``ŝ(z, t) = − Σ_j  (z − α_t x_j) / β²_t  ·  ŵ_t(z, x_j)``

where the weights ``ŵ_t`` are the self-normalised conditional densities
(Eq. 16).  The estimator is vectorised over a batch of evaluation points and
supports mini-batching over the ensemble (``J ≤ M`` members per evaluation),
as described in the paper.

Fused score path
----------------
The reverse-SDE sampler evaluates this estimator on every Euler step
(~100 times per analysis), so the hot path is fused: the ensemble statics
(``Σ_d x_j²``) are precomputed once (the per-step schedule constants are
precomputed by the buffered sampler, see :mod:`repro.core.sde`), and
``log_weights → weights → score`` collapse into a single in-place evaluation
(:meth:`MonteCarloScoreEstimator.score_into`) that performs one GEMM for the
cross terms and one for the weighted mean, writing every intermediate into
preallocated workspaces.  (The original allocating implementation served as
the numerical oracle through several releases and has been retired.)
"""

from __future__ import annotations

import numpy as np

from repro.core.schedules import LinearAlphaSchedule
from repro.utils.random import default_rng
from repro.utils.xp import ArrayBackend, resolve_backend

__all__ = ["MonteCarloScoreEstimator", "gaussian_reference_score"]


def gaussian_reference_score(z: np.ndarray, mean: np.ndarray, var: float | np.ndarray) -> np.ndarray:
    """Analytic score of a Gaussian ``N(mean, var I)`` — used as a test oracle."""
    return -(z - mean) / var


class MonteCarloScoreEstimator:
    """Estimate ``∇ log Q(z_t)`` from samples of ``Q(z_0)``.

    Parameters
    ----------
    ensemble:
        Samples of the target (prior) distribution, shape ``(M, d)``.
    schedule:
        Diffusion schedule providing ``α_t`` and ``β²_t``.
    minibatch:
        Number of ensemble members ``J`` used per score evaluation.  ``None``
        uses the full ensemble (the paper's default for moderate ``M``).
    rng:
        Random stream used to draw mini-batches.
    backend:
        Array backend name (``"numpy"``/``"mock-device"``/``"cupy"``), an
        :class:`~repro.utils.xp.ArrayBackend`, or ``None`` for the
        process-wide default (``REPRO_ARRAY_BACKEND``).  The fused score
        path runs entirely on the backend's device: the ensemble (and its
        statics) is moved once at construction, evaluation points are
        expected on-device, and the numpy backend is bit-identical to the
        pre-shim kernel.
    """

    def __init__(
        self,
        ensemble: np.ndarray,
        schedule: LinearAlphaSchedule | None = None,
        minibatch: int | None = None,
        rng: np.random.Generator | int | None = None,
        backend: str | ArrayBackend | None = None,
    ) -> None:
        ensemble = np.asarray(ensemble, dtype=float)
        if ensemble.ndim != 2:
            raise ValueError("ensemble must have shape (M, d)")
        if ensemble.shape[0] < 1:
            raise ValueError("ensemble must contain at least one member")
        self.ensemble = ensemble
        self.n_members, self.dim = ensemble.shape
        self.schedule = schedule or LinearAlphaSchedule()
        if minibatch is not None and not 1 <= minibatch <= self.n_members:
            raise ValueError(
                f"minibatch must lie in [1, {self.n_members}], got {minibatch}"
            )
        self.minibatch = minibatch
        self.rng = default_rng(rng)
        self.xp = resolve_backend(backend)
        xp = self.xp
        # Device-resident ensemble: moved once, reused by every evaluation.
        self._ensemble_dev = xp.to_device(ensemble)
        # Ensemble statics reused by every fused evaluation: ``Σ_d x_j²``
        # appears in the expanded ``‖z − α x_j‖²`` on each of the ~100
        # reverse-SDE score calls and never changes within an analysis.
        self._x_sq = xp.einsum("md,md->m", self._ensemble_dev, self._ensemble_dev)
        # Reusable workspaces keyed by the (n_points, J) evaluation shape.
        self._weight_buf: np.ndarray | None = None
        self._zsq_buf: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def _select_batch(self) -> np.ndarray:
        """Return the ensemble subset used for one evaluation (shape (J, d))."""
        if self.minibatch is None or self.minibatch == self.n_members:
            return self.ensemble
        idx = self.rng.choice(self.n_members, size=self.minibatch, replace=False)
        return self.ensemble[idx]

    def _select_batch_with_statics(self) -> tuple[np.ndarray, np.ndarray]:
        """Device batch plus its precomputed ``Σ_d x_j²`` statics."""
        if self.minibatch is None or self.minibatch == self.n_members:
            return self._ensemble_dev, self._x_sq
        idx = self.rng.choice(self.n_members, size=self.minibatch, replace=False)
        return self._ensemble_dev[idx], self._x_sq[idx]

    def log_weights(self, z: np.ndarray, t: float, batch: np.ndarray | None = None) -> np.ndarray:
        """Unnormalised log-weights ``log Q(z_t | x_j)`` for each batch member.

        Parameters
        ----------
        z:
            Evaluation points, shape ``(n, d)``.
        t:
            Pseudo-time in ``[0, 1]``.
        batch:
            Optional pre-selected ensemble subset ``(J, d)``.

        Returns
        -------
        Array of shape ``(n, J)``.
        """
        xp = self.xp
        z = np.atleast_2d(np.asarray(z, dtype=float))
        batch = self._select_batch() if batch is None else np.asarray(batch, dtype=float)
        alpha = float(self.schedule.alpha(t))
        beta_sq = float(self.schedule.beta_sq(t))
        z_dev = xp.to_device(z)
        batch_dev = xp.to_device(batch)
        # ||z - α x_j||² expanded to avoid materialising the (n, J, d) tensor
        # twice; a single broadcasted difference is still required for the
        # score itself, so we reuse the expansion trick only for the weights.
        z_sq = xp.sum(z_dev**2, axis=1)[:, None]
        x_sq = xp.sum(batch_dev**2, axis=1)[None, :]
        cross = z_dev @ batch_dev.T
        dist_sq = z_sq - 2.0 * alpha * cross + alpha**2 * x_sq
        # The expansion can go slightly negative in floating point when
        # z ≈ α x_j; clamp so the log-density never exceeds its peak.
        dist_sq = xp.maximum(dist_sq, 0.0)
        return xp.to_host(-0.5 * dist_sq / beta_sq)

    def weights(self, z: np.ndarray, t: float, batch: np.ndarray | None = None) -> np.ndarray:
        """Self-normalised weights ``ŵ_t(z, x_j)`` (Eq. 16); rows sum to one."""
        logw = self.log_weights(z, t, batch=batch)
        logw = logw - logw.max(axis=1, keepdims=True)
        w = np.exp(logw)
        return w / w.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------ #
    def score_into(self, z: np.ndarray, t: float, out: np.ndarray) -> np.ndarray:
        """Fused in-place estimate of the prior score ``ŝ(z, t)`` (Eq. 15).

        Computes weights and score in a single pass — one GEMM for the
        ``z xᵀ`` cross terms, an in-place softmax on a persistent ``(n, J)``
        workspace, and one GEMM for the weighted ensemble mean written
        directly into ``out`` — with no ``(n, d)`` temporaries.

        Parameters
        ----------
        z:
            Evaluation points, shape ``(n, d)`` (2-D, C-contiguous float64),
            resident on the backend's device (host arrays for the CPU
            backends; the reverse-SDE integrator keeps its state on-device).
        t:
            Pseudo-time in ``[0, 1]``.
        out:
            Device output array of shape ``(n, d)``; overwritten with the
            score.
        """
        xp = self.xp
        batch, x_sq = self._select_batch_with_statics()
        alpha = float(self.schedule.alpha(t))
        beta_sq = float(self.schedule.beta_sq(t))
        n = z.shape[0]
        j = batch.shape[0]

        if self._weight_buf is None or self._weight_buf.shape != (n, j):
            self._weight_buf = xp.empty((n, j))
            self._zsq_buf = xp.empty(n)
        w = self._weight_buf
        z_sq = self._zsq_buf

        xp.einsum("nd,nd->n", z, z, out=z_sq)
        xp.dot(z, batch.T, out=w)                     # cross terms (one GEMM)
        w *= -2.0 * alpha
        w += z_sq[:, None]
        w += (alpha * alpha) * x_sq[None, :]
        xp.maximum(w, 0.0, out=w)                     # clamp ‖z − α x‖² ≥ 0
        w *= -0.5 / beta_sq
        w -= w.max(axis=1, keepdims=True)
        xp.exp(w, out=w)
        w /= w.sum(axis=1, keepdims=True)

        xp.dot(w, batch, out=out)                     # weighted mean (one GEMM)
        out *= alpha
        out -= z
        out *= 1.0 / beta_sq                          # ŝ = −(z − α Σ w x)/β²
        return out

    def score(self, z: np.ndarray, t: float) -> np.ndarray:
        """Estimate the prior score ``ŝ(z, t)`` at points ``z`` (Eq. 15).

        ``z`` may be ``(d,)`` or ``(n, d)``; the return matches the input
        shape.  A fresh output array is allocated; the fused intermediates
        reuse the estimator's workspaces.
        """
        xp = self.xp
        z_in = np.asarray(z, dtype=float)
        squeeze = z_in.ndim == 1
        z2d = np.ascontiguousarray(np.atleast_2d(z_in))
        if z2d.shape[1] != self.dim:
            raise ValueError(f"points have dimension {z2d.shape[1]}, ensemble has {self.dim}")
        z_dev = xp.to_device(z2d)
        out = xp.empty_like(z_dev)
        self.score_into(z_dev, t, out)
        out = xp.to_host(out)
        return out[0] if squeeze else out

    def __call__(self, z: np.ndarray, t: float) -> np.ndarray:
        return self.score(z, t)
