"""Training-free Monte-Carlo estimator of the prior score function.

This is the key ingredient of the EnSF (paper §III-A2, Eqs. 13–16): instead of
training a neural network to represent the score ``s(z, t) = ∇ log Q(z_t)``,
the score is approximated directly from the forecast ensemble
``{x^m_{k|k−1}}`` using the closed-form conditional ``Q(z_t | z_0) =
N(α_t z_0, β²_t I)``:

``ŝ(z, t) = − Σ_j  (z − α_t x_j) / β²_t  ·  ŵ_t(z, x_j)``

where the weights ``ŵ_t`` are the self-normalised conditional densities
(Eq. 16).  The estimator is vectorised over a batch of evaluation points and
supports mini-batching over the ensemble (``J ≤ M`` members per evaluation),
as described in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedules import LinearAlphaSchedule
from repro.utils.random import default_rng

__all__ = ["MonteCarloScoreEstimator", "gaussian_reference_score"]


def gaussian_reference_score(z: np.ndarray, mean: np.ndarray, var: float | np.ndarray) -> np.ndarray:
    """Analytic score of a Gaussian ``N(mean, var I)`` — used as a test oracle."""
    return -(z - mean) / var


class MonteCarloScoreEstimator:
    """Estimate ``∇ log Q(z_t)`` from samples of ``Q(z_0)``.

    Parameters
    ----------
    ensemble:
        Samples of the target (prior) distribution, shape ``(M, d)``.
    schedule:
        Diffusion schedule providing ``α_t`` and ``β²_t``.
    minibatch:
        Number of ensemble members ``J`` used per score evaluation.  ``None``
        uses the full ensemble (the paper's default for moderate ``M``).
    rng:
        Random stream used to draw mini-batches.
    """

    def __init__(
        self,
        ensemble: np.ndarray,
        schedule: LinearAlphaSchedule | None = None,
        minibatch: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        ensemble = np.asarray(ensemble, dtype=float)
        if ensemble.ndim != 2:
            raise ValueError("ensemble must have shape (M, d)")
        if ensemble.shape[0] < 1:
            raise ValueError("ensemble must contain at least one member")
        self.ensemble = ensemble
        self.n_members, self.dim = ensemble.shape
        self.schedule = schedule or LinearAlphaSchedule()
        if minibatch is not None and not 1 <= minibatch <= self.n_members:
            raise ValueError(
                f"minibatch must lie in [1, {self.n_members}], got {minibatch}"
            )
        self.minibatch = minibatch
        self.rng = default_rng(rng)

    # ------------------------------------------------------------------ #
    def _select_batch(self) -> np.ndarray:
        """Return the ensemble subset used for one evaluation (shape (J, d))."""
        if self.minibatch is None or self.minibatch == self.n_members:
            return self.ensemble
        idx = self.rng.choice(self.n_members, size=self.minibatch, replace=False)
        return self.ensemble[idx]

    def log_weights(self, z: np.ndarray, t: float, batch: np.ndarray | None = None) -> np.ndarray:
        """Unnormalised log-weights ``log Q(z_t | x_j)`` for each batch member.

        Parameters
        ----------
        z:
            Evaluation points, shape ``(n, d)``.
        t:
            Pseudo-time in ``[0, 1]``.
        batch:
            Optional pre-selected ensemble subset ``(J, d)``.

        Returns
        -------
        Array of shape ``(n, J)``.
        """
        z = np.atleast_2d(np.asarray(z, dtype=float))
        batch = self._select_batch() if batch is None else np.asarray(batch, dtype=float)
        alpha = float(self.schedule.alpha(t))
        beta_sq = float(self.schedule.beta_sq(t))
        # ||z - α x_j||² expanded to avoid materialising the (n, J, d) tensor
        # twice; a single broadcasted difference is still required for the
        # score itself, so we reuse the expansion trick only for the weights.
        z_sq = np.sum(z**2, axis=1)[:, None]
        x_sq = np.sum(batch**2, axis=1)[None, :]
        cross = z @ batch.T
        dist_sq = z_sq - 2.0 * alpha * cross + alpha**2 * x_sq
        return -0.5 * dist_sq / beta_sq

    def weights(self, z: np.ndarray, t: float, batch: np.ndarray | None = None) -> np.ndarray:
        """Self-normalised weights ``ŵ_t(z, x_j)`` (Eq. 16); rows sum to one."""
        logw = self.log_weights(z, t, batch=batch)
        logw = logw - logw.max(axis=1, keepdims=True)
        w = np.exp(logw)
        return w / w.sum(axis=1, keepdims=True)

    def score(self, z: np.ndarray, t: float) -> np.ndarray:
        """Estimate the prior score ``ŝ(z, t)`` at points ``z`` (Eq. 15).

        ``z`` may be ``(d,)`` or ``(n, d)``; the return matches the input
        shape.
        """
        z_in = np.asarray(z, dtype=float)
        squeeze = z_in.ndim == 1
        z2d = np.atleast_2d(z_in)
        if z2d.shape[1] != self.dim:
            raise ValueError(f"points have dimension {z2d.shape[1]}, ensemble has {self.dim}")

        batch = self._select_batch()
        alpha = float(self.schedule.alpha(t))
        beta_sq = float(self.schedule.beta_sq(t))
        w = self.weights(z2d, t, batch=batch)  # (n, J)

        # ŝ(z) = -(z - α Σ_j w_j x_j) / β²  because Σ_j w_j = 1.
        weighted_mean = w @ batch  # (n, d)
        score = -(z2d - alpha * weighted_mean) / beta_sq
        return score[0] if squeeze else score

    def __call__(self, z: np.ndarray, t: float) -> np.ndarray:
        return self.score(z, t)
