"""Grid geometry helpers for the doubly-periodic SQG domain.

The SQG model is discretised on a doubly-periodic square domain of physical
size ``L`` (paper uses a domain representative of mid-latitude synoptic
scales, L ≈ 20,000 km).  LETKF localization needs physical distances between
grid points, which on a periodic domain means the minimum-image convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Grid2D",
    "periodic_delta",
    "periodic_distance_matrix",
    "chord_distance_km",
]

# The batched LETKF kernels (see repro.da.localization.LocalAnalysisGeometry)
# exploit the translation invariance of periodic distances: the distance
# between two columns depends only on their index offset, so a single
# ``(ny, nx)`` stencil of distances from column 0 determines every
# column-to-column distance on the grid without recomputing any trigonometry.


def periodic_delta(a: np.ndarray, b: np.ndarray, length: float) -> np.ndarray:
    """Signed minimum-image separation ``a - b`` on a periodic axis of size ``length``."""
    d = np.asarray(a) - np.asarray(b)
    return d - length * np.round(d / length)


def periodic_distance_matrix(
    x: np.ndarray, y: np.ndarray, lx: float, ly: float
) -> np.ndarray:
    """Pairwise periodic Euclidean distances between points.

    Parameters
    ----------
    x, y:
        1-D coordinate arrays of the two point sets; ``x`` has shape ``(n, 2)``
        and ``y`` has shape ``(m, 2)`` with columns ``(x_coord, y_coord)``.
    lx, ly:
        Domain periods in each direction.

    Returns
    -------
    ndarray of shape ``(n, m)``.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.atleast_2d(np.asarray(y, dtype=float))
    dx = periodic_delta(x[:, None, 0], y[None, :, 0], lx)
    dy = periodic_delta(x[:, None, 1], y[None, :, 1], ly)
    return np.hypot(dx, dy)


def chord_distance_km(lat1, lon1, lat2, lon2, radius_km: float = 6371.0) -> np.ndarray:
    """Great-circle (haversine) distance in kilometres.

    Provided for observation operators defined on latitude/longitude points
    (e.g. when coupling the framework to a global foundation-model surrogate).
    """
    lat1, lon1, lat2, lon2 = map(np.radians, (lat1, lon1, lat2, lon2))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    h = np.clip(h, 0.0, 1.0)
    return 2.0 * radius_km * np.arcsin(np.sqrt(h))


@dataclass(frozen=True)
class Grid2D:
    """Doubly-periodic rectangular grid with ``nlev`` vertical levels.

    Attributes
    ----------
    nx, ny:
        Number of grid points in x and y.
    lx, ly:
        Physical domain size (metres).
    nlev:
        Number of vertical levels carried by the state (2 for the SQG model:
        the lower and upper boundaries).
    """

    nx: int
    ny: int
    lx: float = 2.0e7
    ly: float = 2.0e7
    nlev: int = 2

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0 or self.nlev <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.lx <= 0 or self.ly <= 0:
            raise ValueError("domain size must be positive")

    @property
    def dx(self) -> float:
        """Grid spacing in x (metres)."""
        return self.lx / self.nx

    @property
    def dy(self) -> float:
        """Grid spacing in y (metres)."""
        return self.ly / self.ny

    @property
    def shape(self) -> tuple[int, int, int]:
        """State array shape ``(nlev, ny, nx)``."""
        return (self.nlev, self.ny, self.nx)

    @property
    def size(self) -> int:
        """Total number of state variables."""
        return self.nlev * self.ny * self.nx

    def x_coords(self) -> np.ndarray:
        """1-D array of x coordinates (metres)."""
        return np.arange(self.nx) * self.dx

    def y_coords(self) -> np.ndarray:
        """1-D array of y coordinates (metres)."""
        return np.arange(self.ny) * self.dy

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, Y)`` coordinate arrays of shape ``(ny, nx)``."""
        return np.meshgrid(self.x_coords(), self.y_coords(), indexing="xy")

    def point_coordinates(self) -> np.ndarray:
        """Horizontal coordinates of every column, shape ``(ny*nx, 2)``.

        The vertical dimension is ignored for localization distances (the
        paper couples horizontal and vertical localization through the Rossby
        radius; for the two-boundary SQG state we localize columns).
        """
        xx, yy = self.meshgrid()
        return np.column_stack([xx.ravel(), yy.ravel()])

    def flatten_state(self, state: np.ndarray) -> np.ndarray:
        """Flatten a ``(nlev, ny, nx)`` state to a 1-D vector."""
        state = np.asarray(state)
        if state.shape[-3:] != self.shape:
            raise ValueError(f"state shape {state.shape} incompatible with grid {self.shape}")
        return state.reshape(state.shape[:-3] + (self.size,))

    def unflatten_state(self, vec: np.ndarray) -> np.ndarray:
        """Reshape a flattened state vector back to ``(nlev, ny, nx)``."""
        vec = np.asarray(vec)
        if vec.shape[-1] != self.size:
            raise ValueError(f"vector length {vec.shape[-1]} != grid size {self.size}")
        return vec.reshape(vec.shape[:-1] + self.shape)

    def column_index(self, flat_index: np.ndarray) -> np.ndarray:
        """Map flattened state indices to horizontal column indices in ``[0, ny*nx)``."""
        flat_index = np.asarray(flat_index)
        return flat_index % (self.ny * self.nx)

    def distance_stencil(self) -> np.ndarray:
        """Periodic distances from column 0 to every column, shape ``(ny, nx)``.

        Because the grid is doubly periodic and uniform, the distance between
        columns ``a`` and ``b`` depends only on the wrapped index offset
        ``b - a``; this stencil therefore encodes the full
        ``(ny*nx, ny*nx)`` column distance matrix in ``O(ny*nx)`` memory.  It
        is the only place the batched analysis kernels evaluate distances —
        everything downstream is pure integer index arithmetic.
        """
        coords = self.point_coordinates()
        row = periodic_distance_matrix(coords[0][None, :], coords, self.lx, self.ly)[0]
        return row.reshape(self.ny, self.nx)

    def column_pair_distances(
        self,
        columns: np.ndarray,
        obs_columns: np.ndarray,
        stencil: np.ndarray | None = None,
    ) -> np.ndarray:
        """Distances between analysis ``columns`` and ``obs_columns``.

        Uses :meth:`distance_stencil` plus wrapped index arithmetic, so no
        trigonometric/minimum-image work is done per pair.  Returns an array
        of shape ``(len(columns), len(obs_columns))``.
        """
        if stencil is None:
            stencil = self.distance_stencil()
        columns = np.asarray(columns, dtype=np.intp)
        obs_columns = np.asarray(obs_columns, dtype=np.intp)
        ciy, cix = np.divmod(columns, self.nx)
        oiy, oix = np.divmod(obs_columns, self.nx)
        riy = (oiy[None, :] - ciy[:, None]) % self.ny
        rix = (oix[None, :] - cix[:, None]) % self.nx
        return stencil[riy, rix]
