"""Pluggable FFT backend shim for the pseudo-spectral forecast engine.

The spectral machinery (:mod:`repro.models.spectral`) routes every transform
through a small backend object so the FFT implementation can be swapped
without touching the numerics.  Four backends are registered:

* ``"scipy"`` — :mod:`scipy.fft` (pypocketfft).  Supports the ``workers``
  argument, so batched ensemble transforms parallelise across cores.
  Selected automatically when scipy is importable and more than one worker
  is available.
* ``"numpy"`` — :mod:`numpy.fft` (pocketfft).  Always available; the
  fallback on numpy-only installs and the faster choice on single-core
  hosts.
* ``"mock-device"`` — :mod:`numpy.fft` again, but declared device-native for
  the ``mock-device`` array backend (:mod:`repro.utils.xp`): transforms on
  mock "device" arrays count as on-device work, so the transfer counters
  meter only genuine host↔device boundary crossings.  Bit-identical to
  ``"numpy"`` by construction.
* ``"cupy"`` — :mod:`cupy.fft` (pocketfft-compatible), imported lazily, for
  real device-resident transforms when CuPy and a GPU are present.

The three host/pocketfft backends produce **bit-identical** results
(asserted by the backend-parity regression tests), so swapping backends does
not change forecast trajectories — the shim is a performance knob, not a
numerics knob.  ``cupy.fft`` follows the same algorithm family but runs on
device memory; its parity is certified on GPU hosts only.

Device pairing
--------------
:func:`default_backend_name_for` maps an array backend's ``device`` tag to
the FFT backend whose transforms operate natively on that device
(``"mock-device"`` → ``"mock-device"``, ``"cuda"`` → ``"cupy"``), so a
:class:`~repro.models.spectral.SpectralGrid` built on a device array backend
keeps spectral state device-resident through every transform.  Explicit
selection (argument, ``REPRO_FFT_BACKEND``, :func:`set_default_backend`)
still wins over the pairing.

Selection
---------
``resolve_backend(None)`` consults the ``REPRO_FFT_BACKEND`` environment
variable (``"auto"``, ``"numpy"`` or ``"scipy"``; default ``"auto"``), then
falls back to scipy-if-available.  An explicit env value (anything but
``"auto"``) wins over :func:`set_default_backend` — the env var is the
operator's override of record, the same precedence the array-backend shim
(:mod:`repro.utils.xp`) uses for ``REPRO_ARRAY_BACKEND``.  ``scipy`` is
imported lazily — merely
importing this module (or collecting the test suite) never pulls it in, so
numpy-only installs keep working (checked by ``scripts/smoke.sh``).

The worker count for the scipy backend comes from ``REPRO_FFT_WORKERS``
(default: all cores).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "FFTBackend",
    "available_backends",
    "default_backend_name",
    "default_backend_name_for",
    "resolve_backend",
    "set_default_backend",
]

_ENV_BACKEND = "REPRO_FFT_BACKEND"
_ENV_WORKERS = "REPRO_FFT_WORKERS"


@dataclass(frozen=True)
class FFTBackend:
    """Minimal FFT namespace used by :class:`~repro.models.spectral.SpectralGrid`.

    All functions follow the numpy calling conventions (``axes``/``axis``,
    ``s``/``n`` for output sizes).  ``workers`` reports the thread count the
    backend was configured with (1 for numpy, which has no threading knob).
    """

    name: str
    rfft2: Callable = field(repr=False)
    irfft2: Callable = field(repr=False)
    rfft: Callable = field(repr=False)
    irfft: Callable = field(repr=False)
    fft: Callable = field(repr=False)
    ifft: Callable = field(repr=False)
    workers: int = 1

    def __reduce__(self):
        # Reconstruct the built-in backends by name on unpickle: the scipy
        # wrappers close over the worker count, and closures do not pickle.
        # This keeps models that hold a backend shippable to EnsembleExecutor
        # worker processes.  Custom (e.g. accelerator) backends fall back to
        # field-wise pickling — their functions must then be picklable.
        if self.name in _FACTORIES:
            return (resolve_backend, (self.name,))
        return super().__reduce__()


def _numpy_backend() -> FFTBackend:
    f = np.fft
    return FFTBackend(
        name="numpy",
        rfft2=f.rfft2,
        irfft2=f.irfft2,
        rfft=f.rfft,
        irfft=f.irfft,
        fft=f.fft,
        ifft=f.ifft,
        workers=1,
    )


def _fft_workers() -> int:
    raw = os.environ.get(_ENV_WORKERS, "").strip()
    if raw:
        workers = int(raw)
        if workers < 1:
            raise ValueError(f"{_ENV_WORKERS} must be a positive integer, got {raw!r}")
        return workers
    return os.cpu_count() or 1


def _scipy_backend() -> FFTBackend:
    import scipy.fft as sfft  # deferred: numpy-only installs never reach this

    workers = _fft_workers()

    def _wrap(fn):
        if workers == 1:
            return fn

        def call(*args, **kwargs):
            kwargs.setdefault("workers", workers)
            return fn(*args, **kwargs)

        return call

    return FFTBackend(
        name="scipy",
        rfft2=_wrap(sfft.rfft2),
        irfft2=_wrap(sfft.irfft2),
        rfft=_wrap(sfft.rfft),
        irfft=_wrap(sfft.irfft),
        fft=_wrap(sfft.fft),
        ifft=_wrap(sfft.ifft),
        workers=workers,
    )


def _mock_device_backend() -> FFTBackend:
    # numpy's pocketfft, re-registered under the mock device's name: the mock
    # array backend hands out plain ndarrays, so "on-device" transforms are
    # host transforms — but declaring them device-native means the transfer
    # counters only meter the explicit to_device/to_host boundary, exactly
    # like a real accelerator FFT would behave.  Bit-identical to "numpy".
    f = np.fft
    return FFTBackend(
        name="mock-device",
        rfft2=f.rfft2,
        irfft2=f.irfft2,
        rfft=f.rfft,
        irfft=f.irfft,
        fft=f.fft,
        ifft=f.ifft,
        workers=1,
    )


def _cupy_backend() -> FFTBackend:
    import cupy.fft as cfft  # deferred: CPU-only installs never reach this

    return FFTBackend(
        name="cupy",
        rfft2=cfft.rfft2,
        irfft2=cfft.irfft2,
        rfft=cfft.rfft,
        irfft=cfft.irfft,
        fft=cfft.fft,
        ifft=cfft.ifft,
        workers=1,
    )


_FACTORIES = {
    "numpy": _numpy_backend,
    "scipy": _scipy_backend,
    "mock-device": _mock_device_backend,
    "cupy": _cupy_backend,
}

# Array-backend device tag -> FFT backend operating natively on that device.
# Consulted by default_backend_name_for() below explicit selection.
_DEVICE_PAIRING = {"mock-device": "mock-device", "cuda": "cupy"}

_cache: dict[str, FFTBackend] = {}
_default_override: str | None = None


def available_backends() -> tuple[str, ...]:
    """Backend names that can be constructed in this environment."""
    names = ["numpy", "mock-device"]
    try:
        import scipy.fft  # noqa: F401  (availability probe only)

        names.append("scipy")
    except ImportError:
        pass
    try:
        import cupy.fft  # noqa: F401  (availability probe only)

        names.append("cupy")
    except ImportError:
        pass
    return tuple(names)


def _auto_backend_name() -> str:
    """Pick the best backend for this host.

    scipy's edge over numpy is its ``workers`` thread pool for batched
    transforms; on a single-core host that advantage vanishes (and its
    pruned 1-D paths measure slightly slower than numpy's), so auto picks
    scipy only when it is installed *and* more than one worker is available.
    """
    if "scipy" in available_backends() and _fft_workers() > 1:
        return "scipy"
    return "numpy"


def default_backend_name() -> str:
    """Name the ``"auto"`` selection resolves to right now.

    Precedence: explicit ``REPRO_FFT_BACKEND`` (anything but ``"auto"``)
    beats :func:`set_default_backend`, which beats auto-detection.
    """
    env = os.environ.get(_ENV_BACKEND, "auto").strip().lower() or "auto"
    if env != "auto":
        return env
    if _default_override is not None:
        return _default_override
    return _auto_backend_name()


def default_backend_name_for(device: str) -> str:
    """Default FFT backend for spectral state living on ``device``.

    ``device`` is an array backend's device tag
    (:attr:`repro.utils.xp.ArrayBackend.device` — ``"cpu"``,
    ``"mock-device"`` or ``"cuda"``).  Same precedence as
    :func:`default_backend_name`, with the device pairing slotting in just
    above host auto-detection: an explicit ``REPRO_FFT_BACKEND`` beats
    :func:`set_default_backend`, which beats the pairing, which beats auto.
    Host devices (or unknown tags) fall through to the host default.
    """
    env = os.environ.get(_ENV_BACKEND, "auto").strip().lower() or "auto"
    if env != "auto":
        return env
    if _default_override is not None:
        return _default_override
    paired = _DEVICE_PAIRING.get(device)
    if paired is not None:
        return paired
    return _auto_backend_name()


def set_default_backend(name: str | None) -> None:
    """Override the process-wide default backend (``None`` restores env/auto).

    An explicit ``REPRO_FFT_BACKEND`` environment value still wins (see
    :func:`default_backend_name`).  Grids constructed afterwards pick up the
    new default; existing grids keep the backend they were built with.
    """
    global _default_override
    if name is not None and name not in _FACTORIES:
        raise ValueError(
            f"unknown FFT backend {name!r}; choose from {sorted(_FACTORIES)} "
            f"(available here: {available_backends()})"
        )
    _default_override = name


def resolve_backend(backend: str | FFTBackend | None = None) -> FFTBackend:
    """Resolve a backend name (or ``None`` for the default) to an :class:`FFTBackend`."""
    if isinstance(backend, FFTBackend):
        return backend
    name = backend if backend is not None else default_backend_name()
    name = name.strip().lower()
    if name == "auto":
        # An explicit "auto" follows the same precedence as None: env var,
        # then set_default_backend, then host auto-detection.
        name = default_backend_name()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown FFT backend {name!r}; choose from {sorted(_FACTORIES)} "
            f"(available here: {available_backends()})"
        )
    if name not in _cache:
        try:
            _cache[name] = _FACTORIES[name]()
        except ImportError as exc:
            raise ImportError(
                f"FFT backend {name!r} requested (via argument or ${_ENV_BACKEND}) "
                f"but its module is not installed; available: {available_backends()}"
            ) from exc
    return _cache[name]
