"""Kinetic-energy / variance spectra diagnostics.

The paper motivates the SQG testbed by its realistic turbulence: a kinetic
energy density spectrum with a −5/3 slope, matching the Nastrom–Gage aircraft
climatology.  These diagnostics verify that the reproduced SQG model develops
the expected spectrum and are reused by the workflow metrics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["isotropic_spectrum", "kinetic_energy_spectrum", "spectral_slope"]


def isotropic_spectrum(field: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Azimuthally-averaged (isotropic) power spectrum of a 2-D field.

    Parameters
    ----------
    field:
        Real 2-D array of shape ``(ny, nx)``.

    Returns
    -------
    (wavenumbers, spectrum):
        Integer isotropic wavenumbers ``1..min(nx,ny)//2`` and the summed
        spectral power in each annular bin.
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError("isotropic_spectrum expects a 2-D field")
    ny, nx = field.shape
    fhat = np.fft.fft2(field) / (nx * ny)
    power = np.abs(fhat) ** 2
    kx = np.fft.fftfreq(nx) * nx
    ky = np.fft.fftfreq(ny) * ny
    kkx, kky = np.meshgrid(kx, ky)
    kmag = np.sqrt(kkx**2 + kky**2)
    kmax = int(min(nx, ny) // 2)
    k_bins = np.arange(1, kmax + 1)
    spectrum = np.zeros_like(k_bins, dtype=float)
    bin_index = np.rint(kmag).astype(int)
    for i, k in enumerate(k_bins):
        spectrum[i] = power[bin_index == k].sum()
    return k_bins.astype(float), spectrum


def kinetic_energy_spectrum(u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic kinetic-energy spectrum from velocity components ``u, v``."""
    k, eu = isotropic_spectrum(u)
    _, ev = isotropic_spectrum(v)
    return k, 0.5 * (eu + ev)


def spectral_slope(
    k: np.ndarray, spectrum: np.ndarray, k_min: float = 4.0, k_max: float | None = None
) -> float:
    """Least-squares log-log slope of ``spectrum(k)`` over an inertial range.

    Returns the fitted exponent ``p`` in ``spectrum ∝ k^p``; for fully
    developed SQG turbulence this should be close to −5/3 in the inertial
    range.
    """
    k = np.asarray(k, dtype=float)
    spectrum = np.asarray(spectrum, dtype=float)
    if k_max is None:
        k_max = float(k.max()) / 2.0
    mask = (k >= k_min) & (k <= k_max) & (spectrum > 0)
    if mask.sum() < 2:
        raise ValueError("not enough spectral points in the requested fitting range")
    coeffs = np.polyfit(np.log(k[mask]), np.log(spectrum[mask]), deg=1)
    return float(coeffs[0])
