"""Reproducible random-number-generator helpers.

Every stochastic component in the library (SQG initial conditions, model-error
mixture, observation noise, EnSF reverse-SDE noise, ViT weight init, dropout)
accepts either a seed or a :class:`numpy.random.Generator`.  These helpers
centralise the conversion so that experiments are reproducible end to end and
parallel workers receive statistically independent streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "default_rng",
    "split_rng",
    "SeedSequenceFactory",
    "MemberStreams",
    "sample_from_catalogue",
]


def default_rng(
    seed: int | np.random.Generator | "MemberStreams" | None = None,
) -> np.random.Generator | "MemberStreams":
    """Return a :class:`numpy.random.Generator` (or stream bundle).

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator /
        :class:`MemberStreams` bundle (returned unchanged so callers can
        thread a single stream through).
    """
    if isinstance(seed, (np.random.Generator, MemberStreams)):
        return seed
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Child streams are produced by spawning the parent's bit generator seed
    sequence, which guarantees statistical independence — this is the
    recommended pattern for per-ensemble-member or per-worker streams.
    """
    if n < 0:
        raise ValueError(f"cannot split into a negative number of streams: {n}")
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is None:  # pragma: no cover - numpy always exposes seed_seq
        seed_seq = np.random.SeedSequence()
    children = seed_seq.spawn(n)
    return [np.random.default_rng(child) for child in children]


class SeedSequenceFactory:
    """Deterministic factory of named, independent RNG streams.

    Experiments contain several stochastic sub-systems (truth run, observation
    noise, each filter's internal noise, surrogate initialisation).  Deriving
    each stream from a *name* rather than from call order keeps results stable
    when components are added, removed or reordered.

    Examples
    --------
    >>> factory = SeedSequenceFactory(1234)
    >>> rng_obs = factory.rng("observations")
    >>> rng_truth = factory.rng("truth")
    >>> factory.rng("observations").normal() == rng_obs.normal()
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def seed_for(self, name: str, *indices: int) -> np.random.SeedSequence:
        """Return the seed sequence associated with ``name``.

        The spawn key is derived from a cryptographic digest of ``name`` so
        that distinct names are guaranteed distinct streams.  (The previous
        byte-sum hash mapped anagrams such as ``"ab"``/``"ba"`` — and any
        equal-sum pair — to the *same* stream, silently correlating
        supposedly independent noise sources.)

        Optional integer ``indices`` extend the spawn key, giving a
        deterministic family of sub-streams under one name — e.g. one stream
        per analysis cycle: ``seed_for("ensf-parallel", cycle)``.
        """
        digest = hashlib.sha256(name.encode("utf8")).digest()
        key = int.from_bytes(digest[:16], "little")
        spawn_key = (key, *(int(i) for i in indices))
        return np.random.SeedSequence(entropy=self.root_seed, spawn_key=spawn_key)

    def rng(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name`` (same name → same stream)."""
        return np.random.default_rng(self.seed_for(name))

    def rngs(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dictionary of generators for several stream names."""
        return {name: self.rng(name) for name in names}

    def member_rngs(self, name: str, n_members: int) -> list[np.random.Generator]:
        """Return ``n_members`` independent streams under a common ``name``."""
        base = self.seed_for(name)
        return [np.random.default_rng(child) for child in base.spawn(n_members)]


class MemberStreams:
    """Batched Gaussian draws where row ``i`` comes from member stream ``i``.

    Parallel layouts that shard an ensemble over workers must not let the
    *slicing* change the draws: if every member owns its own bit-generator
    stream and each batched request of shape ``(m, ...)`` fills row ``i``
    from stream ``i``, any contiguous sub-batch of members consumes exactly
    the draws the full batch would have given them.  Serial and
    arbitrarily-sharded executions therefore produce identical ensembles
    (see :meth:`repro.hpc.ensemble_parallel.EnsembleExecutor.analyze_ensf`).

    The interface mimics the subset of :class:`numpy.random.Generator` used
    by the reverse-SDE sampler: ``standard_normal(size)`` and
    ``standard_normal(out=...)``, with the leading axis indexing members.
    """

    def __init__(self, seeds: Sequence) -> None:
        if len(seeds) < 1:
            raise ValueError("MemberStreams needs at least one member seed")
        self.generators = [np.random.default_rng(s) for s in seeds]

    def __len__(self) -> int:
        return len(self.generators)

    def standard_normal(self, size=None, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            if size is None or np.ndim(size) == 0:
                raise ValueError("MemberStreams draws need a (n_members, ...) shape")
            out = np.empty(tuple(size), dtype=float)
        if out.shape[0] != len(self.generators):
            raise ValueError(
                f"leading axis {out.shape[0]} does not match {len(self.generators)} member streams"
            )
        for generator, row in zip(self.generators, out):
            generator.standard_normal(out=row)
        return out


def sample_from_catalogue(
    catalogue: Sequence[np.ndarray] | np.ndarray,
    n: int,
    rng: np.random.Generator,
    replace: bool = True,
) -> np.ndarray:
    """Draw ``n`` states from a catalogue of model states.

    Used to build initial ensembles by "random selection of model states from
    a long-term integration" (paper §IV-A).  Returns an array of shape
    ``(n,) + state_shape``.
    """
    catalogue = np.asarray(catalogue)
    if catalogue.ndim < 2:
        raise ValueError("catalogue must have shape (n_states, ...)")
    if not replace and n > catalogue.shape[0]:
        raise ValueError(
            f"cannot draw {n} states without replacement from {catalogue.shape[0]}"
        )
    idx = rng.choice(catalogue.shape[0], size=n, replace=replace)
    return catalogue[idx].copy()
