"""Reproducible random-number-generator helpers.

Every stochastic component in the library (SQG initial conditions, model-error
mixture, observation noise, EnSF reverse-SDE noise, ViT weight init, dropout)
accepts either a seed or a :class:`numpy.random.Generator`.  These helpers
centralise the conversion so that experiments are reproducible end to end and
parallel workers receive statistically independent streams.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["default_rng", "split_rng", "SeedSequenceFactory"]


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged so callers can thread a single stream through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Child streams are produced by spawning the parent's bit generator seed
    sequence, which guarantees statistical independence — this is the
    recommended pattern for per-ensemble-member or per-worker streams.
    """
    if n < 0:
        raise ValueError(f"cannot split into a negative number of streams: {n}")
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is None:  # pragma: no cover - numpy always exposes seed_seq
        seed_seq = np.random.SeedSequence()
    children = seed_seq.spawn(n)
    return [np.random.default_rng(child) for child in children]


class SeedSequenceFactory:
    """Deterministic factory of named, independent RNG streams.

    Experiments contain several stochastic sub-systems (truth run, observation
    noise, each filter's internal noise, surrogate initialisation).  Deriving
    each stream from a *name* rather than from call order keeps results stable
    when components are added, removed or reordered.

    Examples
    --------
    >>> factory = SeedSequenceFactory(1234)
    >>> rng_obs = factory.rng("observations")
    >>> rng_truth = factory.rng("truth")
    >>> factory.rng("observations").normal() == rng_obs.normal()
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def seed_for(self, name: str) -> np.random.SeedSequence:
        """Return the seed sequence associated with ``name``."""
        digest = np.frombuffer(name.encode("utf8"), dtype=np.uint8)
        key = int(digest.sum()) + 1009 * len(name)
        return np.random.SeedSequence(entropy=self.root_seed, spawn_key=(key,))

    def rng(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name`` (same name → same stream)."""
        return np.random.default_rng(self.seed_for(name))

    def rngs(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dictionary of generators for several stream names."""
        return {name: self.rng(name) for name in names}

    def member_rngs(self, name: str, n_members: int) -> list[np.random.Generator]:
        """Return ``n_members`` independent streams under a common ``name``."""
        base = self.seed_for(name)
        return [np.random.default_rng(child) for child in base.spawn(n_members)]


def sample_from_catalogue(
    catalogue: Sequence[np.ndarray] | np.ndarray,
    n: int,
    rng: np.random.Generator,
    replace: bool = True,
) -> np.ndarray:
    """Draw ``n`` states from a catalogue of model states.

    Used to build initial ensembles by "random selection of model states from
    a long-term integration" (paper §IV-A).  Returns an array of shape
    ``(n,) + state_shape``.
    """
    catalogue = np.asarray(catalogue)
    if catalogue.ndim < 2:
        raise ValueError("catalogue must have shape (n_states, ...)")
    if not replace and n > catalogue.shape[0]:
        raise ValueError(
            f"cannot draw {n} states without replacement from {catalogue.shape[0]}"
        )
    idx = rng.choice(catalogue.shape[0], size=n, replace=replace)
    return catalogue[idx].copy()
