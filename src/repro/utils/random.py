"""Reproducible random-number-generator helpers.

Every stochastic component in the library (SQG initial conditions, model-error
mixture, observation noise, EnSF reverse-SDE noise, ViT weight init, dropout)
accepts either a seed or a :class:`numpy.random.Generator`.  These helpers
centralise the conversion so that experiments are reproducible end to end and
parallel workers receive statistically independent streams.

Bit-generator selection
-----------------------
``REPRO_RNG_BITGEN`` chooses the bit generator behind every stream this
module constructs from a *seed* (``pcg64`` — the numpy default and ours —
``sfc64`` or ``philox``).  SFC64 generates Gaussian doubles measurably
faster than PCG64, which matters for the reverse-SDE EnSF whose noise
draws dominate the analysis wall time; the knob swaps the stream family
without touching any call site.  Streams are still derived from the same
:class:`numpy.random.SeedSequence`, so worker layouts stay invariant: the
same env value in parent and pool workers yields bit-identical analyses
for every worker count.  Generators passed in ready-made are never
rewrapped, and the default (``pcg64``) reproduces the historical streams
exactly.

Noise pools
-----------
:class:`NoisePool` serves a *known-length* sequence of identically shaped
Gaussian blocks from batched draws: it pre-generates whole chunks of blocks
(one bulk ``standard_normal`` per chunk — bit-identical to the per-block
calls it replaces, because numpy fills a ``(k,) + shape`` array in exactly
the order ``k`` sequential ``shape`` draws consume the stream) and refills
the next chunk on a background thread while the consumer works through the
current one.  The pool mimics the ``standard_normal(size)/(out=)`` subset
of the generator API, so it drops into the backend RNG hook
(:meth:`repro.utils.xp.ArrayBackend.standard_normal`) as the ``rng``
argument — transfer metering and host-parity staging are untouched.
``REPRO_NOISE_POOL`` caps the chunk length in blocks (``0`` disables
pooling; the in-flight memory is additionally budget-capped).
"""

from __future__ import annotations

import hashlib
import os
from collections import deque
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "default_rng",
    "split_rng",
    "bitgen_name",
    "make_generator",
    "noise_pool_blocks",
    "NoisePool",
    "SeedSequenceFactory",
    "MemberStreams",
    "sample_from_catalogue",
]

_ENV_BITGEN = "REPRO_RNG_BITGEN"
_ENV_NOISE_POOL = "REPRO_NOISE_POOL"
_DEFAULT_POOL_BLOCKS = 8
# In-flight pool memory cap (per chunk buffer; two chunks may be live while
# the background refill runs ahead of the consumer).
_POOL_CHUNK_BYTES = 32 << 20

_BITGENS = {
    "pcg64": np.random.PCG64,
    "sfc64": np.random.SFC64,
    "philox": np.random.Philox,
}


def bitgen_name() -> str:
    """Active bit-generator family for seed-constructed streams.

    Read from ``REPRO_RNG_BITGEN``; ``"pcg64"`` (the numpy default) when
    unset.  The default configuration is contractually bit-identical to the
    historical ``np.random.default_rng`` streams.
    """
    name = os.environ.get(_ENV_BITGEN, "pcg64").strip().lower() or "pcg64"
    if name not in _BITGENS:
        raise ValueError(
            f"invalid ${_ENV_BITGEN}={name!r}; choose from {sorted(_BITGENS)}"
        )
    return name


def make_generator(seed=None) -> np.random.Generator:
    """Construct a generator from a seed honouring ``REPRO_RNG_BITGEN``.

    ``seed`` is anything :class:`numpy.random.SeedSequence` accepts (``None``
    for fresh entropy, an int, or a SeedSequence — the latter is used as-is so
    spawned member seeds keep their identity).  With the default ``pcg64``
    this is exactly ``np.random.default_rng(seed)``, bit for bit.
    """
    name = bitgen_name()
    if name == "pcg64":
        return np.random.default_rng(seed)
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return np.random.Generator(_BITGENS[name](seed))


def noise_pool_blocks() -> int:
    """Chunk length (in blocks) for :class:`NoisePool` refills.

    Read from ``REPRO_NOISE_POOL``; ``0`` disables pooling and restores the
    direct per-step generator draws (bit-identical either way — the knob
    trades memory/threading for batched generation, never the stream).
    """
    raw = os.environ.get(_ENV_NOISE_POOL, "").strip()
    if not raw:
        return _DEFAULT_POOL_BLOCKS
    try:
        blocks = int(raw)
    except ValueError as exc:
        raise ValueError(f"invalid ${_ENV_NOISE_POOL}={raw!r}; expected an int >= 0") from exc
    if blocks < 0:
        raise ValueError(f"invalid ${_ENV_NOISE_POOL}={raw!r}; expected an int >= 0")
    return blocks


def default_rng(
    seed: int | np.random.Generator | "MemberStreams" | None = None,
) -> np.random.Generator | "MemberStreams":
    """Return a :class:`numpy.random.Generator` (or stream bundle).

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator /
        :class:`MemberStreams` bundle (returned unchanged so callers can
        thread a single stream through).
    """
    if isinstance(seed, (np.random.Generator, MemberStreams)):
        return seed
    return make_generator(seed)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Child streams are produced by spawning the parent's bit generator seed
    sequence, which guarantees statistical independence — this is the
    recommended pattern for per-ensemble-member or per-worker streams.
    """
    if n < 0:
        raise ValueError(f"cannot split into a negative number of streams: {n}")
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is None:  # pragma: no cover - numpy always exposes seed_seq
        seed_seq = np.random.SeedSequence()
    children = seed_seq.spawn(n)
    return [make_generator(child) for child in children]


class SeedSequenceFactory:
    """Deterministic factory of named, independent RNG streams.

    Experiments contain several stochastic sub-systems (truth run, observation
    noise, each filter's internal noise, surrogate initialisation).  Deriving
    each stream from a *name* rather than from call order keeps results stable
    when components are added, removed or reordered.

    Examples
    --------
    >>> factory = SeedSequenceFactory(1234)
    >>> rng_obs = factory.rng("observations")
    >>> rng_truth = factory.rng("truth")
    >>> factory.rng("observations").normal() == rng_obs.normal()
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def seed_for(self, name: str, *indices: int) -> np.random.SeedSequence:
        """Return the seed sequence associated with ``name``.

        The spawn key is derived from a cryptographic digest of ``name`` so
        that distinct names are guaranteed distinct streams.  (The previous
        byte-sum hash mapped anagrams such as ``"ab"``/``"ba"`` — and any
        equal-sum pair — to the *same* stream, silently correlating
        supposedly independent noise sources.)

        Optional integer ``indices`` extend the spawn key, giving a
        deterministic family of sub-streams under one name — e.g. one stream
        per analysis cycle: ``seed_for("ensf-parallel", cycle)``.
        """
        digest = hashlib.sha256(name.encode("utf8")).digest()
        key = int.from_bytes(digest[:16], "little")
        spawn_key = (key, *(int(i) for i in indices))
        return np.random.SeedSequence(entropy=self.root_seed, spawn_key=spawn_key)

    def rng(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name`` (same name → same stream)."""
        return make_generator(self.seed_for(name))

    def rngs(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dictionary of generators for several stream names."""
        return {name: self.rng(name) for name in names}

    def member_rngs(self, name: str, n_members: int) -> list[np.random.Generator]:
        """Return ``n_members`` independent streams under a common ``name``."""
        base = self.seed_for(name)
        return [make_generator(child) for child in base.spawn(n_members)]


class MemberStreams:
    """Batched Gaussian draws where row ``i`` comes from member stream ``i``.

    Parallel layouts that shard an ensemble over workers must not let the
    *slicing* change the draws: if every member owns its own bit-generator
    stream and each batched request of shape ``(m, ...)`` fills row ``i``
    from stream ``i``, any contiguous sub-batch of members consumes exactly
    the draws the full batch would have given them.  Serial and
    arbitrarily-sharded executions therefore produce identical ensembles
    (see :meth:`repro.hpc.ensemble_parallel.EnsembleExecutor.analyze_ensf`).

    The interface mimics the subset of :class:`numpy.random.Generator` used
    by the reverse-SDE sampler: ``standard_normal(size)`` and
    ``standard_normal(out=...)``, with the leading axis indexing members.
    """

    def __init__(self, seeds: Sequence) -> None:
        if len(seeds) < 1:
            raise ValueError("MemberStreams needs at least one member seed")
        self.generators = [make_generator(s) for s in seeds]

    def __len__(self) -> int:
        return len(self.generators)

    def standard_normal(self, size=None, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            if size is None or np.ndim(size) == 0:
                raise ValueError("MemberStreams draws need a (n_members, ...) shape")
            out = np.empty(tuple(size), dtype=float)
        if out.shape[0] != len(self.generators):
            raise ValueError(
                f"leading axis {out.shape[0]} does not match {len(self.generators)} member streams"
            )
        for generator, row in zip(self.generators, out):
            generator.standard_normal(out=row)
        return out


class NoisePool:
    """Pooled Gaussian blocks with the exact stream semantics of its source.

    A pool serves ``n_blocks`` equally shaped blocks drawn from ``rng`` — a
    :class:`numpy.random.Generator` or a :class:`MemberStreams` bundle — in
    chunks of up to ``chunk_blocks`` blocks per bulk draw.  Bit-identity with
    the unpooled per-block calls holds for **every** chunking because numpy
    fills a ``(k,) + block_shape`` array in exactly the order ``k``
    sequential ``block_shape`` draws consume the stream (and a
    :class:`MemberStreams` pool batches per member stream, which preserves
    the member-wise order the same way).  The *next* chunk is generated on a
    single background thread while the consumer works through the current
    one (numpy releases the GIL during the fill), so on a multi-core host
    generation overlaps the compute between draws; ``async_refill=False``
    degrades to synchronous chunked draws.

    The pool mimics the ``standard_normal(size)/(out=)`` generator subset,
    so it substitutes for ``rng`` at the backend RNG hook
    (:meth:`repro.utils.xp.ArrayBackend.standard_normal`): host-parity
    staging and mock-device transfer metering see one call per block,
    exactly as before.  Every block must match ``block_shape``; requesting
    more than ``n_blocks`` raises (the pool's length is part of the draw
    contract — a completed consumer leaves ``rng`` advanced by exactly the
    unpooled amount).  Chunk buffers are additionally capped at ~32 MiB so
    paper-scale states do not balloon the in-flight pool memory.

    Use as a context manager (or call :meth:`close`) so the refill thread
    is always reaped.
    """

    def __init__(
        self,
        rng,
        block_shape: Sequence[int],
        n_blocks: int,
        chunk_blocks: int | None = None,
        async_refill: bool = True,
    ) -> None:
        self.block_shape = tuple(int(s) for s in block_shape)
        if not self.block_shape:
            raise ValueError("NoisePool needs a non-scalar block shape")
        if int(n_blocks) < 1:
            raise ValueError("NoisePool needs at least one block")
        self._member = isinstance(rng, MemberStreams)
        if self._member and self.block_shape[0] != len(rng):
            raise ValueError(
                f"block leading axis {self.block_shape[0]} does not match "
                f"{len(rng)} member streams"
            )
        self.rng = rng
        self.n_blocks = int(n_blocks)
        block_bytes = int(np.prod(self.block_shape)) * np.dtype(float).itemsize
        if chunk_blocks is None:
            chunk_blocks = _DEFAULT_POOL_BLOCKS
        if int(chunk_blocks) < 1:
            raise ValueError("chunk_blocks must be positive")
        budget = max(1, _POOL_CHUNK_BYTES // max(block_bytes, 1))
        self.chunk_blocks = max(1, min(int(chunk_blocks), self.n_blocks, budget))
        self._scheduled = 0  # blocks whose generation has been issued
        self._served = 0
        self._chunks: deque = deque()  # (future | None, buffer, k)
        self._current: tuple[np.ndarray, int] | None = None
        self._offset = 0
        self._executor = None
        if async_refill and self.chunk_blocks < self.n_blocks:
            from concurrent.futures import ThreadPoolExecutor

            # One worker: chunk fills execute FIFO, so the stream order is
            # exactly the serial order no matter how far refill runs ahead.
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="noise-pool"
            )
        # The consumer needs the first chunk immediately — fill it inline —
        # and the second is scheduled right away so generation runs ahead.
        self._schedule(sync=True)
        self._schedule()

    # ------------------------------------------------------------------ #
    @property
    def served(self) -> int:
        """Blocks handed out so far."""
        return self._served

    def _fill(self, buffer: np.ndarray, k: int) -> None:
        if self._member:
            # (m, k, ...) layout: each member stream bulk-fills its own
            # contiguous row-block — the per-member stream order of
            # MemberStreams.standard_normal, k blocks at a time.
            for generator, rows in zip(self.rng.generators, buffer):
                generator.standard_normal(out=rows)
        else:
            self.rng.standard_normal(out=buffer)

    def _schedule(self, sync: bool = False) -> None:
        k = min(self.chunk_blocks, self.n_blocks - self._scheduled)
        if k <= 0:
            return
        if self._member:
            buffer = np.empty((self.block_shape[0], k) + self.block_shape[1:])
        else:
            buffer = np.empty((k,) + self.block_shape)
        self._scheduled += k
        if sync or self._executor is None:
            self._fill(buffer, k)
            self._chunks.append((None, buffer, k))
        else:
            self._chunks.append((self._executor.submit(self._fill, buffer, k), buffer, k))

    def _next_block(self) -> np.ndarray:
        if self._current is None or self._offset >= self._current[1]:
            if not self._chunks:
                raise RuntimeError(
                    f"noise pool exhausted: {self.n_blocks} block(s) already served"
                )
            future, buffer, k = self._chunks.popleft()
            if future is not None:
                future.result()
            self._current = (buffer, k)
            self._offset = 0
            self._schedule()  # keep one chunk in flight ahead of the consumer
        buffer, _ = self._current
        j = self._offset
        self._offset += 1
        self._served += 1
        return buffer[:, j] if self._member else buffer[j]

    def standard_normal(self, size=None, out: np.ndarray | None = None) -> np.ndarray:
        """Serve the next pooled block (generator-compatible signature)."""
        if out is not None:
            if tuple(out.shape) != self.block_shape:
                raise ValueError(
                    f"pooled draw shape {tuple(out.shape)} != block shape {self.block_shape}"
                )
            np.copyto(out, self._next_block())
            return out
        if size is None or np.ndim(size) == 0:
            raise ValueError("NoisePool draws need the pool's full block shape")
        if tuple(size) != self.block_shape:
            raise ValueError(
                f"pooled draw shape {tuple(size)} != block shape {self.block_shape}"
            )
        return np.ascontiguousarray(self._next_block())

    def close(self) -> None:
        """Reap the refill thread (idempotent; in-flight fills complete)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "NoisePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


def sample_from_catalogue(
    catalogue: Sequence[np.ndarray] | np.ndarray,
    n: int,
    rng: np.random.Generator,
    replace: bool = True,
) -> np.ndarray:
    """Draw ``n`` states from a catalogue of model states.

    Used to build initial ensembles by "random selection of model states from
    a long-term integration" (paper §IV-A).  Returns an array of shape
    ``(n,) + state_shape``.
    """
    catalogue = np.asarray(catalogue)
    if catalogue.ndim < 2:
        raise ValueError("catalogue must have shape (n_states, ...)")
    if not replace and n > catalogue.shape[0]:
        raise ValueError(
            f"cannot draw {n} states without replacement from {catalogue.shape[0]}"
        )
    idx = rng.choice(catalogue.shape[0], size=n, replace=replace)
    return catalogue[idx].copy()
