"""Deterministic fault injection for the cycling runtime.

A *real-time* assimilation system must survive lost workers, hung shards,
corrupted observation batches and half-written checkpoints.  This module
provides the failure model the fault-tolerant runtime is tested against:

``FaultPlan``
    A reproducible schedule of :class:`FaultEvent`\\ s.  Each event names a
    fault *kind*, an injection *site* and the *occurrence* (the how-many-eth
    visit of that site) at which it fires.  Plans are built explicitly, from
    a compact spec string (also accepted via the ``REPRO_FAULT_PLAN``
    environment variable, so smoke tests can replay an exact failure
    sequence against an unmodified driver), or seed-derived with
    :meth:`FaultPlan.seeded`.
``FaultLog``
    The flight recorder: every recovery action the runtime takes (shard
    retry, pool rebuild, QC rejection, checkpoint fallback, divergence
    reset, ...) is appended as a :class:`RecoveryAction`, so tests can
    assert not only that a faulted run produced correct results but that it
    actually *recovered* rather than silently never failing.

Injection sites
---------------
``"executor"``
    Visited once per :class:`~repro.hpc.ensemble_parallel.EnsembleExecutor`
    gather attempt (each batch of shard jobs, including retry batches).
    Supported kinds: ``"worker-crash"`` (the targeted shard's worker calls
    ``os._exit`` — in the serial in-process fallback the shard raises
    :class:`FaultInjected` instead) and ``"task-hang"`` (the shard sleeps
    ``payload["hang_s"]`` seconds before computing, so a task deadline can
    catch it).  ``payload["job"]`` selects the shard (index into the batch,
    default 0).
``"observations"``
    Visited once per measurement actually taken by an
    :class:`~repro.core.observations.ObservationStream`.  Kind
    ``"obs-corrupt"``: ``payload["mode"]`` is ``"spurious"`` (default —
    deliver an *additional* corrupted duplicate of the measurement, the
    garbage-retransmission case QC must reject) or ``"in-place"`` (corrupt
    the real measurement's values).  ``payload["value"]`` is ``"nan"``
    (default), ``"inf"`` or ``"gross"``; ``payload["fraction"]`` the
    fraction of components corrupted (default 1.0).
``"checkpoint"``
    Visited once per engine checkpoint write.  Kind
    ``"checkpoint-truncate"``: the just-written file is truncated to
    ``payload["keep"]`` of its bytes (default 0.5), simulating a crash the
    atomic-write path cannot see (e.g. torn storage) — the checksum
    verification and ``resume="auto"`` fallback must recover.

Determinism contract: a plan never draws random numbers at injection time
(corruption patterns are derived from the event itself), so an injected run
consumes exactly the same rng streams as a clean run — which is what makes
"faulted results must be bit-identical wherever recovery recomputes
deterministic work" a testable property.

Spec grammar (``REPRO_FAULT_PLAN``)::

    spec    := entry (";" entry)*
    entry   := kind "@" site ":" occurrence ("," key "=" value)*

e.g. ``worker-crash@executor:1;checkpoint-truncate@checkpoint:0,keep=0.25``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultInjected",
    "RecoveryAction",
    "FaultLog",
]

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

FAULT_KINDS = ("worker-crash", "task-hang", "obs-corrupt", "checkpoint-truncate")
FAULT_SITES = ("executor", "observations", "checkpoint")

# Which site each kind belongs to (used by seeded plans and validation).
_KIND_SITE = {
    "worker-crash": "executor",
    "task-hang": "executor",
    "obs-corrupt": "observations",
    "checkpoint-truncate": "checkpoint",
}


class FaultInjected(RuntimeError):
    """Raised in place of a hard crash when a fault fires in-process."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` fires at the ``occurrence``-th visit of ``site``."""

    kind: str
    site: str
    occurrence: int
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})")
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r} (known: {FAULT_SITES})")
        if _KIND_SITE[self.kind] != self.site:
            raise ValueError(
                f"fault kind {self.kind!r} belongs to site {_KIND_SITE[self.kind]!r}, "
                f"not {self.site!r}"
            )
        if self.occurrence < 0:
            raise ValueError("occurrence must be non-negative")

    def spec(self) -> str:
        """Compact spec form of this event (``kind@site:occurrence[,k=v...]``)."""
        parts = [f"{self.kind}@{self.site}:{self.occurrence}"]
        for key in sorted(self.payload):
            parts.append(f"{key}={self.payload[key]}")
        return ",".join(parts)


def _parse_value(raw: str):
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


class FaultPlan:
    """A deterministic, replayable schedule of fault events.

    The runtime calls :meth:`visit` at each injection site; the plan counts
    visits per site and returns the events scheduled for that visit.  Each
    event fires exactly once — a retried shard is rebuilt *without* its
    fault, which is what lets recovery recompute bit-identical results.
    """

    def __init__(self, events: list[FaultEvent] | tuple[FaultEvent, ...] = ()) -> None:
        self.events = tuple(events)
        self._visits: dict[str, int] = {}

    # -- construction ------------------------------------------------------- #
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the ``kind@site:occurrence[,k=v...]`` grammar (see module doc)."""
        events = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split("@", 1)
                site, tail = rest.split(":", 1)
            except ValueError:
                raise ValueError(
                    f"malformed fault spec entry {entry!r} "
                    "(expected kind@site:occurrence[,key=value...])"
                ) from None
            fields = tail.split(",")
            payload = {}
            for item in fields[1:]:
                key, _, raw = item.partition("=")
                if not key or not raw:
                    raise ValueError(f"malformed fault payload item {item!r} in {entry!r}")
                payload[key.strip()] = _parse_value(raw.strip())
            events.append(
                FaultEvent(
                    kind=kind.strip(),
                    site=site.strip(),
                    occurrence=int(fields[0]),
                    payload=payload,
                )
            )
        return cls(events)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """Plan from ``REPRO_FAULT_PLAN``, or ``None`` when the variable is unset/empty."""
        environ = os.environ if environ is None else environ
        spec = environ.get(ENV_FAULT_PLAN, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_events: int = 3,
        kinds: tuple[str, ...] = FAULT_KINDS,
        max_occurrence: int = 8,
    ) -> "FaultPlan":
        """Seed-derived reproducible plan (same seed => same events).

        The generator is private to plan construction — building a seeded
        plan never touches any experiment rng stream.
        """
        if n_events < 0:
            raise ValueError("n_events must be non-negative")
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(n_events):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            events.append(
                FaultEvent(
                    kind=kind,
                    site=_KIND_SITE[kind],
                    occurrence=int(rng.integers(0, max_occurrence)),
                )
            )
        return cls(events)

    # -- protocol ----------------------------------------------------------- #
    def spec(self) -> str:
        """Round-trippable spec string of the whole plan (for replay/recording)."""
        return ";".join(event.spec() for event in self.events)

    def visit(self, site: str) -> list[FaultEvent]:
        """Advance the ``site`` visit counter and return the events firing now."""
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}")
        count = self._visits.get(site, 0)
        self._visits[site] = count + 1
        return [e for e in self.events if e.site == site and e.occurrence == count]

    def visits(self, site: str) -> int:
        """How many times ``site`` has been visited so far."""
        return self._visits.get(site, 0)

    def reset(self) -> None:
        """Rewind all visit counters (replay the plan from the start)."""
        self._visits.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec()!r})"


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery the runtime performed in response to a (possible) fault."""

    site: str
    action: str
    detail: str = ""
    cycle: int | None = None


class FaultLog:
    """Append-only record of every recovery action taken during a run.

    Actions used by the runtime: ``"retry"`` / ``"pool-rebuild"`` /
    ``"deadline-kill"`` (executor), ``"qc-reject"`` / ``"analysis-skipped"``
    (engine degradation), ``"obs-corrupt"`` (injected corruption),
    ``"checkpoint-truncate"`` (injected truncation),
    ``"checkpoint-fallback"`` (auto-resume skipped an invalid checkpoint),
    ``"divergence-<policy>"`` (divergence handling).
    """

    def __init__(self) -> None:
        self.actions: list[RecoveryAction] = []

    def record(self, site: str, action: str, detail: str = "", cycle: int | None = None) -> None:
        self.actions.append(RecoveryAction(site=site, action=action, detail=detail, cycle=cycle))

    def count(self, action: str | None = None, site: str | None = None) -> int:
        return sum(
            1
            for a in self.actions
            if (action is None or a.action == action) and (site is None or a.site == site)
        )

    def summary(self) -> dict[str, int]:
        """Action-name → count (the compact shape diagnostics embed)."""
        out: dict[str, int] = {}
        for a in self.actions:
            out[a.action] = out.get(a.action, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultLog({self.summary()!r})"
