"""Deterministic fault injection for the cycling runtime.

A *real-time* assimilation system must survive lost workers, hung shards,
corrupted observation batches and half-written checkpoints.  This module
provides the failure model the fault-tolerant runtime is tested against:

``FaultPlan``
    A reproducible schedule of :class:`FaultEvent`\\ s.  Each event names a
    fault *kind*, an injection *site* and the *occurrence* (the how-many-eth
    visit of that site) at which it fires.  Plans are built explicitly, from
    a compact spec string (also accepted via the ``REPRO_FAULT_PLAN``
    environment variable, so smoke tests can replay an exact failure
    sequence against an unmodified driver), or seed-derived with
    :meth:`FaultPlan.seeded`.
``FaultLog``
    The flight recorder: every recovery action the runtime takes (shard
    retry, pool rebuild, QC rejection, checkpoint fallback, divergence
    reset, ...) is appended as a :class:`RecoveryAction`, so tests can
    assert not only that a faulted run produced correct results but that it
    actually *recovered* rather than silently never failing.

Injection sites
---------------
``"executor"``
    Visited once per :class:`~repro.hpc.ensemble_parallel.EnsembleExecutor`
    gather attempt (each batch of shard jobs, including retry batches).
    Supported kinds: ``"worker-crash"`` (the targeted shard's worker calls
    ``os._exit`` — in the serial in-process fallback the shard raises
    :class:`FaultInjected` instead) and ``"task-hang"`` (the shard sleeps
    ``payload["hang_s"]`` seconds before computing, so a task deadline can
    catch it).  ``payload["job"]`` selects the shard (index into the batch,
    default 0).
``"observations"``
    Visited once per measurement actually taken by an
    :class:`~repro.core.observations.ObservationStream`.  Kind
    ``"obs-corrupt"``: ``payload["mode"]`` is ``"spurious"`` (default —
    deliver an *additional* corrupted duplicate of the measurement, the
    garbage-retransmission case QC must reject) or ``"in-place"`` (corrupt
    the real measurement's values).  ``payload["value"]`` is ``"nan"``
    (default), ``"inf"`` or ``"gross"``; ``payload["fraction"]`` the
    fraction of components corrupted (default 1.0).
``"checkpoint"``
    Visited once per engine checkpoint write.  Kind
    ``"checkpoint-truncate"``: the just-written file is truncated to
    ``payload["keep"]`` of its bytes (default 0.5), simulating a crash the
    atomic-write path cannot see (e.g. torn storage) — the checksum
    verification and ``resume="auto"`` fallback must recover.
``"scheduler"``
    Visited once per :class:`~repro.workflow.scheduler.ExperimentService`
    journal write (every job lifecycle transition — submission, launch,
    completion, preemption, drain — writes the journal, so occurrences
    index the service's serialized event stream).  Kinds:
    ``"job-crash"`` arms an injected crash of one job (``payload["job"]``
    names it) which fires at that job's next cycle boundary and lands in
    the job's own :class:`FaultLog`; ``"journal-torn"`` truncates the
    just-written journal to ``payload["keep"]`` of its bytes (recovery
    must fall back to the previous journal generation); ``"service-kill"``
    hard-kills the whole service process with ``os._exit`` (exit code
    ``payload["code"]``, default 137 — the SIGKILL shape), so a chaos test
    can assert that a restarted service recovers its entire queue.

Determinism contract: a plan never draws random numbers at injection time
(corruption patterns are derived from the event itself), so an injected run
consumes exactly the same rng streams as a clean run — which is what makes
"faulted results must be bit-identical wherever recovery recomputes
deterministic work" a testable property.

Spec grammar (``REPRO_FAULT_PLAN``)::

    spec    := entry (";" entry)*
    entry   := kind "@" site ":" occurrence ("," key "=" value)*

e.g. ``worker-crash@executor:1;checkpoint-truncate@checkpoint:0,keep=0.25``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultInjected",
    "RecoveryAction",
    "FaultLog",
]

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

FAULT_KINDS = (
    "worker-crash",
    "task-hang",
    "obs-corrupt",
    "checkpoint-truncate",
    "job-crash",
    "journal-torn",
    "service-kill",
)
FAULT_SITES = ("executor", "observations", "checkpoint", "scheduler")

# Which site each kind belongs to (used by seeded plans and validation).
_KIND_SITE = {
    "worker-crash": "executor",
    "task-hang": "executor",
    "obs-corrupt": "observations",
    "checkpoint-truncate": "checkpoint",
    "job-crash": "scheduler",
    "journal-torn": "scheduler",
    "service-kill": "scheduler",
}

# Payload keys each kind understands.  An unknown key in a spec is almost
# always a typo that would otherwise silently change nothing deep inside a
# run; reject it up front instead.
_KIND_PAYLOAD_KEYS = {
    "worker-crash": frozenset({"job"}),
    "task-hang": frozenset({"job", "hang_s"}),
    "obs-corrupt": frozenset({"mode", "value", "fraction"}),
    "checkpoint-truncate": frozenset({"keep"}),
    "job-crash": frozenset({"job"}),
    "journal-torn": frozenset({"keep"}),
    "service-kill": frozenset({"code"}),
}


class FaultInjected(RuntimeError):
    """Raised in place of a hard crash when a fault fires in-process."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` fires at the ``occurrence``-th visit of ``site``."""

    kind: str
    site: str
    occurrence: int
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})")
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r} (known: {FAULT_SITES})")
        if _KIND_SITE[self.kind] != self.site:
            raise ValueError(
                f"fault kind {self.kind!r} belongs to site {_KIND_SITE[self.kind]!r}, "
                f"not {self.site!r}"
            )
        if self.occurrence < 0:
            raise ValueError("occurrence must be non-negative")
        unknown = sorted(set(self.payload) - _KIND_PAYLOAD_KEYS[self.kind])
        if unknown:
            raise ValueError(
                f"unknown payload key(s) {unknown} for fault kind {self.kind!r} "
                f"(known: {sorted(_KIND_PAYLOAD_KEYS[self.kind])})"
            )

    def spec(self) -> str:
        """Compact spec form of this event (``kind@site:occurrence[,k=v...]``)."""
        parts = [f"{self.kind}@{self.site}:{self.occurrence}"]
        for key in sorted(self.payload):
            parts.append(f"{key}={self.payload[key]}")
        return ",".join(parts)


def _parse_value(raw: str):
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


class FaultPlan:
    """A deterministic, replayable schedule of fault events.

    The runtime calls :meth:`visit` at each injection site; the plan counts
    visits per site and returns the events scheduled for that visit.  Each
    event fires exactly once — a retried shard is rebuilt *without* its
    fault, which is what lets recovery recompute bit-identical results.

    Visit counting is thread-safe (a plan may be shared by the concurrent
    jobs of an experiment service), but determinism of *which* visit a
    concurrent site lands on is the caller's responsibility — the scheduler
    serializes its ``"scheduler"`` visits under the service lock.
    """

    def __init__(self, events: list[FaultEvent] | tuple[FaultEvent, ...] = ()) -> None:
        self.events = tuple(events)
        seen: set[tuple[str, str, int]] = set()
        for event in self.events:
            key = (event.kind, event.site, event.occurrence)
            if key in seen:
                raise ValueError(
                    f"duplicate fault event {event.spec()!r}: each (kind, site, "
                    "occurrence) may be scheduled at most once"
                )
            seen.add(key)
        self._visits: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------- #
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the ``kind@site:occurrence[,k=v...]`` grammar (see module doc)."""
        events = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split("@", 1)
                site, tail = rest.split(":", 1)
            except ValueError:
                raise ValueError(
                    f"malformed fault spec entry {entry!r} "
                    "(expected kind@site:occurrence[,key=value...])"
                ) from None
            fields = tail.split(",")
            payload = {}
            for item in fields[1:]:
                key, _, raw = item.partition("=")
                if not key or not raw:
                    raise ValueError(f"malformed fault payload item {item!r} in {entry!r}")
                payload[key.strip()] = _parse_value(raw.strip())
            try:
                occurrence = int(fields[0])
            except ValueError:
                raise ValueError(
                    f"malformed occurrence {fields[0]!r} in fault spec entry {entry!r} "
                    "(expected a non-negative integer)"
                ) from None
            try:
                events.append(
                    FaultEvent(
                        kind=kind.strip(),
                        site=site.strip(),
                        occurrence=occurrence,
                        payload=payload,
                    )
                )
            except ValueError as exc:
                raise ValueError(f"{exc} (in fault spec entry {entry!r})") from None
        try:
            return cls(events)
        except ValueError as exc:
            raise ValueError(f"{exc} (in fault spec {spec!r})") from None

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """Plan from ``REPRO_FAULT_PLAN``, or ``None`` when the variable is unset/empty."""
        environ = os.environ if environ is None else environ
        spec = environ.get(ENV_FAULT_PLAN, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_events: int = 3,
        kinds: tuple[str, ...] = FAULT_KINDS,
        max_occurrence: int = 8,
    ) -> "FaultPlan":
        """Seed-derived reproducible plan (same seed => same events).

        The generator is private to plan construction — building a seeded
        plan never touches any experiment rng stream.
        """
        if n_events < 0:
            raise ValueError("n_events must be non-negative")
        if n_events > len(kinds) * max_occurrence:
            raise ValueError(
                f"cannot draw {n_events} distinct events from {len(kinds)} kinds "
                f"x {max_occurrence} occurrences"
            )
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        seen: set[tuple[str, int]] = set()
        while len(events) < n_events:
            kind = kinds[int(rng.integers(0, len(kinds)))]
            occurrence = int(rng.integers(0, max_occurrence))
            if (kind, occurrence) in seen:
                continue  # redraw: a plan schedules each (kind, occurrence) once
            seen.add((kind, occurrence))
            events.append(
                FaultEvent(kind=kind, site=_KIND_SITE[kind], occurrence=occurrence)
            )
        return cls(events)

    # -- protocol ----------------------------------------------------------- #
    def spec(self) -> str:
        """Round-trippable spec string of the whole plan (for replay/recording)."""
        return ";".join(event.spec() for event in self.events)

    def visit(self, site: str) -> list[FaultEvent]:
        """Advance the ``site`` visit counter and return the events firing now."""
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}")
        with self._lock:
            count = self._visits.get(site, 0)
            self._visits[site] = count + 1
        return [e for e in self.events if e.site == site and e.occurrence == count]

    def visits(self, site: str) -> int:
        """How many times ``site`` has been visited so far."""
        with self._lock:
            return self._visits.get(site, 0)

    def reset(self) -> None:
        """Rewind all visit counters (replay the plan from the start)."""
        with self._lock:
            self._visits.clear()

    def __getstate__(self) -> dict:
        with self._lock:
            return {"events": self.events, "visits": dict(self._visits)}

    def __setstate__(self, state: dict) -> None:
        self.events = state["events"]
        self._visits = dict(state["visits"])
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec()!r})"


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery the runtime performed in response to a (possible) fault."""

    site: str
    action: str
    detail: str = ""
    cycle: int | None = None


class FaultLog:
    """Append-only record of every recovery action taken during a run.

    Actions used by the runtime: ``"retry"`` / ``"pool-rebuild"`` /
    ``"deadline-kill"`` (executor), ``"qc-reject"`` / ``"analysis-skipped"``
    (engine degradation), ``"obs-corrupt"`` (injected corruption),
    ``"checkpoint-truncate"`` (injected truncation),
    ``"checkpoint-fallback"`` (auto-resume skipped an invalid checkpoint),
    ``"divergence-<policy>"`` (divergence handling), plus the experiment
    service's ``"preempt"`` / ``"job-crash"`` / ``"job-retry"`` /
    ``"journal-torn"`` / ``"journal-fallback"`` (scheduler lifecycle).

    The log is thread-safe: a job's log is appended to both by the job's
    own thread (engine recoveries) and by the service supervisor
    (preemption, retry scheduling), and read concurrently by status
    pollers.  ``__iter__``/``snapshot`` iterate over a point-in-time copy.
    """

    def __init__(self) -> None:
        self.actions: list[RecoveryAction] = []
        self._lock = threading.Lock()

    def record(self, site: str, action: str, detail: str = "", cycle: int | None = None) -> None:
        entry = RecoveryAction(site=site, action=action, detail=detail, cycle=cycle)
        with self._lock:
            self.actions.append(entry)

    def snapshot(self) -> list[RecoveryAction]:
        """Point-in-time copy of the recorded actions."""
        with self._lock:
            return list(self.actions)

    def count(self, action: str | None = None, site: str | None = None) -> int:
        return sum(
            1
            for a in self.snapshot()
            if (action is None or a.action == action) and (site is None or a.site == site)
        )

    def summary(self) -> dict[str, int]:
        """Action-name → count (the compact shape diagnostics embed)."""
        out: dict[str, int] = {}
        for a in self.snapshot():
            out[a.action] = out.get(a.action, 0) + 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self.actions)

    def __iter__(self):
        return iter(self.snapshot())

    def __getstate__(self) -> dict:
        return {"actions": self.snapshot()}

    def __setstate__(self, state: dict) -> None:
        self.actions = list(state["actions"])
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultLog({self.summary()!r})"
