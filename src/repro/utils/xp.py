"""Pluggable array backend shim for the analysis + forecast kernels.

This extends the FFT-shim pattern (:mod:`repro.utils.fft`) into a full
array-API layer: the hot kernels — the batched/sharded LETKF assembly and
stacked-``eigh`` solve, the fused EnSF Monte-Carlo score path, the buffered
reverse-SDE integrator and the fused SQG tendency/RK4 kernel — obtain their
array operations from an :class:`ArrayBackend` namespace instead of calling
:mod:`numpy` directly, so the whole analysis/forecast stack can run on an
accelerator without code duplication (the route the source paper takes to
Summit/Frontier scale).

Three backends are registered:

* ``"numpy"`` (default) — every operation *is* the corresponding numpy
  function, so routing through the shim is **bit-identical** to the
  pre-shim kernels: same ufuncs, same associativity, same rng draws.
* ``"mock-device"`` — CPU-only test double.  All arithmetic delegates to
  numpy (results stay bit-identical), but the explicit host↔device
  transfer points (:meth:`ArrayBackend.to_device` /
  :meth:`ArrayBackend.to_host`) count calls and bytes, so CI can prove
  dispatch properties that matter on real hardware — e.g. that the sharded
  LETKF solve loop performs no per-column round-trips — without a GPU.
* ``"cupy"`` — CuPy adapter, imported lazily; present in
  :func:`available_backends` only when :mod:`cupy` is importable.  Random
  draws are taken from the host :class:`numpy.random.Generator` in the
  documented stream order and then copied to the device, so trajectories
  remain reproducible against the CPU backends (see
  :meth:`ArrayBackend.standard_normal`).

Additional adapters (e.g. a generic array-API namespace) can be added with
:func:`register_backend`.

Selection
---------
``resolve_backend(None)`` consults the ``REPRO_ARRAY_BACKEND`` environment
variable first; an explicit env value (anything but ``"auto"``) wins over
:func:`set_default_backend`, which in turn wins over the built-in default
(``"numpy"``).  The same precedence applies to ``REPRO_FFT_BACKEND`` in the
FFT shim.  Backends pickle by name (:meth:`ArrayBackend.__reduce__`), so
configs and kernels that hold one ship cleanly to
:class:`~repro.hpc.ensemble_parallel.EnsembleExecutor` worker processes.

Stream semantics and the device RNG hook
----------------------------------------
``standard_normal(rng, size)`` / ``standard_normal(rng, out=buf)`` defaults
to **host-parity** mode: the bits always come from the host generator
exactly as ``rng.standard_normal`` would produce them — device backends
draw on the host and copy.  This is what keeps parallel analyses
worker-invariant (see :class:`repro.utils.random.MemberStreams`) regardless
of where the arithmetic runs, and it is the mode every bit-parity
certification runs in.

``REPRO_DEVICE_RNG=device`` switches device backends to backend-native
generation: the CuPy backend seeds a per-``rng`` device generator (one host
draw) and then fills buffers on-device without any host staging, trading
bit-parity with the CPU backends for bandwidth.  The mock device draws the
same host bits in both modes (it has no second generator), but stops
metering the draw as a host→device upload — so the transfer counters show
exactly the residency win a real device-RNG run gets.  Host backends ignore
the setting.  ``device_rng_mode()`` reports the active mode.

State handles
-------------
:class:`StateHandle` is the explicit device-state handle the cycle engine
threads through the forecast→analysis seam: an immutable pair of lazily
materialised host/device mirrors of one ensemble state, so each cycle pays
at most one upload and one download no matter how many stages look at the
state.  :func:`as_host_array` unwraps handles (or passes arrays through)
at host-side consumers.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

__all__ = [
    "ArrayBackend",
    "MockDeviceBackend",
    "StateHandle",
    "as_host_array",
    "device_rng_mode",
    "available_backends",
    "available_array_backends",
    "default_backend_name",
    "default_array_backend_name",
    "register_backend",
    "register_array_backend",
    "resolve_backend",
    "resolve_array_backend",
    "set_default_backend",
    "set_default_array_backend",
]

_ENV_BACKEND = "REPRO_ARRAY_BACKEND"
_ENV_DEVICE_RNG = "REPRO_DEVICE_RNG"
_RNG_MODES = ("host-parity", "device")


def device_rng_mode() -> str:
    """Active noise-generation mode for device backends.

    ``"host-parity"`` (default): Gaussian bits come from the host generator
    in the documented stream order and are staged to the device — bit-parity
    with the CPU backends is preserved.  ``"device"``: device backends
    generate natively on-device (the mock device keeps the host bits but
    stops metering the draws as uploads).  Set via ``REPRO_DEVICE_RNG``.
    """
    mode = os.environ.get(_ENV_DEVICE_RNG, "host-parity").strip().lower() or "host-parity"
    if mode not in _RNG_MODES:
        raise ValueError(
            f"invalid ${_ENV_DEVICE_RNG}={mode!r}; choose from {_RNG_MODES}"
        )
    return mode


class ArrayBackend:
    """Array-operation namespace used by the analysis + forecast kernels.

    The base class is the ``"numpy"`` backend: every attribute is bound to
    the numpy function of the same meaning, so the routed kernels execute
    the exact instruction stream they executed before the shim existed.
    Device backends subclass it and override the operation table plus the
    transfer hooks.

    The operation set is deliberately small — the ~25 operations the hot
    kernels actually use — grouped as:

    * creation/layout: ``asarray``, ``ascontiguousarray``, ``empty``,
      ``empty_like``, ``zeros``, ``arange``, ``copyto``, ``concatenate``
    * elementwise (all accepting ``out=``): ``add``, ``subtract``,
      ``multiply``, ``divide``, ``negative``, ``maximum``, ``sqrt``,
      ``exp``, ``clip``
    * linear algebra: ``eigh`` (stacked), ``stacked_eigh`` (optionally
      blocked), ``matmul`` (stacked), ``dot``, ``einsum``
    * reductions: ``sum``, ``amax``, ``amin``, ``mean``
    * gather/scatter: ``take``, ``put``, ``bincount``, ``triu_indices``
    * FFT (LETKF convolution assembly): ``rfft2``, ``irfft2``
    * movement: ``to_device``, ``to_host``, ``synchronize``
    * randomness: ``standard_normal`` (host-stream semantics, see module
      docstring)
    """

    name = "numpy"
    device = "cpu"

    # creation / layout
    asarray = staticmethod(np.asarray)
    ascontiguousarray = staticmethod(np.ascontiguousarray)
    empty = staticmethod(np.empty)
    empty_like = staticmethod(np.empty_like)
    zeros = staticmethod(np.zeros)
    arange = staticmethod(np.arange)
    copyto = staticmethod(np.copyto)
    concatenate = staticmethod(np.concatenate)
    # elementwise
    add = staticmethod(np.add)
    subtract = staticmethod(np.subtract)
    multiply = staticmethod(np.multiply)
    divide = staticmethod(np.divide)
    negative = staticmethod(np.negative)
    maximum = staticmethod(np.maximum)
    sqrt = staticmethod(np.sqrt)
    exp = staticmethod(np.exp)
    clip = staticmethod(np.clip)
    # linear algebra
    eigh = staticmethod(np.linalg.eigh)
    matmul = staticmethod(np.matmul)
    dot = staticmethod(np.dot)
    einsum = staticmethod(np.einsum)
    # reductions
    sum = staticmethod(np.sum)
    amax = staticmethod(np.max)
    amin = staticmethod(np.min)
    mean = staticmethod(np.mean)
    # gather / scatter
    take = staticmethod(np.take)
    put = staticmethod(np.put)
    bincount = staticmethod(np.bincount)
    triu_indices = staticmethod(np.triu_indices)
    # FFT (the LETKF convolution assembly; forecast FFTs go through
    # repro.utils.fft, whose backend is chosen independently)
    rfft2 = staticmethod(np.fft.rfft2)
    irfft2 = staticmethod(np.fft.irfft2)

    # ------------------------------------------------------------------ #
    def to_device(self, array: np.ndarray) -> np.ndarray:
        """Move a host array to the backend's device (identity on CPU)."""
        return array

    def to_host(self, array: np.ndarray) -> np.ndarray:
        """Move a device array back to host memory (identity on CPU)."""
        return array

    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on CPU)."""

    def stacked_eigh(self, a_stack, block: int | None = None):
        """Eigendecomposition of a ``(B, m, m)`` symmetric stack, optionally blocked.

        ``block=None`` (or ``block >= B``) is the monolithic stacked
        :func:`numpy.linalg.eigh` call.  A positive ``block`` partitions the
        stack into contiguous batches of at most ``block`` matrices and
        solves them one batch at a time into preallocated outputs — the
        LAPACK workspace and output temporaries then stay batch-sized
        instead of stack-sized.  Every stack element is an independent
        problem, so the blocked result is **bit-identical** to the
        monolithic one for every block size.
        """
        n_stack = a_stack.shape[0]
        if block is None or int(block) >= n_stack:
            return self.eigh(a_stack)
        block = int(block)
        if block < 1:
            raise ValueError("stacked_eigh block size must be positive")
        evals = self.empty(a_stack.shape[:-1])
        evecs = self.empty(a_stack.shape)
        for start in range(0, n_stack, block):
            stop = min(start + block, n_stack)
            evals[start:stop], evecs[start:stop] = self.eigh(a_stack[start:stop])
        return evals, evecs

    def standard_normal(self, rng, size=None, out=None) -> np.ndarray:
        """Gaussian draws with **host** stream semantics.

        The bits always come from ``rng`` (a :class:`numpy.random.Generator`
        or :class:`~repro.utils.random.MemberStreams`) in exactly the order
        ``rng.standard_normal`` would produce them; device backends stage
        through a host buffer and copy.  Reproducibility therefore never
        depends on the backend.
        """
        if out is not None:
            return rng.standard_normal(out=out)
        return rng.standard_normal(size)

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<ArrayBackend {self.name!r} device={self.device!r}>"

    def __reduce__(self):
        # Registered backends reconstruct by name on unpickle (mirrors
        # FFTBackend.__reduce__): device handles and transfer counters are
        # process-local, and this keeps configs holding a backend shippable
        # to EnsembleExecutor worker processes.
        if self.name in _FACTORIES:
            return (resolve_backend, (self.name,))
        return super().__reduce__()  # pragma: no cover - custom backends


class MockDeviceBackend(ArrayBackend):
    """Numpy-delegating backend that meters host↔device traffic.

    Arithmetic is bit-identical to the numpy backend; the only difference
    is that :meth:`to_device` / :meth:`to_host` count calls and bytes.  The
    dispatch layer of the routed kernels is thereby exercisable (and its
    transfer discipline provable) in CI without hardware: a kernel that
    round-trips per column shows up as a transfer count scaling with the
    column count instead of the shard count.
    """

    name = "mock-device"
    device = "mock-device"

    def __init__(self) -> None:
        self.reset_transfers()

    def reset_transfers(self) -> None:
        """Zero the transfer counters (call at the start of a measurement)."""
        self.h2d_calls = 0
        self.d2h_calls = 0
        self.h2d_bytes = 0
        self.d2h_bytes = 0

    def transfer_counts(self) -> dict[str, int]:
        """Snapshot of the transfer counters."""
        return {
            "h2d_calls": self.h2d_calls,
            "d2h_calls": self.d2h_calls,
            "h2d_bytes": self.h2d_bytes,
            "d2h_bytes": self.d2h_bytes,
        }

    def to_device(self, array: np.ndarray) -> np.ndarray:
        self.h2d_calls += 1
        self.h2d_bytes += int(getattr(array, "nbytes", 0))
        return array

    def to_host(self, array: np.ndarray) -> np.ndarray:
        self.d2h_calls += 1
        self.d2h_bytes += int(getattr(array, "nbytes", 0))
        return array

    def standard_normal(self, rng, size=None, out=None) -> np.ndarray:
        # Both modes draw the same host bits (the mock has no second
        # generator, so bit-parity holds unconditionally); what changes is
        # the accounting.  Host-parity models a real device staging every
        # draw through the host (one upload per call), device mode models
        # on-device generation (no transfer) — so the counters expose
        # exactly the residency difference a real device-RNG run gets.
        drawn = super().standard_normal(rng, size=size, out=out)
        if device_rng_mode() == "host-parity":
            self.h2d_calls += 1
            self.h2d_bytes += int(getattr(drawn, "nbytes", 0))
        return drawn


class _CuPyBackend(ArrayBackend):
    """CuPy adapter (requires a CUDA device; imported lazily)."""

    name = "cupy"
    device = "cuda"

    def __init__(self) -> None:
        import cupy as cp  # deferred: CPU-only installs never reach this

        self._cp = cp
        # Device generators for REPRO_DEVICE_RNG=device, one per host rng
        # (weakly keyed so they die with their host stream).
        import weakref

        self._device_rngs = weakref.WeakKeyDictionary()
        for op in (
            "asarray",
            "ascontiguousarray",
            "empty",
            "empty_like",
            "zeros",
            "arange",
            "copyto",
            "concatenate",
            "add",
            "subtract",
            "multiply",
            "divide",
            "negative",
            "maximum",
            "sqrt",
            "exp",
            "clip",
            "matmul",
            "dot",
            "sum",
            "take",
            "put",
            "bincount",
            "triu_indices",
        ):
            setattr(self, op, getattr(cp, op))
        self.eigh = cp.linalg.eigh
        self.amax = cp.max
        self.amin = cp.min
        self.mean = cp.mean
        self.rfft2 = cp.fft.rfft2
        self.irfft2 = cp.fft.irfft2

    def einsum(self, subscripts, *operands, out=None, **kwargs):
        # cupy.einsum has no ``out=``; emulate it so the fused kernels keep
        # one call signature across backends.
        result = self._cp.einsum(subscripts, *operands, **kwargs)
        if out is not None:
            out[...] = result
            return out
        return result

    def to_device(self, array):
        return self._cp.asarray(array)

    def to_host(self, array):
        return self._cp.asnumpy(array)

    def synchronize(self) -> None:
        self._cp.cuda.get_current_stream().synchronize()

    def standard_normal(self, rng, size=None, out=None):
        if device_rng_mode() == "device":
            # Backend-native generation: one host draw seeds a per-rng
            # device generator, then every buffer fills on-device.  Faster
            # (no host staging) but NOT bit-identical to the CPU backends —
            # use the default host-parity mode for certified runs.
            dev_rng = self._device_rngs.get(rng)
            if dev_rng is None:
                # MemberStreams has no .integers — seed from its first
                # member stream (device mode surrenders per-member stream
                # semantics along with bit-parity; both are documented).
                seed_src = rng if hasattr(rng, "integers") else rng.generators[0]
                dev_rng = self._cp.random.default_rng(int(seed_src.integers(2**63)))
                self._device_rngs[rng] = dev_rng
            if out is not None:
                out[...] = dev_rng.standard_normal(out.shape, dtype=out.dtype)
                return out
            return dev_rng.standard_normal(size)
        # Host-parity (default): host draw first (documented stream
        # semantics), then device copy.
        if out is not None:
            host = rng.standard_normal(out.shape)
            out[...] = self._cp.asarray(host)
            return out
        return self._cp.asarray(rng.standard_normal(size))


_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": ArrayBackend,
    "mock-device": MockDeviceBackend,
    "cupy": _CuPyBackend,
}
_OPTIONAL_IMPORTS = {"cupy": "cupy"}
_cache: dict[str, ArrayBackend] = {}
_default_override: str | None = None


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register an additional backend factory (e.g. an array-API adapter).

    The factory must return an :class:`ArrayBackend` whose ``name`` matches
    ``name``; it may raise :class:`ImportError` when its dependency is
    missing, in which case the backend is simply absent from
    :func:`available_backends`.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    _FACTORIES[key] = factory
    _cache.pop(key, None)


def available_backends() -> tuple[str, ...]:
    """Backend names that can be constructed in this environment."""
    names = []
    for name in _FACTORIES:
        module = _OPTIONAL_IMPORTS.get(name)
        if module is not None:
            try:
                __import__(module)
            except ImportError:
                continue
        names.append(name)
    return tuple(names)


def default_backend_name() -> str:
    """Name ``resolve_backend(None)`` picks right now.

    Precedence: explicit ``REPRO_ARRAY_BACKEND`` (anything but ``"auto"``)
    beats :func:`set_default_backend`, which beats the built-in ``"numpy"``.
    """
    env = os.environ.get(_ENV_BACKEND, "auto").strip().lower() or "auto"
    if env != "auto":
        return env
    if _default_override is not None:
        return _default_override
    return "numpy"


def set_default_backend(name: str | None) -> None:
    """Set the process-wide default backend (``None`` restores numpy/env).

    An explicit ``REPRO_ARRAY_BACKEND`` environment value still wins — the
    env var is the operator's override of record (so e.g. CI can force
    ``mock-device`` across a whole run).
    """
    global _default_override
    if name is not None and name.strip().lower() not in _FACTORIES:
        raise ValueError(
            f"unknown array backend {name!r}; choose from {sorted(_FACTORIES)} "
            f"(available here: {available_backends()})"
        )
    _default_override = None if name is None else name.strip().lower()


def resolve_backend(backend: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve a backend name (or ``None`` for the default) to a backend."""
    if isinstance(backend, ArrayBackend):
        return backend
    name = backend if backend is not None else default_backend_name()
    name = name.strip().lower()
    if name == "auto":
        # An explicit "auto" follows the same precedence as None: env var,
        # then set_default_backend, then the built-in numpy default.
        name = default_backend_name()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown array backend {name!r}; choose from {sorted(_FACTORIES)} "
            f"(available here: {available_backends()})"
        )
    if name not in _cache:
        try:
            _cache[name] = _FACTORIES[name]()
        except ImportError as exc:
            raise ImportError(
                f"array backend {name!r} requested (via argument or ${_ENV_BACKEND}) "
                f"but its module is not installed; available: {available_backends()}"
            ) from exc
    return _cache[name]


class StateHandle:
    """Explicit device-state handle for the forecast→analysis seam.

    A handle pairs one logical ensemble state with up to two lazily
    materialised mirrors — a host :class:`numpy.ndarray` and a backend-native
    device array — and caches both, so a cycle pays **at most one upload and
    one download** regardless of how many stages touch the state:

    * the forecast advances the device mirror (``device()``; cached, so a
      state that never left the device re-uploads nothing),
    * every host-side consumer — diagnostics, QC, checkpoints, the analysis
      input — shares the single cached ``host()`` download.

    Handles are immutable by contract: stages must not write through either
    mirror (they produce *new* states / handles instead).  On the CPU
    backends both mirrors are the same object, which is exactly why mutation
    is forbidden — an in-place write would silently fork the mirrors on a
    real device.

    ``np.asarray(handle)`` works (via ``__array__``, using the cached host
    mirror) so host-only code degrades gracefully, but hot paths should call
    :func:`as_host_array` explicitly.
    """

    __slots__ = ("xp", "_device", "_host")

    def __init__(self, xp: ArrayBackend, host=None, device=None):
        if host is None and device is None:
            raise ValueError("StateHandle needs a host and/or a device mirror")
        self.xp = xp
        self._host = host
        self._device = device

    # -- constructors -------------------------------------------------- #
    @classmethod
    def from_host(cls, xp: ArrayBackend, state) -> "StateHandle":
        """Wrap a host array; the device mirror materialises on first use."""
        return cls(xp, host=np.asarray(state))

    @classmethod
    def from_device(cls, xp: ArrayBackend, state) -> "StateHandle":
        """Wrap a device-resident array; the host mirror materialises lazily."""
        return cls(xp, device=state)

    @classmethod
    def wrap(cls, state, xp: str | ArrayBackend | None = None) -> "StateHandle":
        """Coerce ``state`` to a handle (pass-through if it already is one).

        ``xp=None`` wraps on the host numpy backend — the safe default for
        models that predate the backend shim.
        """
        if isinstance(state, StateHandle):
            return state
        return cls.from_host(resolve_backend("numpy" if xp is None else xp), state)

    # -- mirrors ------------------------------------------------------- #
    def device(self):
        """The device mirror (uploads once on first call, then cached)."""
        if self._device is None:
            self._device = self.xp.to_device(self._host)
        return self._device

    def host(self) -> np.ndarray:
        """The host mirror (downloads once on first call, then cached)."""
        if self._host is None:
            self._host = self.xp.to_host(self._device)
        return self._host

    # -- conveniences -------------------------------------------------- #
    @property
    def shape(self):
        mirror = self._host if self._host is not None else self._device
        return mirror.shape

    @property
    def ndim(self) -> int:
        mirror = self._host if self._host is not None else self._device
        return mirror.ndim

    def __array__(self, dtype=None, copy=None):
        host = np.asarray(self.host())
        if dtype is not None:
            host = host.astype(dtype, copy=False)
        if copy:
            host = host.copy()
        return host

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        mirrors = "".join(
            tag for tag, mirror in (("H", self._host), ("D", self._device))
            if mirror is not None
        )
        return f"<StateHandle {self.xp.name!r} shape={self.shape} mirrors={mirrors!r}>"


def as_host_array(state) -> np.ndarray:
    """Host ndarray view of ``state`` (a :class:`StateHandle` or array-like)."""
    if isinstance(state, StateHandle):
        return state.host()
    return np.asarray(state)


# Aliased re-exports: the short names mirror repro.utils.fft's API (the two
# shims are siblings), the long names disambiguate in `repro.utils`, which
# re-exports both modules into one namespace.
available_array_backends = available_backends
default_array_backend_name = default_backend_name
register_array_backend = register_backend
resolve_array_backend = resolve_backend
set_default_array_backend = set_default_backend
