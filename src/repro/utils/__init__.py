"""Shared utilities: RNG handling, grid geometry, spectra and timing."""

from repro.utils.random import SeedSequenceFactory, default_rng, split_rng
from repro.utils.grid import (
    Grid2D,
    periodic_distance_matrix,
    periodic_delta,
    chord_distance_km,
)
from repro.utils.spectra import (
    isotropic_spectrum,
    spectral_slope,
    kinetic_energy_spectrum,
)
from repro.utils.timing import Timer, Stopwatch

__all__ = [
    "SeedSequenceFactory",
    "default_rng",
    "split_rng",
    "Grid2D",
    "periodic_distance_matrix",
    "periodic_delta",
    "chord_distance_km",
    "isotropic_spectrum",
    "spectral_slope",
    "kinetic_energy_spectrum",
    "Timer",
    "Stopwatch",
]
