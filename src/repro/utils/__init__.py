"""Shared utilities: RNG handling, grid geometry, spectra, FFT/array backends and timing."""

from repro.utils.random import (
    MemberStreams,
    SeedSequenceFactory,
    default_rng,
    sample_from_catalogue,
    split_rng,
)
from repro.utils.faults import (
    FaultEvent,
    FaultInjected,
    FaultLog,
    FaultPlan,
    RecoveryAction,
)
from repro.utils.fft import (
    FFTBackend,
    available_backends,
    default_backend_name,
    default_backend_name_for,
    resolve_backend,
    set_default_backend,
)
from repro.utils.xp import (
    ArrayBackend,
    MockDeviceBackend,
    StateHandle,
    as_host_array,
    available_array_backends,
    default_array_backend_name,
    device_rng_mode,
    register_array_backend,
    resolve_array_backend,
    set_default_array_backend,
)
from repro.utils.grid import (
    Grid2D,
    periodic_distance_matrix,
    periodic_delta,
    chord_distance_km,
)
from repro.utils.spectra import (
    isotropic_spectrum,
    spectral_slope,
    kinetic_energy_spectrum,
)
from repro.utils.timing import Timer, Stopwatch, best_of

__all__ = [
    "SeedSequenceFactory",
    "MemberStreams",
    "default_rng",
    "sample_from_catalogue",
    "split_rng",
    "FaultEvent",
    "FaultInjected",
    "FaultLog",
    "FaultPlan",
    "RecoveryAction",
    "FFTBackend",
    "available_backends",
    "default_backend_name",
    "default_backend_name_for",
    "resolve_backend",
    "set_default_backend",
    "ArrayBackend",
    "MockDeviceBackend",
    "StateHandle",
    "as_host_array",
    "available_array_backends",
    "default_array_backend_name",
    "device_rng_mode",
    "register_array_backend",
    "resolve_array_backend",
    "set_default_array_backend",
    "Grid2D",
    "periodic_distance_matrix",
    "periodic_delta",
    "chord_distance_km",
    "isotropic_spectrum",
    "spectral_slope",
    "kinetic_energy_spectrum",
    "Timer",
    "Stopwatch",
    "best_of",
]
