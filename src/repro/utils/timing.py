"""Lightweight timing helpers for the benchmark harness and profiler.

Besides the generic :class:`Timer` and :class:`Stopwatch`, this module
provides :class:`BenchRecorder`, the per-cycle wall-time recorder wired
through the OSSE cycling driver (:func:`repro.da.cycling.run_osse`) and the
kernel benchmarks.

``BENCH_*.json`` format
-----------------------
The benchmark entry points (``benchmarks/run_all.py`` and the
``pytest -m bench`` suite) persist speedup records as JSON files at the
repository root.  Each file is a single object::

    {
      "benchmark": "<name>",                  # e.g. "analysis-kernels"
      "created_unix": <float seconds>,        # stamp of the recording run
      "<section>": {                          # one object per measured case
        "...case metadata...": ...,           # grid, members, config, ...
        "reference_s": <float>,               # reference-path wall time
        "optimized_s": <float>,               # new-kernel wall time
        "speedup": <float>                    # reference_s / optimized_s
      },
      ...
    }

Additional keys inside a section are free-form metadata (accuracy parity
deltas, per-cycle breakdowns from :meth:`BenchRecorder.report`, etc.).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch", "BenchRecorder", "best_of"]


def best_of(fn, repeats: int = 3):
    """Best-of-N wall time in seconds and the last return value of ``fn``.

    The standard measurement loop of the kernel benchmarks: the minimum over
    a few repeats filters out scheduler noise on shared hosts, and the value
    is returned so accuracy-parity checks reuse the timed call.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


class Timer:
    """Context manager measuring wall-clock time of a code block.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Used by the real-time workflow to attribute wall time to the two
    sequential scalability tasks of the paper (online ViT training and EnSF
    execution) plus the forecast step.
    """

    laps: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    _open: dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> None:
        """Start timing the lap ``name``."""
        self._open[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """Stop the lap ``name`` and return the elapsed time of this lap."""
        if name not in self._open:
            raise KeyError(f"lap {name!r} was never started")
        dt = time.perf_counter() - self._open.pop(name)
        self.laps[name] = self.laps.get(name, 0.0) + dt
        self.counts[name] = self.counts.get(name, 0) + 1
        return dt

    def total(self) -> float:
        """Total accumulated time over all laps."""
        return float(sum(self.laps.values()))

    def mean(self, name: str) -> float:
        """Mean time per occurrence of lap ``name``."""
        if self.counts.get(name, 0) == 0:
            raise KeyError(f"lap {name!r} has no recorded occurrences")
        return self.laps[name] / self.counts[name]

    def fractions(self) -> dict[str, float]:
        """Fraction of total time spent in each lap (sums to 1 when nonempty)."""
        total = self.total()
        if total == 0.0:
            return {name: 0.0 for name in self.laps}
        return {name: value / total for name, value in self.laps.items()}


class BenchRecorder:
    """Per-cycle wall-time recorder for the DA cycling hot paths.

    Unlike :class:`Stopwatch` (which only accumulates totals), the recorder
    keeps the full per-occurrence time series of every named section, so an
    OSSE run can report how forecast and analysis cost evolve cycle by cycle
    and the benchmark harness can persist the breakdown (see the module
    docstring for the on-disk format).

    Examples
    --------
    >>> rec = BenchRecorder()
    >>> with rec.section("analysis"):
    ...     _ = sum(range(100))
    >>> rec.counts()["analysis"]
    1
    """

    def __init__(self) -> None:
        self.sections: dict[str, list[float]] = {}

    def add(self, name: str, seconds: float) -> None:
        """Record one occurrence of section ``name``."""
        self.sections.setdefault(name, []).append(float(seconds))

    @contextmanager
    def section(self, name: str):
        """Context manager timing one occurrence of section ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    # -- queries ----------------------------------------------------------- #
    def per_cycle(self, name: str) -> list[float]:
        """All recorded occurrences of section ``name`` (seconds)."""
        return list(self.sections.get(name, []))

    def totals(self) -> dict[str, float]:
        """Total seconds per section."""
        return {name: float(sum(vals)) for name, vals in self.sections.items()}

    def counts(self) -> dict[str, int]:
        """Number of occurrences per section."""
        return {name: len(vals) for name, vals in self.sections.items()}

    def mean(self, name: str) -> float:
        """Mean seconds per occurrence of section ``name``."""
        vals = self.sections.get(name)
        if not vals:
            raise KeyError(f"section {name!r} has no recorded occurrences")
        return float(sum(vals) / len(vals))

    def snapshot(self) -> dict[str, int]:
        """Per-section occurrence counts; pass to :meth:`report` as ``since``."""
        return {name: len(vals) for name, vals in self.sections.items()}

    def report(self, since: dict[str, int] | None = None) -> dict:
        """JSON-ready breakdown: totals, means, counts and per-cycle series.

        ``since`` (a :meth:`snapshot` taken earlier) restricts the report to
        occurrences recorded after the snapshot, so a recorder shared across
        several runs can still attribute timing to each run individually.
        """
        out = {}
        for name, vals in self.sections.items():
            vals = vals[since.get(name, 0):] if since else vals
            if not vals:
                continue
            out[name] = {
                "total_s": float(sum(vals)),
                "mean_s": float(sum(vals) / len(vals)),
                "count": len(vals),
                "per_cycle_s": [float(v) for v in vals],
            }
        return out

    @staticmethod
    def speedup(reference_seconds: float, optimized_seconds: float) -> float:
        """Speedup factor of an optimised path over its reference."""
        if optimized_seconds <= 0.0:
            raise ValueError("optimized_seconds must be positive")
        return float(reference_seconds) / float(optimized_seconds)

    def write_json(self, path, benchmark: str, **extra) -> dict:
        """Write ``{"benchmark": ..., <report>, <extra>}`` to ``path``.

        Returns the written payload.  ``extra`` entries take precedence over
        the recorder's own section report, letting callers attach speedup
        records in the documented ``BENCH_*.json`` layout.
        """
        payload = {
            "benchmark": benchmark,
            "created_unix": time.time(),
            "sections": self.report(),
        }
        payload.update(extra)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return payload
