"""Lightweight timing helpers for the benchmark harness and profiler."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager measuring wall-clock time of a code block.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Used by the real-time workflow to attribute wall time to the two
    sequential scalability tasks of the paper (online ViT training and EnSF
    execution) plus the forecast step.
    """

    laps: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    _open: dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> None:
        """Start timing the lap ``name``."""
        self._open[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """Stop the lap ``name`` and return the elapsed time of this lap."""
        if name not in self._open:
            raise KeyError(f"lap {name!r} was never started")
        dt = time.perf_counter() - self._open.pop(name)
        self.laps[name] = self.laps.get(name, 0.0) + dt
        self.counts[name] = self.counts.get(name, 0) + 1
        return dt

    def total(self) -> float:
        """Total accumulated time over all laps."""
        return float(sum(self.laps.values()))

    def mean(self, name: str) -> float:
        """Mean time per occurrence of lap ``name``."""
        if self.counts.get(name, 0) == 0:
            raise KeyError(f"lap {name!r} has no recorded occurrences")
        return self.laps[name] / self.counts[name]

    def fractions(self) -> dict[str, float]:
        """Fraction of total time spent in each lap (sums to 1 when nonempty)."""
        total = self.total()
        if total == 0.0:
            return {name: 0.0 for name in self.laps}
        return {name: value / total for name, value in self.laps.items()}
