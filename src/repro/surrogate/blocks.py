"""Transformer encoder blocks for the SQG-ViT (paper Fig. 2).

Each block is the standard pre-norm residual structure

``x ← x + DropPath(Attention(LayerNorm(x)))``
``x ← x + DropPath(MLP(LayerNorm(x)))``

with the MLP expansion ratio (``mlp_ratio``) being the dominant contributor
to the parameter count — the kernel-sizing fact the paper's Fig. 6 study is
built around.
"""

from __future__ import annotations

import numpy as np

from repro.surrogate.attention import MultiHeadSelfAttention
from repro.surrogate.layers import GELU, DropPath, Dropout, LayerNorm, Linear, Module
from repro.utils.random import default_rng, split_rng

__all__ = ["MLP", "TransformerBlock"]


class MLP(Module):
    """Two-layer feed-forward network with GELU activation and dropout."""

    def __init__(
        self,
        embed_dim: int,
        hidden_dim: int,
        dropout: float = 0.0,
        rng: np.random.Generator | int | None = None,
        name: str = "mlp",
    ):
        rng = default_rng(rng)
        rngs = split_rng(rng, 2)
        self.fc1 = Linear(embed_dim, hidden_dim, rng=rngs[0], name=f"{name}.fc1")
        self.act = GELU()
        self.fc2 = Linear(hidden_dim, embed_dim, rng=rngs[1], name=f"{name}.fc2")
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        h = self.fc1.forward(x, training=training)
        h = self.act.forward(h, training=training)
        h = self.fc2.forward(h, training=training)
        return self.drop.forward(h, training=training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.drop.backward(grad_out)
        grad = self.fc2.backward(grad)
        grad = self.act.backward(grad)
        return self.fc1.backward(grad)


class TransformerBlock(Module):
    """Pre-norm transformer encoder block with DropPath on both branches."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
        attn_dropout: float = 0.0,
        drop_path: float = 0.0,
        rng: np.random.Generator | int | None = None,
        name: str = "block",
    ):
        rng = default_rng(rng)
        rngs = split_rng(rng, 4)
        hidden_dim = int(round(embed_dim * mlp_ratio))
        self.norm1 = LayerNorm(embed_dim, name=f"{name}.norm1")
        self.attn = MultiHeadSelfAttention(
            embed_dim,
            num_heads,
            attn_dropout=attn_dropout,
            proj_dropout=dropout,
            rng=rngs[0],
            name=f"{name}.attn",
        )
        self.drop_path1 = DropPath(drop_path, rng=rngs[1])
        self.norm2 = LayerNorm(embed_dim, name=f"{name}.norm2")
        self.mlp = MLP(embed_dim, hidden_dim, dropout=dropout, rng=rngs[2], name=f"{name}.mlp")
        self.drop_path2 = DropPath(drop_path, rng=rngs[3])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        attn_branch = self.norm1.forward(x, training=training)
        attn_branch = self.attn.forward(attn_branch, training=training)
        attn_branch = self.drop_path1.forward(attn_branch, training=training)
        x = x + attn_branch

        mlp_branch = self.norm2.forward(x, training=training)
        mlp_branch = self.mlp.forward(mlp_branch, training=training)
        mlp_branch = self.drop_path2.forward(mlp_branch, training=training)
        return x + mlp_branch

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_out = np.asarray(grad_out, dtype=float)
        # Second residual connection.
        grad_mlp = self.drop_path2.backward(grad_out)
        grad_mlp = self.mlp.backward(grad_mlp)
        grad_mlp = self.norm2.backward(grad_mlp)
        grad_mid = grad_out + grad_mlp
        # First residual connection.
        grad_attn = self.drop_path1.backward(grad_mid)
        grad_attn = self.attn.backward(grad_attn)
        grad_attn = self.norm1.backward(grad_attn)
        return grad_mid + grad_attn
