"""Parameter counts, FLOPs and Frontier node-hour estimates for the ViT.

Implements the paper's computational-budget model (§III-B d, Eq. 18):

``T = 6 · Π_i (L_i / P_i) · E · M``

per training image — 6 because every token costs one multiply-accumulate in
the forward pass and two in the backward pass — times the number of images.
These estimates feed the Fig. 3 benchmark (FLOPs and node-hours for the
Table II model sizes) and the distributed-training simulator.
"""

from __future__ import annotations

import numpy as np

from repro.surrogate.vit import ViTConfig

__all__ = [
    "vit_parameter_count",
    "vit_layer_flops",
    "vit_forward_flops",
    "vit_training_flops",
    "training_flops_eq18",
    "frontier_node_hours",
]


def vit_parameter_count(config: ViTConfig) -> int:
    """Exact trainable-parameter count of the :class:`VisionTransformer`.

    Per block: QKV (D·3D + 3D) + output projection (D² + D) + two LayerNorms
    (4D) + MLP (D·rD + rD + rD·D + D).  Plus patch embedding, positional
    embeddings, the final LayerNorm and the prediction head.
    """
    d = config.embed_dim
    r = config.mlp_ratio
    hidden = int(round(d * r))
    per_block = (
        d * 3 * d + 3 * d          # qkv
        + d * d + d                # attention output projection
        + 4 * d                    # two LayerNorms
        + d * hidden + hidden      # mlp fc1
        + hidden * d + d           # mlp fc2
    )
    patch_dim = config.patch_dim
    embed = patch_dim * d + d + config.n_patches * d   # projection + bias + pos-embed
    head = d * patch_dim + patch_dim
    final_norm = 2 * d
    return int(config.depth * per_block + embed + head + final_norm)


def vit_layer_flops(config: ViTConfig, batch_size: int = 1) -> dict[str, float]:
    """FLOPs per transformer block broken into GEMM groups (cf. Fig. 2).

    Counts multiply-adds as 2 FLOPs.  The attention score/context GEMMs scale
    quadratically with the token count, which is why larger inputs (longer
    sequences) shift the paper's runtime breakdown (Fig. 7).
    """
    n = config.n_patches
    d = config.embed_dim
    hidden = int(round(config.embed_dim * config.mlp_ratio))
    flops_qkv = 2.0 * batch_size * n * d * 3 * d
    flops_attn_scores = 2.0 * batch_size * config.num_heads * n * n * (d // config.num_heads)
    flops_attn_context = flops_attn_scores
    flops_proj = 2.0 * batch_size * n * d * d
    flops_mlp = 2.0 * batch_size * n * (d * hidden + hidden * d)
    return {
        "qkv": flops_qkv,
        "attention_scores": flops_attn_scores,
        "attention_context": flops_attn_context,
        "projection": flops_proj,
        "mlp": flops_mlp,
    }


def vit_forward_flops(config: ViTConfig, batch_size: int = 1) -> float:
    """Total forward-pass FLOPs for one batch (all blocks plus embeddings/head)."""
    per_block = sum(vit_layer_flops(config, batch_size).values())
    n = config.n_patches
    d = config.embed_dim
    embed = 2.0 * batch_size * n * config.patch_dim * d
    head = 2.0 * batch_size * n * d * config.patch_dim
    return config.depth * per_block + embed + head


def training_flops_eq18(
    input_shape: tuple[int, ...],
    patch_size: int,
    n_parameters: float,
    n_images: float,
    epochs: int,
) -> float:
    """The paper's Eq. 18 budget: ``6 · Π(L_i/P_i) · E · M`` per image, times images."""
    tokens_per_image = 1.0
    for length in input_shape:
        tokens_per_image *= length / patch_size
    return 6.0 * tokens_per_image * float(epochs) * float(n_parameters) * float(n_images)


def vit_training_flops(config: ViTConfig, n_images: float = 1.0e6, epochs: int = 100) -> float:
    """Eq. 18 applied to a :class:`ViTConfig` (2-D inputs)."""
    return training_flops_eq18(
        (config.image_size, config.image_size),
        config.patch_size,
        vit_parameter_count(config),
        n_images,
        epochs,
    )


def frontier_node_hours(
    total_flops: float,
    achieved_tflops_per_gcd: float = 40.0,
    gcds_per_node: int = 8,
) -> float:
    """Convert a FLOP budget into Frontier node-hours (Fig. 3's second axis).

    ``achieved_tflops_per_gcd`` defaults to 40 TFLOPS, the middle of the
    20–52 TFLOPS range measured in the paper's single-node study (Fig. 6).
    """
    if achieved_tflops_per_gcd <= 0 or gcds_per_node <= 0:
        raise ValueError("throughput and GCD count must be positive")
    node_flops_per_second = achieved_tflops_per_gcd * 1.0e12 * gcds_per_node
    return float(total_flops) / node_flops_per_second / 3600.0
