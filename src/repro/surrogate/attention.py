"""Multi-head self-attention with explicit backpropagation.

The attention block of the SQG-ViT (paper Fig. 2): a fused QKV projection,
scaled dot-product attention with softmax (and optional attention dropout),
and an output projection.  The number of heads and the embedding dimension
are the main kernel-sizing knobs studied in the paper's compute-efficiency
experiments (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.surrogate.layers import Dropout, Linear, Module
from repro.utils.random import default_rng, split_rng

__all__ = ["MultiHeadSelfAttention", "softmax", "softmax_backward"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=float)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_backward(grad_out: np.ndarray, softmax_out: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward pass of softmax given its output."""
    dot = np.sum(grad_out * softmax_out, axis=axis, keepdims=True)
    return softmax_out * (grad_out - dot)


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention on token tensors ``(B, N, D)``."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        attn_dropout: float = 0.0,
        proj_dropout: float = 0.0,
        rng: np.random.Generator | int | None = None,
        name: str = "attn",
    ):
        if embed_dim % num_heads:
            raise ValueError("embed_dim must be divisible by num_heads")
        rng = default_rng(rng)
        rngs = split_rng(rng, 4)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.scale = 1.0 / np.sqrt(self.head_dim)

        self.qkv = Linear(embed_dim, 3 * embed_dim, rng=rngs[0], name=f"{name}.qkv")
        self.proj = Linear(embed_dim, embed_dim, rng=rngs[1], name=f"{name}.proj")
        self.attn_drop = Dropout(attn_dropout, rng=rngs[2])
        self.proj_drop = Dropout(proj_dropout, rng=rngs[3])
        self._cache: dict | None = None

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[-1] != self.embed_dim:
            raise ValueError(f"expected (B, N, {self.embed_dim}), got {x.shape}")
        batch, tokens, _ = x.shape
        h, dh = self.num_heads, self.head_dim

        qkv = self.qkv.forward(x, training=training)                    # (B, N, 3D)
        qkv = qkv.reshape(batch, tokens, 3, h, dh).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]                                 # each (B, H, N, dh)

        logits = (q @ k.transpose(0, 1, 3, 2)) * self.scale              # (B, H, N, N)
        attn = softmax(logits, axis=-1)
        attn_dropped = self.attn_drop.forward(attn, training=training)
        context = attn_dropped @ v                                       # (B, H, N, dh)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, tokens, self.embed_dim)
        out = self.proj.forward(merged, training=training)
        out = self.proj_drop.forward(out, training=training)

        self._cache = {
            "q": q,
            "k": k,
            "v": v,
            "attn": attn,
            "attn_dropped": attn_dropped,
            "shape": (batch, tokens),
        }
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        q, k, v = cache["q"], cache["k"], cache["v"]
        attn, attn_dropped = cache["attn"], cache["attn_dropped"]
        batch, tokens = cache["shape"]
        h, dh = self.num_heads, self.head_dim

        grad = self.proj_drop.backward(np.asarray(grad_out, dtype=float))
        grad_merged = self.proj.backward(grad)                            # (B, N, D)
        grad_context = grad_merged.reshape(batch, tokens, h, dh).transpose(0, 2, 1, 3)

        grad_attn_dropped = grad_context @ v.transpose(0, 1, 3, 2)        # (B, H, N, N)
        grad_v = attn_dropped.transpose(0, 1, 3, 2) @ grad_context        # (B, H, N, dh)
        grad_attn = self.attn_drop.backward(grad_attn_dropped)
        grad_logits = softmax_backward(grad_attn, attn) * self.scale

        grad_q = grad_logits @ k                                          # (B, H, N, dh)
        grad_k = grad_logits.transpose(0, 1, 3, 2) @ q                    # (B, H, N, dh)

        grad_qkv = np.stack([grad_q, grad_k, grad_v], axis=0)             # (3, B, H, N, dh)
        grad_qkv = grad_qkv.transpose(1, 3, 0, 2, 4).reshape(batch, tokens, 3 * self.embed_dim)
        return self.qkv.backward(grad_qkv)
