"""Minimal NumPy neural-network layers with explicit backpropagation.

The ViT surrogate of the paper is a standard transformer; here every layer is
implemented from scratch on top of NumPy with hand-written forward/backward
passes so the whole library stays dependency-free.  The design follows a
conventional "module" pattern:

* a :class:`Parameter` owns a value array and its accumulated gradient;
* a :class:`Module` owns parameters and sub-modules, exposes
  ``forward(x, training=...)`` (caching what backward needs) and
  ``backward(grad_out)`` (returning the gradient with respect to its input
  and accumulating parameter gradients);
* gradients are verified against finite differences in the test suite.

All layers operate on arrays whose *last* axis is the feature dimension, so
token tensors of shape ``(batch, tokens, dim)`` work throughout.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import default_rng

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "LayerNorm",
    "GELU",
    "Dropout",
    "DropPath",
    "Sequential",
]


class Parameter:
    """A trainable array together with its gradient accumulator."""

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class providing parameter discovery and gradient bookkeeping."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its sub-modules."""
        found: list[Parameter] = []
        seen: set[int] = set()
        for attr in self.__dict__.values():
            found.extend(_collect_parameters(attr, seen))
        return found

    def zero_grad(self) -> None:
        """Reset accumulated gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # Subclasses implement forward/backward.
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


def _collect_parameters(obj, seen: set[int]) -> list[Parameter]:
    out: list[Parameter] = []
    if isinstance(obj, Parameter):
        if id(obj) not in seen:
            seen.add(id(obj))
            out.append(obj)
    elif isinstance(obj, Module):
        for attr in obj.__dict__.values():
            out.extend(_collect_parameters(attr, seen))
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            out.extend(_collect_parameters(item, seen))
    elif isinstance(obj, dict):
        for item in obj.values():
            out.extend(_collect_parameters(item, seen))
    return out


class Linear(Module):
    """Affine map ``y = x W + b`` on the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
        name: str = "linear",
    ):
        rng = default_rng(rng)
        # Xavier/Glorot uniform initialisation keeps activations O(1).
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(
            rng.uniform(-limit, limit, size=(in_features, out_features)), name=f"{name}.weight"
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias") if bias else None
        self.in_features = in_features
        self.out_features = out_features
        self._cache_x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected last dim {self.in_features}, got {x.shape[-1]}")
        self._cache_x = x
        y = x @ self.weight.value
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cache_x
        if x is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.asarray(grad_out, dtype=float)
        x2d = x.reshape(-1, self.in_features)
        g2d = grad_out.reshape(-1, self.out_features)
        self.weight.grad += x2d.T @ g2d
        if self.bias is not None:
            self.bias.grad += g2d.sum(axis=0)
        return grad_out @ self.weight.value.T


class LayerNorm(Module):
    """Layer normalisation over the last axis with learned scale and shift."""

    def __init__(self, dim: int, eps: float = 1.0e-5, name: str = "ln"):
        self.gamma = Parameter(np.ones(dim), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(dim), name=f"{name}.beta")
        self.dim = dim
        self.eps = eps
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return x_hat * self.gamma.value + self.beta.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        grad_out = np.asarray(grad_out, dtype=float)

        self.gamma.grad += np.sum(grad_out * x_hat, axis=tuple(range(grad_out.ndim - 1)))
        self.beta.grad += np.sum(grad_out, axis=tuple(range(grad_out.ndim - 1)))

        d_xhat = grad_out * self.gamma.value
        # Standard LayerNorm backward over the last axis.
        mean_dxhat = d_xhat.mean(axis=-1, keepdims=True)
        mean_dxhat_xhat = (d_xhat * x_hat).mean(axis=-1, keepdims=True)
        return inv_std * (d_xhat - mean_dxhat - x_hat * mean_dxhat_xhat)


class GELU(Module):
    """Gaussian Error Linear Unit (tanh approximation, as used by ViT MLPs)."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self):
        self._cache_x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._cache_x = x
        inner = self._C * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cache_x
        if x is None:
            raise RuntimeError("backward called before forward")
        inner = self._C * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        sech_sq = 1.0 - tanh_inner**2
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech_sq * d_inner
        return grad_out * grad


class Dropout(Module):
    """Inverted dropout; active only when ``training=True``."""

    def __init__(self, rate: float = 0.0, rng: np.random.Generator | int | None = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must lie in [0, 1)")
        self.rate = rate
        self.rng = default_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class DropPath(Module):
    """Stochastic depth: randomly drop the whole residual branch per sample.

    The ViT surrogate of the paper uses DropPath together with Dropout to
    address overfitting (§III-B a).  The drop decision is made per leading
    (batch) index so different samples take different depths.
    """

    def __init__(self, rate: float = 0.0, rng: np.random.Generator | int | None = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError("drop-path rate must lie in [0, 1)")
        self.rate = rate
        self.rng = default_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        shape = (x.shape[0],) + (1,) * (x.ndim - 1)
        self._mask = (self.rng.random(shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Sequential(Module):
    """Compose modules in order (used for small heads and test fixtures)."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for module in self.modules:
            x = module.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_out = module.backward(grad_out)
        return grad_out
