"""The SQG-ViT surrogate model (paper §III-B, Fig. 2).

The surrogate maps the current (normalised) SQG state — a two-channel image —
to the state one analysis interval later.  Architecture: patch embedding with
learned positional embeddings, a stack of pre-norm transformer blocks
(multi-head self-attention + MLP with Dropout/DropPath), a final LayerNorm
and a linear prediction head that is un-patchified back into a field.  The
network predicts the state *increment* and adds it to its input, which makes
the identity map the trivial starting point and stabilises training on
chaotic dynamics.

:class:`SQGViTSurrogate` wraps the network together with a
:class:`StateNormalizer` and exposes the
:class:`repro.models.base.ForecastModel` protocol, so the DA layer can use it
interchangeably with the physics model (the central design point of Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.surrogate.blocks import TransformerBlock
from repro.surrogate.layers import LayerNorm, Linear, Module
from repro.surrogate.patch import PatchEmbed, patchify, unpatchify
from repro.utils.random import default_rng, split_rng

__all__ = ["ViTConfig", "VisionTransformer", "StateNormalizer", "SQGViTSurrogate"]


@dataclass(frozen=True)
class ViTConfig:
    """Architecture hyper-parameters of the SQG-ViT (cf. Table II).

    Attributes
    ----------
    image_size:
        Side length of the (square) input field.
    patch_size:
        Patch side length (Table II uses 4).
    channels:
        Number of input channels (2 boundary levels for SQG).
    depth:
        Number of transformer blocks.
    num_heads:
        Attention heads (Table II fixes 8).
    embed_dim:
        Token embedding dimension.
    mlp_ratio:
        MLP hidden size / embedding dimension (Table II uses 4).
    dropout, attn_dropout, drop_path:
        Regularisation rates (paper §III-B a).
    """

    image_size: int = 64
    patch_size: int = 4
    channels: int = 2
    depth: int = 12
    num_heads: int = 8
    embed_dim: int = 1024
    mlp_ratio: float = 4.0
    dropout: float = 0.0
    attn_dropout: float = 0.0
    drop_path: float = 0.0

    def __post_init__(self) -> None:
        if self.image_size % self.patch_size:
            raise ValueError("image_size must be divisible by patch_size")
        if self.embed_dim % self.num_heads:
            raise ValueError("embed_dim must be divisible by num_heads")
        if self.depth < 1:
            raise ValueError("depth must be at least 1")

    @property
    def n_patches(self) -> int:
        """Number of tokens per input image."""
        return (self.image_size // self.patch_size) ** 2

    @property
    def patch_dim(self) -> int:
        """Flattened patch dimension ``P·P·C``."""
        return self.channels * self.patch_size**2


class VisionTransformer(Module):
    """ViT encoder predicting a next-state increment field."""

    def __init__(self, config: ViTConfig, rng: np.random.Generator | int | None = None):
        rng = default_rng(rng)
        rngs = split_rng(rng, config.depth + 3)
        self.config = config
        self.patch_embed = PatchEmbed(
            config.image_size, config.patch_size, config.channels, config.embed_dim, rng=rngs[0]
        )
        self.blocks = [
            TransformerBlock(
                config.embed_dim,
                config.num_heads,
                mlp_ratio=config.mlp_ratio,
                dropout=config.dropout,
                attn_dropout=config.attn_dropout,
                drop_path=config.drop_path,
                rng=rngs[1 + i],
                name=f"block{i}",
            )
            for i in range(config.depth)
        ]
        self.norm = LayerNorm(config.embed_dim, name="final_norm")
        self.head = Linear(config.embed_dim, config.patch_dim, rng=rngs[-1], name="head")
        # Start the head at zero so the untrained network is the identity map.
        self.head.weight.value[:] = 0.0
        if self.head.bias is not None:
            self.head.bias.value[:] = 0.0

    # ------------------------------------------------------------------ #
    def forward(self, fields: np.ndarray, training: bool = False) -> np.ndarray:
        """Predict the next state for fields of shape ``(B, C, H, W)``."""
        fields = np.asarray(fields, dtype=float)
        cfg = self.config
        if fields.ndim != 4 or fields.shape[1:] != (cfg.channels, cfg.image_size, cfg.image_size):
            raise ValueError(
                f"expected (B, {cfg.channels}, {cfg.image_size}, {cfg.image_size}), got {fields.shape}"
            )
        tokens = self.patch_embed.forward(fields, training=training)
        for block in self.blocks:
            tokens = block.forward(tokens, training=training)
        tokens = self.norm.forward(tokens, training=training)
        patches = self.head.forward(tokens, training=training)
        increment = unpatchify(
            patches, cfg.patch_size, cfg.channels, cfg.image_size, cfg.image_size
        )
        return fields + increment

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate a gradient with respect to the predicted field."""
        cfg = self.config
        grad_out = np.asarray(grad_out, dtype=float)
        grad_patches = patchify(grad_out, cfg.patch_size)
        grad_tokens = self.head.backward(grad_patches)
        grad_tokens = self.norm.backward(grad_tokens)
        for block in reversed(self.blocks):
            grad_tokens = block.backward(grad_tokens)
        grad_fields = self.patch_embed.backward(grad_tokens)
        # Residual connection: output = fields + increment.
        return grad_fields + grad_out


class StateNormalizer:
    """Affine normalisation of physical states for surrogate training.

    ViTs train best on O(1) inputs; the normaliser records a climatological
    mean and standard deviation (per channel) and maps physical states to
    normalised space and back.
    """

    def __init__(self, mean: np.ndarray, std: np.ndarray):
        self.mean = np.asarray(mean, dtype=float)
        self.std = np.asarray(std, dtype=float)
        if np.any(self.std <= 0):
            raise ValueError("normalisation std must be positive")

    @classmethod
    def from_samples(cls, fields: np.ndarray) -> "StateNormalizer":
        """Fit per-channel statistics from fields of shape ``(B, C, H, W)``."""
        fields = np.asarray(fields, dtype=float)
        if fields.ndim != 4:
            raise ValueError("expected samples of shape (B, C, H, W)")
        mean = fields.mean(axis=(0, 2, 3), keepdims=True)[0]
        std = fields.std(axis=(0, 2, 3), keepdims=True)[0]
        std = np.maximum(std, 1.0e-8)
        return cls(mean, std)

    def normalize(self, fields: np.ndarray) -> np.ndarray:
        return (np.asarray(fields, dtype=float) - self.mean) / self.std

    def denormalize(self, fields: np.ndarray) -> np.ndarray:
        return np.asarray(fields, dtype=float) * self.std + self.mean


class SQGViTSurrogate:
    """ForecastModel adapter: flattened SQG states in, flattened states out.

    Parameters
    ----------
    network:
        The trained (or online-trained) :class:`VisionTransformer`.
    normalizer:
        Climatological normaliser fitted on the training trajectory.
    grid_shape:
        Physical state shape ``(nlev, ny, nx)``.
    steps_per_application:
        Number of physics-model steps one surrogate application emulates
        (i.e. the analysis interval it was trained on).  ``forecast`` with
        ``n_steps = k * steps_per_application`` applies the network ``k``
        times.
    """

    def __init__(
        self,
        network: VisionTransformer,
        normalizer: StateNormalizer,
        grid_shape: tuple[int, int, int],
        steps_per_application: int = 1,
    ):
        if len(grid_shape) != 3:
            raise ValueError("grid_shape must be (nlev, ny, nx)")
        self.network = network
        self.normalizer = normalizer
        self.grid_shape = tuple(int(v) for v in grid_shape)
        self.steps_per_application = int(steps_per_application)
        self.state_size = int(np.prod(self.grid_shape))

    def _to_fields(self, states: np.ndarray) -> np.ndarray:
        return states.reshape((-1,) + self.grid_shape)

    def forecast(self, state: np.ndarray, n_steps: int = 1) -> np.ndarray:
        """Advance flattened state(s) by ``n_steps`` physics-equivalent steps."""
        state = np.asarray(state, dtype=float)
        squeeze = state.ndim == 1
        states = np.atleast_2d(state)
        if states.shape[1] != self.state_size:
            raise ValueError(
                f"state size {states.shape[1]} != surrogate state size {self.state_size}"
            )
        n_apps = max(1, int(round(n_steps / self.steps_per_application)))
        fields = self.normalizer.normalize(self._to_fields(states))
        for _ in range(n_apps):
            fields = self.network.forward(fields, training=False)
        out = self.normalizer.denormalize(fields).reshape(states.shape)
        return out[0] if squeeze else out
