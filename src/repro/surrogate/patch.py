"""Patchify / unpatchify and the patch-embedding layer of the SQG-ViT.

The SQG state is a two-channel image (the two boundary temperature fields).
It is split into non-overlapping ``P × P`` patches, each flattened and
linearly projected into the embedding space — the standard ViT tokenisation.
The inverse operation reassembles predicted patches into a field, which is
how the surrogate produces its next-state forecast.
"""

from __future__ import annotations

import numpy as np

from repro.surrogate.layers import Linear, Module, Parameter
from repro.utils.random import default_rng

__all__ = ["patchify", "unpatchify", "PatchEmbed"]


def patchify(fields: np.ndarray, patch_size: int) -> np.ndarray:
    """Split ``(B, C, H, W)`` fields into flattened patches ``(B, N, P·P·C)``.

    ``N = (H/P) · (W/P)`` and patches are ordered row-major over the patch
    grid; channel values of a patch are kept contiguous so the inverse is a
    pure reshape.
    """
    fields = np.asarray(fields, dtype=float)
    if fields.ndim != 4:
        raise ValueError("expected fields of shape (B, C, H, W)")
    b, c, h, w = fields.shape
    if h % patch_size or w % patch_size:
        raise ValueError(f"field size {(h, w)} not divisible by patch size {patch_size}")
    hp, wp = h // patch_size, w // patch_size
    x = fields.reshape(b, c, hp, patch_size, wp, patch_size)
    x = x.transpose(0, 2, 4, 1, 3, 5)  # (B, hp, wp, C, P, P)
    return x.reshape(b, hp * wp, c * patch_size * patch_size)


def unpatchify(patches: np.ndarray, patch_size: int, channels: int, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`patchify`: ``(B, N, P·P·C)`` → ``(B, C, H, W)``."""
    patches = np.asarray(patches, dtype=float)
    if patches.ndim != 3:
        raise ValueError("expected patches of shape (B, N, patch_dim)")
    b, n, patch_dim = patches.shape
    hp, wp = height // patch_size, width // patch_size
    if n != hp * wp:
        raise ValueError(f"token count {n} incompatible with grid {(hp, wp)}")
    if patch_dim != channels * patch_size * patch_size:
        raise ValueError("patch dimension incompatible with channels and patch size")
    x = patches.reshape(b, hp, wp, channels, patch_size, patch_size)
    x = x.transpose(0, 3, 1, 4, 2, 5)  # (B, C, hp, P, wp, P)
    return x.reshape(b, channels, height, width)


class PatchEmbed(Module):
    """Patchify + linear projection + learned positional embedding."""

    def __init__(
        self,
        image_size: int,
        patch_size: int,
        channels: int,
        embed_dim: int,
        rng: np.random.Generator | int | None = None,
        name: str = "patch_embed",
    ):
        if image_size % patch_size:
            raise ValueError("image_size must be divisible by patch_size")
        rng = default_rng(rng)
        self.image_size = image_size
        self.patch_size = patch_size
        self.channels = channels
        self.embed_dim = embed_dim
        self.n_patches = (image_size // patch_size) ** 2
        self.patch_dim = channels * patch_size * patch_size

        self.proj = Linear(self.patch_dim, embed_dim, rng=rng, name=f"{name}.proj")
        self.pos_embed = Parameter(
            0.02 * rng.standard_normal((1, self.n_patches, embed_dim)),
            name=f"{name}.pos_embed",
        )

    def forward(self, fields: np.ndarray, training: bool = False) -> np.ndarray:
        patches = patchify(fields, self.patch_size)
        tokens = self.proj.forward(patches, training=training)
        return tokens + self.pos_embed.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_out = np.asarray(grad_out, dtype=float)
        self.pos_embed.grad += grad_out.sum(axis=0, keepdims=True)
        grad_patches = self.proj.backward(grad_out)
        # Return the gradient with respect to the input fields.
        b = grad_patches.shape[0]
        return unpatchify(
            grad_patches, self.patch_size, self.channels, self.image_size, self.image_size
        ).reshape(b, self.channels, self.image_size, self.image_size)
