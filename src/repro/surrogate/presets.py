"""ViT architecture presets.

``TABLE_II_PRESETS`` reproduces Table II of the paper exactly (input sizes
64², 128², 256² with 157M, 1.2B and 2.5B parameters); these configurations
are used by the FLOPs/memory/scaling models.  ``laptop_preset`` returns a
small configuration that trains in seconds on a CPU and is used for the
accuracy experiments and the test suite.
"""

from __future__ import annotations

from repro.surrogate.vit import ViTConfig

__all__ = ["TABLE_II_PRESETS", "preset_by_input_size", "laptop_preset"]


#: The three architectures of Table II: input → (patch, layers, heads, embed, mlp ratio).
TABLE_II_PRESETS: dict[int, ViTConfig] = {
    64: ViTConfig(
        image_size=64, patch_size=4, channels=2, depth=12, num_heads=8, embed_dim=1024, mlp_ratio=4.0
    ),
    128: ViTConfig(
        image_size=128, patch_size=4, channels=2, depth=24, num_heads=8, embed_dim=2048, mlp_ratio=4.0
    ),
    256: ViTConfig(
        image_size=256, patch_size=4, channels=2, depth=48, num_heads=8, embed_dim=2048, mlp_ratio=4.0
    ),
}

#: Parameter counts the paper reports for each Table II input size.
TABLE_II_REPORTED_PARAMS: dict[int, float] = {64: 157.0e6, 128: 1.2e9, 256: 2.5e9}


def preset_by_input_size(input_size: int) -> ViTConfig:
    """Return the Table II architecture for the given input size (64/128/256)."""
    try:
        return TABLE_II_PRESETS[int(input_size)]
    except KeyError as exc:
        raise KeyError(
            f"no Table II preset for input size {input_size}; available: {sorted(TABLE_II_PRESETS)}"
        ) from exc


def laptop_preset(
    image_size: int = 64,
    patch_size: int = 8,
    depth: int = 2,
    embed_dim: int = 64,
    num_heads: int = 4,
    dropout: float = 0.0,
    drop_path: float = 0.0,
) -> ViTConfig:
    """A CPU-trainable SQG-ViT used for accuracy experiments and tests.

    The architecture keeps the structure of the paper's surrogate (same block
    design, same tokenisation of the two-level SQG state) but shrinks depth
    and width so that offline pre-training plus per-cycle online fine-tuning
    run in seconds.
    """
    return ViTConfig(
        image_size=image_size,
        patch_size=patch_size,
        channels=2,
        depth=depth,
        num_heads=num_heads,
        embed_dim=embed_dim,
        mlp_ratio=4.0,
        dropout=dropout,
        attn_dropout=0.0,
        drop_path=drop_path,
    )
