"""Offline pre-training and online fine-tuning of the ViT surrogate.

The paper's workflow (Fig. 1) trains the surrogate in two regimes:

* **offline**: on pairs of consecutive model states sampled from a long
  integration of the forecast model (physics-based SQG here, but it could be
  an AI foundation model);
* **online**: at every analysis cycle, the surrogate is fine-tuned with the
  newly available information (the analysis states that already incorporate
  observations), which is the "real-time adaptation through the integration
  of observational data" the abstract emphasises — and the reason the
  training must scale on HPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.base import ForecastModel
from repro.surrogate.optim import Adam, clip_gradients
from repro.surrogate.vit import SQGViTSurrogate, StateNormalizer, VisionTransformer
from repro.utils.random import default_rng

__all__ = ["TrainingConfig", "TrajectoryDataset", "OfflineTrainer", "OnlineTrainer"]


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters shared by offline and online training."""

    learning_rate: float = 1.0e-3
    batch_size: int = 8
    epochs: int = 20
    grad_clip: float = 1.0
    weight_decay: float = 0.0
    online_iterations: int = 4
    online_learning_rate: float = 5.0e-4

    def __post_init__(self) -> None:
        if self.learning_rate <= 0 or self.online_learning_rate <= 0:
            raise ValueError("learning rates must be positive")
        if self.batch_size < 1 or self.epochs < 1 or self.online_iterations < 0:
            raise ValueError("batch_size/epochs must be positive")


class TrajectoryDataset:
    """Input/target pairs ``(X_k, X_{k+1})`` extracted from a model trajectory.

    Parameters
    ----------
    snapshots:
        Trajectory of physical fields, shape ``(T, C, H, W)``, saved one
        analysis interval apart.
    """

    def __init__(self, snapshots: np.ndarray):
        snapshots = np.asarray(snapshots, dtype=float)
        if snapshots.ndim != 4 or snapshots.shape[0] < 2:
            raise ValueError("snapshots must have shape (T >= 2, C, H, W)")
        self.snapshots = snapshots
        self.normalizer = StateNormalizer.from_samples(snapshots)

    @classmethod
    def from_model(
        cls,
        model: ForecastModel,
        initial_state: np.ndarray,
        n_pairs: int,
        steps_per_pair: int,
        grid_shape: tuple[int, int, int],
    ) -> "TrajectoryDataset":
        """Generate a dataset by integrating ``model`` from ``initial_state``.

        ``initial_state`` is a flattened state; snapshots are taken every
        ``steps_per_pair`` model steps (the analysis interval).
        """
        if n_pairs < 1:
            raise ValueError("n_pairs must be positive")
        state = np.asarray(initial_state, dtype=float)
        snaps = [state.reshape(grid_shape)]
        for _ in range(n_pairs):
            state = model.forecast(state, n_steps=steps_per_pair)
            snaps.append(state.reshape(grid_shape))
        return cls(np.array(snaps))

    def __len__(self) -> int:
        return self.snapshots.shape[0] - 1

    def pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All (input, target) pairs in normalised space."""
        norm = self.normalizer.normalize(self.snapshots)
        return norm[:-1], norm[1:]

    def batches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled mini-batches of normalised (input, target) pairs."""
        inputs, targets = self.pairs()
        order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield inputs[idx], targets[idx]


def mse_loss_and_grad(prediction: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean-squared-error loss and its gradient with respect to the prediction."""
    diff = prediction - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


class OfflineTrainer:
    """Pre-train the surrogate on a trajectory of the forecast model."""

    def __init__(
        self,
        network: VisionTransformer,
        config: TrainingConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        self.network = network
        self.config = config or TrainingConfig()
        self.rng = default_rng(rng)
        self.optimizer = Adam(
            network.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.loss_history: list[float] = []

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One optimisation step on a mini-batch of normalised fields."""
        self.optimizer.zero_grad()
        prediction = self.network.forward(inputs, training=True)
        loss, grad = mse_loss_and_grad(prediction, targets)
        self.network.backward(grad)
        clip_gradients(self.network.parameters(), self.config.grad_clip)
        self.optimizer.step()
        return loss

    def fit(self, dataset: TrajectoryDataset) -> list[float]:
        """Run the configured number of epochs; returns per-epoch mean losses."""
        epoch_losses = []
        for _ in range(self.config.epochs):
            losses = [
                self.train_step(x, y)
                for x, y in dataset.batches(self.config.batch_size, self.rng)
            ]
            epoch_loss = float(np.mean(losses))
            epoch_losses.append(epoch_loss)
            self.loss_history.append(epoch_loss)
        return epoch_losses

    def build_surrogate(
        self, dataset: TrajectoryDataset, grid_shape: tuple[int, int, int], steps_per_application: int
    ) -> SQGViTSurrogate:
        """Wrap the trained network as a :class:`SQGViTSurrogate`."""
        return SQGViTSurrogate(
            self.network,
            dataset.normalizer,
            grid_shape,
            steps_per_application=steps_per_application,
        )


class OnlineTrainer:
    """Per-cycle fine-tuning of the surrogate with newly assimilated states.

    At analysis cycle ``k`` the workflow has access to the previous analysis
    ensemble mean (the surrogate's input at cycle ``k``) and the new analysis
    mean which already blends the observation ``y_k``.  A few Adam iterations
    on this pair adapt the surrogate in real time (paper §III-B); the cost of
    this step is what the ViT scaling experiments measure.
    """

    def __init__(
        self,
        surrogate: SQGViTSurrogate,
        config: TrainingConfig | None = None,
    ):
        self.surrogate = surrogate
        self.config = config or TrainingConfig()
        self.optimizer = Adam(
            surrogate.network.parameters(), lr=self.config.online_learning_rate
        )
        self.loss_history: list[float] = []

    def update(self, previous_state: np.ndarray, new_state: np.ndarray) -> float:
        """Fine-tune on the transition ``previous_state → new_state`` (flattened)."""
        grid_shape = self.surrogate.grid_shape
        normalizer = self.surrogate.normalizer
        x = normalizer.normalize(np.asarray(previous_state, dtype=float).reshape((1,) + grid_shape))
        y = normalizer.normalize(np.asarray(new_state, dtype=float).reshape((1,) + grid_shape))

        last_loss = 0.0
        for _ in range(self.config.online_iterations):
            self.optimizer.zero_grad()
            prediction = self.surrogate.network.forward(x, training=True)
            last_loss, grad = mse_loss_and_grad(prediction, y)
            self.surrogate.network.backward(grad)
            clip_gradients(self.surrogate.network.parameters(), self.config.grad_clip)
            self.optimizer.step()
        self.loss_history.append(last_loss)
        return last_loss
