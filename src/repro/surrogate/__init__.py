"""Vision-transformer surrogate of the forecast model (paper §III-B).

A pure-NumPy ViT with hand-written backpropagation: patch embedding,
multi-head self-attention, MLP blocks with LayerNorm, Dropout and DropPath
regularisation, trained with Adam.  The surrogate emulates one
analysis-cycle step of the SQG dynamics and can be fine-tuned *online* with
observational data inside the real-time DA workflow.

The Table II architectures (157M / 1.2B / 2.5B parameters) are represented by
:mod:`repro.surrogate.presets` and costed exactly by
:mod:`repro.surrogate.flops`; laptop-scale presets are provided for the
accuracy experiments.
"""

from repro.surrogate.layers import (
    Parameter,
    Module,
    Linear,
    LayerNorm,
    GELU,
    Dropout,
    DropPath,
    Sequential,
)
from repro.surrogate.attention import MultiHeadSelfAttention
from repro.surrogate.blocks import MLP, TransformerBlock
from repro.surrogate.patch import patchify, unpatchify, PatchEmbed
from repro.surrogate.vit import ViTConfig, VisionTransformer, SQGViTSurrogate, StateNormalizer
from repro.surrogate.optim import Adam, SGD, clip_gradients
from repro.surrogate.training import (
    TrajectoryDataset,
    OfflineTrainer,
    OnlineTrainer,
    TrainingConfig,
)
from repro.surrogate.flops import (
    vit_parameter_count,
    vit_training_flops,
    vit_layer_flops,
    frontier_node_hours,
)
from repro.surrogate.presets import TABLE_II_PRESETS, laptop_preset, preset_by_input_size

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "LayerNorm",
    "GELU",
    "Dropout",
    "DropPath",
    "Sequential",
    "MultiHeadSelfAttention",
    "MLP",
    "TransformerBlock",
    "patchify",
    "unpatchify",
    "PatchEmbed",
    "ViTConfig",
    "VisionTransformer",
    "SQGViTSurrogate",
    "StateNormalizer",
    "Adam",
    "SGD",
    "clip_gradients",
    "TrajectoryDataset",
    "OfflineTrainer",
    "OnlineTrainer",
    "TrainingConfig",
    "vit_parameter_count",
    "vit_training_flops",
    "vit_layer_flops",
    "frontier_node_hours",
    "TABLE_II_PRESETS",
    "laptop_preset",
    "preset_by_input_size",
]
