"""Optimisers for surrogate training.

Adam is the paper's optimiser (its two moment buffers are what drive the
"optimizer states = 2× parameters" memory accounting of Table I); SGD with
momentum is provided for ablations and tests.
"""

from __future__ import annotations

import numpy as np

from repro.surrogate.layers import Parameter

__all__ = ["Adam", "SGD", "clip_gradients"]


def clip_gradients(parameters: list[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm to ``max_norm``; returns the pre-clip norm."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total_sq = 0.0
    for p in parameters:
        total_sq += float(np.sum(p.grad**2))
    norm = float(np.sqrt(total_sq))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in parameters:
            p.grad *= scale
    return norm


class Adam:
    """Adam optimiser (Kingma & Ba 2015) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1.0e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1.0e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError("betas must lie in [0, 1)")
        self.parameters = list(parameters)
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def state_memory_bytes(self) -> int:
        """Bytes held in optimiser state (the 2× of Table I's accounting)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self.step_count += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self.step_count
        bias2 = 1.0 - b2**self.step_count
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay > 0.0:
                p.value *= 1.0 - self.lr * self.weight_decay
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 1.0e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
