"""In-process MPI-like communicator on NumPy buffers.

The paper's EnSF is parallelised with MPI over the ensemble dimension and the
ViT training uses RCCL collectives.  On a single machine we provide
:class:`LocalCommGroup`, a deterministic, dependency-free communicator whose
collectives have exactly the MPI/NCCL semantics (AllReduce, AllGather,
ReduceScatter, Broadcast, Scatter/Gather) but operate on a list of per-rank
NumPy arrays in one process.  The sharding strategies (DDP/ZeRO/FSDP) and the
ensemble-parallel EnSF use it so the *algorithmic* communication patterns of
the paper are genuinely executed and unit-testable; the *cost* of the same
patterns at Frontier scale is provided by
:class:`repro.hpc.collectives.CollectiveModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpc.collectives import CollectiveKind, CollectiveModel

__all__ = ["LocalCommGroup"]


@dataclass
class _TrafficLog:
    """Accumulated communication volume per collective kind (bytes)."""

    volume: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    def record(self, kind: CollectiveKind, nbytes: float) -> None:
        key = kind.value
        self.volume[key] = self.volume.get(key, 0.0) + nbytes
        self.calls[key] = self.calls.get(key, 0) + 1


class LocalCommGroup:
    """A communicator over ``n_ranks`` in-process ranks.

    Every collective takes a list of per-rank arrays (``buffers[rank]``) and
    returns a list of per-rank results, mirroring SPMD semantics.  All
    operations are deterministic and allocation-explicit, which makes the
    collectives easy to verify against NumPy reference reductions.
    """

    def __init__(self, n_ranks: int, cost_model: CollectiveModel | None = None):
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = int(n_ranks)
        self.cost_model = cost_model
        self.traffic = _TrafficLog()

    # ------------------------------------------------------------------ #
    def _check(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        if len(buffers) != self.n_ranks:
            raise ValueError(f"expected {self.n_ranks} per-rank buffers, got {len(buffers)}")
        arrays = [np.asarray(b, dtype=float) for b in buffers]
        shape = arrays[0].shape
        for a in arrays[1:]:
            if a.shape != shape:
                raise ValueError("all per-rank buffers must have the same shape")
        return arrays

    def _record(self, kind: CollectiveKind, nbytes: float) -> None:
        self.traffic.record(kind, nbytes)

    # ------------------------------------------------------------------ #
    def allreduce(self, buffers: list[np.ndarray], op: str = "sum") -> list[np.ndarray]:
        """AllReduce: every rank receives the elementwise reduction."""
        arrays = self._check(buffers)
        stacked = np.stack(arrays)
        if op == "sum":
            result = stacked.sum(axis=0)
        elif op == "mean":
            result = stacked.mean(axis=0)
        elif op == "max":
            result = stacked.max(axis=0)
        elif op == "min":
            result = stacked.min(axis=0)
        else:
            raise ValueError(f"unsupported reduction op {op!r}")
        self._record(CollectiveKind.ALL_REDUCE, arrays[0].nbytes)
        return [result.copy() for _ in range(self.n_ranks)]

    def allgather(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """AllGather: every rank receives the concatenation of all buffers."""
        arrays = self._check(buffers)
        gathered = np.concatenate([a.ravel() for a in arrays])
        self._record(CollectiveKind.ALL_GATHER, arrays[0].nbytes)
        return [gathered.copy() for _ in range(self.n_ranks)]

    def reduce_scatter(self, buffers: list[np.ndarray], op: str = "sum") -> list[np.ndarray]:
        """ReduceScatter: rank ``r`` receives chunk ``r`` of the reduction.

        Buffers are flattened and padded so the chunking is always exact; the
        returned chunks have equal length ``ceil(size / n_ranks)``.
        """
        arrays = self._check(buffers)
        flat = np.stack([a.ravel() for a in arrays])
        if op == "sum":
            reduced = flat.sum(axis=0)
        elif op == "mean":
            reduced = flat.mean(axis=0)
        else:
            raise ValueError(f"unsupported reduction op {op!r}")
        chunk = -(-reduced.size // self.n_ranks)  # ceil division
        padded = np.zeros(chunk * self.n_ranks)
        padded[: reduced.size] = reduced
        self._record(CollectiveKind.REDUCE_SCATTER, arrays[0].nbytes)
        return [padded[r * chunk : (r + 1) * chunk].copy() for r in range(self.n_ranks)]

    def broadcast(self, buffer: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Broadcast the root's buffer to every rank."""
        if not 0 <= root < self.n_ranks:
            raise ValueError("root rank out of range")
        arr = np.asarray(buffer, dtype=float)
        self._record(CollectiveKind.BROADCAST, arr.nbytes)
        return [arr.copy() for _ in range(self.n_ranks)]

    def scatter(self, buffer: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Scatter equal chunks of the root's (flattened, padded) buffer."""
        if not 0 <= root < self.n_ranks:
            raise ValueError("root rank out of range")
        arr = np.asarray(buffer, dtype=float).ravel()
        chunk = -(-arr.size // self.n_ranks)
        padded = np.zeros(chunk * self.n_ranks)
        padded[: arr.size] = arr
        self._record(CollectiveKind.BROADCAST, arr.nbytes / self.n_ranks)
        return [padded[r * chunk : (r + 1) * chunk].copy() for r in range(self.n_ranks)]

    def gather(self, buffers: list[np.ndarray], root: int = 0) -> np.ndarray:
        """Gather per-rank buffers into a single concatenated array at the root."""
        arrays = self._check(buffers)
        self._record(CollectiveKind.ALL_GATHER, arrays[0].nbytes)
        return np.concatenate([a.ravel() for a in arrays])

    # ------------------------------------------------------------------ #
    def estimated_time(self, n_gpus: int | None = None) -> float:
        """Estimated wall-clock time of all recorded traffic at Frontier scale.

        Uses the attached :class:`CollectiveModel`; raises if none was given.
        """
        if self.cost_model is None:
            raise RuntimeError("no CollectiveModel attached to this communicator")
        n = n_gpus or self.n_ranks
        total = 0.0
        for key, volume in self.traffic.volume.items():
            calls = self.traffic.calls[key]
            if calls == 0:
                continue
            mean_message = volume / calls
            total += calls * self.cost_model.time_seconds(CollectiveKind(key), mean_message, n)
        return total
