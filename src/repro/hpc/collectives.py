"""Analytical cost models for the RCCL collectives used by data parallelism.

The paper's Fig. 8 measures the bus bandwidth of AllReduce, AllGather and
ReduceScatter on Frontier as a function of message size and GPU count; those
curves feed directly into the distributed-training analysis (the observed
AllReduce bandwidth drop near a 256 MB message size is what makes the default
200 MB DeepSpeed bucket a poor choice, Fig. 9).

We model each collective with the standard ring-algorithm α–β cost

``time = latency · steps + volume_factor · message / effective_bandwidth``

where the effective bandwidth follows the usual message-size ramp (small
messages are latency-bound) multiplied by an empirical efficiency curve that
reproduces the qualitative features reported in the paper:

* bandwidth grows with message size and saturates;
* AllReduce is markedly better than AllGather/ReduceScatter for mid-size
  (~64 MB) messages at scale, while all three converge for large messages;
* AllReduce shows a dip around 256 MB (protocol/algorithm switch);
* AllGather and ReduceScatter behave almost identically.

The model's constants are assumptions, not measurements; they are stated
here once so every figure that depends on them can reference them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.hpc.topology import FrontierTopology

__all__ = ["CollectiveKind", "CollectiveModel"]


class CollectiveKind(str, Enum):
    """Collective operations that dominate data-parallel training."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class CollectiveModel:
    """α–β model of RCCL collectives on the Frontier topology.

    Parameters
    ----------
    topology:
        System description providing link bandwidths.
    base_latency_us:
        Per-step launch/latency cost in microseconds.
    allreduce_dip_center_mb, allreduce_dip_width_mb, allreduce_dip_depth:
        Parameters of the empirical AllReduce efficiency dip near 256 MB.
    """

    topology: FrontierTopology = FrontierTopology()
    base_latency_us: float = 20.0
    small_message_knee_mb: float = 8.0
    allreduce_midsize_boost: float = 1.6
    allreduce_dip_center_mb: float = 256.0
    allreduce_dip_width_mb: float = 120.0
    allreduce_dip_depth: float = 0.45
    max_link_efficiency: float = 0.85

    # ------------------------------------------------------------------ #
    # volume factors of ring algorithms
    # ------------------------------------------------------------------ #
    @staticmethod
    def volume_factor(kind: CollectiveKind, n_gpus: int) -> float:
        """Bytes moved per rank per message byte for the ring algorithm.

        Ring AllReduce moves ``2 (p − 1)/p`` of the message per rank;
        AllGather / ReduceScatter / Broadcast move ``(p − 1)/p``.
        """
        if n_gpus < 1:
            raise ValueError("n_gpus must be positive")
        if n_gpus == 1:
            return 0.0
        p = float(n_gpus)
        if kind == CollectiveKind.ALL_REDUCE:
            return 2.0 * (p - 1.0) / p
        return (p - 1.0) / p

    @staticmethod
    def ring_steps(kind: CollectiveKind, n_gpus: int) -> int:
        """Number of latency-bearing steps for the collective.

        RCCL switches from pure rings to tree/hierarchical algorithms at
        scale, so the latency term grows logarithmically rather than linearly
        with the GPU count (otherwise 1024-GPU collectives would be latency
        bound for any realistic bucket size).
        """
        if n_gpus <= 1:
            return 0
        log_steps = int(np.ceil(np.log2(n_gpus)))
        if kind == CollectiveKind.ALL_REDUCE:
            return 2 * log_steps
        return log_steps

    # ------------------------------------------------------------------ #
    # empirical efficiency curves
    # ------------------------------------------------------------------ #
    def _efficiency(self, kind: CollectiveKind, message_bytes: float, n_gpus: int) -> float:
        """Fraction of the link bandwidth achieved for this message size."""
        msg_mb = message_bytes / 2.0**20
        # Message-size ramp: latency-bound below the knee, saturating above.
        ramp = msg_mb / (msg_mb + self.small_message_knee_mb)
        eff = self.max_link_efficiency * ramp
        # Mild degradation with scale: larger rings/trees cross more switch
        # hops and suffer more congestion (Fig. 8 shows bandwidth decreasing
        # with GPU count at fixed message size).
        if n_gpus > 8:
            eff /= 1.0 + 0.04 * np.log2(n_gpus / 8.0)

        if kind == CollectiveKind.ALL_REDUCE:
            # Mid-size boost: fused ring/tree AllReduce outperforms the
            # gather-style collectives around tens of MB at scale (Fig. 8).
            scale_factor = min(1.0, np.log2(max(n_gpus, 2)) / 10.0)
            midsize = np.exp(-((np.log2(max(msg_mb, 1e-6)) - np.log2(64.0)) ** 2) / 8.0)
            eff *= 1.0 + (self.allreduce_midsize_boost - 1.0) * midsize * scale_factor
            # Protocol-switch dip around 256 MB.
            dip = self.allreduce_dip_depth * np.exp(
                -((msg_mb - self.allreduce_dip_center_mb) ** 2)
                / (2.0 * self.allreduce_dip_width_mb**2)
            )
            eff *= 1.0 - dip
        return float(np.clip(eff, 1.0e-3, 1.0))

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def time_seconds(self, kind: CollectiveKind, message_bytes: float, n_gpus: int) -> float:
        """Wall-clock time of one collective on ``message_bytes`` across ``n_gpus``."""
        if message_bytes < 0:
            raise ValueError("message_bytes must be non-negative")
        if n_gpus <= 1 or message_bytes == 0:
            return 0.0
        link_gbs = self.topology.link_bandwidth_gbs(n_gpus)
        eff = self._efficiency(kind, message_bytes, n_gpus)
        bandwidth = link_gbs * 1.0e9 * eff
        volume = self.volume_factor(kind, n_gpus) * message_bytes
        latency = self.ring_steps(kind, n_gpus) * self.base_latency_us * 1.0e-6
        return latency + volume / bandwidth

    def bus_bandwidth_gbs(self, kind: CollectiveKind, message_bytes: float, n_gpus: int) -> float:
        """NCCL-tests style *bus bandwidth* in GB/s (what Fig. 8 plots).

        Bus bandwidth normalises the measured algorithm bandwidth by the
        volume factor so results are comparable across collectives:
        ``busbw = (message / time) · volume_factor``.
        """
        t = self.time_seconds(kind, message_bytes, n_gpus)
        if t == 0.0:
            return 0.0
        algbw = message_bytes / t
        return algbw * self.volume_factor(kind, n_gpus) / 1.0e9

    def sweep(
        self,
        kind: CollectiveKind,
        message_sizes_bytes: np.ndarray,
        n_gpus: int,
    ) -> np.ndarray:
        """Bus bandwidth for an array of message sizes (Fig. 8 series)."""
        return np.array(
            [self.bus_bandwidth_gbs(kind, float(m), n_gpus) for m in np.asarray(message_sizes_bytes)]
        )
