"""Distributed-training step simulator for the SQG-ViT on Frontier.

Combines the GEMM efficiency model (compute), the collective cost model
(communication) and a simple parallel-filesystem model (IO) into a per-step
wall-clock estimate for a given ViT architecture, GPU count and distribution
strategy.  This is the engine behind the reproduction of:

* Fig. 7 — runtime percentage of computation / communication / IO at 1024
  GPUs for the three Table II model sizes;
* Fig. 9 — strong-scaling efficiency of DDP, DeepSpeed ZeRO stage 1/2 and
  FSDP full/grad_op up to 1024 GPUs, including the bucket-size effect.

Modelling assumptions (stated once, relied on by the benchmarks):

* the per-GPU micro-batch is fixed by activation memory (larger inputs →
  fewer samples per GCD), so per-GPU compute is constant with GPU count while
  the exposed communication grows — the reason scaling efficiency decays;
* communication marked ``overlappable`` can hide behind backward-pass
  computation, up to a cap, and only when there is more than one bucket in
  flight (very large buckets reduce the overlap opportunity, the trade-off
  the paper describes for the 500 MB bucket tuning);
* IO reads one input field per sample per step from a shared filesystem with
  a fixed aggregate bandwidth, so the IO share grows mildly with input size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpc.collectives import CollectiveModel
from repro.hpc.ddp import CommEvent, DataParallel
from repro.hpc.gemm import GEMMPerformanceModel, vit_achieved_tflops
from repro.hpc.memory import TrainingMemoryModel
from repro.hpc.topology import FrontierTopology
from repro.surrogate.flops import vit_forward_flops, vit_parameter_count
from repro.surrogate.vit import ViTConfig

__all__ = ["TrainingRunConfig", "StepBreakdown", "DistributedTrainingSimulator"]


@dataclass(frozen=True)
class TrainingRunConfig:
    """One distributed-training configuration to be simulated.

    ``micro_batch`` is the per-GPU batch size.  When ``None`` it is chosen
    automatically: the largest batch whose activation footprint
    (``tokens × depth × embed_dim``) stays within a fixed budget, capped at
    8.  For the Table II models this gives 8 samples per GCD for the 64² and
    128² inputs and 1 sample for the 256² input — mirroring how activation
    memory limits the per-GCD batch on Frontier.
    """

    vit: ViTConfig
    n_gpus: int
    micro_batch: int | None = None
    precision_bytes: float = 2.0
    backward_flops_factor: float = 2.0
    max_overlap_fraction: float = 0.7
    io_bandwidth_gbs: float = 2.0
    io_latency_s: float = 0.01

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be positive")
        if self.micro_batch is not None and self.micro_batch < 1:
            raise ValueError("micro_batch must be positive")

    #: Activation-memory budget (in token·layer·feature units) behind the
    #: automatic micro-batch choice; roughly one Table II 256² sample.
    ACTIVATION_BUDGET = 4.1e8

    @property
    def per_gpu_batch(self) -> int:
        """Per-GPU micro-batch (auto-selected from activation memory if unset)."""
        if self.micro_batch is not None:
            return int(self.micro_batch)
        per_sample = self.vit.n_patches * self.vit.depth * self.vit.embed_dim
        return int(np.clip(self.ACTIVATION_BUDGET // per_sample, 1, 8))

    @property
    def global_batch(self) -> int:
        """Global batch size implied by the micro-batch and GPU count."""
        return self.per_gpu_batch * self.n_gpus


@dataclass(frozen=True)
class StepBreakdown:
    """Per-step wall-clock decomposition (seconds)."""

    compute: float
    exposed_comm: float
    total_comm: float
    io: float

    @property
    def total(self) -> float:
        return self.compute + self.exposed_comm + self.io

    def fractions(self) -> dict[str, float]:
        """Fractions of the step spent in compute / communication / IO (Fig. 7)."""
        total = self.total
        if total == 0.0:
            return {"compute": 0.0, "communication": 0.0, "io": 0.0}
        return {
            "compute": self.compute / total,
            "communication": self.exposed_comm / total,
            "io": self.io / total,
        }


class DistributedTrainingSimulator:
    """Estimate per-step time of distributed SQG-ViT training."""

    def __init__(
        self,
        topology: FrontierTopology | None = None,
        collectives: CollectiveModel | None = None,
        gemm: GEMMPerformanceModel | None = None,
        memory: TrainingMemoryModel | None = None,
    ):
        self.topology = topology or FrontierTopology()
        self.collectives = collectives or CollectiveModel(topology=self.topology)
        self.gemm = gemm or GEMMPerformanceModel()
        self.memory = memory or TrainingMemoryModel()

    # ------------------------------------------------------------------ #
    def compute_time(self, run: TrainingRunConfig) -> float:
        """Forward+backward compute time per step on one GPU."""
        batch = run.per_gpu_batch
        flops = vit_forward_flops(run.vit, batch_size=batch) * (1.0 + run.backward_flops_factor)
        achieved = vit_achieved_tflops(run.vit, batch_size=batch, model=self.gemm) * 1.0e12
        return flops / achieved

    def comm_times(self, run: TrainingRunConfig, strategy) -> tuple[float, float]:
        """(total, overlappable) communication time per step for ``strategy``."""
        param_bytes = vit_parameter_count(run.vit) * run.precision_bytes
        events: list[CommEvent] = strategy.comm_events(param_bytes, run.n_gpus)
        total = 0.0
        overlappable = 0.0
        for event in events:
            t = event.count * self.collectives.time_seconds(
                event.kind, event.message_bytes, run.n_gpus
            )
            total += t
            if event.overlappable:
                overlappable += t
        if events:
            # Overlap requires at least two messages in flight; a single huge
            # bucket cannot be hidden behind computation.
            n_overlappable = sum(1 for e in events if e.overlappable)
            if n_overlappable <= 1:
                overlappable *= 0.25
        return total, overlappable

    def io_time(self, run: TrainingRunConfig) -> float:
        """Input-pipeline time per step for one GPU's micro-batch."""
        batch = run.per_gpu_batch
        sample_bytes = run.vit.image_size**2 * run.vit.channels * 4.0
        return run.io_latency_s + batch * sample_bytes / (run.io_bandwidth_gbs * 1.0e9)

    # ------------------------------------------------------------------ #
    def step_breakdown(self, run: TrainingRunConfig, strategy=None) -> StepBreakdown:
        """Per-step decomposition into compute, exposed communication and IO."""
        strategy = strategy or DataParallel()
        compute = self.compute_time(run)
        total_comm, overlappable = self.comm_times(run, strategy)
        hidden = min(overlappable * run.max_overlap_fraction, compute * 0.9)
        exposed = total_comm - hidden
        io = self.io_time(run)
        return StepBreakdown(compute=compute, exposed_comm=exposed, total_comm=total_comm, io=io)

    def step_time(self, run: TrainingRunConfig, strategy=None) -> float:
        """Total wall-clock time of one optimisation step."""
        return self.step_breakdown(run, strategy).total

    def throughput(self, run: TrainingRunConfig, strategy=None) -> float:
        """Global training throughput in samples per second."""
        return run.global_batch / self.step_time(run, strategy)

    def memory_per_gpu_gb(self, run: TrainingRunConfig, strategy) -> float:
        """Per-GPU memory footprint of the configuration under ``strategy``."""
        params = vit_parameter_count(run.vit)
        batch = run.per_gpu_batch
        return (
            self.memory.per_gpu_bytes(
                params,
                strategy.strategy,
                run.n_gpus,
                n_tokens=batch * run.vit.n_patches,
                depth=run.vit.depth,
                embed_dim=run.vit.embed_dim,
            )
            / 2.0**30
        )

    def scaling_efficiency(
        self,
        vit: ViTConfig,
        gpu_counts: list[int],
        strategy=None,
        micro_batch: int | None = None,
    ) -> dict[int, float]:
        """Scaling efficiency relative to the smallest GPU count.

        The per-GPU workload is fixed (the paper plots throughput vs GPU
        count), so ``efficiency(n) = (throughput(n) / throughput(n0)) / (n /
        n0) = step_time(n0) / step_time(n)``; losses come entirely from
        exposed communication.
        """
        if not gpu_counts:
            raise ValueError("gpu_counts must be non-empty")
        gpu_counts = sorted(int(g) for g in gpu_counts)
        base_n = gpu_counts[0]
        base_time = self.step_time(
            TrainingRunConfig(vit=vit, n_gpus=base_n, micro_batch=micro_batch), strategy
        )
        out: dict[int, float] = {}
        for n in gpu_counts:
            time_n = self.step_time(
                TrainingRunConfig(vit=vit, n_gpus=n, micro_batch=micro_batch), strategy
            )
            out[n] = base_time / time_n
        return out
