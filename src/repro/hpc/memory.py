"""Training-memory accounting and the Table I sharding taxonomy.

The paper notes that ViT training needs roughly 12× the model parameter size
in memory: weights (1×), Adam optimizer states (2×), gradients (1×) and
intermediate/communication buffers such as FSDP units (2×), with the factor
of two from mixed-precision master copies.  Table I maps the FSDP sharding
strategies onto the DeepSpeed ZeRO stages according to *which* of those
components are partitioned across data-parallel ranks:

===================  =================  ==========================
partitioned          FSDP               ZeRO
===================  =================  ==========================
optimizer            (n/a)              stage 1
optimizer+gradient   shard_grad_op      stage 2
opt+grad+weights     full_shard         stage 3
hierarchical         hybrid_shard       (n/a)
===================  =================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["ShardingStrategy", "STRATEGY_TABLE", "TrainingMemoryModel"]


class ShardingStrategy(str, Enum):
    """Distributed-training memory partitioning strategies (Table I columns)."""

    DDP = "ddp"                      # no sharding (plain data parallelism)
    ZERO_1 = "zero_stage1"           # optimizer states sharded
    ZERO_2 = "zero_stage2"           # optimizer + gradients sharded
    ZERO_3 = "zero_stage3"           # optimizer + gradients + weights sharded
    FSDP_GRAD_OP = "fsdp_shard_grad_op"
    FSDP_FULL = "fsdp_full_shard"
    FSDP_HYBRID = "fsdp_hybrid_shard"


#: Table I: which memory components each strategy partitions, and the
#: FSDP ↔ ZeRO correspondence.
STRATEGY_TABLE: dict[ShardingStrategy, dict] = {
    ShardingStrategy.DDP: {
        "shards": frozenset(),
        "fsdp_equivalent": None,
        "zero_equivalent": None,
    },
    ShardingStrategy.ZERO_1: {
        "shards": frozenset({"optimizer"}),
        "fsdp_equivalent": None,
        "zero_equivalent": ShardingStrategy.ZERO_1,
    },
    ShardingStrategy.ZERO_2: {
        "shards": frozenset({"optimizer", "gradient"}),
        "fsdp_equivalent": ShardingStrategy.FSDP_GRAD_OP,
        "zero_equivalent": ShardingStrategy.ZERO_2,
    },
    ShardingStrategy.ZERO_3: {
        "shards": frozenset({"optimizer", "gradient", "weight"}),
        "fsdp_equivalent": ShardingStrategy.FSDP_FULL,
        "zero_equivalent": ShardingStrategy.ZERO_3,
    },
    ShardingStrategy.FSDP_GRAD_OP: {
        "shards": frozenset({"optimizer", "gradient"}),
        "fsdp_equivalent": ShardingStrategy.FSDP_GRAD_OP,
        "zero_equivalent": ShardingStrategy.ZERO_2,
    },
    ShardingStrategy.FSDP_FULL: {
        "shards": frozenset({"optimizer", "gradient", "weight"}),
        "fsdp_equivalent": ShardingStrategy.FSDP_FULL,
        "zero_equivalent": ShardingStrategy.ZERO_3,
    },
    ShardingStrategy.FSDP_HYBRID: {
        "shards": frozenset({"optimizer", "gradient", "weight"}),
        "fsdp_equivalent": ShardingStrategy.FSDP_HYBRID,
        "zero_equivalent": None,
    },
}


@dataclass(frozen=True)
class TrainingMemoryModel:
    """Per-GPU memory footprint of ViT training under a sharding strategy.

    Component multipliers (in units of the parameter count × bytes/param)
    follow the paper's 12× accounting for mixed-precision Adam training:
    weights 1×, optimizer 2× (two fp32 Adam moments at twice the half-
    precision width plus master weights folded in), gradients 1×, buffers 2×.
    """

    bytes_per_param: float = 2.0       # bf16 weights/grads
    weight_multiplier: float = 1.0
    optimizer_multiplier: float = 6.0  # fp32 master + two fp32 moments
    gradient_multiplier: float = 1.0
    buffer_multiplier: float = 4.0     # FSDP units / communication buffers
    activation_bytes_per_token_per_layer: float = 64.0

    def component_bytes(self, n_parameters: float) -> dict[str, float]:
        """Unsharded sizes of each memory component in bytes."""
        base = n_parameters * self.bytes_per_param
        return {
            "weight": self.weight_multiplier * base,
            "optimizer": self.optimizer_multiplier * base,
            "gradient": self.gradient_multiplier * base,
            "buffer": self.buffer_multiplier * base,
        }

    def total_multiplier(self) -> float:
        """Total memory / (params · bytes_per_param); ≈ 12 per the paper."""
        return (
            self.weight_multiplier
            + self.optimizer_multiplier
            + self.gradient_multiplier
            + self.buffer_multiplier
        )

    def activation_bytes(self, n_tokens: int, depth: int, embed_dim: int) -> float:
        """Rough activation footprint for one micro-batch."""
        return float(n_tokens) * depth * embed_dim * self.activation_bytes_per_token_per_layer / 16.0

    def per_gpu_bytes(
        self,
        n_parameters: float,
        strategy: ShardingStrategy,
        n_gpus: int,
        n_tokens: int = 0,
        depth: int = 0,
        embed_dim: int = 0,
        hybrid_group_size: int = 8,
    ) -> float:
        """Per-GPU memory under ``strategy`` with ``n_gpus`` data-parallel ranks."""
        if n_gpus < 1:
            raise ValueError("n_gpus must be positive")
        shards = STRATEGY_TABLE[strategy]["shards"]
        components = self.component_bytes(n_parameters)
        if strategy == ShardingStrategy.FSDP_HYBRID:
            shard_degree = min(n_gpus, hybrid_group_size)
        else:
            shard_degree = n_gpus

        total = 0.0
        for name, size in components.items():
            if name == "buffer":
                # Buffers shrink with weight sharding (smaller FSDP units).
                total += size / (shard_degree if "weight" in shards else 1)
            elif name in shards:
                total += size / shard_degree
            else:
                total += size
        if n_tokens and depth and embed_dim:
            total += self.activation_bytes(n_tokens, depth, embed_dim)
        return total

    def fits_on_gpu(
        self, n_parameters: float, strategy: ShardingStrategy, n_gpus: int, gpu_memory_gb: float = 64.0
    ) -> bool:
        """Whether the per-GPU footprint fits in the GCD's 64 GB HBM."""
        return self.per_gpu_bytes(n_parameters, strategy, n_gpus) <= gpu_memory_gb * 2.0**30
