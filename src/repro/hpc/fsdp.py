"""PyTorch-FSDP style fully sharded data parallelism.

FSDP wraps groups of layers into *units* whose flattened parameters are
sharded across ranks.  Before a unit's forward (and, for ``full_shard``, its
backward) the shards are all-gathered; after the backward the gradients are
reduce-scattered back to their owners.  Table I maps the FSDP strategies to
ZeRO stages; the paper observes that FSDP's extra AllGather traffic (~50 %
more volume than plain data parallelism) is only partially hidden by
computation, which is why tuned DeepSpeed-ZeRO outperforms FSDP for the
SQG-ViT on Frontier (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.hpc.collectives import CollectiveKind
from repro.hpc.comm import LocalCommGroup
from repro.hpc.ddp import CommEvent, bucketize
from repro.hpc.memory import ShardingStrategy

__all__ = ["FSDPParallel"]

_NAME_TO_STRATEGY = {
    "shard_grad_op": ShardingStrategy.FSDP_GRAD_OP,
    "full_shard": ShardingStrategy.FSDP_FULL,
    "hybrid_shard": ShardingStrategy.FSDP_HYBRID,
}


class FSDPParallel:
    """FSDP communication/sharding bookkeeping for the three Table I strategies."""

    def __init__(
        self,
        sharding: str = "full_shard",
        unit_bytes: float = 256 * 2.0**20,
        hybrid_group_size: int = 8,
    ):
        if sharding not in _NAME_TO_STRATEGY:
            raise ValueError(f"unknown FSDP sharding strategy {sharding!r}")
        if unit_bytes <= 0:
            raise ValueError("unit_bytes must be positive")
        self.sharding = sharding
        self.unit_bytes = float(unit_bytes)
        self.hybrid_group_size = int(hybrid_group_size)

    @property
    def name(self) -> str:
        return f"FSDP-{self.sharding}"

    @property
    def strategy(self) -> ShardingStrategy:
        return _NAME_TO_STRATEGY[self.sharding]

    # ----------------------------- cost model ------------------------- #
    def comm_events(self, param_bytes: float, n_gpus: int) -> list[CommEvent]:
        """Collectives per optimisation step, one set per FSDP unit.

        ``full_shard``: parameter AllGather in forward and again in backward
        (parameters are freed between passes) plus gradient ReduceScatter —
        ≈1.5× the volume of an AllReduce.  ``shard_grad_op`` keeps full
        parameters resident, so only the backward AllGather is skipped.
        ``hybrid_shard`` shards within a node and replicates across nodes, so
        the gather traffic stays on fast intra-node links and only the
        gradient reduction crosses the network.
        """
        if n_gpus <= 1:
            return []
        group = n_gpus
        if self.sharding == "hybrid_shard":
            group = min(n_gpus, self.hybrid_group_size)
        units = bucketize(param_bytes, self.unit_bytes)
        events: list[CommEvent] = []
        for u in units:
            events.append(CommEvent(CollectiveKind.ALL_GATHER, u, overlappable=True))       # forward gather
            if self.sharding == "full_shard":
                events.append(CommEvent(CollectiveKind.ALL_GATHER, u, overlappable=True))   # backward re-gather
            events.append(CommEvent(CollectiveKind.REDUCE_SCATTER, u, overlappable=True))   # grad scatter
        if self.sharding == "hybrid_shard" and n_gpus > group:
            # Cross-node gradient AllReduce over the replicated dimension.
            for u in units:
                events.append(CommEvent(CollectiveKind.ALL_REDUCE, u / group, overlappable=True))
        return events

    # --------------------------- executable path ----------------------- #
    def shard_unit(self, flat_params: np.ndarray, n_ranks: int) -> list[np.ndarray]:
        """Shard one FSDP unit's flattened parameters across ranks (padded)."""
        flat_params = np.asarray(flat_params, dtype=float).ravel()
        chunk = -(-flat_params.size // n_ranks)
        padded = np.zeros(chunk * n_ranks)
        padded[: flat_params.size] = flat_params
        return [padded[r * chunk : (r + 1) * chunk].copy() for r in range(n_ranks)]

    def gather_unit(self, comm: LocalCommGroup, shards: list[np.ndarray], original_size: int) -> list[np.ndarray]:
        """AllGather a unit's shards so each rank sees the full parameters."""
        gathered = comm.allgather(shards)
        return [g[:original_size].copy() for g in gathered]

    def reduce_scatter_grads(
        self, comm: LocalCommGroup, per_rank_grads: list[np.ndarray]
    ) -> list[np.ndarray]:
        """ReduceScatter unit gradients back to their owning shards (mean)."""
        return comm.reduce_scatter(per_rank_grads, op="mean")

    def train_step_identity_check(
        self,
        comm: LocalCommGroup,
        flat_params: np.ndarray,
        per_rank_grads: list[np.ndarray],
        learning_rate: float = 0.1,
    ) -> np.ndarray:
        """Full shard → gather → update → verify round trip for one unit.

        Returns the updated full parameter vector (identical on all ranks);
        tests compare it to the serial SGD update.
        """
        flat_params = np.asarray(flat_params, dtype=float).ravel()
        size = flat_params.size
        shards = self.shard_unit(flat_params, comm.n_ranks)
        grad_shards = self.reduce_scatter_grads(comm, per_rank_grads)
        updated = [
            shard - learning_rate * grad_shards[rank][: shard.size]
            for rank, shard in enumerate(shards)
        ]
        full = self.gather_unit(comm, updated, size)
        return full[0]
