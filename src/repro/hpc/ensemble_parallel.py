"""Ensemble-parallel execution of forecasts and analyses.

The paper parallelises the EnSF over the ensemble dimension because it
"incurs minimal communication overhead" (§III-A3) and the LETKF over its
independent local column analyses.  This module provides both decompositions
on a workstation: work-units (member slices for forecasts/EnSF, column
blocks for the LETKF solve stage via :meth:`EnsembleExecutor.map_blocks`)
are processed by a persistent pool of worker processes (or serially when
``n_workers == 1``) and the results are gathered in order — the local
equivalent of the per-rank work plus final MPI gather of the paper's
implementation.

Reproducibility contract: every parallel path must be **worker-count
invariant** — the gathered result is bit-identical for any ``n_workers``
(including the serial in-process fallback).  For the EnSF this is achieved
by spawning one seed per *member* from a single root
:class:`numpy.random.SeedSequence` and drawing member-wise streams
(:class:`~repro.utils.random.MemberStreams`); for the LETKF by decomposing
the columns into fixed-size shards that do not depend on the worker count.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.hpc.shm import HAVE_SHM, SharedPayloadArena, count_handles, resolve_payloads
from repro.utils.faults import FaultInjected, FaultLog, FaultPlan

__all__ = [
    "ensemble_slices",
    "EnsembleExecutor",
    "ExecutorLease",
    "LeaseSlotScheduler",
    "ShardRetryError",
]

# Failures worth recomputing the shard for: a dead worker pool, a shard that
# blew its deadline, or an injected fault.  Anything else (a ValueError from
# the job function, say) is a real bug and propagates immediately.
_RETRYABLE = (BrokenProcessPool, TimeoutError, FaultInjected)


class ShardRetryError(RuntimeError):
    """A shard kept failing after exhausting the executor's retry budget."""


def _guarded_call(fn, job, fault, parent_pid: int):
    """Worker entry point: optionally trigger an injected fault, then run ``fn``.

    ``fault`` is consumed *before* the computation, so a retried shard (the
    plan only fires each event once) recomputes exactly ``fn(job)`` — which
    is what makes recovery bit-identical for deterministic shards.

    Any :class:`~repro.hpc.shm.SharedArrayHandle` inside the work-unit is
    materialized here (copied out of its shared segment into a private
    array) before ``fn`` ever sees the job, so worker functions are
    transport-agnostic: they receive exactly the arrays a pickled payload
    would have delivered, whichever path shipped them.
    """
    if fault is not None:
        if fault.kind == "worker-crash":
            if os.getpid() != parent_pid:
                os._exit(3)  # hard kill: the pool sees a vanished worker
            raise FaultInjected("injected worker crash (serial in-process shard)")
        elif fault.kind == "task-hang":
            time.sleep(float(fault.payload.get("hang_s", 0.25)))
    return fn(resolve_payloads(job))


def ensemble_slices(n_members: int, n_workers: int) -> list[slice]:
    """Split ``n_members`` into ``n_workers`` contiguous, near-equal slices.

    The first ``n_members % n_workers`` slices get one extra member, so the
    imbalance is at most one — the same block decomposition an MPI rank
    layout would use.
    """
    if n_members < 1 or n_workers < 1:
        raise ValueError("n_members and n_workers must be positive")
    n_workers = min(n_workers, n_members)
    base = n_members // n_workers
    remainder = n_members % n_workers
    slices = []
    start = 0
    for w in range(n_workers):
        count = base + (1 if w < remainder else 0)
        slices.append(slice(start, start + count))
        start += count
    return slices


class LeaseSlotScheduler:
    """Fair-share arbitration of one lease's pool slots across its gathers.

    A lease's quota (``max_workers``) used to be enforced per *gather*:
    each concurrent ``_gather`` independently windowed its submissions to
    the quota, so a job running two gathers at once (e.g. a forecast map
    overlapping an analysis map) competed for its own slots first-come,
    first-served — one long gather could hold every slot until it drained.
    This scheduler is shared by all of a lease's gathers and round-robins
    the quota instead:

    - each gather registers on entry and releases one slot per completed
      shard;
    - a gather may take a slot while fewer than
      ``ceil(capacity / n_demanding)`` are in its hands (its **fair
      share** among the gathers currently asking for slots), so a
      newly-arrived sibling reaches its share as the incumbent's shards
      complete — no preemption, just refusal to re-acquire beyond the
      share while someone else is hungry;
    - a gather with nothing in flight blocks for a slot, and blocked
      gathers hold **priority**: non-blocking re-acquires defer to the
      FIFO of waiters, so an incumbent that merely got to the freed slot
      first (its thread is already running; the waiter still has to wake)
      cannot win every race and starve the sibling anyway;
    - with no hungry sibling the whole remaining capacity is grantable, so
      a lone gather is exactly as fast as under the old windowing.

    ``capacity`` is live-retargetable (the experiment service's fair-share
    re-arbitration assigns ``lease.max_workers``); ``None`` means
    unconstrained.  The scheduler only ever caps *concurrency* — job
    decompositions are fixed before submission — so scheduling cannot
    change results, only occupancy.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and int(capacity) < 1:
            raise ValueError("capacity must be positive (or None)")
        self._capacity = None if capacity is None else int(capacity)
        self._cond = threading.Condition()
        self._held: dict[int, int] = {}  # gather token -> slots held
        self._want: dict[int, bool] = {}  # gather token -> has queued work
        self._waiters: list[int] = []  # FIFO of gathers blocked in acquire()
        self._next_token = 0

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @capacity.setter
    def capacity(self, value: int | None) -> None:
        if value is not None and int(value) < 1:
            raise ValueError("capacity must be positive (or None)")
        with self._cond:
            self._capacity = None if value is None else int(value)
            self._cond.notify_all()

    def register(self) -> int:
        """Enter a gather; returns its token for acquire/release calls."""
        with self._cond:
            token = self._next_token
            self._next_token += 1
            self._held[token] = 0
            self._want[token] = True
            return token

    def unregister(self, token: int) -> None:
        """Leave a gather, releasing every slot it still holds."""
        with self._cond:
            self._held.pop(token, None)
            self._want.pop(token, None)
            self._cond.notify_all()

    def set_demand(self, token: int, wants_more: bool) -> None:
        """Record whether ``token`` still has queued shards (drives shares)."""
        with self._cond:
            if token in self._want and self._want[token] != wants_more:
                self._want[token] = bool(wants_more)
                self._cond.notify_all()

    def _may_take(self, token: int) -> bool:
        cap = self._capacity
        if cap is None:
            return True
        if sum(self._held.values()) >= cap:
            return False
        hungry_others = sum(
            1 for t, w in self._want.items() if w and t != token
        )
        if not hungry_others:
            return True
        share = -(-cap // (hungry_others + 1))  # ceil: remainder slots stay usable
        return self._held[token] < share

    def try_acquire(self, token: int) -> bool:
        """Take one slot if fair-share allows it right now (non-blocking).

        Defers unconditionally to blocked waiters: a gather that already
        has shards in flight must not outrace a starved sibling to a freed
        slot just because its thread happened to be scheduled first.
        """
        with self._cond:
            if self._waiters or not self._may_take(token):
                return False
            self._held[token] += 1
            return True

    def acquire(self, token: int, timeout: float | None = None) -> bool:
        """Block (up to ``timeout``) for one slot; the gather's progress path.

        Only called when a gather has nothing in flight — it must hold at
        least one slot to make progress, and its fair share is always
        ``>= 1``, so it is granted as soon as siblings' completions free
        capacity.  Waiters are served in FIFO order.
        """
        with self._cond:
            self._waiters.append(token)
            try:
                granted = self._cond.wait_for(
                    lambda: self._waiters[0] == token and self._may_take(token),
                    timeout=timeout,
                )
                if granted:
                    self._held[token] += 1
                return granted
            finally:
                self._waiters.remove(token)
                self._cond.notify_all()  # the next waiter is now at the head

    def release(self, token: int) -> None:
        """Give back one slot (one per completed shard)."""
        with self._cond:
            if token in self._held and self._held[token] > 0:
                self._held[token] -= 1
                self._cond.notify_all()


def _forecast_chunk(args):
    """Worker entry point: propagate a chunk of members through the model."""
    model, chunk, n_steps = args
    return model.forecast(chunk, n_steps=n_steps)


def _ensf_chunk(args):
    """Worker entry point: draw a rank's analysis members with EnSF."""
    filter_, forecast_ensemble, observation, operator, member_seeds = args
    return filter_.analyze_members(
        forecast_ensemble, observation, operator, member_seeds=member_seeds
    )


class EnsembleExecutor:
    """Map ensemble-member work over worker processes.

    The worker pool is created lazily and **reused across calls** (and hence
    across OSSE cycles): process start-up plus re-importing numpy costs far
    more than a cycle's worth of forecast work for small ensembles, so a
    fresh pool per cycle would swamp the parallel speedup.  Models that carry
    forecast workspaces (e.g. the fused SQG engine) drop them when pickled to
    workers and rebuild them there on first use, so shipping a model per
    chunk stays cheap.

    Parameters
    ----------
    n_workers:
        Number of worker processes; defaults to the CPU count (capped at 8 to
        stay friendly on shared machines).  ``1`` disables multiprocessing
        and runs serially in-process, which is also the fallback whenever the
        work is too small to amortise process start-up.
    min_members_per_worker:
        Below this many members per worker the executor runs serially.
    reuse_pool:
        Keep the worker pool alive between calls (default).  ``False``
        restores the tear-down-per-call behaviour.  Use :meth:`close` (or the
        context-manager form) to release workers deterministically.
    max_retries:
        How many times a failed shard batch is recomputed before
        :class:`ShardRetryError`.  Only *infrastructure* failures are
        retried (dead pool, blown deadline, injected fault) — exceptions
        raised by the job function itself always propagate.
    retry_backoff_s:
        Base of the exponential backoff between retry attempts:
        ``retry_backoff_s * 2**(attempt-1) * uniform(0.5, 1.5)`` seconds.
        The jitter factor decorrelates the retry storms of co-scheduled
        jobs sharing one machine (without it, jobs that crashed together —
        e.g. on a pool death — retry in lockstep and collide again).  It is
        drawn from a **dedicated** backoff rng private to this executor:
        no experiment rng stream (member streams, observation noise,
        seed-sequence factories) is ever touched, so results remain
        bit-identical regardless of how many retries were jittered.
    backoff_seed:
        Optional seed for the dedicated backoff rng (default: fresh OS
        entropy).  Only timing is affected — results never depend on it.
    task_deadline_s:
        Wall-clock budget for one gather attempt on the pool.  Shards still
        running when it expires are treated as hung: the pool is terminated,
        rebuilt, and the shards recomputed (serial in-process shards cannot
        be interrupted, so the deadline only applies to pool runs).
    fault_plan / fault_log:
        Deterministic fault injection (see :mod:`repro.utils.faults`).  The
        plan defaults to ``FaultPlan.from_env()`` (the ``REPRO_FAULT_PLAN``
        variable, usually unset); every recovery the executor performs is
        appended to the log.
    shm_payloads / shm_min_bytes:
        Ship large read-only arrays inside work-units through
        :mod:`multiprocessing.shared_memory` segments instead of pickling
        them per shard (default on; arrays below ``shm_min_bytes`` — 256 KiB
        — keep riding the pickle, where the pipe is already cheaper than a
        segment round-trip).  Workers copy the bytes out before computing,
        so results are bit-identical to pickle transport by construction;
        serial in-process gathers never touch shared memory.
    payload_stats:
        When true, each gather records a transport breakdown (pickled bytes
        per shipped work-unit vs. the raw equivalent, shared-segment bytes)
        in :attr:`last_payload_stats` — benchmark instrumentation, off by
        default because measuring the raw pickle costs the copy it avoids.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        min_members_per_worker: int = 4,
        reuse_pool: bool = True,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        task_deadline_s: float | None = None,
        fault_plan: FaultPlan | None = None,
        fault_log: FaultLog | None = None,
        backoff_seed: int | None = None,
        shm_payloads: bool = True,
        shm_min_bytes: int = 1 << 18,
        payload_stats: bool = False,
    ):
        if n_workers is None:
            n_workers = min(8, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.n_workers = int(n_workers)
        self.min_members_per_worker = int(min_members_per_worker)
        self.reuse_pool = bool(reuse_pool)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.task_deadline_s = None if task_deadline_s is None else float(task_deadline_s)
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.shm_payloads = bool(shm_payloads) and HAVE_SHM
        self.shm_min_bytes = int(shm_min_bytes)
        self.payload_stats = bool(payload_stats)
        self.last_payload_stats: dict | None = None
        # Dedicated, non-experiment rng for backoff jitter (see class doc).
        self._backoff_rng = np.random.default_rng(backoff_seed)
        self._backoff_lock = threading.Lock()
        # Pool management must be serialized: with an experiment service the
        # same pool is shared by many concurrent jobs, and an unlocked
        # rebuild racing a concurrent acquire would leak (or double-kill)
        # worker processes.  Submission/gather stay lock-free — only
        # acquire/discard/close take the lock.
        self._pool_lock = threading.RLock()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        # Live per-gather shm arenas (released in each gather's finally; this
        # set is the close()-time backstop) and open-lease bookkeeping the
        # experiment service audits to prove jobs release their leases.
        self._arena_lock = threading.Lock()
        self._arenas: set[SharedPayloadArena] = set()
        self._active_leases = 0

    # ------------------------------------------------------------------ #
    def _effective_workers(self, n_members: int) -> int:
        by_size = max(1, n_members // self.min_members_per_worker)
        return max(1, min(self.n_workers, by_size))

    def _faults_for(self, pending: list[int], fault_plan: FaultPlan | None) -> dict:
        """Injected faults for this gather attempt, keyed by job index.

        One ``"executor"`` site visit per attempt — the counter advances
        identically for serial and pool gathers, so a fault plan hits the
        same logical shard batch under any worker layout.
        """
        if fault_plan is None:
            return {}
        faults = {}
        for event in fault_plan.visit("executor"):
            if event.kind in ("worker-crash", "task-hang"):
                target = pending[int(event.payload.get("job", 0)) % len(pending)]
                faults[target] = event
        return faults

    def _acquire_pool(self, workers: int) -> ProcessPoolExecutor:
        if not self.reuse_pool:
            return ProcessPoolExecutor(max_workers=workers)
        with self._pool_lock:
            if self._pool is None or self._pool_workers < workers:
                self._close_pool()
                self._pool = ProcessPoolExecutor(max_workers=workers)
                self._pool_workers = workers
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor, hung: bool) -> None:
        """Drop a broken or hung pool without ever blocking on its workers."""
        with self._pool_lock:
            if pool is self._pool:
                self._pool = None
                self._pool_workers = 0
        if hung:
            # shutdown(wait=False) would leave hung workers running (and
            # clears the pool's process table); kill them first so they
            # cannot hold the machine (or pytest) hostage.
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass  # pool management threads may already be dead

    def _attempt_serial(self, fn, jobs, results, pending, faults):
        failed, error = [], None
        for idx in pending:
            try:
                results[idx] = _guarded_call(fn, jobs[idx], faults.get(idx), os.getpid())
            except _RETRYABLE as exc:
                failed.append(idx)
                error = exc
        return failed, error

    def _attempt_pool(
        self, fn, jobs, results, pending, faults, workers, fault_log,
        max_slots=None, on_success=None,
    ):
        """One pool attempt over ``pending``, in-flight capped by ``max_slots``.

        Submission is slot-arbitrated: a shard is only submitted after the
        gather takes a slot from its :class:`LeaseSlotScheduler` (and one is
        given back per completed shard), so at most the lease's quota of
        futures exist at any instant no matter how many of the lease's
        gathers run concurrently — merely capping the submit batch would
        still let queued futures spread over every pool process.
        ``max_slots`` may be the lease's shared scheduler (its concurrent
        gathers then round-robin the quota instead of competing first-come,
        first-served), an int (a private single-gather window, the
        pre-scheduler behaviour), or ``None`` (unconstrained).  The job
        decomposition — and hence the results — is never touched.
        ``task_deadline_s`` bounds the whole attempt; if it expires with
        shards still running they are treated as hung exactly as before.
        ``on_success`` fires per completed shard (the gather uses it to
        release that shard's shared-memory payloads early).
        """
        pool = self._acquire_pool(workers)
        parent_pid = os.getpid()
        if isinstance(max_slots, LeaseSlotScheduler):
            slots = max_slots
        else:
            slots = LeaseSlotScheduler(max_slots if max_slots else None)
        token = slots.register()
        failed, error = [], None
        broken = hung = False
        inflight: dict = {}
        queue = list(pending)
        deadline = (
            None if self.task_deadline_s is None
            else time.monotonic() + self.task_deadline_s
        )
        try:
            while queue or inflight:
                while queue and not broken and len(inflight) < workers:
                    if not slots.try_acquire(token):
                        if inflight:
                            break  # drain: completions free slots for everyone
                        # Nothing in flight — block for one slot so the gather
                        # always makes progress (its fair share is >= 1).
                        timeout = (
                            None if deadline is None
                            else max(0.0, deadline - time.monotonic())
                        )
                        if not slots.acquire(token, timeout=timeout):
                            # Starved past the attempt deadline: fail the
                            # remaining shards for retry.  The pool is fine —
                            # no rebuild, unlike a genuine hang.
                            error = TimeoutError(
                                f"gather starved of lease slots past the "
                                f"{self.task_deadline_s}s task deadline"
                            )
                            fault_log.record("executor", "slot-starvation", str(error))
                            failed.extend(queue)
                            queue = []
                            break
                    try:
                        fut = pool.submit(
                            _guarded_call, fn, jobs[queue[0]], faults.get(queue[0]), parent_pid
                        )
                    except (BrokenProcessPool, RuntimeError) as exc:
                        slots.release(token)
                        broken, error = True, exc
                        break
                    inflight[fut] = queue.pop(0)
                slots.set_demand(token, bool(queue) and not broken)
                if not inflight:
                    break  # pool broke (or slots starved) with nothing submitted
                timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
                done, not_done = wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)
                if not done:
                    hung = True
                    failed.extend(inflight.values())
                    inflight.clear()
                    error = TimeoutError(
                        f"{len(not_done)} shard(s) exceeded the "
                        f"{self.task_deadline_s}s task deadline"
                    )
                    fault_log.record("executor", "deadline-kill", str(error))
                    break
                for fut in done:
                    idx = inflight.pop(fut)
                    slots.release(token)
                    exc = fut.exception()
                    if exc is None:
                        results[idx] = fut.result()
                        if on_success is not None:
                            on_success(idx)
                    elif isinstance(exc, _RETRYABLE):
                        failed.append(idx)
                        error = exc
                        broken = broken or isinstance(exc, BrokenProcessPool)
                    else:
                        # A genuine job-function error: not the executor's to heal.
                        if not self.reuse_pool:
                            pool.shutdown(wait=False, cancel_futures=True)
                        raise exc
                # A broken pool fails its remaining futures promptly, so the loop
                # keeps draining `inflight` without submitting anything new.
            failed.extend(queue)  # never submitted (pool broke first)
        finally:
            slots.unregister(token)  # returns any slots still held
        if broken or hung:
            self._discard_pool(pool, hung=hung)
            fault_log.record(
                "executor",
                "pool-rebuild",
                "terminated hung worker pool" if hung else "replaced broken worker pool",
            )
        elif not self.reuse_pool:
            pool.shutdown()
        return failed, error

    def _retry_delay(self, attempt: int) -> float:
        """Jittered exponential backoff before retry ``attempt`` (1-based).

        ``retry_backoff_s * 2**(attempt-1) * uniform(0.5, 1.5)``, drawn from
        the executor's dedicated backoff rng — never from an experiment
        stream (the draw happens only on the retry path, and even there it
        influences timing alone).
        """
        with self._backoff_lock:
            jitter = float(self._backoff_rng.uniform(0.5, 1.5))
        return self.retry_backoff_s * (2 ** (attempt - 1)) * jitter

    # ------------------------------------------------------------------ #
    # Shared-memory payload transport
    def _shareable(self, obj) -> bool:
        return (
            isinstance(obj, np.ndarray)
            and not obj.dtype.hasobject
            and obj.flags["C_CONTIGUOUS"]
            and obj.nbytes >= self.shm_min_bytes
        )

    def _prepare_payloads(self, jobs):
        """Swap large arrays in ``jobs`` for shared-memory handles.

        Returns ``(arena, shipped_jobs, names_per_job)``.  Arrays are
        deduplicated by identity — a broadcast payload (e.g. the EnSF
        forecast ensemble every shard receives) lands in **one** segment no
        matter how many work-units reference it — and each segment's
        refcount equals the number of work-units holding a handle to it, so
        the gather can release memory shard-by-shard as results land.
        """
        arena = SharedPayloadArena()
        memo: dict[int, object] = {}
        keep = []  # pins shared source arrays so id() stays unambiguous
        names_per_job: list[list[str]] = []

        def swap(obj, names):
            if self._shareable(obj):
                handle = memo.get(id(obj))
                if handle is None:
                    handle = arena.share(obj)
                    memo[id(obj)] = handle
                    keep.append(obj)
                arena.retain(handle.name)
                names.append(handle.name)
                return handle
            if isinstance(obj, tuple):
                return tuple(swap(v, names) for v in obj)
            if isinstance(obj, list):
                return [swap(v, names) for v in obj]
            if isinstance(obj, dict):
                return {k: swap(v, names) for k, v in obj.items()}
            return obj

        try:
            shipped = []
            for job in jobs:
                names: list[str] = []
                shipped.append(swap(job, names))
                names_per_job.append(names)
        except Exception:
            arena.release_all()
            raise
        return arena, shipped, names_per_job

    def _record_payload_stats(self, jobs, shipped, arena, workers) -> None:
        proto = pickle.HIGHEST_PROTOCOL
        segment_bytes = 0
        if arena is not None:
            with arena._lock:
                segment_bytes = sum(entry[0].size for entry in arena._segments.values())
        self.last_payload_stats = {
            "transport": (
                "serial" if workers == 1 else ("shm" if arena is not None else "pickle")
            ),
            "n_jobs": len(jobs),
            "job_bytes_raw": [len(pickle.dumps(j, protocol=proto)) for j in jobs],
            "job_bytes_shipped": [len(pickle.dumps(j, protocol=proto)) for j in shipped],
            "shared_segment_bytes": int(segment_bytes),
            "n_segments": 0 if arena is None else len(arena),
            "n_handles": sum(count_handles(j) for j in shipped),
        }

    def _gather(
        self,
        fn,
        jobs,
        workers: int,
        fault_log: FaultLog | None = None,
        fault_plan: FaultPlan | None | str = "inherit",
        max_slots: int | None = None,
    ) -> list:
        """Run ``jobs`` (serially or on the pool), retrying failed shards.

        Results are returned in job order.  Failed shards are recomputed with
        jittered exponential backoff up to ``max_retries`` extra attempts;
        because the shards are deterministic and injected faults fire at most
        once, the recovered gather is bit-identical to a fault-free one.
        ``fault_log``/``fault_plan`` default to the executor's own; an
        :class:`ExecutorLease` passes per-job overrides so concurrent jobs
        sharing the pool keep separately attributable recovery ledgers, and
        its worker quota arrives as ``max_slots`` (a cap on concurrently
        in-flight shards — never on the decomposition, which is fixed by the
        caller before this method runs).

        Pool gathers with shm enabled ship large arrays through a
        per-gather :class:`~repro.hpc.shm.SharedPayloadArena`; segments are
        refcount-released as their shards succeed and the arena is drained
        unconditionally in the ``finally`` below, so neither failures nor
        retries can leak ``/dev/shm`` segments.  Retried shards re-read the
        still-retained segments — the recompute sees the same bytes.
        """
        fault_log = self.fault_log if fault_log is None else fault_log
        if isinstance(fault_plan, str):
            fault_plan = self.fault_plan
        arena, shipped = None, jobs
        names_per_job: list[list[str]] | None = None
        if workers > 1 and self.shm_payloads:
            try:
                arena, shipped, names_per_job = self._prepare_payloads(jobs)
            except Exception:
                arena, shipped, names_per_job = None, jobs, None  # pickle fallback
        if self.payload_stats:
            self._record_payload_stats(jobs, shipped, arena, workers)
        if arena is not None:
            with self._arena_lock:
                self._arenas.add(arena)

        def on_success(idx: int) -> None:
            if arena is not None:
                for name in names_per_job[idx]:
                    arena.release(name)

        try:
            results: list = [None] * len(jobs)
            pending = list(range(len(jobs)))
            attempt = 0
            while True:
                faults = self._faults_for(pending, fault_plan)
                if workers == 1:
                    failed, error = self._attempt_serial(fn, jobs, results, pending, faults)
                else:
                    failed, error = self._attempt_pool(
                        fn, shipped, results, pending, faults, workers, fault_log,
                        max_slots=max_slots, on_success=on_success,
                    )
                if not failed:
                    return results
                attempt += 1
                if attempt > self.max_retries:
                    raise ShardRetryError(
                        f"{len(failed)} shard(s) still failing after "
                        f"{self.max_retries} retries: {error!r}"
                    ) from error
                fault_log.record(
                    "executor",
                    "retry",
                    f"recomputing {len(failed)} shard(s), attempt {attempt + 1} "
                    f"after {type(error).__name__}",
                )
                delay = self._retry_delay(attempt)
                if delay > 0:
                    time.sleep(delay)
                failed.sort()
                pending = failed
        finally:
            if arena is not None:
                arena.release_all()
                with self._arena_lock:
                    self._arenas.discard(arena)

    def close(self) -> None:
        """Shut down the persistent worker pool (no-op when none is open).

        Teardown is deliberately forgiving: ``close()`` may run from
        ``__del__`` during interpreter shutdown (attributes may never have
        been assigned if ``__init__`` raised) or against a pool whose workers
        are already dead, where ``shutdown()`` can raise :class:`OSError`
        on the broken pipes.  Swallowing those here keeps teardown from
        masking the real failure a test is about to report.
        """
        self._close_pool()
        # Backstop for shm arenas whose gather never reached its finally
        # (a job thread killed mid-flight): unlink them now rather than
        # leaking /dev/shm segments for the interpreter's lifetime.  Pool
        # *replacement* (_acquire_pool growing the pool mid-gather) must
        # not do this — live gathers keep their arenas across rebuilds —
        # which is why only full close() drains the set.
        lock = getattr(self, "_arena_lock", None)
        if lock is not None:
            with lock:
                leftovers, self._arenas = list(self._arenas), set()
            for arena in leftovers:
                try:
                    arena.release_all()
                except Exception:
                    pass

    def _close_pool(self) -> None:
        pool = getattr(self, "_pool", None)
        self._pool = None
        self._pool_workers = 0
        if pool is not None:
            try:
                pool.shutdown()
            except (OSError, RuntimeError):
                pass  # workers already gone / interpreter shutting down

    def __enter__(self) -> "EnsembleExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass  # interpreter tear-down: the pool reaps itself

    @property
    def active_leases(self) -> int:
        """Open (un-closed) leases — the service's release audit reads this."""
        with self._pool_lock:
            return self._active_leases

    def _lease_opened(self) -> None:
        with self._pool_lock:
            self._active_leases += 1

    def _lease_closed(self) -> None:
        with self._pool_lock:
            self._active_leases -= 1

    def lease(
        self,
        job: str = "",
        fault_log: FaultLog | None = None,
        fault_plan: FaultPlan | None = None,
        max_workers: int | None = None,
    ) -> "ExecutorLease":
        """Per-job view of this executor for concurrent scheduling.

        The lease shares the worker pool but routes recoveries to its own
        :class:`FaultLog` (fresh by default) and draws injected faults from
        its own :class:`FaultPlan` (empty by default, so a process-wide
        ``REPRO_FAULT_PLAN`` targeting the service does not double-fire
        inside every job).  ``max_workers`` is the lease's pool-slot quota
        (see :class:`ExecutorLease`).
        """
        return ExecutorLease(
            self, job=job, fault_log=fault_log, fault_plan=fault_plan, max_workers=max_workers
        )

    def map_blocks(
        self, fn, jobs: list, *, fault_log=None, fault_plan="inherit", max_slots=None
    ) -> list:
        """Map independent, picklable work-units over the pool, in order.

        This is the generic sharding primitive behind the parallel analysis
        paths: ``fn`` must be a module-level function and each element of
        ``jobs`` a picklable work-unit (e.g. one contiguous LETKF column
        block with its geometry slice).  Results are returned in job order.
        The caller owns the decomposition; to guarantee worker-count
        invariance the job list must not depend on ``n_workers`` (the pool
        only changes *where* a job runs, never what it computes).  With one
        job or one worker the jobs run serially in-process.  ``max_slots``
        (a lease quota) caps how many jobs run concurrently without touching
        the job list, so quota changes cannot change results.
        """
        if not jobs:
            return []
        workers = min(self.n_workers, len(jobs))
        return self._gather(
            fn, jobs, workers, fault_log=fault_log, fault_plan=fault_plan, max_slots=max_slots
        )

    def map_states(
        self, model, ensemble: np.ndarray, n_steps: int = 1, *,
        fault_log=None, fault_plan="inherit", max_slots=None,
    ) -> np.ndarray:
        """Propagate an ``(m, d)`` ensemble through ``model`` member-parallel."""
        ensemble = np.asarray(ensemble, dtype=float)
        if ensemble.ndim != 2:
            raise ValueError("ensemble must have shape (m, state_size)")
        workers = self._effective_workers(ensemble.shape[0])
        slices = ensemble_slices(ensemble.shape[0], workers)
        jobs = [(model, ensemble[s], n_steps) for s in slices]
        results = self._gather(
            _forecast_chunk, jobs, workers,
            fault_log=fault_log, fault_plan=fault_plan, max_slots=max_slots,
        )
        return np.concatenate(results, axis=0)

    def analyze_ensf(
        self,
        filter_,
        forecast_ensemble: np.ndarray,
        observation: np.ndarray,
        operator,
        seed: int | np.random.SeedSequence = 0,
        *,
        fault_log=None,
        fault_plan="inherit",
        max_slots=None,
    ) -> np.ndarray:
        """Member-parallel EnSF analysis (each worker integrates its members).

        Every worker receives the full forecast ensemble (the broadcast of
        the paper's implementation) and integrates the reverse SDE only for
        its slice of analysis members; the slices are concatenated and the
        caller applies global post-processing (spread relaxation).

        Seeding is member-wise: one child :class:`numpy.random.SeedSequence`
        per ensemble member is spawned from the root ``seed``, and each
        worker's :meth:`EnSF.analyze_members` call draws every member from
        its own stream.  The gathered analysis is therefore bit-identical
        for any ``n_workers`` / ``min_members_per_worker`` layout, including
        the serial fallback.  (Pre-fix behaviour drew one seed per *slice*,
        so the analysis changed with the worker count.)
        """
        forecast_ensemble = np.asarray(forecast_ensemble, dtype=float)
        n_members = forecast_ensemble.shape[0]
        if isinstance(seed, np.random.SeedSequence):
            # Spawn from a private copy: SeedSequence.spawn() advances the
            # parent's child counter, so spawning from the caller's object
            # would make a second call with the same root non-reproducible.
            root = np.random.SeedSequence(entropy=seed.entropy, spawn_key=seed.spawn_key)
        else:
            root = np.random.SeedSequence(int(seed))
        member_seeds = root.spawn(n_members)
        workers = self._effective_workers(n_members)
        slices = ensemble_slices(n_members, workers)
        jobs = [
            (filter_, forecast_ensemble, observation, operator, member_seeds[s.start : s.stop])
            for s in slices
        ]
        results = self._gather(
            _ensf_chunk, jobs, workers,
            fault_log=fault_log, fault_plan=fault_plan, max_slots=max_slots,
        )
        return np.concatenate(results, axis=0)


class ExecutorLease:
    """A per-job handle onto a shared :class:`EnsembleExecutor`.

    An experiment service runs many jobs concurrently over one pool; each
    job holds a lease rather than the executor itself.  The lease exposes
    the same mapping API (``map_blocks`` / ``map_states`` / ``analyze_ensf``)
    and shares the parent's workers, retry budget and deadlines, but:

    - recoveries are recorded in the **lease's own** :class:`FaultLog`, so
      per-job health is attributable (the service reads it to decide
      retry/fail transitions) instead of interleaved in one global ledger;
    - injected faults come from the **lease's own** :class:`FaultPlan`
      (empty by default), so a process-wide ``REPRO_FAULT_PLAN`` aimed at
      the scheduler site is not consumed N times by N concurrent jobs —
      chaos tests target a specific job by handing that job's lease a plan;
    - ``max_workers`` is the lease's **pool-slot quota**: at most that many
      of the lease's shards are in flight on the shared pool at any instant
      (``None`` = unconstrained).  The quota caps concurrency only — the
      job decomposition is fixed before submission — so any quota yields
      bit-identical results, and the service re-targets it live
      (fair-share re-arbitration simply assigns ``lease.max_workers``).
      The quota is arbitrated by a single :class:`LeaseSlotScheduler`
      shared across the lease's concurrent gathers, which round-robins the
      slots by fair share — one long gather can no longer starve a sibling
      gather of the same job for its whole duration.

    ``close()`` releases the lease: the shared pool stays up (it belongs to
    the parent and outlives any one job), but the parent's ``active_leases``
    count drops so the scheduler can prove each job attempt released its
    lease.  Unknown attributes delegate to the parent, so a lease
    substitutes anywhere an ``EnsembleExecutor`` is accepted.
    """

    def __init__(
        self,
        parent: EnsembleExecutor,
        job: str = "",
        fault_log: FaultLog | None = None,
        fault_plan: FaultPlan | None = None,
        max_workers: int | None = None,
    ):
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError("max_workers must be positive (or None)")
        self._parent = parent
        self.job = str(job)
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        # One scheduler per lease: every gather of this job arbitrates its
        # in-flight shards through it (see LeaseSlotScheduler).
        self._slots = LeaseSlotScheduler(None if max_workers is None else int(max_workers))
        self._closed = False
        parent._lease_opened()

    @property
    def max_workers(self) -> int | None:
        """The lease's pool-slot quota (live-retargetable; ``None`` = no cap)."""
        return self._slots.capacity

    @max_workers.setter
    def max_workers(self, value: int | None) -> None:
        if value is not None and int(value) < 1:
            raise ValueError("max_workers must be positive (or None)")
        self._slots.capacity = None if value is None else int(value)

    @property
    def parent(self) -> EnsembleExecutor:
        return self._parent

    @property
    def closed(self) -> bool:
        return self._closed

    def map_blocks(self, fn, jobs: list) -> list:
        return self._parent.map_blocks(
            fn, jobs,
            fault_log=self.fault_log, fault_plan=self.fault_plan, max_slots=self._slots,
        )

    def map_states(self, model, ensemble: np.ndarray, n_steps: int = 1) -> np.ndarray:
        return self._parent.map_states(
            model, ensemble, n_steps,
            fault_log=self.fault_log, fault_plan=self.fault_plan, max_slots=self._slots,
        )

    def analyze_ensf(self, filter_, forecast_ensemble, observation, operator, seed=0):
        return self._parent.analyze_ensf(
            filter_,
            forecast_ensemble,
            observation,
            operator,
            seed,
            fault_log=self.fault_log,
            fault_plan=self.fault_plan,
            max_slots=self._slots,
        )

    def close(self) -> None:
        """Release the lease (idempotent).  The shared pool stays up."""
        if not self._closed:
            self._closed = True
            self._parent._lease_closed()

    def __enter__(self) -> "ExecutorLease":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._parent, name)
